package nonlocal

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"qdc/internal/comm"
)

func TestCHSHClassicalValue(t *testing.T) {
	g := NewCHSH()
	v, strategy, err := g.ClassicalValue()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-CHSHClassicalValue) > 1e-12 {
		t.Fatalf("classical value = %g, want 0.75", v)
	}
	// The returned strategy must actually achieve the value.
	p, err := g.WinProbability(strategy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-v) > 1e-12 {
		t.Fatalf("best strategy achieves %g, reported %g", p, v)
	}
	bias, err := g.ClassicalBias()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bias-0.5) > 1e-12 {
		t.Fatalf("classical bias = %g, want 0.5", bias)
	}
}

func TestCHSHQuantumBeatsClassical(t *testing.T) {
	g := NewCHSH()
	p, err := g.EntangledWinProbability(CHSHOptimalStrategy())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-CHSHQuantumValue) > 1e-9 {
		t.Fatalf("entangled value = %g, want cos²(π/8) = %g", p, CHSHQuantumValue)
	}
	if p <= CHSHClassicalValue {
		t.Fatal("quantum strategy should beat the classical value")
	}
}

func TestCHSHSampledPlayMatchesExactValue(t *testing.T) {
	g := NewCHSH()
	s := CHSHOptimalStrategy()
	rng := rand.New(rand.NewSource(13))
	const trials = 4000
	wins := 0
	for i := 0; i < trials; i++ {
		x, y := rng.Intn(2), rng.Intn(2)
		a, b, err := SampleEntangledPlay(s, x, y, rng)
		if err != nil {
			t.Fatal(err)
		}
		if a^b == g.F(x, y) {
			wins++
		}
	}
	rate := float64(wins) / trials
	if math.Abs(rate-CHSHQuantumValue) > 0.03 {
		t.Fatalf("sampled win rate %g far from %g", rate, CHSHQuantumValue)
	}
}

func TestGameValidation(t *testing.T) {
	bad := &Game{XSize: 2, YSize: 2, Combine: XOR, F: func(x, y int) int { return 0 },
		Prob: [][]float64{{0.5, 0.5}, {0.5, 0.5}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadGame) {
		t.Fatalf("distribution summing to 2 should be rejected, err = %v", err)
	}
	bad2 := &Game{XSize: 2, YSize: 2, Combine: Combiner(7), F: func(x, y int) int { return 0 },
		Prob: [][]float64{{0.25, 0.25}, {0.25, 0.25}}}
	if err := bad2.Validate(); !errors.Is(err, ErrBadGame) {
		t.Fatalf("unknown combiner should be rejected, err = %v", err)
	}
	var nilGame *Game
	if err := nilGame.Validate(); !errors.Is(err, ErrBadGame) {
		t.Fatal("nil game should be rejected")
	}
	g := NewCHSH()
	if _, err := g.WinProbability(DeterministicStrategy{AliceAnswers: []int{0}, BobAnswers: []int{0, 1}}); !errors.Is(err, ErrBadStrategy) {
		t.Fatalf("short strategy should be rejected, err = %v", err)
	}
	if _, err := g.EntangledWinProbability(AngleStrategy{AliceAngles: []float64{0}, BobAngles: []float64{0, 0}}); !errors.Is(err, ErrBadStrategy) {
		t.Fatalf("short angle strategy should be rejected, err = %v", err)
	}
	if _, _, err := SampleEntangledPlay(CHSHOptimalStrategy(), 5, 0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadStrategy) {
		t.Fatalf("out-of-range input should be rejected, err = %v", err)
	}
	if XOR.String() != "XOR" || AND.String() != "AND" || Combiner(9).String() == "" {
		t.Fatal("Combiner.String broken")
	}
}

func TestANDGameClassicalValue(t *testing.T) {
	// AND game with predicate x⊕y: the players must produce a∧b = x⊕y.
	// Winning all four inputs is impossible (it would force a0=b0=a1=b1=1,
	// which loses on (1,1)), and 3/4 is achievable (a(x)=x, b(0)=1, b(1)=0),
	// so the classical value is exactly 3/4.
	g := &Game{
		XSize: 2, YSize: 2,
		Prob:    [][]float64{{0.25, 0.25}, {0.25, 0.25}},
		F:       func(x, y int) int { return x ^ y },
		Combine: AND,
	}
	v, _, err := g.ClassicalValue()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.75) > 1e-12 {
		t.Fatalf("AND-game classical value = %g, want 0.75", v)
	}
	// Sanity: the AND game with predicate x∧y is trivially winnable (answer
	// your own input), so its classical value is 1.
	trivial := &Game{
		XSize: 2, YSize: 2,
		Prob:    [][]float64{{0.25, 0.25}, {0.25, 0.25}},
		F:       func(x, y int) int { return x & y },
		Combine: AND,
	}
	v, _, err = trivial.ClassicalValue()
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("trivial AND-game value = %g, want 1", v)
	}
}

func TestPredictionFormulas(t *testing.T) {
	p := PredictClassical(3, 1.0)
	if math.Abs(p.GuessProbability-0.125) > 1e-12 {
		t.Fatalf("guess probability = %g, want 1/8", p.GuessProbability)
	}
	if math.Abs(p.XORWinProbability-(0.5+0.5*0.125)) > 1e-12 {
		t.Fatalf("XOR win = %g", p.XORWinProbability)
	}
	if math.Abs(p.ANDAcceptProbability-0.125) > 1e-12 {
		t.Fatalf("AND accept = %g", p.ANDAcceptProbability)
	}
	q := PredictQuantum(2, 0.9)
	if math.Abs(q.GuessProbability-math.Pow(4, -4)) > 1e-15 {
		t.Fatalf("quantum guess probability = %g", q.GuessProbability)
	}
	if q.XORWinProbability <= 0.5 || q.ANDAcceptProbability <= 0 {
		t.Fatal("quantum prediction should give nontrivial advantage")
	}
	if MinimumCostForBias(0.6, 1.0) <= 0 {
		t.Fatal("bias 0.2 with perfect accuracy needs positive cost")
	}
	if MinimumCostForBias(0.5, 1.0) != 0 || MinimumCostForBias(0.7, 0.5) != 0 {
		t.Fatal("degenerate cases should clamp to 0")
	}
	if MinimumCostForBias(0.9, 0.6) != 0 {
		t.Fatal("ratio below 1 should clamp to 0")
	}
}

func TestConvertedStrategyRejectsTwoParty(t *testing.T) {
	c := ConvertedStrategy{Protocol: comm.SendAllTwoParty{P: comm.NewEquality(2)}, Combine: XOR}
	if _, err := c.Play([]int{1, 1}, []int{1, 1}, nil); !errors.Is(err, ErrNotServerProtocol) {
		t.Fatalf("err = %v, want ErrNotServerProtocol", err)
	}
	bad := ConvertedStrategy{Protocol: comm.SendAllServer{P: comm.NewEquality(2)}, Combine: Combiner(0)}
	if _, err := bad.Play([]int{1, 1}, []int{1, 1}, nil); !errors.Is(err, ErrBadStrategy) {
		t.Fatalf("err = %v, want ErrBadStrategy", err)
	}
}

// Lemma 3.2, empirically: the no-abort rate of the converted strategy equals
// 2^(−transcript bits), and the XOR win rate matches the prediction.
func TestLemma32EmpiricalXOR(t *testing.T) {
	// Tiny problem so the transcript is short enough to hit the no-abort
	// event often: Eq_2 via send-all-server has cost 3 bits.
	prob := comm.NewEquality(2)
	proto := comm.SendAllServer{P: prob}
	strategy := ConvertedStrategy{Protocol: proto, Combine: XOR}
	x, y := []int{1, 0}, []int{1, 0}
	want, err := prob.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const trials = 20000
	winRate, noAbort, err := strategy.EmpiricalWinRate(x, y, want, trials, rng)
	if err != nil {
		t.Fatal(err)
	}
	pred := PredictClassical(3, 1.0) // deterministic protocol: accuracy 1
	if math.Abs(noAbort-pred.GuessProbability) > 0.01 {
		t.Fatalf("no-abort rate %g, predicted %g", noAbort, pred.GuessProbability)
	}
	if math.Abs(winRate-pred.XORWinProbability) > 0.02 {
		t.Fatalf("win rate %g, predicted %g", winRate, pred.XORWinProbability)
	}
	if winRate <= 0.5 {
		t.Fatal("converted strategy must beat random guessing")
	}
}

// Lemma 3.2 for AND games: on 0-inputs of a one-sided protocol the strategy
// never accepts; on 1-inputs it accepts with probability
// accuracy·2^(−bits).
func TestLemma32EmpiricalAND(t *testing.T) {
	prob := comm.NewEquality(2)
	proto := comm.SendAllServer{P: prob}
	strategy := ConvertedStrategy{Protocol: proto, Combine: AND}
	rng := rand.New(rand.NewSource(7))
	const trials = 20000

	// 0-input: x != y. The protocol always outputs 0, so the AND output is 0
	// in every round (abort or not): acceptance probability must be 0.
	accepts := 0
	for i := 0; i < trials/4; i++ {
		res, err := strategy.Play([]int{1, 0}, []int{0, 0}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.RefereeOutput == 1 {
			accepts++
		}
	}
	if accepts != 0 {
		t.Fatalf("AND strategy accepted a 0-input %d times", accepts)
	}

	// 1-input: acceptance rate should match accuracy·2^(−3).
	acceptRate, _, err := strategy.EmpiricalWinRate([]int{1, 1}, []int{1, 1}, 1, trials, rng)
	if err != nil {
		t.Fatal(err)
	}
	pred := PredictClassical(3, 1.0)
	if math.Abs(acceptRate-pred.ANDAcceptProbability) > 0.01 {
		t.Fatalf("accept rate %g, predicted %g", acceptRate, pred.ANDAcceptProbability)
	}
}

func TestEmpiricalWinRateValidation(t *testing.T) {
	strategy := ConvertedStrategy{Protocol: comm.SendAllServer{P: comm.NewEquality(2)}, Combine: XOR}
	if _, _, err := strategy.EmpiricalWinRate([]int{1, 1}, []int{1, 1}, 1, 0, nil); err == nil {
		t.Fatal("zero trials should be rejected")
	}
}

// The contrapositive use of Lemma 3.2: a game bound on the achievable bias
// translates into a lower bound on the server-model cost. With the CHSH
// example: any strategy derived from a protocol with too few bits cannot
// even reach the classical CHSH value, let alone the Tsirelson bound.
func TestLemma32Contrapositive(t *testing.T) {
	// A 1-bit protocol gives XOR win probability at most 1/2 + 1/2·1/2 = 3/4.
	p := PredictClassical(1, 1.0)
	if p.XORWinProbability > CHSHClassicalValue+1e-12 {
		t.Fatalf("1-bit conversion wins %g, cannot exceed 0.75", p.XORWinProbability)
	}
	// Conversely, to reach win probability 0.7 the protocol must have sent
	// at least log2(0.5/0.2) ≈ 1.32 bits.
	if got := MinimumCostForBias(0.7, 1.0); got < 1.3 || got > 1.35 {
		t.Fatalf("MinimumCostForBias(0.7) = %g", got)
	}
}
