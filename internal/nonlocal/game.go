// Package nonlocal implements two-player nonlocal games (Section 6 and
// Appendix B.1 of the paper): XOR games and AND games, their classical and
// entangled values, the CHSH game as the canonical example, and the
// conversion of Lemma 3.2 that turns an efficient server-model protocol into
// a game strategy with a quantifiable winning probability — the bridge that
// carries two-party hardness into the Server model.
package nonlocal

import (
	"errors"
	"fmt"
	"math"
)

// Combiner is the referee's rule for combining the players' answer bits.
type Combiner int

// Supported combiners.
const (
	// XOR: the players win when a ⊕ b = f(x, y).
	XOR Combiner = iota + 1
	// AND: the players win when a ∧ b = f(x, y).
	AND
)

// String implements fmt.Stringer.
func (c Combiner) String() string {
	switch c {
	case XOR:
		return "XOR"
	case AND:
		return "AND"
	default:
		return fmt.Sprintf("Combiner(%d)", int(c))
	}
}

// Errors returned by game constructors and evaluators.
var (
	// ErrBadGame reports an inconsistent game description.
	ErrBadGame = errors.New("nonlocal: malformed game")
	// ErrBadStrategy reports a strategy incompatible with the game.
	ErrBadStrategy = errors.New("nonlocal: malformed strategy")
)

// Game is a two-player nonlocal game: the referee draws (x, y) from the
// distribution Prob, sends x to Alice and y to Bob, receives one bit from
// each, and declares a win when combine(a, b) = F(x, y).
type Game struct {
	// XSize and YSize are the numbers of possible inputs for Alice and Bob.
	XSize, YSize int
	// Prob[x][y] is the referee's input distribution π(x, y); it must sum
	// to 1.
	Prob [][]float64
	// F is the target predicate f(x, y) ∈ {0, 1}.
	F func(x, y int) int
	// Combine is the referee's combining rule.
	Combine Combiner
}

// Validate checks that the game description is consistent.
func (g *Game) Validate() error {
	if g == nil || g.XSize <= 0 || g.YSize <= 0 || g.F == nil {
		return fmt.Errorf("%w: empty domain or predicate", ErrBadGame)
	}
	if g.Combine != XOR && g.Combine != AND {
		return fmt.Errorf("%w: unknown combiner", ErrBadGame)
	}
	if len(g.Prob) != g.XSize {
		return fmt.Errorf("%w: distribution has %d rows, want %d", ErrBadGame, len(g.Prob), g.XSize)
	}
	total := 0.0
	for x := range g.Prob {
		if len(g.Prob[x]) != g.YSize {
			return fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadGame, x, len(g.Prob[x]), g.YSize)
		}
		for y := range g.Prob[x] {
			if g.Prob[x][y] < 0 {
				return fmt.Errorf("%w: negative probability at (%d,%d)", ErrBadGame, x, y)
			}
			total += g.Prob[x][y]
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("%w: distribution sums to %g", ErrBadGame, total)
	}
	return nil
}

func (g *Game) wins(a, b, x, y int) bool {
	var out int
	switch g.Combine {
	case XOR:
		out = a ^ b
	case AND:
		out = a & b
	default:
		return false
	}
	return out == g.F(x, y)
}

// DeterministicStrategy is a pair of deterministic answer functions
// (tables indexed by the input).
type DeterministicStrategy struct {
	// AliceAnswers[x] and BobAnswers[y] are the bits the players output.
	AliceAnswers, BobAnswers []int
}

// WinProbability returns the winning probability of a deterministic
// strategy under the game's input distribution.
func (g *Game) WinProbability(s DeterministicStrategy) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if len(s.AliceAnswers) != g.XSize || len(s.BobAnswers) != g.YSize {
		return 0, fmt.Errorf("%w: answer tables have sizes %d,%d", ErrBadStrategy, len(s.AliceAnswers), len(s.BobAnswers))
	}
	p := 0.0
	for x := 0; x < g.XSize; x++ {
		for y := 0; y < g.YSize; y++ {
			if g.wins(s.AliceAnswers[x]&1, s.BobAnswers[y]&1, x, y) {
				p += g.Prob[x][y]
			}
		}
	}
	return p, nil
}

// ClassicalValue returns the maximum winning probability over all classical
// strategies. Because the optimum of a linear objective over product
// strategies is attained at a deterministic strategy, it suffices to
// enumerate the 2^(XSize+YSize) deterministic strategies; the game domains
// used in this repository are tiny.
func (g *Game) ClassicalValue() (float64, DeterministicStrategy, error) {
	if err := g.Validate(); err != nil {
		return 0, DeterministicStrategy{}, err
	}
	if g.XSize+g.YSize > 24 {
		return 0, DeterministicStrategy{}, fmt.Errorf("%w: domain too large for exhaustive search", ErrBadGame)
	}
	best := -1.0
	var bestStrategy DeterministicStrategy
	for mask := 0; mask < 1<<(g.XSize+g.YSize); mask++ {
		s := DeterministicStrategy{
			AliceAnswers: make([]int, g.XSize),
			BobAnswers:   make([]int, g.YSize),
		}
		for x := 0; x < g.XSize; x++ {
			s.AliceAnswers[x] = (mask >> x) & 1
		}
		for y := 0; y < g.YSize; y++ {
			s.BobAnswers[y] = (mask >> (g.XSize + y)) & 1
		}
		p, err := g.WinProbability(s)
		if err != nil {
			return 0, DeterministicStrategy{}, err
		}
		if p > best {
			best = p
			bestStrategy = s
		}
	}
	return best, bestStrategy, nil
}

// ClassicalBias returns 2·ClassicalValue − 1, the classical bias of the game.
func (g *Game) ClassicalBias() (float64, error) {
	v, _, err := g.ClassicalValue()
	if err != nil {
		return 0, err
	}
	return 2*v - 1, nil
}
