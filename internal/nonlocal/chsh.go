package nonlocal

import (
	"fmt"
	"math"
	"math/rand"

	"qdc/internal/quantum"
)

// AngleStrategy is an entangled strategy for a binary-input XOR game in
// which the players share one EPR pair and each measures their half in a
// rotated basis whose angle depends on their input.
type AngleStrategy struct {
	// AliceAngles[x] and BobAngles[y] are measurement angles in radians.
	AliceAngles, BobAngles []float64
}

// EntangledWinProbability returns the exact winning probability of the
// angle strategy, computed from the shared EPR state on the state-vector
// simulator (no sampling).
func (g *Game) EntangledWinProbability(s AngleStrategy) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if len(s.AliceAngles) != g.XSize || len(s.BobAngles) != g.YSize {
		return 0, fmt.Errorf("%w: angle tables have sizes %d,%d", ErrBadStrategy, len(s.AliceAngles), len(s.BobAngles))
	}
	win := 0.0
	for x := 0; x < g.XSize; x++ {
		for y := 0; y < g.YSize; y++ {
			if g.Prob[x][y] == 0 {
				continue
			}
			joint, err := jointRotatedProbabilities(s.AliceAngles[x], s.BobAngles[y])
			if err != nil {
				return 0, err
			}
			for a := 0; a <= 1; a++ {
				for b := 0; b <= 1; b++ {
					if g.wins(a, b, x, y) {
						win += g.Prob[x][y] * joint[a][b]
					}
				}
			}
		}
	}
	return win, nil
}

// jointRotatedProbabilities returns the joint outcome distribution when the
// two halves of an EPR pair are measured in bases rotated by thetaA and
// thetaB about the Y axis.
func jointRotatedProbabilities(thetaA, thetaB float64) ([2][2]float64, error) {
	var out [2][2]float64
	pair, err := quantum.BellPair(rand.New(rand.NewSource(1)))
	if err != nil {
		return out, err
	}
	if err := pair.Ry(0, -2*thetaA); err != nil {
		return out, err
	}
	if err := pair.Ry(1, -2*thetaB); err != nil {
		return out, err
	}
	for basis := 0; basis < 4; basis++ {
		a := basis & 1
		b := (basis >> 1) & 1
		out[a][b] += pair.Probability(basis)
	}
	return out, nil
}

// CHSHQuantumValue is the Tsirelson bound cos²(π/8) ≈ 0.8536, the optimal
// entangled winning probability of the CHSH game.
var CHSHQuantumValue = math.Pow(math.Cos(math.Pi/8), 2)

// CHSHClassicalValue is the optimal classical winning probability 3/4.
const CHSHClassicalValue = 0.75

// NewCHSH returns the CHSH game: uniform inputs x, y ∈ {0,1}, predicate
// f(x,y) = x∧y, XOR combining rule.
func NewCHSH() *Game {
	return &Game{
		XSize:   2,
		YSize:   2,
		Prob:    [][]float64{{0.25, 0.25}, {0.25, 0.25}},
		F:       func(x, y int) int { return x & y },
		Combine: XOR,
	}
}

// CHSHOptimalStrategy returns the standard optimal entangled strategy for
// CHSH: Alice measures at angles {0, π/4}, Bob at {π/8, −π/8}.
func CHSHOptimalStrategy() AngleStrategy {
	return AngleStrategy{
		AliceAngles: []float64{0, math.Pi / 4},
		BobAngles:   []float64{math.Pi / 8, -math.Pi / 8},
	}
}

// SampleEntangledPlay plays one round of a binary XOR game with the angle
// strategy using fresh entanglement and real measurements, returning the
// players' answers. It is used by tests to confirm that the exact
// probabilities are also what sampled play produces.
func SampleEntangledPlay(s AngleStrategy, x, y int, rng *rand.Rand) (a, b int, err error) {
	if x < 0 || x >= len(s.AliceAngles) || y < 0 || y >= len(s.BobAngles) {
		return 0, 0, fmt.Errorf("%w: input (%d,%d) out of range", ErrBadStrategy, x, y)
	}
	pair, err := quantum.BellPair(rng)
	if err != nil {
		return 0, 0, err
	}
	a, err = pair.MeasureInRotatedBasis(0, s.AliceAngles[x])
	if err != nil {
		return 0, 0, err
	}
	b, err = pair.MeasureInRotatedBasis(1, s.BobAngles[y])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
