package nonlocal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qdc/internal/comm"
)

// This file makes Lemma 3.2 executable: a server-model protocol with small
// communication yields XOR-game and AND-game strategies whose winning
// probability exceeds 1/2 (respectively 0) by a margin controlled by the
// protocol's cost. Contrapositively, nonlocal-game bounds (Linial–Shraibman,
// Lee–Zhang, Klauck–de Wolf) force the server-model cost to be large, which
// is how Theorem 6.1 obtains Ω(n) bounds for IPmod3 and Gap-Equality.

// ErrNotServerProtocol reports a conversion applied to a non-server
// protocol.
var ErrNotServerProtocol = errors.New("nonlocal: conversion requires a server-model protocol")

// ConversionPrediction carries the closed-form success probabilities of the
// Lemma 3.2 conversion for a protocol of the given cost and accuracy.
type ConversionPrediction struct {
	// GuessProbability is the probability that the game players' guessed
	// transcript matches the protocol's actual transcript, so that the
	// simulation does not abort.
	GuessProbability float64
	// XORWinProbability is the overall winning probability of the derived
	// XOR-game strategy: 1/2 + (accuracy − 1/2)·GuessProbability.
	XORWinProbability float64
	// ANDAcceptProbability is the accept probability of the derived
	// AND-game strategy on a 1-input: accuracy·GuessProbability.
	ANDAcceptProbability float64
}

// PredictClassical returns the conversion prediction when the protocol's
// transcript consists of classical bits: each guessed bit matches with
// probability 1/2, so the no-abort probability is 2^(−bits).
func PredictClassical(transcriptBits int, accuracy float64) ConversionPrediction {
	guess := math.Pow(2, -float64(transcriptBits))
	return predict(guess, accuracy)
}

// PredictQuantum returns the conversion prediction in the paper's own
// setting, where the protocol sends T qubits from each of Carol and David
// and teleportation turns each qubit into two uniformly distributed
// classical bits: the no-abort probability is 4^(−2T) (Lemma 3.2).
func PredictQuantum(qubitsPerPlayer int, accuracy float64) ConversionPrediction {
	guess := math.Pow(4, -2*float64(qubitsPerPlayer))
	return predict(guess, accuracy)
}

func predict(guess, accuracy float64) ConversionPrediction {
	return ConversionPrediction{
		GuessProbability:     guess,
		XORWinProbability:    0.5 + (accuracy-0.5)*guess,
		ANDAcceptProbability: accuracy * guess,
	}
}

// MinimumCostForBias inverts the XOR prediction: a strategy achieving bias
// ε = 2·winProb − 1 over random guessing requires the underlying protocol to
// have communicated at least log2((accuracy−1/2)/ (ε/2)) ... bits; it
// returns the number of classical transcript bits needed so that the
// converted strategy still wins with probability at least winProb. It is the
// quantity compared against game-theoretic upper bounds on the bias.
func MinimumCostForBias(winProb, accuracy float64) float64 {
	if winProb <= 0.5 || accuracy <= 0.5 {
		return 0
	}
	ratio := (accuracy - 0.5) / (winProb - 0.5)
	if ratio < 1 {
		return 0
	}
	return math.Log2(ratio)
}

// ConvertedStrategy is the executable Lemma 3.2 strategy: two game players
// who cannot communicate simulate a server-model protocol by guessing its
// transcript from shared randomness.
type ConvertedStrategy struct {
	// Protocol is the server-model protocol being converted.
	Protocol comm.Protocol
	// Combine selects the XOR-game or AND-game variant of the conversion.
	Combine Combiner
}

// PlayResult reports one round of the converted game strategy.
type PlayResult struct {
	// Aborted reports whether the guessed transcript mismatched (in which
	// case the XOR strategy answers uniformly at random and the AND
	// strategy answers 0).
	Aborted bool
	// AliceAnswer and BobAnswer are the bits returned to the referee.
	AliceAnswer, BobAnswer int
	// RefereeOutput is the combined answer (a⊕b or a∧b).
	RefereeOutput int
	// TranscriptBits is the number of Carol/David bits that had to be
	// guessed.
	TranscriptBits int
}

// Play runs one round of the converted strategy on inputs (x, y).
//
// The players share (via prior entanglement, modelled as shared randomness)
// a guessed transcript. They then simulate the protocol locally — Alice
// playing Carol, Bob playing David, both playing the server — and each
// aborts if any bit their own character sends disagrees with the guess.
// Because every transcript bit is matched by an independent uniform guess,
// the no-abort probability is exactly 2^(−transcript bits), independent of
// the inputs, which is the quantitative heart of Lemma 3.2.
func (c ConvertedStrategy) Play(x, y []int, rng *rand.Rand) (*PlayResult, error) {
	if c.Protocol == nil || c.Protocol.Model() != comm.ModelServer {
		return nil, ErrNotServerProtocol
	}
	if c.Combine != XOR && c.Combine != AND {
		return nil, fmt.Errorf("%w: combiner %v", ErrBadStrategy, c.Combine)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	out, transcript, err := c.Protocol.Run(x, y, rng)
	if err != nil {
		return nil, fmt.Errorf("nonlocal: running converted protocol: %w", err)
	}
	bitsToGuess := transcript.ServerCost()
	res := &PlayResult{TranscriptBits: bitsToGuess}
	// Each Carol/David transcript bit is matched by an independent uniform
	// shared guess.
	for i := 0; i < bitsToGuess; i++ {
		if rng.Intn(2) == 1 {
			res.Aborted = true
		}
	}
	switch {
	case !res.Aborted:
		// Alice outputs Carol's (= the protocol's) answer; Bob pads with the
		// neutral element of the combiner.
		res.AliceAnswer = out
		if c.Combine == AND {
			res.BobAnswer = 1
		} else {
			res.BobAnswer = 0
		}
	case c.Combine == XOR:
		res.AliceAnswer = rng.Intn(2)
		res.BobAnswer = rng.Intn(2)
	default: // AND abort: answer 0.
		res.AliceAnswer = 0
		res.BobAnswer = 0
	}
	if c.Combine == XOR {
		res.RefereeOutput = res.AliceAnswer ^ res.BobAnswer
	} else {
		res.RefereeOutput = res.AliceAnswer & res.BobAnswer
	}
	return res, nil
}

// EmpiricalWinRate plays the converted strategy `trials` times on the fixed
// input (x, y) and returns the fraction of rounds whose referee output
// equals want, together with the fraction of non-aborted rounds.
func (c ConvertedStrategy) EmpiricalWinRate(x, y []int, want, trials int, rng *rand.Rand) (winRate, noAbortRate float64, err error) {
	if trials <= 0 {
		return 0, 0, fmt.Errorf("%w: trials must be positive", ErrBadStrategy)
	}
	wins, clean := 0, 0
	for i := 0; i < trials; i++ {
		res, err := c.Play(x, y, rng)
		if err != nil {
			return 0, 0, err
		}
		if res.RefereeOutput == want {
			wins++
		}
		if !res.Aborted {
			clean++
		}
	}
	return float64(wins) / float64(trials), float64(clean) / float64(trials), nil
}
