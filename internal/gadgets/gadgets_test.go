package gadgets

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBits(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(2)
	}
	return out
}

func TestIPMod3Value(t *testing.T) {
	tests := []struct {
		name string
		x, y []int
		want int
	}{
		{"zero inner product", []int{1, 0, 1}, []int{0, 1, 0}, 1},
		{"ip=1", []int{1, 0, 0}, []int{1, 0, 0}, 0},
		{"ip=3", []int{1, 1, 1}, []int{1, 1, 1}, 1},
		{"ip=2", []int{1, 1, 0, 0}, []int{1, 1, 0, 0}, 0},
		{"ip=6", []int{1, 1, 1, 1, 1, 1}, []int{1, 1, 1, 1, 1, 1}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := IPMod3Value(tc.x, tc.y)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("IPMod3Value = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := IPMod3Value([]int{1}, []int{1, 0}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want length mismatch", err)
	}
	if _, err := IPMod3Value(nil, nil); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want length mismatch", err)
	}
	if _, err := IPMod3Value([]int{2}, []int{1}); !errors.Is(err, ErrBadBit) {
		t.Fatalf("err = %v, want bad bit", err)
	}
	if _, err := IPMod3ToHam([]int{0, 3}, []int{0, 1}); !errors.Is(err, ErrBadBit) {
		t.Fatalf("err = %v, want bad bit", err)
	}
	if _, err := EqToGapHam([]int{1}, []int{1, 1}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want length mismatch", err)
	}
	if _, err := IPGadgetTrackPermutation(2, 0); !errors.Is(err, ErrBadBit) {
		t.Fatalf("err = %v, want bad bit", err)
	}
	if _, err := EqGadgetInspect(0, 5); !errors.Is(err, ErrBadBit) {
		t.Fatalf("err = %v, want bad bit", err)
	}
}

// Observation 7.1: within one gadget, left track j is connected to right
// track (j + x_i·y_i) mod 3.
func TestObservation71TrackPermutation(t *testing.T) {
	for xi := 0; xi <= 1; xi++ {
		for yi := 0; yi <= 1; yi++ {
			perm, err := IPGadgetTrackPermutation(xi, yi)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				want := (j + xi*yi) % 3
				if perm[j] != want {
					t.Fatalf("(x,y)=(%d,%d): track %d -> %d, want %d", xi, yi, j, perm[j], want)
				}
			}
		}
	}
}

// Lemma C.3 part 1: each player's edge set is a perfect matching of G.
func TestIPMod3MatchingsArePerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		red, err := IPMod3ToHam(randomBits(n, rng), randomBits(n, rng))
		if err != nil {
			t.Fatal(err)
		}
		if !red.CarolIsPerfectMatching() {
			t.Fatalf("n=%d: Carol's edges are not a perfect matching", n)
		}
		if !red.DavidIsPerfectMatching() {
			t.Fatalf("n=%d: David's edges are not a perfect matching", n)
		}
		if red.NumNodes() != NodesPerIPGadget*n {
			t.Fatalf("n=%d: nodes = %d, want %d", n, red.NumNodes(), NodesPerIPGadget*n)
		}
	}
}

// Lemma C.3 part 2: G is a Hamiltonian cycle iff Σ x_i·y_i mod 3 ≠ 0,
// i.e. Ham(G) = 1 - IPmod3(x,y). Exhaustive check for small n.
func TestLemmaC3Exhaustive(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for xm := 0; xm < 1<<n; xm++ {
			for ym := 0; ym < 1<<n; ym++ {
				x := make([]int, n)
				y := make([]int, n)
				for i := 0; i < n; i++ {
					x[i] = (xm >> i) & 1
					y[i] = (ym >> i) & 1
				}
				red, err := IPMod3ToHam(x, y)
				if err != nil {
					t.Fatal(err)
				}
				ip, err := IPMod3Value(x, y)
				if err != nil {
					t.Fatal(err)
				}
				wantHam := ip == 0
				if red.IsHamiltonian() != wantHam {
					t.Fatalf("n=%d x=%v y=%v: IsHamiltonian=%v, want %v", n, x, y, red.IsHamiltonian(), wantHam)
				}
				// When not Hamiltonian the construction has exactly 3 cycles.
				if !wantHam && red.CycleCount() != 3 {
					t.Fatalf("n=%d x=%v y=%v: cycle count %d, want 3", n, x, y, red.CycleCount())
				}
				if wantHam && red.CycleCount() != 1 {
					t.Fatalf("n=%d x=%v y=%v: cycle count %d, want 1", n, x, y, red.CycleCount())
				}
			}
		}
	}
}

// Property-based version of Lemma C.3 for larger random instances.
func TestQuickLemmaC3Random(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x, y := randomBits(n, rng), randomBits(n, rng)
		red, err := IPMod3ToHam(x, y)
		if err != nil {
			return false
		}
		ip, err := IPMod3Value(x, y)
		if err != nil {
			return false
		}
		return red.IsHamiltonian() == (ip == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEqGadgetBehaviour(t *testing.T) {
	// AND = 0 cases route straight through; AND = 1 performs a U-turn.
	for xe := 0; xe <= 1; xe++ {
		for ye := 0; ye <= 1; ye++ {
			b, err := EqGadgetInspect(xe, ye)
			if err != nil {
				t.Fatal(err)
			}
			wantUTurn := xe == 1 && ye == 1
			if b.UTurn != wantUTurn {
				t.Fatalf("(x,y)=(%d,%d): UTurn=%v, want %v", xe, ye, b.UTurn, wantUTurn)
			}
			if b.Straight == wantUTurn {
				t.Fatalf("(x,y)=(%d,%d): Straight=%v inconsistent", xe, ye, b.Straight)
			}
		}
	}
}

func TestEqualityHelpers(t *testing.T) {
	d, err := HammingDistance([]int{1, 0, 1, 1}, []int{0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("HammingDistance = %d, want 2", d)
	}
	v, err := EqualityValue([]int{1, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("EqualityValue = %d, want 1", v)
	}
	v, err = EqualityValue([]int{1, 0}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("EqualityValue = %d, want 0", v)
	}
}

// The key structural property of the Figure 7 reduction: x = y gives a
// Hamiltonian cycle; Δ(x,y) = δ ≥ 1 gives exactly δ disjoint cycles.
func TestEqReductionCycleStructureExhaustive(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for xm := 0; xm < 1<<n; xm++ {
			for ym := 0; ym < 1<<n; ym++ {
				x := make([]int, n)
				y := make([]int, n)
				for i := 0; i < n; i++ {
					x[i] = (xm >> i) & 1
					y[i] = (ym >> i) & 1
				}
				red, err := EqToGapHam(x, y)
				if err != nil {
					t.Fatal(err)
				}
				delta, err := HammingDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if delta == 0 {
					if !red.IsHamiltonian() {
						t.Fatalf("n=%d x=y=%v: expected Hamiltonian cycle, got %d cycles", n, x, red.CycleCount())
					}
					continue
				}
				// Δ ≥ 1: exactly Δ disjoint cycles. The single cycle of the
				// Δ = 1 case still covers every vertex (which is exactly why
				// this construction only serves the gap problem); for Δ ≥ 2
				// the graph cannot be a Hamiltonian cycle.
				if got := red.CycleCount(); got != delta {
					t.Fatalf("n=%d x=%v y=%v: cycles=%d, want Δ=%d", n, x, y, got, delta)
				}
				if delta >= 2 && red.IsHamiltonian() {
					t.Fatalf("n=%d x=%v y=%v: should not be Hamiltonian with Δ=%d", n, x, y, delta)
				}
				if delta == 1 && !red.IsHamiltonian() {
					t.Fatalf("n=%d x=%v y=%v: Δ=1 single cycle should cover all vertices", n, x, y)
				}
			}
		}
	}
}

func TestEqReductionMatchingsAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(40)
		x, y := randomBits(n, rng), randomBits(n, rng)
		red, err := EqToGapHam(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !red.CarolIsPerfectMatching() || !red.DavidIsPerfectMatching() {
			t.Fatalf("n=%d: player edge sets are not perfect matchings", n)
		}
		if red.NumNodes() != 2*n*NodesPerEqPosition {
			t.Fatalf("n=%d: nodes=%d, want %d", n, red.NumNodes(), 2*n*NodesPerEqPosition)
		}
		if red.Gadgets != 2*n {
			t.Fatalf("n=%d: gadgets=%d, want %d", n, red.Gadgets, 2*n)
		}
	}
}

// Property: the cycle count of the equality reduction equals the Hamming
// distance for random inputs (and 1 when the strings are equal), which is
// what makes the reduction work for the gap version: Δ(x,y) > βn implies the
// graph is more than βn-far from being a Hamiltonian cycle.
func TestQuickEqReductionCycleCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		x := randomBits(n, rng)
		y := make([]int, n)
		copy(y, x)
		// Flip a random subset to control Δ exactly.
		delta := rng.Intn(n + 1)
		perm := rng.Perm(n)
		for i := 0; i < delta; i++ {
			y[perm[i]] ^= 1
		}
		red, err := EqToGapHam(x, y)
		if err != nil {
			return false
		}
		if delta <= 1 {
			return red.IsHamiltonian()
		}
		return red.CycleCount() == delta && !red.IsHamiltonian()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionGraphIsTwoRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(20)
		ip, err := IPMod3ToHam(randomBits(n, rng), randomBits(n, rng))
		if err != nil {
			t.Fatal(err)
		}
		eq, err := EqToGapHam(randomBits(n, rng), randomBits(n, rng))
		if err != nil {
			t.Fatal(err)
		}
		for _, red := range []*Reduction{ip, eq} {
			for v := 0; v < red.Graph.N(); v++ {
				if red.Graph.Degree(v) != 2 {
					t.Fatalf("vertex %d has degree %d, want 2", v, red.Graph.Degree(v))
				}
			}
		}
	}
}
