// Package gadgets implements the gadget-based reductions of Section 7 of the
// paper (Theorem 3.4): from Inner Product mod 3 to Hamiltonian-cycle
// verification, and from Gap Equality to Gap Hamiltonian-cycle verification.
//
// Both reductions build a graph G out of n chained gadgets. Carol's edges
// depend only on her string x and David's edges only on his string y, and
// each player's edge set is a perfect matching of V(G) — exactly the
// restricted form of the server-model Ham problem (Definition 3.3) that the
// Quantum Simulation Theorem needs.
//
// The three-track gadget realises Observation 7.1: within gadget i the graph
// consists of three vertex-disjoint paths connecting the left boundary
// triple to the right boundary triple, shifted by x_i·y_i (mod 3). Chaining
// the gadgets and identifying the two ends (Figure 6/12) makes the whole
// graph a single Hamiltonian cycle exactly when Σ x_i·y_i mod 3 ≠ 0
// (Lemma C.3), i.e. Ham(G) = ¬ IPmod3(x, y).
//
// The concrete internal wiring differs from the figures in the paper (which
// are only drawings); what is reproduced — and verified by the tests — is
// the full set of structural statements the proof relies on: Observation 7.1,
// Lemma 7.2, Lemma C.3, the perfect-matching property, and the δ-cycle
// structure of the Gap-Equality gadget (Figure 7).
package gadgets

import (
	"errors"
	"fmt"

	"qdc/internal/graph"
)

// Errors returned by the reduction builders.
var (
	// ErrBadBit reports an input symbol outside {0,1}.
	ErrBadBit = errors.New("gadgets: input bits must be 0 or 1")
	// ErrLengthMismatch reports input strings of different lengths.
	ErrLengthMismatch = errors.New("gadgets: input strings must have equal, positive length")
)

// tracksIP is the number of parallel tracks in the IPmod3 construction.
const tracksIP = 3

// layersIP is the number of internal node layers per gadget (a, b, c).
const layersIP = 3

// NodesPerIPGadget is the number of vertices contributed by each IPmod3
// gadget: one boundary triple plus three internal triples (the next
// gadget's boundary is shared, and the last gadget wraps onto the first).
const NodesPerIPGadget = tracksIP * (1 + layersIP)

// Reduction is the output of a gadget reduction: the constructed graph and
// the two players' edge sets.
type Reduction struct {
	// Graph is G = (V, CarolEdges ∪ DavidEdges).
	Graph *graph.Graph
	// CarolEdges are the edges determined by x (Carol/Alice's matching).
	CarolEdges *graph.EdgeSet
	// DavidEdges are the edges determined by y (David/Bob's matching).
	DavidEdges *graph.EdgeSet
	// Gadgets is the number of gadgets chained together.
	Gadgets int
}

// NumNodes returns the number of vertices of the constructed graph.
func (r *Reduction) NumNodes() int { return r.Graph.N() }

// IsHamiltonian reports whether the constructed graph is a Hamiltonian cycle.
func (r *Reduction) IsHamiltonian() bool { return r.Graph.IsHamiltonianCycle() }

// CycleCount returns the number of disjoint cycles the construction
// decomposes into (every vertex has degree 2, so the graph is a disjoint
// union of cycles).
func (r *Reduction) CycleCount() int {
	_, comps := r.Graph.ConnectedComponents()
	return comps
}

// CarolIsPerfectMatching reports whether Carol's edge set is a perfect
// matching of the constructed graph (every vertex incident to exactly one
// Carol edge), as required by Definition 3.3.
func (r *Reduction) CarolIsPerfectMatching() bool {
	return isPerfectMatching(r.Graph.N(), r.CarolEdges)
}

// DavidIsPerfectMatching reports whether David's edge set is a perfect
// matching of the constructed graph.
func (r *Reduction) DavidIsPerfectMatching() bool {
	return isPerfectMatching(r.Graph.N(), r.DavidEdges)
}

func isPerfectMatching(n int, s *graph.EdgeSet) bool {
	deg := make([]int, n)
	for _, p := range s.Pairs() {
		deg[p[0]]++
		deg[p[1]]++
	}
	for _, d := range deg {
		if d != 1 {
			return false
		}
	}
	return true
}

// IPMod3Value returns the value of the IPmod3 function as defined in
// Section 6: 1 if Σ x_i·y_i ≡ 0 (mod 3) and 0 otherwise.
func IPMod3Value(x, y []int) (int, error) {
	if err := checkBits(x, y); err != nil {
		return 0, err
	}
	sum := 0
	for i := range x {
		sum += x[i] * y[i]
	}
	if sum%3 == 0 {
		return 1, nil
	}
	return 0, nil
}

func checkBits(x, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("%w: |x|=%d |y|=%d", ErrLengthMismatch, len(x), len(y))
	}
	for i := range x {
		if x[i] != 0 && x[i] != 1 || y[i] != 0 && y[i] != 1 {
			return fmt.Errorf("%w: position %d", ErrBadBit, i)
		}
	}
	return nil
}

// sigma and phi are the two transpositions of S3 whose commutator-style
// product (φσ)² is the 3-cycle j ↦ j+1; applying σ on Carol's layers and φ
// on David's layers makes the gadget's track permutation equal to
// shift^(x_i·y_i), which is Observation 7.1.
func sigma(j int) int { // (0 1)
	switch j {
	case 0:
		return 1
	case 1:
		return 0
	default:
		return 2
	}
}

func phi(j int) int { // (1 2)
	switch j {
	case 1:
		return 2
	case 2:
		return 1
	default:
		return 0
	}
}

func permPow(p func(int) int, exp int) func(int) int {
	if exp%2 == 0 {
		return func(j int) int { return j }
	}
	return p
}

// ipLayout gives deterministic vertex indices for the IPmod3 construction.
//
// Gadget i (0-based) owns the boundary triple to its *left* with indices
// base(i)..base(i)+2 and three internal triples a, b, c. The right boundary
// of gadget i is the left boundary of gadget i+1; gadget n-1's right
// boundary wraps onto gadget 0's left boundary (v_0^j = v_n^j in the
// paper's notation).
type ipLayout struct{ n int }

func (l ipLayout) base(i int) int     { return i * NodesPerIPGadget }
func (l ipLayout) left(i, j int) int  { return l.base(i) + j }
func (l ipLayout) a(i, j int) int     { return l.base(i) + tracksIP + j }
func (l ipLayout) b(i, j int) int     { return l.base(i) + 2*tracksIP + j }
func (l ipLayout) c(i, j int) int     { return l.base(i) + 3*tracksIP + j }
func (l ipLayout) right(i, j int) int { return l.left((i+1)%l.n, j) }
func (l ipLayout) total() int         { return l.n * NodesPerIPGadget }

// IPMod3ToHam builds the reduction from IPmod3_n to Ham_{12n} (Theorem 3.4,
// Section 7). Carol's edges depend only on x and David's only on y; each is
// a perfect matching; and the resulting graph is a Hamiltonian cycle if and
// only if Σ x_i·y_i mod 3 ≠ 0, i.e. if and only if IPmod3(x,y) = 0.
func IPMod3ToHam(x, y []int) (*Reduction, error) {
	if err := checkBits(x, y); err != nil {
		return nil, err
	}
	n := len(x)
	layout := ipLayout{n: n}
	g := graph.New(layout.total())
	carol := graph.NewEdgeSet()
	david := graph.NewEdgeSet()

	addCarol := func(u, v int) {
		carol.Add(u, v)
		g.MustAddEdge(u, v, 1)
	}
	addDavid := func(u, v int) {
		david.Add(u, v)
		g.MustAddEdge(u, v, 1)
	}

	for i := 0; i < n; i++ {
		carolPerm := permPow(sigma, x[i])
		davidPerm := permPow(phi, y[i])
		for j := 0; j < tracksIP; j++ {
			// Carol's layers: left boundary -> a, and b -> c.
			addCarol(layout.left(i, j), layout.a(i, carolPerm(j)))
			addCarol(layout.b(i, j), layout.c(i, carolPerm(j)))
			// David's layers: a -> b, and c -> right boundary.
			addDavid(layout.a(i, j), layout.b(i, davidPerm(j)))
			addDavid(layout.c(i, j), layout.right(i, davidPerm(j)))
		}
	}
	return &Reduction{Graph: g, CarolEdges: carol, DavidEdges: david, Gadgets: n}, nil
}

// IPGadgetTrackPermutation returns, for a single gadget with input bits
// (xi, yi), the permutation mapping a left-boundary track index j to the
// right-boundary track index it is connected to — the content of
// Observation 7.1. The expected value is (j + xi·yi) mod 3.
func IPGadgetTrackPermutation(xi, yi int) ([3]int, error) {
	if xi != 0 && xi != 1 || yi != 0 && yi != 1 {
		return [3]int{}, fmt.Errorf("%w: (%d,%d)", ErrBadBit, xi, yi)
	}
	// Follow the three paths of a single gadget built without the
	// wrap-around identification.
	return ipGadgetPermutationUnwrapped(xi, yi)
}

// ipGadgetPermutationUnwrapped rebuilds one gadget without the wrap-around
// identification and follows its three paths.
func ipGadgetPermutationUnwrapped(xi, yi int) ([3]int, error) {
	// Vertices: left 0..2, a 3..5, b 6..8, c 9..11, right 12..14.
	g := graph.New(15)
	carolPerm := permPow(sigma, xi)
	davidPerm := permPow(phi, yi)
	for j := 0; j < tracksIP; j++ {
		g.MustAddEdge(j, 3+carolPerm(j), 1)
		g.MustAddEdge(6+j, 9+carolPerm(j), 1)
		g.MustAddEdge(3+j, 6+davidPerm(j), 1)
		g.MustAddEdge(9+j, 12+davidPerm(j), 1)
	}
	var out [3]int
	for j := 0; j < tracksIP; j++ {
		// Walk from left node j until reaching a right node.
		prev, cur := -1, j
		for cur < 12 {
			next := -1
			for _, w := range g.Neighbors(cur) {
				if w != prev {
					next = w
					break
				}
			}
			if next == -1 {
				return out, fmt.Errorf("gadgets: path from track %d dead-ends at %d", j, cur)
			}
			prev, cur = cur, next
		}
		out[j] = cur - 12
	}
	return out, nil
}
