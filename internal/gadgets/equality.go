package gadgets

import (
	"fmt"

	"qdc/internal/graph"
)

// The Gap-Equality → Gap-Ham reduction (the role of Figure 7 in the paper).
//
// Each input bit position i of the n-bit strings x, y is first re-encoded as
// two positions of an "AND instance": position 2i carries (x_i, ¬y_i) and
// position 2i+1 carries (¬x_i, y_i), so that exactly one of the two encoded
// positions has both bits equal to 1 precisely when x_i ≠ y_i. The Hamming
// distance Δ(x, y) therefore equals the number of encoded positions whose
// AND is 1.
//
// Each encoded position becomes a two-track gadget with four internal
// vertices. When the position's AND is 0 the gadget routes its two tracks
// straight through (possibly crossing them); when the AND is 1 the gadget
// performs a U-turn on both of its sides, cutting the chain. Chaining the
// 2n gadgets into a ring therefore yields:
//
//   - x = y  ⇒ the whole graph is one Hamiltonian cycle;
//   - Δ(x,y) = δ ≥ 1 ⇒ the graph is a disjoint union of exactly δ cycles
//     (for δ = 1 that single cycle still covers every vertex), so for
//     δ ≥ 2 the graph is Ω(δ)-far from being a Hamiltonian cycle.
//
// This is precisely the behaviour the paper states for its Figure 7 gadget
// ("if x_{i_j} ≠ y_{i_j} ... then G consists of δ cycles"), and it is why
// the reduction serves the *gap* problem: the promise Δ(x,y) > βn rules out
// the small-δ region where the cycle count does not certify inequality.
// Both players' edge sets are perfect matchings, as Definition 3.3 requires.

// tracksEq is the number of parallel tracks in the equality construction.
const tracksEq = 2

// internalEq is the number of internal vertices per equality gadget.
const internalEq = 4

// NodesPerEqPosition is the number of vertices contributed per encoded
// position (one boundary pair plus four internal vertices); each original
// input bit contributes two encoded positions.
const NodesPerEqPosition = tracksEq + internalEq

// HammingDistance returns Δ(x, y) = |{i : x_i ≠ y_i}|.
func HammingDistance(x, y []int) (int, error) {
	if err := checkBits(x, y); err != nil {
		return 0, err
	}
	d := 0
	for i := range x {
		if x[i] != y[i] {
			d++
		}
	}
	return d, nil
}

// EqualityValue returns 1 if x = y and 0 otherwise (the Eq_n function).
func EqualityValue(x, y []int) (int, error) {
	d, err := HammingDistance(x, y)
	if err != nil {
		return 0, err
	}
	if d == 0 {
		return 1, nil
	}
	return 0, nil
}

// eqLayout assigns vertex indices for the equality construction: m encoded
// positions, each owning its left boundary pair and four internal vertices;
// the ring wraps the last position's right boundary onto position 0's left
// boundary.
//
// When x = y every original input position contributes exactly one
// track-crossing gadget, so the two tracks close into a single Hamiltonian
// cycle exactly when the total number of crossings around the ring is odd.
// crossClosure compensates for the parity of that count (it is set when the
// original input length n is even), so that the x = y case is a Hamiltonian
// cycle for every n. The closure is part of the construction — it depends
// only on n, never on the inputs.
type eqLayout struct {
	m            int
	crossClosure bool
}

func (l eqLayout) base(i int) int        { return i * NodesPerEqPosition }
func (l eqLayout) left(i, j int) int     { return l.base(i) + j }
func (l eqLayout) internal(i, k int) int { return l.base(i) + tracksEq + k } // k in 1..4 -> +0..3
func (l eqLayout) total() int            { return l.m * NodesPerEqPosition }

func (l eqLayout) right(i, j int) int {
	if i == l.m-1 && l.crossClosure {
		return l.left(0, 1-j)
	}
	return l.left((i+1)%l.m, j)
}

// EqToGapHam builds the reduction from (Gap-)Equality on n-bit strings to
// (Gap-)Hamiltonian-cycle verification on a graph with 12n vertices.
func EqToGapHam(x, y []int) (*Reduction, error) {
	if err := checkBits(x, y); err != nil {
		return nil, err
	}
	n := len(x)
	// Encoded AND-instance: 2n positions.
	xe := make([]int, 0, 2*n)
	ye := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		xe = append(xe, x[i], 1-x[i])
		ye = append(ye, 1-y[i], y[i])
	}
	m := 2 * n
	layout := eqLayout{m: m, crossClosure: n%2 == 0}
	g := graph.New(layout.total())
	carol := graph.NewEdgeSet()
	david := graph.NewEdgeSet()

	addCarol := func(u, v int) {
		carol.Add(u, v)
		g.MustAddEdge(u, v, 1)
	}
	addDavid := func(u, v int) {
		david.Add(u, v)
		g.MustAddEdge(u, v, 1)
	}

	for i := 0; i < m; i++ {
		l0, l1 := layout.left(i, 0), layout.left(i, 1)
		r0, r1 := layout.right(i, 0), layout.right(i, 1)
		// Internal vertices 1..4 of this gadget.
		in := func(k int) int { return layout.internal(i, k-1) }

		// Carol's matching covers {L0, L1, 1, 2, 3, 4}.
		if xe[i] == 0 {
			addCarol(l0, in(1))
			addCarol(in(2), in(3))
			addCarol(l1, in(4))
		} else {
			addCarol(l0, in(2))
			addCarol(in(1), in(3))
			addCarol(l1, in(4))
		}
		// David's matching covers {1, 2, 3, 4, R0, R1}.
		if ye[i] == 0 {
			addDavid(in(1), in(2))
			addDavid(in(3), r0)
			addDavid(in(4), r1)
		} else {
			addDavid(in(2), in(4))
			addDavid(in(1), r1)
			addDavid(r0, in(3))
		}
	}
	return &Reduction{Graph: g, CarolEdges: carol, DavidEdges: david, Gadgets: m}, nil
}

// EqGadgetBehaviour describes a single encoded-position gadget in isolation.
type EqGadgetBehaviour struct {
	// Straight reports that the gadget connects its left boundary pair to
	// its right boundary pair by two vertex-disjoint paths (the AND-0 case).
	Straight bool
	// UTurn reports that the gadget connects L0 to L1 and R0 to R1 (the
	// AND-1 case), cutting the chain.
	UTurn bool
}

// EqGadgetInspect builds one encoded-position gadget in isolation (without
// the ring closure) for bit pair (xe, ye) and classifies its routing.
func EqGadgetInspect(xe, ye int) (*EqGadgetBehaviour, error) {
	if xe != 0 && xe != 1 || ye != 0 && ye != 1 {
		return nil, fmt.Errorf("%w: (%d,%d)", ErrBadBit, xe, ye)
	}
	// Vertices: L0=0, L1=1, internals 2..5, R0=6, R1=7.
	g := graph.New(8)
	in := func(k int) int { return 1 + k } // k=1..4 -> 2..5
	l0, l1, r0, r1 := 0, 1, 6, 7
	if xe == 0 {
		g.MustAddEdge(l0, in(1), 1)
		g.MustAddEdge(in(2), in(3), 1)
		g.MustAddEdge(l1, in(4), 1)
	} else {
		g.MustAddEdge(l0, in(2), 1)
		g.MustAddEdge(in(1), in(3), 1)
		g.MustAddEdge(l1, in(4), 1)
	}
	if ye == 0 {
		g.MustAddEdge(in(1), in(2), 1)
		g.MustAddEdge(in(3), r0, 1)
		g.MustAddEdge(in(4), r1, 1)
	} else {
		g.MustAddEdge(in(2), in(4), 1)
		g.MustAddEdge(in(1), r1, 1)
		g.MustAddEdge(r0, in(3), 1)
	}
	b := &EqGadgetBehaviour{
		Straight: g.STConnected(l0, r0) || g.STConnected(l0, r1),
		UTurn:    g.STConnected(l0, l1) && g.STConnected(r0, r1),
	}
	// Consistency: every internal vertex must lie on one of the paths.
	for k := 1; k <= 4; k++ {
		if g.Degree(in(k)) != 2 {
			return nil, fmt.Errorf("gadgets: internal vertex %d has degree %d", k, g.Degree(in(k)))
		}
	}
	return b, nil
}
