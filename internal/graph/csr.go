package graph

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// CSR is the compressed-sparse-row form of a simple undirected weighted
// graph: three flat tables instead of per-vertex adjacency lists. Vertex v's
// incident edges are targets[offsets[v]:offsets[v+1]] (neighbour IDs in
// ascending order) with parallel weights in the same index range. It is the
// topology representation of the million-node path: a Builder constructs it
// directly from an edge stream in two counting passes, so no intermediate
// adjacency structure is ever materialised, and the congest simulator's
// IndexedTopology fast path reads the tables in place.
//
// CSR is immutable after construction and safe for concurrent readers.
type CSR struct {
	n       int
	offsets []int64
	targets []int32
	weights []float64
	// slowNeighbors counts calls to the allocating Neighbors method — the
	// generic congest.Topology path a CSR exists to avoid. Tests assert it
	// stays zero on streaming runs (see SlowNeighborCalls).
	slowNeighbors atomic.Int64
}

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// M returns the number of undirected edges.
func (c *CSR) M() int { return len(c.targets) / 2 }

// Degree returns the degree of vertex v.
func (c *CSR) Degree(v int) int {
	if v < 0 || v >= c.n {
		return 0
	}
	return int(c.offsets[v+1] - c.offsets[v])
}

// Neighbor returns the i-th neighbour of v in ascending-ID order and the
// weight of the connecting edge, 0 <= i < Degree(v). Together with Degree it
// implements the congest simulator's zero-alloc IndexedTopology fast path.
func (c *CSR) Neighbor(v, i int) (int, float64) {
	j := c.offsets[v] + int64(i)
	return int(c.targets[j]), c.weights[j]
}

// Neighbors returns the neighbours of v in ascending order as a fresh slice.
// This is the generic (allocating) congest.Topology method; CSR consumers
// are expected to stay on Degree/Neighbor, so every call is counted and
// tests assert the count stays zero on streaming runs.
func (c *CSR) Neighbors(v int) []int {
	c.slowNeighbors.Add(1)
	if v < 0 || v >= c.n {
		return nil
	}
	lo, hi := c.offsets[v], c.offsets[v+1]
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = int(c.targets[lo+int64(i)])
	}
	return out
}

// SlowNeighborCalls returns how many times the allocating Neighbors method
// has been called on this CSR — the builder-stats counter the n=1M smoke
// test asserts is zero, proving the run never left the flat tables.
func (c *CSR) SlowNeighborCalls() int64 { return c.slowNeighbors.Load() }

// Weight returns the weight of edge {u,v} and whether it exists.
func (c *CSR) Weight(u, v int) (float64, bool) {
	if u < 0 || u >= c.n || v < 0 || v >= c.n {
		return 0, false
	}
	lo, hi := c.offsets[u], c.offsets[u+1]
	if hi-lo > 16 {
		// Binary search the sorted bucket.
		i := lo + int64(sort.Search(int(hi-lo), func(i int) bool {
			return c.targets[lo+int64(i)] >= int32(v)
		}))
		if i < hi && c.targets[i] == int32(v) {
			return c.weights[i], true
		}
		return 0, false
	}
	for i := lo; i < hi; i++ {
		if c.targets[i] == int32(v) {
			return c.weights[i], true
		}
	}
	return 0, false
}

// BFSDist returns the hop distance from src to every vertex (-1 when
// unreachable) straight off the flat tables: the reference computation the
// flood scenarios compare against without materialising a Graph.
func (c *CSR) BFSDist(src int) []int {
	dist := make([]int, c.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= c.n {
		return dist
	}
	queue := make([]int32, 0, c.n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := int64(queue[head])
		d := dist[v] + 1
		for i := c.offsets[v]; i < c.offsets[v+1]; i++ {
			u := c.targets[i]
			if dist[u] < 0 {
				dist[u] = d
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Builder accumulates an edge stream and constructs the CSR tables in two
// counting passes over flat arrays. Generators emit (u,v,w) edges into it —
// directly, or via the Emit* streaming generators — and Finish produces the
// canonical CSR whatever the emission order, so the result is byte-identical
// to converting the equivalent map-built Graph (see FromGraph and the
// equivalence tests).
//
// Validation mirrors Graph.AddEdge: endpoints in range, no self loops,
// positive finite weights. Parallel edges are the one check that moves to
// Finish — detecting them at AddEdge time is exactly what would require the
// adjacency structure the Builder exists to avoid.
type Builder struct {
	n  int
	us []int32
	vs []int32
	ws []float64
}

// NewBuilder returns an empty builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// M returns the number of edges emitted so far.
func (b *Builder) M() int { return len(b.us) }

// AddEdge appends the undirected edge {u,v} with the given weight to the
// stream. Duplicate edges are detected by Finish, not here.
func (b *Builder) AddEdge(u, v int, weight float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexOutOfRange, u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("%w: got %g", ErrNonPositiveWeight, weight)
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.ws = append(b.ws, weight)
	return nil
}

// MustAddEdge appends an edge and panics on error, for deterministic
// constructions where failure is a programming bug. It satisfies
// EdgeEmitter, so streaming generators plug straight in.
func (b *Builder) MustAddEdge(u, v int, weight float64) {
	if err := b.AddEdge(u, v, weight); err != nil {
		panic(err)
	}
}

// Finish constructs the CSR from the accumulated stream: one counting pass
// to size each vertex's bucket, a prefix sum, and one scatter pass, then a
// per-bucket sort into ascending neighbour order (already-sorted buckets —
// the common case for the deterministic generator families — are detected
// and skipped). A duplicate edge surfaces here as ErrParallelEdge. The
// builder may be reused or discarded afterwards; the CSR shares no state
// with it.
func (b *Builder) Finish() (*CSR, error) {
	n := b.n
	c := &CSR{n: n, offsets: make([]int64, n+1)}
	for i := range b.us {
		c.offsets[b.us[i]+1]++
		c.offsets[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		c.offsets[v+1] += c.offsets[v]
	}
	half := len(b.us)
	c.targets = make([]int32, 2*half)
	c.weights = make([]float64, 2*half)
	cursor := make([]int64, n)
	copy(cursor, c.offsets[:n])
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		c.targets[cursor[u]] = v
		c.weights[cursor[u]] = w
		cursor[u]++
		c.targets[cursor[v]] = u
		c.weights[cursor[v]] = w
		cursor[v]++
	}
	for v := 0; v < n; v++ {
		lo, hi := c.offsets[v], c.offsets[v+1]
		bucket := csrBucket{t: c.targets[lo:hi], w: c.weights[lo:hi]}
		if !sort.IsSorted(bucket) {
			sort.Sort(bucket)
		}
		for i := 1; i < len(bucket.t); i++ {
			if bucket.t[i] == bucket.t[i-1] {
				a, z := v, int(bucket.t[i])
				if a > z {
					a, z = z, a
				}
				return nil, fmt.Errorf("%w: (%d,%d)", ErrParallelEdge, a, z)
			}
		}
	}
	return c, nil
}

// csrBucket sorts one vertex's targets with its weights carried along.
type csrBucket struct {
	t []int32
	w []float64
}

func (s csrBucket) Len() int           { return len(s.t) }
func (s csrBucket) Less(i, j int) bool { return s.t[i] < s.t[j] }
func (s csrBucket) Swap(i, j int) {
	s.t[i], s.t[j] = s.t[j], s.t[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// FromGraph converts a map-built Graph to its CSR form through the same
// Finish pass the streaming path uses, so both construction routes yield
// byte-identical tables for the same edge set.
func FromGraph(g *Graph) *CSR {
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.MustAddEdge(e.U, e.V, e.Weight)
	}
	c, err := b.Finish()
	if err != nil {
		// g is simple by construction; a duplicate here is impossible.
		panic(err)
	}
	return c
}
