package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It is used by the Kruskal reference MST, by the fragment
// bookkeeping of the distributed MST algorithms, and by cycle counting in
// the gadget verifiers.
type UnionFind struct {
	parent []int
	rank   []int
	comps  int
}

// NewUnionFind returns a union-find structure over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		comps:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y. It returns true if the sets
// were distinct (i.e. a merge actually happened).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.comps--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Components returns the current number of disjoint sets.
func (uf *UnionFind) Components() int { return uf.comps }
