package graph

import "sort"

// edgeKey is a canonical (u<v) key for an undirected edge.
type edgeKey struct{ u, v int }

func keyOf(u, v int) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// EdgeSet is a set of undirected edges identified by their endpoints.
// It is the representation used for "subnetwork M of N" inputs to the
// verification problems of Section 2.2: each node of the distributed network
// knows which of its incident edges belong to M, and the union of that
// knowledge is an EdgeSet.
//
// The zero value is not usable; construct with NewEdgeSet.
type EdgeSet struct {
	members map[edgeKey]struct{}
}

// NewEdgeSet returns an empty edge set.
func NewEdgeSet() *EdgeSet {
	return &EdgeSet{members: make(map[edgeKey]struct{})}
}

// NewEdgeSetFrom returns an edge set containing the given edges.
func NewEdgeSetFrom(edges []Edge) *EdgeSet {
	s := NewEdgeSet()
	for _, e := range edges {
		s.Add(e.U, e.V)
	}
	return s
}

// Add inserts the edge {u,v}.
func (s *EdgeSet) Add(u, v int) { s.members[keyOf(u, v)] = struct{}{} }

// Remove deletes the edge {u,v} if present.
func (s *EdgeSet) Remove(u, v int) { delete(s.members, keyOf(u, v)) }

// Contains reports whether {u,v} is in the set.
func (s *EdgeSet) Contains(u, v int) bool {
	_, ok := s.members[keyOf(u, v)]
	return ok
}

// Len returns the number of edges in the set.
func (s *EdgeSet) Len() int { return len(s.members) }

// Pairs returns the edges as (u,v) pairs with u < v, sorted.
func (s *EdgeSet) Pairs() [][2]int {
	out := make([][2]int, 0, len(s.members))
	for k := range s.members {
		out = append(out, [2]int{k.u, k.v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of the set.
func (s *EdgeSet) Clone() *EdgeSet {
	out := NewEdgeSet()
	for k := range s.members {
		out.members[k] = struct{}{}
	}
	return out
}

// Union adds every edge of other to s and returns s.
func (s *EdgeSet) Union(other *EdgeSet) *EdgeSet {
	for k := range other.members {
		s.members[k] = struct{}{}
	}
	return s
}

// Subgraph returns the subgraph of g induced by the edges of s that exist
// in g, preserving weights. Vertices are shared with g (same indices).
func (s *EdgeSet) Subgraph(g *Graph) *Graph {
	out := New(g.N())
	for _, e := range g.Edges() {
		if s.Contains(e.U, e.V) {
			out.MustAddEdge(e.U, e.V, e.Weight)
		}
	}
	return out
}

// SubgraphOf builds the subgraph of g whose edge set is exactly those edges
// of g selected by keep. It is a convenience wrapper used by generators.
func SubgraphOf(g *Graph, keep func(Edge) bool) *Graph {
	out := New(g.N())
	for _, e := range g.Edges() {
		if keep(e) {
			out.MustAddEdge(e.U, e.V, e.Weight)
		}
	}
	return out
}
