package graph

import (
	"math"
	"sort"
)

// BFSResult holds the outcome of a breadth-first search from a source.
type BFSResult struct {
	Source int
	// Dist[v] is the hop distance from Source to v, or -1 if unreachable.
	Dist []int
	// Parent[v] is the BFS-tree parent of v, or -1 for the source and for
	// unreachable vertices.
	Parent []int
	// Order lists reachable vertices in non-decreasing distance order.
	Order []int
}

// BFS runs a breadth-first search from src over hop distances (weights are
// ignored). It panics only if src is out of range via index bounds.
func (g *Graph) BFS(src int) BFSResult {
	res := BFSResult{
		Source: src,
		Dist:   make([]int, g.n),
		Parent: make([]int, g.n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
	}
	res.Dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, u)
		for _, w := range g.Neighbors(u) {
			if res.Dist[w] == -1 {
				res.Dist[w] = res.Dist[u] + 1
				res.Parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	return res
}

// Eccentricity returns the maximum hop distance from v to any reachable
// vertex. It returns -1 if v is out of range.
func (g *Graph) Eccentricity(v int) int {
	if v < 0 || v >= g.n {
		return -1
	}
	res := g.BFS(v)
	ecc := 0
	for _, d := range res.Dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the hop diameter of the graph (the maximum eccentricity
// over all vertices). It returns -1 for a disconnected or empty graph.
// This is an exact O(n·(n+m)) computation intended for test-sized graphs.
func (g *Graph) Diameter() int {
	if g.n == 0 || !g.IsConnected() {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterLowerBoundFrom returns the eccentricity of v, which is a lower
// bound for the diameter, and is within a factor 2 of it on connected
// graphs. It is the cheap estimate used on large instances.
func (g *Graph) DiameterLowerBoundFrom(v int) int { return g.Eccentricity(v) }

// ConnectedComponents returns, for each vertex, the index of its connected
// component (components are numbered 0,1,... in order of smallest member),
// together with the number of components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		res := g.BFS(v)
		for _, u := range res.Order {
			comp[u] = count
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected; a graph with isolated vertices is not (unless n<=1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// IsSpanningTree reports whether the graph (interpreted as the subnetwork M)
// is a spanning tree of an n-vertex network: connected with exactly n-1
// edges touching every vertex.
func (g *Graph) IsSpanningTree() bool {
	return g.n > 0 && g.m == g.n-1 && g.IsConnected()
}

// IsHamiltonianCycle reports whether the graph is a single simple cycle
// through all n vertices: every vertex has degree exactly 2, the graph is
// connected, and it has exactly n edges (n >= 3).
func (g *Graph) IsHamiltonianCycle() bool {
	if g.n < 3 || g.m != g.n {
		return false
	}
	for v := 0; v < g.n; v++ {
		if g.Degree(v) != 2 {
			return false
		}
	}
	return g.IsConnected()
}

// IsSimplePath reports whether the graph is a single simple path covering a
// subset of vertices: no cycles, at most two vertices of degree 1, all other
// non-isolated vertices of degree 2, and all non-isolated vertices connected.
func (g *Graph) IsSimplePath() bool {
	deg1, deg2 := 0, 0
	nonIsolated := 0
	for v := 0; v < g.n; v++ {
		switch g.Degree(v) {
		case 0:
		case 1:
			deg1++
			nonIsolated++
		case 2:
			deg2++
			nonIsolated++
		default:
			return false
		}
	}
	if nonIsolated == 0 {
		return true
	}
	if deg1 != 2 {
		return false
	}
	if g.m != nonIsolated-1 {
		return false
	}
	// Connectivity of the non-isolated part: a forest with nonIsolated
	// vertices and nonIsolated-1 edges is connected.
	return !g.HasCycle()
}

// HasCycle reports whether the graph contains any cycle.
func (g *Graph) HasCycle() bool {
	uf := NewUnionFind(g.n)
	for _, e := range g.Edges() {
		if !uf.Union(e.U, e.V) {
			return true
		}
	}
	return false
}

// CountCycles returns the number of connected components that contain at
// least one cycle. For a graph in which every vertex has degree 0 or 2 (the
// shape produced by the union of two perfect matchings, Observation 8.1),
// this equals the number of disjoint cycles.
func (g *Graph) CountCycles() int {
	comp, count := g.ConnectedComponents()
	edges := make([]int, count)
	verts := make([]int, count)
	for v := 0; v < g.n; v++ {
		verts[comp[v]]++
	}
	for _, e := range g.Edges() {
		edges[comp[e.U]]++
	}
	cycles := 0
	for c := 0; c < count; c++ {
		if edges[c] >= verts[c] && verts[c] > 0 {
			cycles++
		}
	}
	return cycles
}

// IsBipartite reports whether the graph is 2-colourable, and returns a valid
// colouring (colour of each vertex in {0,1}) when it is.
func (g *Graph) IsBipartite() (bool, []int) {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if color[w] == -1 {
					color[w] = 1 - color[u]
					queue = append(queue, w)
				} else if color[w] == color[u] {
					return false, nil
				}
			}
		}
	}
	return true, color
}

// STConnected reports whether s and t lie in the same connected component.
func (g *Graph) STConnected(s, t int) bool {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return false
	}
	if s == t {
		return true
	}
	return g.BFS(s).Dist[t] >= 0
}

// IsCutOf reports whether removing the edges of g (interpreted as a
// candidate cut M) from the host graph disconnects the host.
func (g *Graph) IsCutOf(host *Graph) bool {
	remaining := SubgraphOf(host, func(e Edge) bool { return !g.HasEdge(e.U, e.V) })
	return !remaining.IsConnected()
}

// IsSTCutOf reports whether removing the edges of g from host disconnects
// s from t.
func (g *Graph) IsSTCutOf(host *Graph, s, t int) bool {
	remaining := SubgraphOf(host, func(e Edge) bool { return !g.HasEdge(e.U, e.V) })
	return !remaining.STConnected(s, t)
}

// KruskalMST returns a minimum spanning forest of the graph as an edge list
// and its total weight. When the graph is connected, the forest is the MST.
// This is the sequential reference implementation used to validate the
// distributed MST algorithms.
func (g *Graph) KruskalMST() ([]Edge, float64) {
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool { return edges[i].Weight < edges[j].Weight })
	uf := NewUnionFind(g.n)
	var out []Edge
	var total float64
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			out = append(out, e)
			total += e.Weight
		}
	}
	return out, total
}

// WeightedDistances runs Dijkstra from src and returns weighted distances
// (math.Inf(1) for unreachable vertices). It is the sequential reference for
// the distributed shortest-path algorithms.
func (g *Graph) WeightedDistances(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	visited := make([]bool, g.n)
	for {
		u, best := -1, math.Inf(1)
		for v := 0; v < g.n; v++ {
			if !visited[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u == -1 {
			break
		}
		visited[u] = true
		for _, e := range g.adj[u] {
			w := e.Other(u)
			if nd := dist[u] + e.Weight; nd < dist[w] {
				dist[w] = nd
			}
		}
	}
	return dist
}

// MinCutWeightBruteForce computes the exact minimum weight of a global edge
// cut by enumerating all 2^(n-1) vertex bipartitions. It is exponential and
// intended only for validating the distributed approximation on small graphs
// (n <= ~20).
func (g *Graph) MinCutWeightBruteForce() float64 {
	if g.n < 2 {
		return 0
	}
	edges := g.Edges()
	best := math.Inf(1)
	// Vertex 0 is fixed on side 0; enumerate assignments of vertices 1..n-1.
	for mask := 0; mask < 1<<(g.n-1); mask++ {
		side := make([]bool, g.n)
		for v := 1; v < g.n; v++ {
			side[v] = mask&(1<<(v-1)) != 0
		}
		any := false
		for v := 1; v < g.n; v++ {
			if side[v] {
				any = true
				break
			}
		}
		if !any {
			continue // not a cut: all vertices on one side
		}
		var w float64
		for _, e := range edges {
			if side[e.U] != side[e.V] {
				w += e.Weight
			}
		}
		if w < best {
			best = w
		}
	}
	return best
}
