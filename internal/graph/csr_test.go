package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// csrFamilies enumerates every generator family with both construction
// routes: the map-based Graph and the streaming Builder. Random families
// receive separately seeded rngs so the test can prove both routes consume
// the stream identically.
type csrFamily struct {
	name   string
	mapped func(rng *rand.Rand) *Graph
	stream func(b *Builder, rng *rand.Rand)
	n      int
}

func csrFamilies() []csrFamily {
	return []csrFamily{
		{"path", func(*rand.Rand) *Graph { return Path(17) },
			func(b *Builder, _ *rand.Rand) { EmitPath(17, b.MustAddEdge) }, 17},
		{"cycle", func(*rand.Rand) *Graph { g, _ := Cycle(12); return g },
			func(b *Builder, _ *rand.Rand) { EmitCycle(12, b.MustAddEdge) }, 12},
		{"complete", func(*rand.Rand) *Graph { return Complete(9) },
			func(b *Builder, _ *rand.Rand) { EmitComplete(9, b.MustAddEdge) }, 9},
		{"star", func(*rand.Rand) *Graph { return Star(11) },
			func(b *Builder, _ *rand.Rand) { EmitStar(11, b.MustAddEdge) }, 11},
		{"grid", func(*rand.Rand) *Graph { return Grid(4, 5) },
			func(b *Builder, _ *rand.Rand) { EmitGrid(4, 5, b.MustAddEdge) }, 20},
		{"random", func(rng *rand.Rand) *Graph { return RandomGraph(15, 0.3, rng) },
			func(b *Builder, rng *rand.Rand) { EmitRandom(15, 0.3, rng, b.MustAddEdge) }, 15},
		{"random-connected", func(rng *rand.Rand) *Graph { return RandomConnectedGraph(14, 0.2, rng) },
			func(b *Builder, rng *rand.Rand) { EmitRandomConnected(14, 0.2, rng, b.MustAddEdge) }, 14},
		{"tree", func(rng *rand.Rand) *Graph { return RandomSpanningTree(13, rng) },
			func(b *Builder, rng *rand.Rand) { EmitSpanningTree(13, rng, b.MustAddEdge) }, 13},
	}
}

// TestBuilderMatchesMapPath is the streaming-equivalence guarantee: for
// every generator family, the CSR built by streaming edges into a Builder is
// byte-identical (offsets, targets, weights) to the CSR converted from the
// map-built Graph, and the random families leave both rngs in the same
// state, proving identical stream consumption.
func TestBuilderMatchesMapPath(t *testing.T) {
	for _, f := range csrFamilies() {
		t.Run(f.name, func(t *testing.T) {
			rngA := rand.New(rand.NewSource(42))
			rngB := rand.New(rand.NewSource(42))
			g := f.mapped(rngA)
			fromMap := FromGraph(g)
			b := NewBuilder(f.n)
			f.stream(b, rngB)
			streamed, err := b.Finish()
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if !reflect.DeepEqual(fromMap.offsets, streamed.offsets) {
				t.Errorf("offsets differ:\n map: %v\n csr: %v", fromMap.offsets, streamed.offsets)
			}
			if !reflect.DeepEqual(fromMap.targets, streamed.targets) {
				t.Errorf("targets differ:\n map: %v\n csr: %v", fromMap.targets, streamed.targets)
			}
			if !reflect.DeepEqual(fromMap.weights, streamed.weights) {
				t.Errorf("weights differ:\n map: %v\n csr: %v", fromMap.weights, streamed.weights)
			}
			if a, b := rngA.Int63(), rngB.Int63(); a != b {
				t.Errorf("rng streams diverged after generation: %d vs %d", a, b)
			}
		})
	}
}

// TestCSRMatchesGraphSemantics checks the CSR's read methods against the
// Graph they were built from: N/M, degrees, sorted neighbour lists, weights
// (present and absent), the indexed Neighbor accessor and BFS distances.
func TestCSRMatchesGraphSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnectedGraph(23, 0.25, rng)
	c := FromGraph(g)
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatalf("size mismatch: CSR n=%d m=%d, graph n=%d m=%d", c.N(), c.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if c.Degree(v) != g.Degree(v) {
			t.Fatalf("degree(%d): CSR %d, graph %d", v, c.Degree(v), g.Degree(v))
		}
		want := g.Neighbors(v)
		got := c.Neighbors(v)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("neighbors(%d): CSR %v, graph %v", v, got, want)
		}
		for i, u := range want {
			nbr, w := c.Neighbor(v, i)
			if nbr != u {
				t.Fatalf("Neighbor(%d,%d) = %d, want %d", v, i, nbr, u)
			}
			gw, ok := g.Weight(v, u)
			if !ok || w != gw {
				t.Fatalf("weight(%d,%d): CSR %g, graph %g (ok=%v)", v, u, w, gw, ok)
			}
			cw, ok := c.Weight(v, u)
			if !ok || cw != gw {
				t.Fatalf("Weight(%d,%d): CSR %g ok=%v, want %g", v, u, cw, ok, gw)
			}
		}
	}
	if _, ok := c.Weight(0, g.N()); ok {
		t.Error("Weight accepted out-of-range vertex")
	}
	wantDist := g.BFS(0).Dist
	gotDist := c.BFSDist(0)
	if !reflect.DeepEqual(gotDist, wantDist) {
		t.Errorf("BFSDist disagrees with graph BFS")
	}
}

// TestCSRWeightBinarySearch exercises the binary-search branch of Weight
// (degree > 16) with the star centre.
func TestCSRWeightBinarySearch(t *testing.T) {
	c := FromGraph(Star(40))
	for v := 1; v < 40; v++ {
		w, ok := c.Weight(0, v)
		if !ok || w != 1 {
			t.Fatalf("Weight(0,%d) = %g, %v", v, w, ok)
		}
	}
	if _, ok := c.Weight(1, 2); ok {
		t.Error("Weight found a leaf-leaf edge in a star")
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 4, 1); !errors.Is(err, ErrVertexOutOfRange) {
		t.Errorf("out of range: got %v", err)
	}
	if err := b.AddEdge(2, 2, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v", err)
	}
	if err := b.AddEdge(0, 1, 0); !errors.Is(err, ErrNonPositiveWeight) {
		t.Errorf("zero weight: got %v", err)
	}
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 0, 2) // duplicate in reverse orientation
	if _, err := b.Finish(); !errors.Is(err, ErrParallelEdge) {
		t.Errorf("Finish on duplicate edge: got %v", err)
	}
}

func TestBuilderEmpty(t *testing.T) {
	c, err := NewBuilder(3).Finish()
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 || c.M() != 0 || c.Degree(0) != 0 {
		t.Errorf("empty CSR: n=%d m=%d deg0=%d", c.N(), c.M(), c.Degree(0))
	}
	if d := c.BFSDist(1); d[0] != -1 || d[1] != 0 || d[2] != -1 {
		t.Errorf("BFSDist on edgeless CSR: %v", d)
	}
}

// TestCSRSlowNeighborCounter pins the builder-stats counter: Degree/Neighbor
// reads are free, every allocating Neighbors call is counted.
func TestCSRSlowNeighborCounter(t *testing.T) {
	c := FromGraph(Path(5))
	for v := 0; v < 5; v++ {
		c.Degree(v)
		if c.Degree(v) > 0 {
			c.Neighbor(v, 0)
		}
	}
	if got := c.SlowNeighborCalls(); got != 0 {
		t.Fatalf("indexed reads bumped the slow counter: %d", got)
	}
	c.Neighbors(2)
	c.Neighbors(3)
	if got := c.SlowNeighborCalls(); got != 2 {
		t.Fatalf("SlowNeighborCalls = %d, want 2", got)
	}
}
