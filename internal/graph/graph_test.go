package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
	if g.HasEdge(0, 1) {
		t.Fatal("HasEdge(0,1) = true on empty graph")
	}
}

func TestNewNegative(t *testing.T) {
	g := New(-3)
	if g.N() != 0 {
		t.Fatalf("N() = %d, want 0", g.N())
	}
}

func TestAddEdgeAndQuery(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(2, 1, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) not found in both orientations")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("edge (1,2) not found")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected edge (0,2)")
	}
	w, ok := g.Weight(1, 0)
	if !ok || w != 2.5 {
		t.Fatalf("Weight(1,0) = %g,%v want 2.5,true", w, ok)
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", got)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	tests := []struct {
		name    string
		u, v    int
		w       float64
		wantErr error
	}{
		{"out of range low", -1, 1, 1, ErrVertexOutOfRange},
		{"out of range high", 0, 3, 1, ErrVertexOutOfRange},
		{"self loop", 2, 2, 1, ErrSelfLoop},
		{"parallel", 1, 0, 1, ErrParallelEdge},
		{"zero weight", 1, 2, 0, ErrNonPositiveWeight},
		{"negative weight", 1, 2, -2, ErrNonPositiveWeight},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := g.AddEdge(tc.u, tc.v, tc.w)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("AddEdge(%d,%d,%g) error = %v, want %v", tc.u, tc.v, tc.w, err, tc.wantErr)
			}
		})
	}
}

func TestSetWeight(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	if err := g.SetWeight(1, 0, 7); err != nil {
		t.Fatalf("SetWeight: %v", err)
	}
	if w, _ := g.Weight(0, 1); w != 7 {
		t.Fatalf("Weight after SetWeight = %g, want 7", w)
	}
	for _, e := range g.IncidentEdges(1) {
		if e.Weight != 7 {
			t.Fatalf("incident edge weight = %g, want 7", e.Weight)
		}
	}
	if err := g.SetWeight(0, 2, 3); err == nil {
		t.Fatal("SetWeight on missing edge did not error")
	}
	if err := g.SetWeight(0, 1, -1); err == nil {
		t.Fatal("SetWeight with negative weight did not error")
	}
}

func TestEdgesCanonicalAndSorted(t *testing.T) {
	g := New(4)
	g.MustAddEdge(3, 2, 1)
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(3, 0, 1)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("len(Edges) = %d, want 3", len(edges))
	}
	want := [][2]int{{0, 1}, {0, 3}, {2, 3}}
	for i, e := range edges {
		if e.U != want[i][0] || e.V != want[i][1] {
			t.Fatalf("Edges()[%d] = (%d,%d), want %v", i, e.U, e.V, want[i])
		}
		if e.U > e.V {
			t.Fatalf("edge %v not canonical", e)
		}
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 2, V: 5}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	if e.Other(7) != -1 {
		t.Fatal("Other on non-endpoint should be -1")
	}
}

func TestAddVertex(t *testing.T) {
	g := Path(3)
	v := g.AddVertex()
	if v != 3 || g.N() != 4 {
		t.Fatalf("AddVertex -> %d, N=%d; want 3, 4", v, g.N())
	}
	if g.Degree(v) != 0 {
		t.Fatal("new vertex should be isolated")
	}
	g.MustAddEdge(v, 0, 1)
	if !g.HasEdge(3, 0) {
		t.Fatal("edge to new vertex missing")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.MustAddEdge(0, 3, 1)
	if g.HasEdge(0, 3) {
		t.Fatal("mutating clone affected original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone M = %d, want %d", c.M(), g.M()+1)
	}
}

func TestAspectRatioAndTotalWeight(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 8)
	if r := g.AspectRatio(); r != 4 {
		t.Fatalf("AspectRatio = %g, want 4", r)
	}
	if w := g.TotalWeight(); w != 10 {
		t.Fatalf("TotalWeight = %g, want 10", w)
	}
	if r := New(2).AspectRatio(); r != 1 {
		t.Fatalf("AspectRatio of empty graph = %g, want 1", r)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	res := g.BFS(0)
	for v := 0; v < 5; v++ {
		if res.Dist[v] != v {
			t.Fatalf("Dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	if res.Parent[0] != -1 || res.Parent[3] != 2 {
		t.Fatalf("unexpected parents: %v", res.Parent)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	res := g.BFS(0)
	if res.Dist[2] != -1 || res.Dist[3] != -1 {
		t.Fatalf("unreachable distances = %v, want -1", res.Dist)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", Path(5), 4},
		{"complete6", Complete(6), 1},
		{"star8", Star(8), 2},
		{"single", New(1), 0},
		{"grid3x4", Grid(3, 4), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if d := tc.g.Diameter(); d != tc.want {
				t.Fatalf("Diameter = %d, want %d", d, tc.want)
			}
		})
	}
	disconnected := New(3)
	disconnected.MustAddEdge(0, 1, 1)
	if d := disconnected.Diameter(); d != -1 {
		t.Fatalf("Diameter of disconnected graph = %d, want -1", d)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Fatalf("unexpected components: %v", comp)
	}
}

func TestIsSpanningTree(t *testing.T) {
	if !Path(5).IsSpanningTree() {
		t.Fatal("path should be a spanning tree")
	}
	if !Star(7).IsSpanningTree() {
		t.Fatal("star should be a spanning tree")
	}
	cyc, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.IsSpanningTree() {
		t.Fatal("cycle is not a spanning tree")
	}
	forest := New(4)
	forest.MustAddEdge(0, 1, 1)
	forest.MustAddEdge(2, 3, 1)
	if forest.IsSpanningTree() {
		t.Fatal("forest with 2 components is not a spanning tree")
	}
}

func TestIsHamiltonianCycle(t *testing.T) {
	cyc, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if !cyc.IsHamiltonianCycle() {
		t.Fatal("cycle(6) should be a Hamiltonian cycle of itself")
	}
	if Path(6).IsHamiltonianCycle() {
		t.Fatal("path is not a Hamiltonian cycle")
	}
	// Two disjoint triangles: 2-regular but disconnected.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		g.MustAddEdge(e[0], e[1], 1)
	}
	if g.IsHamiltonianCycle() {
		t.Fatal("two triangles are not a Hamiltonian cycle")
	}
}

func TestIsSimplePath(t *testing.T) {
	if !Path(5).IsSimplePath() {
		t.Fatal("path should be a simple path")
	}
	cyc, _ := Cycle(5)
	if cyc.IsSimplePath() {
		t.Fatal("cycle is not a simple path")
	}
	// A path plus isolated vertices still counts.
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	if !g.IsSimplePath() {
		t.Fatal("path with isolated vertices should be a simple path")
	}
	// Two disjoint paths are not a single simple path.
	g.MustAddEdge(3, 4, 1)
	if g.IsSimplePath() {
		t.Fatal("two disjoint paths are not a simple path")
	}
	if !New(4).IsSimplePath() {
		t.Fatal("empty graph counts as trivial simple path")
	}
	if Star(5).IsSimplePath() {
		t.Fatal("star with 4 leaves is not a simple path")
	}
}

func TestHasCycleAndCountCycles(t *testing.T) {
	if Path(5).HasCycle() {
		t.Fatal("path has no cycle")
	}
	cyc, _ := Cycle(4)
	if !cyc.HasCycle() {
		t.Fatal("cycle should have a cycle")
	}
	// Two disjoint cycles plus an isolated path.
	g := New(11)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}, {7, 8}} {
		g.MustAddEdge(e[0], e[1], 1)
	}
	if got := g.CountCycles(); got != 2 {
		t.Fatalf("CountCycles = %d, want 2", got)
	}
	if got := Path(6).CountCycles(); got != 0 {
		t.Fatalf("CountCycles(path) = %d, want 0", got)
	}
}

func TestIsBipartite(t *testing.T) {
	ok, coloring := Grid(3, 3).IsBipartite()
	if !ok {
		t.Fatal("grid should be bipartite")
	}
	g := Grid(3, 3)
	for _, e := range g.Edges() {
		if coloring[e.U] == coloring[e.V] {
			t.Fatalf("invalid colouring on edge %v", e)
		}
	}
	odd, _ := Cycle(5)
	if ok, _ := odd.IsBipartite(); ok {
		t.Fatal("odd cycle is not bipartite")
	}
	even, _ := Cycle(6)
	if ok, _ := even.IsBipartite(); !ok {
		t.Fatal("even cycle is bipartite")
	}
}

func TestSTConnected(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(3, 4, 1)
	if !g.STConnected(0, 1) || g.STConnected(0, 3) {
		t.Fatal("STConnected wrong")
	}
	if !g.STConnected(2, 2) {
		t.Fatal("vertex is connected to itself")
	}
	if g.STConnected(-1, 2) || g.STConnected(0, 9) {
		t.Fatal("out of range should be false")
	}
}

func TestIsCutOf(t *testing.T) {
	host := Path(4)
	cut := New(4)
	cut.MustAddEdge(1, 2, 1)
	if !cut.IsCutOf(host) {
		t.Fatal("middle edge is a cut of the path")
	}
	notCut := New(4)
	if notCut.IsCutOf(host) {
		t.Fatal("empty set is not a cut of a connected path")
	}
	if !cut.IsSTCutOf(host, 0, 3) {
		t.Fatal("middle edge separates 0 from 3")
	}
	if cut.IsSTCutOf(host, 0, 1) {
		t.Fatal("middle edge does not separate 0 from 1")
	}
}

func TestKruskalMSTMatchesKnownValue(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(0, 3, 10)
	g.MustAddEdge(0, 2, 2.5)
	edges, total := g.KruskalMST()
	if len(edges) != 3 {
		t.Fatalf("MST edge count = %d, want 3", len(edges))
	}
	if total != 6 {
		t.Fatalf("MST weight = %g, want 6", total)
	}
}

func TestKruskalOnDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(2, 3, 7)
	edges, total := g.KruskalMST()
	if len(edges) != 2 || total != 12 {
		t.Fatalf("forest = %d edges weight %g, want 2 edges weight 12", len(edges), total)
	}
}

func TestWeightedDistances(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 5)
	g.MustAddEdge(2, 3, 1)
	dist := g.WeightedDistances(0)
	want := []float64{0, 1, 3, 4}
	for v, d := range want {
		if dist[v] != d {
			t.Fatalf("dist[%d] = %g, want %g", v, dist[v], d)
		}
	}
}

func TestMinCutBruteForce(t *testing.T) {
	// A dumbbell: two triangles joined by a single light edge.
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		g.MustAddEdge(e[0], e[1], 5)
	}
	g.MustAddEdge(2, 3, 1)
	if got := g.MinCutWeightBruteForce(); got != 1 {
		t.Fatalf("min cut = %g, want 1", got)
	}
	if got := Complete(4).MinCutWeightBruteForce(); got != 3 {
		t.Fatalf("min cut of K4 = %g, want 3", got)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Components() != 5 {
		t.Fatalf("components = %d, want 5", uf.Components())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("unions should merge")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union should return false")
	}
	if !uf.Connected(0, 2) || uf.Connected(0, 3) {
		t.Fatal("connectivity wrong")
	}
	if uf.Components() != 3 {
		t.Fatalf("components = %d, want 3", uf.Components())
	}
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet()
	s.Add(2, 1)
	s.Add(0, 3)
	if !s.Contains(1, 2) || !s.Contains(3, 0) {
		t.Fatal("Contains should be orientation independent")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Remove(1, 2)
	if s.Contains(2, 1) {
		t.Fatal("Remove failed")
	}
	pairs := s.Pairs()
	if len(pairs) != 1 || pairs[0] != [2]int{0, 3} {
		t.Fatalf("Pairs = %v", pairs)
	}
}

func TestEdgeSetSubgraphAndUnion(t *testing.T) {
	g := Complete(4)
	s := NewEdgeSetFrom([]Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	sub := s.Subgraph(g)
	if sub.M() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(2, 3) || sub.HasEdge(0, 2) {
		t.Fatalf("unexpected subgraph %v", sub)
	}
	other := NewEdgeSetFrom([]Edge{{U: 1, V: 2}})
	s.Union(other)
	if s.Len() != 3 {
		t.Fatalf("union Len = %d, want 3", s.Len())
	}
	clone := s.Clone()
	clone.Remove(0, 1)
	if !s.Contains(0, 1) {
		t.Fatal("clone should be independent")
	}
}

func TestGenerators(t *testing.T) {
	if got := Complete(5).M(); got != 10 {
		t.Fatalf("K5 edges = %d, want 10", got)
	}
	if got := Grid(2, 3).M(); got != 7 {
		t.Fatalf("grid 2x3 edges = %d, want 7", got)
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle(2) should fail")
	}
	rng := rand.New(rand.NewSource(1))
	rc := RandomConnectedGraph(40, 0.05, rng)
	if !rc.IsConnected() {
		t.Fatal("RandomConnectedGraph should be connected")
	}
	tree := RandomSpanningTree(30, rng)
	if !tree.IsSpanningTree() {
		t.Fatal("RandomSpanningTree should be a spanning tree")
	}
	weighted, err := AssignRandomWeights(rc, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.AspectRatio() > 100 {
		t.Fatalf("aspect ratio %g exceeds requested max", weighted.AspectRatio())
	}
	if _, err := AssignRandomWeights(rc, 0.5, rng); err == nil {
		t.Fatal("AssignRandomWeights with max < 1 should fail")
	}
}

func TestPerfectMatching(t *testing.T) {
	m, err := PerfectMatching(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.M() != 2 {
		t.Fatalf("matching edges = %d, want 2", m.M())
	}
	if _, err := PerfectMatching(4, [][2]int{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("reused vertex should fail")
	}
	if _, err := PerfectMatching(2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range vertex should fail")
	}
}

func TestCyclePairings(t *testing.T) {
	for _, n := range []int{4, 6, 10, 20} {
		ec, ed, err := CyclePairings(n)
		if err != nil {
			t.Fatal(err)
		}
		g := New(n)
		for _, p := range append(append([][2]int{}, ec...), ed...) {
			g.MustAddEdge(p[0], p[1], 1)
		}
		if !g.IsHamiltonianCycle() {
			t.Fatalf("CyclePairings(%d) union is not a Hamiltonian cycle", n)
		}
	}
	if _, _, err := CyclePairings(5); err == nil {
		t.Fatal("odd n should fail")
	}
}

func TestTwoCyclePairings(t *testing.T) {
	for _, n := range []int{8, 12, 14} {
		ec, ed, err := TwoCyclePairings(n)
		if err != nil {
			t.Fatal(err)
		}
		g := New(n)
		for _, p := range append(append([][2]int{}, ec...), ed...) {
			if !g.HasEdge(p[0], p[1]) {
				g.MustAddEdge(p[0], p[1], 1)
			}
		}
		if g.IsHamiltonianCycle() {
			t.Fatalf("TwoCyclePairings(%d) should not form a single cycle", n)
		}
		if got := g.CountCycles(); got != 2 {
			t.Fatalf("TwoCyclePairings(%d) cycles = %d, want 2", n, got)
		}
	}
}

func TestRandomPerfectMatchingPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pairs, err := RandomPerfectMatchingPairs(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("pairs = %d, want 5", len(pairs))
	}
	seen := make(map[int]bool)
	for _, p := range pairs {
		if seen[p[0]] || seen[p[1]] {
			t.Fatal("vertex reused")
		}
		seen[p[0]], seen[p[1]] = true, true
	}
	if _, err := RandomPerfectMatchingPairs(7, rng); err == nil {
		t.Fatal("odd n should fail")
	}
}

// Property: for random connected graphs, the Kruskal MST weight never
// exceeds the weight of any spanning tree obtained by BFS.
func TestQuickMSTIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := RandomConnectedGraph(n, 0.3, rng)
		weighted, err := AssignRandomWeights(g, 50, rng)
		if err != nil {
			return false
		}
		_, mstW := weighted.KruskalMST()
		// BFS tree from vertex 0 is some spanning tree.
		res := weighted.BFS(0)
		var bfsW float64
		for v := 1; v < weighted.N(); v++ {
			w, ok := weighted.Weight(v, res.Parent[v])
			if !ok {
				return false
			}
			bfsW += w
		}
		return mstW <= bfsW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the union of two random perfect matchings on the same vertex
// set consists only of disjoint cycles (every vertex has degree exactly 2
// when matchings are disjoint, or degree <= 2 in general), matching
// Observation 8.1's premise.
func TestQuickMatchingUnionCycles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 * (2 + rng.Intn(20))
		p1, err := RandomPerfectMatchingPairs(n, rng)
		if err != nil {
			return false
		}
		p2, err := RandomPerfectMatchingPairs(n, rng)
		if err != nil {
			return false
		}
		g := New(n)
		for _, p := range append(append([][2]int{}, p1...), p2...) {
			if !g.HasEdge(p[0], p[1]) {
				g.MustAddEdge(p[0], p[1], 1)
			}
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) > 2 || g.Degree(v) < 1 {
				return false
			}
		}
		// Every component must contain a cycle or be a single shared edge.
		comp, count := g.ConnectedComponents()
		edgeCount := make([]int, count)
		vertCount := make([]int, count)
		for _, e := range g.Edges() {
			edgeCount[comp[e.U]]++
		}
		for v := 0; v < n; v++ {
			vertCount[comp[v]]++
		}
		for c := 0; c < count; c++ {
			if edgeCount[c] != vertCount[c] && edgeCount[c] != vertCount[c]-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
