package graph

import (
	"fmt"
	"math/rand"
)

// The Graph constructors below are thin wrappers over the streaming
// emitters in stream.go — a Graph's MustAddEdge is itself an EdgeEmitter —
// so the map-based and CSR construction routes consume one shared edge
// stream per family.

// Path returns the path graph v0-v1-...-v(n-1) with unit weights.
func Path(n int) *Graph {
	g := New(n)
	EmitPath(n, g.MustAddEdge)
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices with unit weights.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle requires n >= 3, got %d", n)
	}
	g := New(n)
	EmitCycle(n, g.MustAddEdge)
	return g, nil
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *Graph {
	g := New(n)
	EmitComplete(n, g.MustAddEdge)
	return g
}

// Star returns the star graph with centre 0 and n-1 leaves, unit weights.
func Star(n int) *Graph {
	g := New(n)
	EmitStar(n, g.MustAddEdge)
	return g
}

// Grid returns the rows x cols grid graph with unit weights. Vertex (r,c)
// has index r*cols+c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	EmitGrid(rows, cols, g.MustAddEdge)
	return g
}

// RandomGraph returns an Erdős–Rényi G(n,p) graph with unit weights, using
// rng for reproducibility.
func RandomGraph(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	EmitRandom(n, p, rng, g.MustAddEdge)
	return g
}

// RandomConnectedGraph returns a connected graph on n vertices: a uniformly
// random spanning tree (via random attachment) plus each remaining pair
// independently with probability p. Unit weights.
func RandomConnectedGraph(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	EmitRandomConnected(n, p, rng, g.MustAddEdge)
	return g
}

// RandomSpanningTree returns a uniformly grown random tree on n vertices
// with unit weights (random attachment model, not uniform over all trees,
// which is sufficient for workload generation).
func RandomSpanningTree(n int, rng *rand.Rand) *Graph {
	return RandomConnectedGraph(n, 0, rng)
}

// AssignRandomWeights returns a copy of g whose edge weights are drawn
// uniformly from [1, maxWeight], so the aspect ratio is at most maxWeight.
// maxWeight must be >= 1.
func AssignRandomWeights(g *Graph, maxWeight float64, rng *rand.Rand) (*Graph, error) {
	if maxWeight < 1 {
		return nil, fmt.Errorf("graph: maxWeight must be >= 1, got %g", maxWeight)
	}
	out := New(g.N())
	for _, e := range g.Edges() {
		w := 1 + rng.Float64()*(maxWeight-1)
		out.MustAddEdge(e.U, e.V, w)
	}
	return out, nil
}

// PerfectMatching interprets pairs as a perfect matching on vertices
// 0..2k-1 and returns it as a unit-weight graph on n vertices. It returns an
// error if any vertex appears more than once or is out of range.
func PerfectMatching(n int, pairs [][2]int) (*Graph, error) {
	g := New(n)
	seen := make([]bool, n)
	for _, p := range pairs {
		u, v := p[0], p[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("%w: pair (%d,%d)", ErrVertexOutOfRange, u, v)
		}
		if seen[u] || seen[v] {
			return nil, fmt.Errorf("graph: vertex reused in matching: (%d,%d)", u, v)
		}
		seen[u], seen[v] = true, true
		if err := g.AddEdge(u, v, 1); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RandomPerfectMatchingPairs returns a uniformly random perfect matching on
// vertices 0..n-1 as a list of pairs. n must be even.
func RandomPerfectMatchingPairs(n int, rng *rand.Rand) ([][2]int, error) {
	if n%2 != 0 {
		return nil, fmt.Errorf("graph: perfect matching needs even n, got %d", n)
	}
	perm := rng.Perm(n)
	pairs := make([][2]int, 0, n/2)
	for i := 0; i < n; i += 2 {
		pairs = append(pairs, [2]int{perm[i], perm[i+1]})
	}
	return pairs, nil
}

// CyclePairings returns two perfect matchings E_C and E_D on vertices
// 0..n-1 (n even) whose union is a single Hamiltonian cycle
// 0-1-2-...-(n-1)-0: E_C = {(0,1),(2,3),...} and E_D = {(1,2),(3,4),...,(n-1,0)}.
// This is the canonical 1-input for the server-model Ham problem.
func CyclePairings(n int) (ec, ed [][2]int, err error) {
	if n < 4 || n%2 != 0 {
		return nil, nil, fmt.Errorf("graph: cycle pairing needs even n >= 4, got %d", n)
	}
	for i := 0; i < n; i += 2 {
		ec = append(ec, [2]int{i, i + 1})
		ed = append(ed, [2]int{i + 1, (i + 2) % n})
	}
	return ec, ed, nil
}

// KCyclePairings returns two perfect matchings on vertices 0..n-1 whose
// union consists of exactly k disjoint cycles. It requires n even, k >= 1,
// and n >= 4k (each cycle needs at least 4 vertices so that both matchings
// contribute at least two edges to it).
func KCyclePairings(n, k int) (ec, ed [][2]int, err error) {
	if n%2 != 0 || k < 1 || n < 4*k {
		return nil, nil, fmt.Errorf("graph: k-cycle pairing needs even n >= 4k, got n=%d k=%d", n, k)
	}
	// Split vertices into k consecutive groups of even size >= 4.
	sizes := make([]int, k)
	base := n / (2 * k) * 2 // even base size
	rem := n - base*k
	for i := range sizes {
		sizes[i] = base
	}
	for i := 0; rem > 0; i = (i + 1) % k {
		sizes[i] += 2
		rem -= 2
	}
	start := 0
	for _, size := range sizes {
		vs := make([]int, size)
		for i := range vs {
			vs[i] = start + i
		}
		for i := 0; i < size; i += 2 {
			ec = append(ec, [2]int{vs[i], vs[i+1]})
			ed = append(ed, [2]int{vs[i+1], vs[(i+2)%size]})
		}
		start += size
	}
	return ec, ed, nil
}

// TwoCyclePairings returns two perfect matchings whose union consists of
// exactly two disjoint cycles (a 0-input for the Ham problem). n must be
// even and >= 8.
func TwoCyclePairings(n int) (ec, ed [][2]int, err error) {
	if n < 8 || n%2 != 0 {
		return nil, nil, fmt.Errorf("graph: two-cycle pairing needs even n >= 8, got %d", n)
	}
	half := n / 2
	if half%2 != 0 {
		half++ // keep both cycles even-length
	}
	cycle := func(vs []int) (c, d [][2]int) {
		k := len(vs)
		for i := 0; i < k; i += 2 {
			c = append(c, [2]int{vs[i], vs[i+1]})
			d = append(d, [2]int{vs[i+1], vs[(i+2)%k]})
		}
		return c, d
	}
	first := make([]int, half)
	for i := range first {
		first[i] = i
	}
	second := make([]int, n-half)
	for i := range second {
		second[i] = half + i
	}
	c1, d1 := cycle(first)
	c2, d2 := cycle(second)
	return append(c1, c2...), append(d1, d2...), nil
}
