package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// The experiment harness (internal/exp) derives one seed per scenario and
// promises that re-running a matrix reproduces every run bit for bit. That
// only holds if the random generators here are pure functions of their rng,
// which these tests pin down: the same seed must yield the identical edge
// set, and a different seed must actually change the draw.

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	cases := []struct {
		name   string
		random bool // whether a different seed is expected to change the result
		gen    func(rng *rand.Rand) *Graph
	}{
		{"RandomGraph", true, func(rng *rand.Rand) *Graph {
			return RandomGraph(32, 0.3, rng)
		}},
		{"RandomConnectedGraph", true, func(rng *rand.Rand) *Graph {
			return RandomConnectedGraph(32, 0.2, rng)
		}},
		{"RandomSpanningTree", true, func(rng *rand.Rand) *Graph {
			return RandomSpanningTree(48, rng)
		}},
		{"AssignRandomWeights", true, func(rng *rand.Rand) *Graph {
			g, err := AssignRandomWeights(Complete(12), 64, rng)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"Path", false, func(*rand.Rand) *Graph { return Path(17) }},
		{"Grid", false, func(*rand.Rand) *Graph { return Grid(5, 7) }},
		{"Star", false, func(*rand.Rand) *Graph { return Star(9) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			edges := func(seed int64) []Edge {
				return c.gen(rand.New(rand.NewSource(seed))).Edges()
			}
			first := edges(7)
			if len(first) == 0 {
				t.Fatal("generator produced no edges")
			}
			if again := edges(7); !reflect.DeepEqual(first, again) {
				t.Errorf("same seed produced different edge sets:\n%v\n%v", first, again)
			}
			other := edges(8)
			if c.random && reflect.DeepEqual(first, other) {
				t.Error("different seeds produced identical edge sets")
			}
			if !c.random && !reflect.DeepEqual(first, other) {
				t.Error("deterministic generator depended on the rng")
			}
		})
	}
}

func TestRandomPerfectMatchingPairsDeterministicPerSeed(t *testing.T) {
	pairs := func(seed int64) [][2]int {
		p, err := RandomPerfectMatchingPairs(24, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if !reflect.DeepEqual(pairs(5), pairs(5)) {
		t.Error("same seed produced different matchings")
	}
	if reflect.DeepEqual(pairs(5), pairs(6)) {
		t.Error("different seeds produced identical matchings")
	}
}
