// Package graph provides the undirected weighted graph substrate used by
// every other package in this repository: the distributed network topologies
// of the CONGEST simulator, the input graphs of the server-model problems,
// the gadget graphs of the reductions in Section 7 of the paper, and the
// lower-bound network of Section 8.
//
// Vertices are integers 0..N-1. Graphs are simple (no self loops, no
// parallel edges) and undirected; every edge carries a positive weight
// (weight 1 for unweighted constructions).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected weighted edge between vertices U and V.
//
// Edges are stored in canonical orientation (U < V) inside a Graph, but an
// Edge value constructed by callers may have either orientation; use
// Canonical to normalise.
type Edge struct {
	U, V   int
	Weight float64
}

// Canonical returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Other returns the endpoint of e that is not v. It returns -1 if v is not
// an endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		return -1
	}
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%d,w=%g)", e.U, e.V, e.Weight)
}

// Errors returned by graph mutation operations.
var (
	// ErrVertexOutOfRange reports an endpoint outside 0..N-1.
	ErrVertexOutOfRange = errors.New("graph: vertex out of range")
	// ErrSelfLoop reports an attempt to add a self loop.
	ErrSelfLoop = errors.New("graph: self loops are not allowed")
	// ErrParallelEdge reports an attempt to add an edge that already exists.
	ErrParallelEdge = errors.New("graph: parallel edges are not allowed")
	// ErrNonPositiveWeight reports a weight that is not strictly positive.
	ErrNonPositiveWeight = errors.New("graph: edge weights must be positive")
)

// Graph is a simple undirected weighted graph on vertices 0..N-1.
//
// The zero value is an empty graph on zero vertices; use New to create a
// graph with a fixed vertex count.
type Graph struct {
	n   int
	adj [][]Edge
	m   int
}

// New returns an empty graph on n vertices. n must be non-negative.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:   n,
		adj: make([][]Edge, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddVertex appends a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge adds the undirected edge {u,v} with the given weight.
// It returns an error if the edge is invalid or already present.
func (g *Graph) AddEdge(u, v int, weight float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexOutOfRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("%w: got %g", ErrNonPositiveWeight, weight)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("%w: (%d,%d)", ErrParallelEdge, u, v)
	}
	e := Edge{U: u, V: v, Weight: weight}.Canonical()
	g.adj[u] = append(g.adj[u], e)
	g.adj[v] = append(g.adj[v], e)
	g.m++
	return nil
}

// MustAddEdge adds an edge and panics on error. It is intended for
// deterministic constructions (tests, generators) where failure indicates a
// programming bug rather than bad input.
func (g *Graph) MustAddEdge(u, v int, weight float64) {
	if err := g.AddEdge(u, v, weight); err != nil {
		panic(err)
	}
}

// SetWeight updates the weight of the existing edge {u,v}. It returns an
// error if the edge does not exist or the weight is not positive.
func (g *Graph) SetWeight(u, v int, weight float64) error {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("%w: got %g", ErrNonPositiveWeight, weight)
	}
	found := false
	for _, w := range []int{u, v} {
		if w < 0 || w >= g.n {
			return fmt.Errorf("%w: vertex %d", ErrVertexOutOfRange, w)
		}
		for i := range g.adj[w] {
			if g.adj[w][i].Other(w) == u+v-w {
				g.adj[w][i].Weight = weight
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("graph: edge (%d,%d) not found", u, v)
	}
	return nil
}

// HasEdge reports whether the edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, e := range g.adj[u] {
		if e.Other(u) == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	for _, e := range g.adj[u] {
		if e.Other(u) == v {
			return e.Weight, true
		}
	}
	return 0, false
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	if v < 0 || v >= g.n {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors returns the neighbours of v in ascending order. The returned
// slice is freshly allocated and may be modified by the caller.
func (g *Graph) Neighbors(v int) []int {
	if v < 0 || v >= g.n {
		return nil
	}
	out := make([]int, 0, len(g.adj[v]))
	for _, e := range g.adj[v] {
		out = append(out, e.Other(v))
	}
	sort.Ints(out)
	return out
}

// IncidentEdges returns the edges incident to v (canonical orientation).
// The returned slice is freshly allocated.
func (g *Graph) IncidentEdges(v int) []Edge {
	if v < 0 || v >= g.n {
		return nil
	}
	out := make([]Edge, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// Edges returns every edge exactly once, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if e.U == u { // canonical orientation: emit once
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	for _, e := range g.Edges() {
		sum += e.Weight
	}
	return sum
}

// AspectRatio returns the weight aspect ratio W = max weight / min weight
// (Section 2.2 of the paper). It returns 1 for graphs with no edges.
func (g *Graph) AspectRatio() float64 {
	minW, maxW := math.Inf(1), math.Inf(-1)
	for _, e := range g.Edges() {
		minW = math.Min(minW, e.Weight)
		maxW = math.Max(maxW, e.Weight)
	}
	if g.m == 0 {
		return 1
	}
	return maxW / minW
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for _, e := range g.Edges() {
		out.MustAddEdge(e.U, e.V, e.Weight)
	}
	return out
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d, m=%d}", g.n, g.m)
}
