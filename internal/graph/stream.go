package graph

import "math/rand"

// The streaming generator layer. Each Emit* function walks one topology
// family and hands every undirected edge to an EdgeEmitter exactly once, in
// the family's canonical emission order. The Graph constructors in
// generators.go and the CSR streaming path are both thin wrappers over the
// same emitters, so the two construction routes see the same edge stream by
// construction — including the random families, whose rng consumption order
// is part of the stream's definition (an equivalence test pins this for
// every family).
//
// The deterministic families stream with O(1) generator state. The random
// families keep a transient pair-set to keep the graph simple — that set is
// the generator's own bookkeeping, not an adjacency structure: it is
// discarded as soon as the stream ends and nothing downstream reads it.

// EdgeEmitter receives one undirected edge {u,v} with weight w. Both
// (*Builder).MustAddEdge and (*Graph).MustAddEdge satisfy it.
type EdgeEmitter func(u, v int, w float64)

// EmitPath streams the path v0-v1-...-v(n-1) with unit weights.
func EmitPath(n int, emit EdgeEmitter) {
	for i := 0; i+1 < n; i++ {
		emit(i, i+1, 1)
	}
}

// EmitCycle streams the cycle on n vertices with unit weights: the path
// edges followed by the closing edge (n-1,0). It assumes n >= 3 (Cycle
// validates).
func EmitCycle(n int, emit EdgeEmitter) {
	EmitPath(n, emit)
	emit(n-1, 0, 1)
}

// EmitComplete streams K_n with unit weights.
func EmitComplete(n int, emit EdgeEmitter) {
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			emit(u, v, 1)
		}
	}
}

// EmitStar streams the star with centre 0 and n-1 leaves, unit weights.
func EmitStar(n int, emit EdgeEmitter) {
	for v := 1; v < n; v++ {
		emit(0, v, 1)
	}
}

// EmitGrid streams the rows x cols grid with unit weights; vertex (r,c) has
// index r*cols+c, and each cell emits its right edge before its down edge.
func EmitGrid(rows, cols int, emit EdgeEmitter) {
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				emit(idx(r, c), idx(r, c+1), 1)
			}
			if r+1 < rows {
				emit(idx(r, c), idx(r+1, c), 1)
			}
		}
	}
}

// EmitRandom streams an Erdős–Rényi G(n,p) graph with unit weights. The rng
// stream is consumed pair by pair in (u,v) order, exactly as RandomGraph
// does.
func EmitRandom(n int, p float64, rng *rand.Rand, emit EdgeEmitter) {
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				emit(u, v, 1)
			}
		}
	}
}

// EmitRandomConnected streams a connected graph: a random-attachment
// spanning tree followed by each remaining pair independently with
// probability p, unit weights. The rng consumption order — including the
// short-circuit that skips the coin flip for pairs already joined by the
// tree — replicates RandomConnectedGraph exactly, so both routes draw
// identical graphs from identical seeds.
func EmitRandomConnected(n int, p float64, rng *rand.Rand, emit EdgeEmitter) {
	has := make(map[int64]struct{}, n)
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[i]
		v := perm[rng.Intn(i)]
		has[key(u, v)] = struct{}{}
		emit(u, v, 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if _, tree := has[key(u, v)]; !tree && rng.Float64() < p {
				emit(u, v, 1)
			}
		}
	}
}

// EmitSpanningTree streams a uniformly grown random tree (random attachment
// model), matching RandomSpanningTree's rng consumption.
func EmitSpanningTree(n int, rng *rand.Rand, emit EdgeEmitter) {
	EmitRandomConnected(n, 0, rng, emit)
}
