package bounds

import (
	"errors"
	"math"
	"testing"
)

func TestVerificationLowerBoundShape(t *testing.T) {
	// Grows like √(n / log n): quadrupling n should roughly double it.
	b1 := VerificationLowerBound(1e4, 32)
	b2 := VerificationLowerBound(4e4, 32)
	if b1 <= 0 || b2/b1 < 1.7 || b2/b1 > 2.1 {
		t.Fatalf("bound does not scale like √n: %g -> %g", b1, b2)
	}
	// Decreases with B.
	if VerificationLowerBound(1e4, 128) >= VerificationLowerBound(1e4, 32) {
		t.Fatal("bound should decrease with bandwidth")
	}
	if VerificationLowerBound(0, 32) != 0 || VerificationLowerBound(100, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestOptimizationLowerBoundRegimes(t *testing.T) {
	n, b := 1e6, 32.0
	alpha := 2.0
	// Small W: the W/α term dominates and the bound grows linearly in W.
	small := OptimizationLowerBound(n, b, 100, alpha)
	smaller := OptimizationLowerBound(n, b, 50, alpha)
	if math.Abs(small/smaller-2) > 1e-9 {
		t.Fatalf("small-W regime not linear in W: %g vs %g", small, smaller)
	}
	// Large W: saturates at √n/√(B log n).
	sat1 := OptimizationLowerBound(n, b, 1e7, alpha)
	sat2 := OptimizationLowerBound(n, b, 1e9, alpha)
	if math.Abs(sat1-sat2) > 1e-9 {
		t.Fatal("large-W regime should saturate")
	}
	want := VerificationLowerBound(n, b)
	if math.Abs(sat1-want) > 1e-9 {
		t.Fatalf("saturation level %g, want %g", sat1, want)
	}
	if OptimizationLowerBound(n, b, -1, alpha) != 0 {
		t.Fatal("degenerate W should give 0")
	}
}

func TestUpperBounds(t *testing.T) {
	if MSTUpperBound(10000, 10, 1e9, 2) != 100+10 {
		t.Fatalf("MST upper bound saturation wrong: %g", MSTUpperBound(10000, 10, 1e9, 2))
	}
	if MSTUpperBound(10000, 10, 40, 2) != 20+10 {
		t.Fatalf("MST upper bound small-W regime wrong: %g", MSTUpperBound(10000, 10, 40, 2))
	}
	if MSTUpperBound(0, 1, 1, 1) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
	if VerificationUpperBound(1024, 7) <= math.Sqrt(1024) {
		t.Fatal("verification upper bound should include the log factor and D")
	}
	if VerificationUpperBound(0, 7) != 0 {
		t.Fatal("degenerate n should give 0")
	}
	sq, lin := Figure3Crossovers(10000, 2)
	if sq != 200 || lin != 20000 {
		t.Fatalf("crossovers = %g, %g", sq, lin)
	}
}

func TestFigure2Table(t *testing.T) {
	rows, err := Figure2Table(1_000_000, 32, 1e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, row := range rows {
		if row.Problem == "" || row.New == "" || row.Setting == "" {
			t.Fatalf("incomplete row: %+v", row)
		}
		if row.NewValue < 0 {
			t.Fatalf("negative bound: %+v", row)
		}
	}
	// The verification rows of the distributed section agree with the formula.
	if rows[0].NewValue != VerificationLowerBound(1e6, 32) {
		t.Fatal("row 0 value mismatch")
	}
	// The gap row has no previous bound.
	if rows[4].Previous != "unknown" || rows[4].PreviousValue != 0 {
		t.Fatal("gap row should have no previous bound")
	}
	if _, err := Figure2Table(0, 32, 1, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestFigure3Curve(t *testing.T) {
	ws := []float64{1, 10, 100, 1000, 10000, 100000}
	pts, err := Figure3Curve(10000, 32, 12, 2, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(ws) {
		t.Fatalf("points = %d", len(pts))
	}
	// Lower bound is below the upper bound everywhere and both are
	// non-decreasing in W.
	for i, p := range pts {
		if p.LowerBound > p.UpperBound {
			t.Fatalf("point %d: lower %g above upper %g", i, p.LowerBound, p.UpperBound)
		}
		if i > 0 && (p.LowerBound < pts[i-1].LowerBound || p.UpperBound < pts[i-1].UpperBound) {
			t.Fatalf("curves should be non-decreasing in W")
		}
	}
	// Saturation: the last two points have identical bounds (W past α√n).
	last, prev := pts[len(pts)-1], pts[len(pts)-2]
	if last.LowerBound != prev.LowerBound || last.UpperBound != prev.UpperBound {
		t.Fatal("curves should saturate for large W")
	}
	if _, err := Figure3Curve(100, 0, 1, 1, ws); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerModelTable(t *testing.T) {
	rows := ServerModelTable(2400)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Problem == "" || row.BestKnownUpper == "" {
			t.Fatalf("incomplete row %+v", row)
		}
		if row.LowerBound < 0 || row.LowerBound > row.TrivialCost {
			t.Fatalf("lower bound %g inconsistent with trivial cost %g (%s)", row.LowerBound, row.TrivialCost, row.Problem)
		}
	}
	// The IPmod3 row grows linearly with n.
	if ServerModelTable(4800)[0].LowerBound <= rows[0].LowerBound {
		t.Fatal("IPmod3 bound should grow with n")
	}
}
