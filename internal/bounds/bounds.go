// Package bounds evaluates the closed-form lower and upper bounds that the
// paper's Figure 2 (the bounds table) and Figure 3 (MST time versus weight
// aspect ratio) report, and assembles them into the rows/series regenerated
// by cmd/qdcbench and the benchmark harness.
package bounds

import (
	"errors"
	"fmt"
	"math"

	"qdc/internal/comm"
	"qdc/internal/gadgets"
)

// ErrBadParams reports non-positive parameters.
var ErrBadParams = errors.New("bounds: parameters must be positive")

// log2 returns log₂(x) clamped below at 1 so that the Θ(√(n/(B log n)))
// expressions stay finite for tiny n.
func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// VerificationLowerBound returns the Ω(√(n/(B log n))) quantum round lower
// bound of Theorem 3.6 / Corollary 3.7 for an n-node network with bandwidth B.
func VerificationLowerBound(n, bandwidth float64) float64 {
	if n <= 0 || bandwidth <= 0 {
		return 0
	}
	return math.Sqrt(n / (bandwidth * log2(n)))
}

// OptimizationLowerBound returns the Ω(min(W/α, √n)/√(B log n)) quantum
// round lower bound of Theorem 3.8 / Corollary 3.9 for α-approximation with
// weight aspect ratio W.
func OptimizationLowerBound(n, bandwidth, aspectRatio, alpha float64) float64 {
	if n <= 0 || bandwidth <= 0 || alpha <= 0 || aspectRatio <= 0 {
		return 0
	}
	return math.Min(aspectRatio/alpha, math.Sqrt(n)) / math.Sqrt(bandwidth*log2(n))
}

// VerificationUpperBound returns the Õ(√n + D) classical upper bound of
// Das Sarma et al. for the verification problems (the benchmark compares the
// measured rounds of our implementations against it).
func VerificationUpperBound(n, diameter float64) float64 {
	if n <= 0 {
		return 0
	}
	return math.Sqrt(n)*log2(n) + diameter
}

// MSTUpperBound returns the deterministic upper bound
// O(min(W/α, √n) + D) obtained by combining Elkin's O(W/α)-time
// α-approximation with the Kutten–Peleg / GKP exact algorithm (Figure 3's
// dashed curve).
func MSTUpperBound(n, diameter, aspectRatio, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || aspectRatio <= 0 {
		return 0
	}
	return math.Min(aspectRatio/alpha, math.Sqrt(n)) + diameter
}

// DisjointnessClassicalRounds is the Θ(D + b/B) round cost of the classical
// pipelined Set Disjointness protocol of Example 1.1: the diameter term plus
// ⌈b/B⌉ rounds of streaming. It is the closed-form twin of
// disjointness.ClassicalRounds; non-positive parameters cost 0.
func DisjointnessClassicalRounds(b, bandwidth, distance float64) float64 {
	if b < 1 || bandwidth < 1 || distance < 1 {
		return 0
	}
	return distance + math.Ceil(b/bandwidth)
}

// DisjointnessQuantumRounds is the O(√b·D) round cost of the distributed
// Grover protocol: ⌈√b⌉ iterations each routed across the distance D. It is
// the closed-form twin of disjointness.QuantumRounds / quantum.GroverRounds.
func DisjointnessQuantumRounds(b, distance float64) float64 {
	if b < 1 || distance < 1 {
		return 0
	}
	return math.Ceil(math.Sqrt(b)) * distance
}

// DisjointnessCrossoverDiameter is the smallest distance D at which the
// classical pipeline is at least as fast as the Grover protocol,
// ⌈⌈b/B⌉ / (⌈√b⌉ − 1)⌉; +Inf when ⌈√b⌉ <= 1 (the quantum protocol never
// loses), 0 for non-positive parameters. The closed-form twin of
// disjointness.CrossoverDiameter.
func DisjointnessCrossoverDiameter(b, bandwidth float64) float64 {
	if b < 1 || bandwidth < 1 {
		return 0
	}
	q := math.Ceil(math.Sqrt(b))
	if q <= 1 {
		return math.Inf(1)
	}
	return math.Ceil(math.Ceil(b/bandwidth) / (q - 1))
}

// Figure3Crossovers returns the two crossover aspect ratios marked in
// Figure 3: W = Θ(α√n), where the lower bound curve flattens, and
// W = Θ(αn), beyond which even the trivial collect-everything algorithm is
// dominated by the √n term.
func Figure3Crossovers(n, alpha float64) (sqrtCross, linearCross float64) {
	return alpha * math.Sqrt(n), alpha * n
}

// Figure2Row is one row of the Figure 2 table.
type Figure2Row struct {
	// Problem is the problem (group) name.
	Problem string
	// Setting distinguishes the distributed-network rows from the
	// communication-complexity rows, as in the figure.
	Setting string
	// Previous is the best previously known bound quoted by the paper.
	Previous string
	// New is the bound proved by the paper.
	New string
	// PreviousValue and NewValue evaluate the bounds at the requested
	// parameters (rounds for the distributed rows, bits for the
	// communication rows).
	PreviousValue, NewValue float64
}

// Figure2Table evaluates the Figure 2 table at network size n, bandwidth B
// and (for the optimization row) aspect ratio W and approximation factor α.
func Figure2Table(n int, bandwidth int, aspectRatio, alpha float64) ([]Figure2Row, error) {
	if n <= 0 || bandwidth <= 0 || aspectRatio <= 0 || alpha <= 0 {
		return nil, fmt.Errorf("%w: n=%d B=%d W=%g α=%g", ErrBadParams, n, bandwidth, aspectRatio, alpha)
	}
	fn, fb := float64(n), float64(bandwidth)
	verification := VerificationLowerBound(fn, fb)
	optimization := OptimizationLowerBound(fn, fb, aspectRatio, alpha)
	rows := []Figure2Row{
		{
			Problem:       "Ham, ST, MST verification",
			Setting:       "B-model distributed network",
			Previous:      "Ω(√(n/(B log n))) deterministic, classical",
			New:           "Ω(√(n/(B log n))) two-sided error, quantum + entanglement",
			PreviousValue: verification,
			NewValue:      verification,
		},
		{
			Problem:       "Conn and other verification problems",
			Setting:       "B-model distributed network",
			Previous:      "Ω(√(n/(B log n))) two-sided error, classical",
			New:           "Ω(√(n/(B log n))) two-sided error, quantum + entanglement",
			PreviousValue: verification,
			NewValue:      verification,
		},
		{
			Problem:       "α-approx MST and other optimization problems",
			Setting:       "B-model distributed network",
			Previous:      "Ω(√(n/(B log n))) Monte Carlo, classical, W = Ω(αn)",
			New:           "Ω(min(√n, W/α)/√(B log n)) Monte Carlo, quantum + entanglement",
			PreviousValue: verification,
			NewValue:      optimization,
		},
		{
			Problem:       "Ham, ST and other verification problems",
			Setting:       "communication complexity",
			Previous:      "Ω(n) one-sided error, classical",
			New:           "Ω(n) two-sided error, quantum + entanglement",
			PreviousValue: float64(n) / 4,
			NewValue:      comm.IPMod3ServerLowerBound(n / gadgets.NodesPerIPGadget),
		},
		{
			Problem:       "Gap-Ham, Gap-ST, Gap-Conn (Ω(n) gap)",
			Setting:       "communication complexity",
			Previous:      "unknown",
			New:           "Ω(n) one-sided error, quantum + entanglement",
			PreviousValue: 0,
			NewValue:      comm.GapEqualityServerLowerBound(n/(2*gadgets.NodesPerEqPosition), 0.1),
		},
	}
	return rows, nil
}

// Figure3Point is one point of the Figure 3 curves.
type Figure3Point struct {
	// W is the weight aspect ratio.
	W float64
	// LowerBound is the paper's quantum lower bound at this W.
	LowerBound float64
	// UpperBound is the deterministic upper bound at this W.
	UpperBound float64
}

// Figure3Curve evaluates the Figure 3 curves at the given aspect ratios.
func Figure3Curve(n int, bandwidth int, diameter, alpha float64, ws []float64) ([]Figure3Point, error) {
	if n <= 0 || bandwidth <= 0 || alpha <= 0 {
		return nil, fmt.Errorf("%w: n=%d B=%d α=%g", ErrBadParams, n, bandwidth, alpha)
	}
	out := make([]Figure3Point, 0, len(ws))
	for _, w := range ws {
		out = append(out, Figure3Point{
			W:          w,
			LowerBound: OptimizationLowerBound(float64(n), float64(bandwidth), w, alpha),
			UpperBound: MSTUpperBound(float64(n), diameter, w, alpha),
		})
	}
	return out, nil
}

// ServerModelRow summarises a server-model hardness result (Theorem 3.4,
// Theorem 6.1, Corollary 3.10) next to the cost of the best explicit
// protocol in this repository.
type ServerModelRow struct {
	Problem        string
	LowerBound     float64
	TrivialCost    float64
	BestKnownUpper string
}

// ServerModelTable evaluates the server-model bounds at input length n.
func ServerModelTable(n int) []ServerModelRow {
	return []ServerModelRow{
		{
			Problem:        fmt.Sprintf("IPmod3_%d (two-sided error)", n),
			LowerBound:     comm.IPMod3ServerLowerBound(n),
			TrivialCost:    float64(n + 1),
			BestKnownUpper: "O(n) send-all",
		},
		{
			Problem:        fmt.Sprintf("(βn)-Eq_%d (one-sided error)", n),
			LowerBound:     comm.GapEqualityServerLowerBound(n, 0.1),
			TrivialCost:    float64(n + 1),
			BestKnownUpper: "O(n) send-all",
		},
		{
			Problem:        fmt.Sprintf("Ham_%d via IPmod3 reduction", n),
			LowerBound:     comm.IPMod3ServerLowerBound(n / gadgets.NodesPerIPGadget),
			TrivialCost:    float64(n + 1),
			BestKnownUpper: "O(n) send-all",
		},
		{
			Problem:        fmt.Sprintf("Disj_%d (quantum two-party)", n),
			LowerBound:     math.Sqrt(float64(n)) / 4,
			TrivialCost:    comm.DisjointnessQuantumUpperBound(n),
			BestKnownUpper: "O(√n) Aaronson–Ambainis",
		},
	}
}
