// Package fanout supervises a multi-process sweep: one worker per matrix
// shard, each re-running the qdcbench binary over its deterministic slice of
// the expansion and streaming records to a JSONL file the supervisor tails
// as lines complete. Robustness is the point of the package: a worker that
// crashes, exits non-zero before its stream is complete, or outlives the
// per-attempt timeout is killed (together with its whole process group) and
// re-spawned with capped exponential backoff up to Retries times; an
// interrupt kills every live worker so ctrl-C leaves no orphans; and the
// final error names exactly which shards died and why. The subprocess spawn
// is a seam (SpawnFunc) so tests drive the entire supervision tree with
// in-process stubs.
//
// The supervisor never interprets records beyond counting them: merging the
// per-shard record sets back into the canonical snapshot (exp.MergeRecords,
// exp.CheckComplete) is the caller's job, which is what keeps the merged
// output byte-identical to an unsharded run.
package fanout

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qdc/internal/exp"
)

// Defaults for Options; see the field docs.
const (
	DefaultRetries    = 2
	DefaultBackoff    = 500 * time.Millisecond
	DefaultMaxBackoff = 5 * time.Second

	// pollInterval is how often a worker's JSONL stream is polled for newly
	// completed lines while the worker runs.
	pollInterval = 25 * time.Millisecond
)

// ErrInterrupted is returned by Run when Options.Interrupt delivered a
// signal: every live worker has been killed and no shard was retried.
var ErrInterrupted = errors.New("fanout: interrupted")

// Worker is one running shard attempt. Implementations wrap a subprocess
// (ExecSpawn) or an in-process stub (tests).
type Worker interface {
	// Wait blocks until the worker exits; nil means exit status 0. Called
	// exactly once.
	Wait() error
	// Kill forcibly terminates the worker — for subprocesses, its whole
	// process group, so grandchildren die too — causing Wait to return.
	// Safe to call concurrently with Wait, and more than once.
	Kill()
	// Output returns a bounded tail of the worker's combined stdout/stderr
	// for failure reports; it is complete only after Wait has returned.
	Output() string
}

// SpawnFunc starts one attempt of one shard (1-based), with the worker
// writing its records as JSONL to path.
type SpawnFunc func(shard, attempt int, path string) (Worker, error)

// Options configures Run.
type Options struct {
	// Shards is the number of workers; shard i runs slice i/Shards.
	Shards int
	// Expected[i] is the number of records shard i+1 must produce. A worker
	// whose stream reaches its expected count has completed its shard even
	// if it exits non-zero — the qdcbench worker exits 1 when scenarios
	// fail, and failed scenarios are data, not a crash. A worker that exits
	// with any status before the stream is complete has crashed and is
	// retried.
	Expected []int
	// Retries is how many times a crashed shard is re-spawned after its
	// first attempt; negative selects DefaultRetries.
	Retries int
	// Timeout bounds one attempt's wall time; 0 or negative means no bound.
	Timeout time.Duration
	// Backoff is the delay before the first retry, doubling per retry up to
	// MaxBackoff. Zero values select the defaults.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Dir is the directory for the per-shard JSONL streams. Every attempt
	// writes a fresh file (shard-i-attempt-k.jsonl), so a worker truncating
	// its output on startup can never race the supervisor's tail of a
	// previous attempt.
	Dir string
	// Spawn starts one shard attempt. Required.
	Spawn SpawnFunc
	// OnRecord streams each record as its JSONL line completes, with the
	// 1-based shard it came from. Called from per-shard goroutines,
	// possibly concurrently; may be nil.
	OnRecord func(shard int, rec exp.Record)
	// OnDiscard reports records a failed attempt had already streamed; the
	// retry will re-produce and re-stream them (records are deterministic,
	// so the re-run yields identical ones). May be nil.
	OnDiscard func(shard int, recs []exp.Record)
	// OnEvent receives worker lifecycle events: worker_start, worker_done,
	// worker_retry, worker_failed. Called from per-shard goroutines,
	// possibly concurrently; may be nil.
	OnEvent func(kind string, data map[string]any)
	// Interrupt, when it delivers, makes Run kill every live worker, stop
	// retrying, and return ErrInterrupted. Wire os/signal.Notify to it so
	// ctrl-C reaches workers parked in their own process groups.
	Interrupt <-chan os.Signal
}

// ShardStatus is one shard's outcome.
type ShardStatus struct {
	// Shard is the 1-based shard index.
	Shard int
	// Attempts is how many times the shard was spawned.
	Attempts int
	// Records is the completed shard's record set, nil when Err is set.
	Records []exp.Record
	// Err is the last attempt's failure; nil when the shard completed.
	Err error
}

// Result is the whole run's outcome. Shards[i] describes shard i+1.
type Result struct {
	Shards      []ShardStatus
	Interrupted bool
}

// Records returns the completed shards' record sets in shard order, ready
// for exp.MergeRecords.
func (r Result) Records() [][]exp.Record {
	sets := make([][]exp.Record, 0, len(r.Shards))
	for _, s := range r.Shards {
		if s.Err == nil {
			sets = append(sets, s.Records)
		}
	}
	return sets
}

// summaryErr builds the partial-failure report: which shards died, after
// how many attempts, and why.
func (r Result) summaryErr() error {
	var failed []string
	for _, s := range r.Shards {
		if s.Err != nil {
			failed = append(failed, fmt.Sprintf("shard %d (%d attempts): %v", s.Shard, s.Attempts, s.Err))
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("fanout: %d of %d shards failed: %s", len(failed), len(r.Shards), strings.Join(failed, "; "))
}

// Run supervises every shard to completion (or exhausted retries) and
// reports per-shard outcomes. The returned error is nil only when every
// shard completed; it is ErrInterrupted after an interrupt, and the
// which-shards-died-and-why summary otherwise. Shards run concurrently —
// scenario-level parallelism inside each worker is the worker's own
// business.
func Run(opts Options) (Result, error) {
	if opts.Shards < 1 {
		return Result{}, fmt.Errorf("fanout: shard count %d is not positive", opts.Shards)
	}
	if opts.Spawn == nil {
		return Result{}, errors.New("fanout: Options.Spawn is required")
	}
	if len(opts.Expected) != opts.Shards {
		return Result{}, fmt.Errorf("fanout: %d expected-count entries for %d shards", len(opts.Expected), opts.Shards)
	}
	if opts.Retries < 0 {
		opts.Retries = DefaultRetries
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}

	// stop closes when an interrupt arrives; finished closes when every
	// shard is done, releasing the watcher goroutine.
	stop := make(chan struct{})
	finished := make(chan struct{})
	var interrupted atomic.Bool
	if opts.Interrupt != nil {
		go func() {
			select {
			case <-opts.Interrupt:
				interrupted.Store(true)
				close(stop)
			case <-finished:
			}
		}()
	}

	res := Result{Shards: make([]ShardStatus, opts.Shards)}
	var wg sync.WaitGroup
	for i := 0; i < opts.Shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			res.Shards[shard-1] = superviseShard(opts, shard, stop)
		}(i + 1)
	}
	wg.Wait()
	close(finished)

	if res.Interrupted = interrupted.Load(); res.Interrupted {
		return res, ErrInterrupted
	}
	return res, res.summaryErr()
}

// superviseShard owns one shard's attempt/retry loop.
func superviseShard(opts Options, shard int, stop <-chan struct{}) ShardStatus {
	st := ShardStatus{Shard: shard}
	backoff := opts.Backoff
	for attempt := 1; ; attempt++ {
		st.Attempts = attempt
		recs, err := runAttempt(opts, shard, attempt, stop)
		if err == nil {
			st.Records = recs
			st.Err = nil
			return st
		}
		st.Err = err
		// Roll back whatever the dead attempt had already streamed: the
		// retry re-runs the whole shard from scratch.
		if len(recs) > 0 && opts.OnDiscard != nil {
			opts.OnDiscard(shard, recs)
		}
		if errors.Is(err, ErrInterrupted) {
			return st
		}
		if attempt > opts.Retries {
			emit(opts, "worker_failed", map[string]any{
				"shard": shard, "attempts": attempt, "error": err.Error(),
			})
			return st
		}
		emit(opts, "worker_retry", map[string]any{
			"shard": shard, "attempt": attempt, "error": err.Error(),
			"backoff_ms": float64(backoff) / float64(time.Millisecond),
		})
		timer := time.NewTimer(backoff)
		select {
		case <-stop:
			timer.Stop()
			st.Err = ErrInterrupted
			return st
		case <-timer.C:
		}
		if backoff *= 2; backoff > opts.MaxBackoff {
			backoff = opts.MaxBackoff
		}
	}
}

// runAttempt spawns one worker, tails its record stream until the worker
// exits (or the attempt times out, or an interrupt arrives), and decides
// whether the attempt completed its shard. It returns the records streamed
// so far in every case, so a failed attempt's partial output can be rolled
// back by the caller.
func runAttempt(opts Options, shard, attempt int, stop <-chan struct{}) ([]exp.Record, error) {
	select {
	case <-stop:
		return nil, ErrInterrupted
	default:
	}
	path := filepath.Join(opts.Dir, fmt.Sprintf("shard-%d-attempt-%d.jsonl", shard, attempt))
	// A reused Dir (qdcbench fanout -dir, the daemon's persistent state dir)
	// may hold a complete stream left behind by a previous sweep under this
	// very name. Tailing it before the new worker truncates it would let the
	// supervisor judge the shard complete without the worker having produced
	// anything, so the stale file must be gone before the worker can exist.
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("removing stale stream %s: %w", path, err)
	}
	emit(opts, "worker_start", map[string]any{"shard": shard, "attempt": attempt, "stream": path})
	w, err := opts.Spawn(shard, attempt, path)
	if err != nil {
		return nil, fmt.Errorf("spawn: %w", err)
	}

	tail := exp.NewTail(path)
	defer tail.Close() //nolint:errcheck // read-only descriptor
	var recs []exp.Record
	drain := func() error {
		fresh, err := tail.Poll()
		for _, r := range fresh {
			recs = append(recs, r)
			if opts.OnRecord != nil {
				opts.OnRecord(shard, r)
			}
		}
		return err
	}

	done := make(chan error, 1)
	go func() { done <- w.Wait() }()
	var timeoutC <-chan time.Time
	if opts.Timeout > 0 {
		timer := time.NewTimer(opts.Timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	tick := time.NewTicker(pollInterval)
	defer tick.Stop()

	var exitErr error
	for waiting := true; waiting; {
		select {
		case exitErr = <-done:
			waiting = false
		case <-tick.C:
			if err := drain(); err != nil {
				w.Kill()
				<-done
				return recs, fmt.Errorf("record stream: %w", err)
			}
		case <-timeoutC:
			w.Kill()
			<-done
			return recs, fmt.Errorf("timeout after %s", opts.Timeout)
		case <-stop:
			w.Kill()
			<-done
			return recs, ErrInterrupted
		}
	}
	if err := drain(); err != nil {
		return recs, fmt.Errorf("record stream: %w", err)
	}

	// Completion is judged by the stream, not the exit status: the worker
	// exits non-zero when scenarios fail, and failed scenarios are data. An
	// incomplete stream — whatever the exit status — is a crash.
	want := opts.Expected[shard-1]
	if len(recs) != want || tail.Pending() {
		reason := fmt.Sprintf("worker exited with %d of %d records", len(recs), want)
		if tail.Pending() {
			reason += " (died mid-record)"
		}
		if exitErr != nil {
			reason = fmt.Sprintf("%s: %v", reason, exitErr)
		}
		if out := strings.TrimSpace(w.Output()); out != "" {
			reason = fmt.Sprintf("%s; output: %s", reason, out)
		}
		return recs, errors.New(reason)
	}
	exit := "0"
	if exitErr != nil {
		exit = exitErr.Error()
	}
	emit(opts, "worker_done", map[string]any{
		"shard": shard, "attempt": attempt, "records": len(recs), "exit": exit,
	})
	return recs, nil
}

func emit(opts Options, kind string, data map[string]any) {
	if opts.OnEvent != nil {
		opts.OnEvent(kind, data)
	}
}
