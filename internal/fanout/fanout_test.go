package fanout

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qdc/internal/exp"
)

// stubWorker is an in-process Worker: Wait blocks until the test (or Kill)
// finishes it.
type stubWorker struct {
	done   chan struct{}
	err    error
	once   sync.Once
	killed atomic.Bool
	output string
}

func newStubWorker() *stubWorker { return &stubWorker{done: make(chan struct{})} }

func (w *stubWorker) finish(err error) {
	w.once.Do(func() {
		w.err = err
		close(w.done)
	})
}

func (w *stubWorker) Wait() error {
	<-w.done
	return w.err
}

func (w *stubWorker) Kill() {
	w.killed.Store(true)
	w.finish(errors.New("killed"))
}

func (w *stubWorker) Output() string { return w.output }

// writeLines appends complete JSONL record lines named names to path.
func writeLines(t *testing.T, path string, names ...string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, name := range names {
		r := exp.Record{OK: true}
		r.Scenario.Name = name
		line, _ := json.Marshal(r)
		if _, err := f.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
}

// eventRecorder collects OnEvent calls from concurrent shard goroutines.
type eventRecorder struct {
	mu     sync.Mutex
	events []string // "kind shard=N"
}

func (e *eventRecorder) record(kind string, data map[string]any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, fmt.Sprintf("%s shard=%v", kind, data["shard"]))
}

func (e *eventRecorder) count(prefix string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, ev := range e.events {
		if strings.HasPrefix(ev, prefix) {
			n++
		}
	}
	return n
}

// baseOptions returns fast-retry Options over a temp dir with the given
// spawn; tests adjust the rest.
func baseOptions(t *testing.T, shards int, expected []int, spawn SpawnFunc) Options {
	t.Helper()
	return Options{
		Shards:     shards,
		Expected:   expected,
		Retries:    2,
		Backoff:    time.Millisecond,
		MaxBackoff: 2 * time.Millisecond,
		Dir:        t.TempDir(),
		Spawn:      spawn,
	}
}

// TestCrashRetrySuccess is the core supervision contract: a worker that
// dies mid-shard has its partial records discarded and is re-spawned, and
// the sweep still completes with every shard's full record set.
func TestCrashRetrySuccess(t *testing.T) {
	var shard2Attempts atomic.Int32
	spawn := func(shard, attempt int, path string) (Worker, error) {
		w := newStubWorker()
		switch {
		case shard == 2 && attempt == 1:
			shard2Attempts.Add(1)
			// One complete record, half of a second, then a crash.
			writeLines(t, path, "s2-a")
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			f.WriteString(`{"scenario":{"name":"s2-`)
			f.Close()
			w.finish(errors.New("exit status 2"))
		case shard == 2:
			shard2Attempts.Add(1)
			writeLines(t, path, "s2-a", "s2-b")
			w.finish(nil)
		default:
			writeLines(t, path, "s1-a", "s1-b")
			w.finish(nil)
		}
		return w, nil
	}

	var ev eventRecorder
	var discardMu sync.Mutex
	discarded := map[int]int{}
	opts := baseOptions(t, 2, []int{2, 2}, spawn)
	opts.OnEvent = ev.record
	opts.OnDiscard = func(shard int, recs []exp.Record) {
		discardMu.Lock()
		defer discardMu.Unlock()
		discarded[shard] += len(recs)
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := shard2Attempts.Load(); got != 2 {
		t.Errorf("shard 2 ran %d attempts, want 2", got)
	}
	if res.Shards[1].Attempts != 2 || res.Shards[1].Err != nil {
		t.Errorf("shard 2 status: %+v", res.Shards[1])
	}
	if len(res.Shards[1].Records) != 2 {
		t.Errorf("shard 2 completed with %d records, want 2", len(res.Shards[1].Records))
	}
	if discarded[2] != 1 {
		t.Errorf("discarded %v, want exactly the 1 record streamed before the crash of shard 2", discarded)
	}
	if ev.count("worker_retry shard=2") != 1 || ev.count("worker_done shard=1") != 1 || ev.count("worker_done shard=2") != 1 {
		t.Errorf("events: %v", ev.events)
	}
	if sets := res.Records(); len(sets) != 2 {
		t.Errorf("Records() returned %d sets, want 2", len(sets))
	}
}

// TestRetriesExhausted pins the partial-failure report: a shard that never
// completes fails the run with an error naming the shard and the reason,
// after exactly 1 + Retries attempts.
func TestRetriesExhausted(t *testing.T) {
	var attempts atomic.Int32
	spawn := func(shard, attempt int, path string) (Worker, error) {
		attempts.Add(1)
		w := newStubWorker()
		w.output = "flood: out of cheese"
		w.finish(errors.New("exit status 2"))
		return w, nil
	}
	var ev eventRecorder
	opts := baseOptions(t, 1, []int{3}, spawn)
	opts.Retries = 1
	opts.OnEvent = ev.record
	res, err := Run(opts)
	if err == nil {
		t.Fatal("expected a failure summary")
	}
	for _, want := range []string{"1 of 1 shards failed", "shard 1 (2 attempts)", "0 of 3 records", "exit status 2", "out of cheese"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("summary error %q does not mention %q", err, want)
		}
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("spawned %d attempts, want 1 + 1 retry", got)
	}
	if ev.count("worker_failed shard=1") != 1 || ev.count("worker_retry shard=1") != 1 {
		t.Errorf("events: %v", ev.events)
	}
	if res.Shards[0].Err == nil {
		t.Error("failed shard's status must carry its error")
	}
}

// TestEmptyShard: a fan-out wider than the expansion gives some workers
// zero scenarios; an empty (or never-created) stream with exit 0 completes.
func TestEmptyShard(t *testing.T) {
	spawn := func(shard, attempt int, path string) (Worker, error) {
		w := newStubWorker()
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Error(err)
		}
		w.finish(nil)
		return w, nil
	}
	var ev eventRecorder
	opts := baseOptions(t, 1, []int{0}, spawn)
	opts.OnEvent = ev.record
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Shards[0].Attempts != 1 || len(res.Shards[0].Records) != 0 {
		t.Errorf("empty shard status: %+v", res.Shards[0])
	}
	if ev.count("worker_done shard=1") != 1 {
		t.Errorf("events: %v", ev.events)
	}
}

// TestNonZeroExitWithCompleteStream: the qdcbench worker exits 1 when
// scenarios fail, but a complete record stream means the shard completed —
// scenario failures are data, not a crash, and must not trigger retries.
func TestNonZeroExitWithCompleteStream(t *testing.T) {
	var attempts atomic.Int32
	spawn := func(shard, attempt int, path string) (Worker, error) {
		attempts.Add(1)
		w := newStubWorker()
		writeLines(t, path, "a", "b")
		w.finish(errors.New("exit status 1"))
		return w, nil
	}
	opts := baseOptions(t, 1, []int{2}, spawn)
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if attempts.Load() != 1 {
		t.Errorf("complete stream retried: %d attempts", attempts.Load())
	}
	if len(res.Shards[0].Records) != 2 {
		t.Errorf("records: %+v", res.Shards[0])
	}
}

// TestTimeoutKillsWorker: an attempt that outlives Options.Timeout is
// killed and counts as a crash (here with retries disabled, a failure).
func TestTimeoutKillsWorker(t *testing.T) {
	var worker *stubWorker
	spawn := func(shard, attempt int, path string) (Worker, error) {
		worker = newStubWorker() // never finishes on its own
		writeLines(t, path, "a")
		return worker, nil
	}
	opts := baseOptions(t, 1, []int{2}, spawn)
	opts.Retries = 0
	opts.Timeout = 80 * time.Millisecond
	_, err := Run(opts)
	if err == nil || !strings.Contains(err.Error(), "timeout after") {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if !worker.killed.Load() {
		t.Error("timed-out worker was not killed")
	}
}

// TestInterruptKillsAllWorkers: a signal on Options.Interrupt kills every
// live worker without retrying — the ctrl-C leaves-no-orphans contract.
func TestInterruptKillsAllWorkers(t *testing.T) {
	var mu sync.Mutex
	var workers []*stubWorker
	spawn := func(shard, attempt int, path string) (Worker, error) {
		w := newStubWorker() // blocks until killed
		mu.Lock()
		workers = append(workers, w)
		mu.Unlock()
		return w, nil
	}
	sig := make(chan os.Signal, 1)
	opts := baseOptions(t, 2, []int{1, 1}, spawn)
	opts.Interrupt = sig

	go func() {
		for {
			mu.Lock()
			n := len(workers)
			mu.Unlock()
			if n == 2 {
				sig <- os.Interrupt
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	res, err := Run(opts)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !res.Interrupted {
		t.Error("Result.Interrupted not set")
	}
	for i, w := range workers {
		if !w.killed.Load() {
			t.Errorf("worker %d not killed on interrupt", i)
		}
	}
	for _, s := range res.Shards {
		if s.Attempts != 1 {
			t.Errorf("shard %d retried across an interrupt: %d attempts", s.Shard, s.Attempts)
		}
	}
}

// TestExecSpawnRealProcess exercises the non-stubbed path: a real /bin/sh
// worker writing a record, a crashing one whose captured output lands in
// the failure report, and a hung one killed by the attempt timeout.
func TestExecSpawnRealProcess(t *testing.T) {
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("/bin/sh unavailable")
	}
	record := func(name string) string {
		r := exp.Record{OK: true}
		r.Scenario.Name = name
		line, _ := json.Marshal(r)
		return string(line)
	}

	t.Run("completes", func(t *testing.T) {
		spawn := ExecSpawn("/bin/sh", func(shard int, path string) []string {
			return []string{"-c", fmt.Sprintf("printf '%%s\\n' '%s' > %s", record("real"), path)}
		})
		res, err := Run(baseOptions(t, 1, []int{1}, spawn))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(res.Shards[0].Records) != 1 || res.Shards[0].Records[0].Scenario.Name != "real" {
			t.Errorf("records: %+v", res.Shards[0].Records)
		}
	})
	t.Run("crash output captured", func(t *testing.T) {
		spawn := ExecSpawn("/bin/sh", func(shard int, path string) []string {
			return []string{"-c", "echo kaboom >&2; exit 3"}
		})
		opts := baseOptions(t, 1, []int{1}, spawn)
		opts.Retries = 0
		_, err := Run(opts)
		if err == nil || !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "exit status 3") {
			t.Fatalf("err = %v, want the worker's stderr and exit status", err)
		}
	})
	t.Run("timeout kills process group", func(t *testing.T) {
		spawn := ExecSpawn("/bin/sh", func(shard int, path string) []string {
			return []string{"-c", "sleep 30"}
		})
		opts := baseOptions(t, 1, []int{1}, spawn)
		opts.Retries = 0
		opts.Timeout = 100 * time.Millisecond
		start := time.Now()
		_, err := Run(opts)
		if err == nil || !strings.Contains(err.Error(), "timeout after") {
			t.Fatalf("err = %v, want a timeout", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("kill took %s; the sleep was not actually terminated", elapsed)
		}
	})
}

// TestStaleStreamRemovedBeforeSpawn is the stale-stream regression gate: a
// reused Dir holding a complete stream from a previous sweep must not be
// mistaken for this sweep's output. The supervisor removes the stale file
// before spawning, so the shard's records come from the fresh attempt —
// against the pre-fix runAttempt this test fails, with the tail racing
// ahead on the stale bytes and completing the shard with the wrong records.
func TestStaleStreamRemovedBeforeSpawn(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "shard-1-attempt-1.jsonl")
	writeLines(t, stale, "stale-a", "stale-b")

	spawn := func(shard, attempt int, path string) (Worker, error) {
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale stream still present at spawn time: stat err = %v", err)
		}
		w := newStubWorker()
		writeLines(t, path, "fresh-a", "fresh-b")
		w.finish(nil)
		return w, nil
	}
	opts := baseOptions(t, 1, []int{2}, spawn)
	opts.Dir = dir
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := res.Shards[0].Records
	if len(recs) != 2 || recs[0].Scenario.Name != "fresh-a" || recs[1].Scenario.Name != "fresh-b" {
		t.Errorf("records = %+v, want the fresh attempt's, not the stale file's", recs)
	}
}
