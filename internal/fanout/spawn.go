package fanout

import (
	"os/exec"
	"sync"
)

// ExecSpawn returns the real SpawnFunc: it runs bin with argsFor(shard,
// path) as a subprocess in its own process group — so Kill takes down any
// grandchildren too, and a terminal interrupt is delivered by the
// supervisor rather than racing it — capturing a bounded tail of the
// worker's combined stdout/stderr for failure reports.
func ExecSpawn(bin string, argsFor func(shard int, path string) []string) SpawnFunc {
	return func(shard, _ int, path string) (Worker, error) {
		cmd := exec.Command(bin, argsFor(shard, path)...)
		buf := &boundedBuffer{limit: 4096}
		cmd.Stdout = buf
		cmd.Stderr = buf
		setProcGroup(cmd)
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &procWorker{cmd: cmd, buf: buf}, nil
	}
}

// procWorker adapts an exec.Cmd to the Worker interface.
type procWorker struct {
	cmd *exec.Cmd
	buf *boundedBuffer
}

// Wait implements Worker.
func (w *procWorker) Wait() error { return w.cmd.Wait() }

// Kill implements Worker: the whole process group dies, not just the
// immediate child.
func (w *procWorker) Kill() { killGroup(w.cmd) }

// Output implements Worker.
func (w *procWorker) Output() string { return w.buf.String() }

// boundedBuffer keeps the last limit bytes written to it — enough of a
// crashed worker's output to diagnose it without an unbounded buffer per
// worker. Safe for concurrent use (stdout and stderr share it).
type boundedBuffer struct {
	mu        sync.Mutex
	limit     int
	data      []byte
	truncated bool
}

// Write implements io.Writer and never fails.
func (b *boundedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data = append(b.data, p...)
	if len(b.data) > b.limit {
		b.data = append(b.data[:0], b.data[len(b.data)-b.limit:]...)
		b.truncated = true
	}
	return len(p), nil
}

// String returns the captured tail, marking truncation.
func (b *boundedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.truncated {
		return "..." + string(b.data)
	}
	return string(b.data)
}
