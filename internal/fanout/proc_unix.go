//go:build unix

package fanout

import (
	"os/exec"
	"syscall"
)

// setProcGroup puts the worker in its own process group, so killGroup can
// take down anything it spawned and a terminal-delivered interrupt does not
// race the supervisor's own shutdown.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killGroup terminates the worker's whole process group; if the group is
// already gone it falls back to the process itself.
func killGroup(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		cmd.Process.Kill() //nolint:errcheck // the process may already be gone
	}
}
