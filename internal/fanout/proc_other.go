//go:build !unix

package fanout

import "os/exec"

// setProcGroup is a no-op where process groups are unavailable; Kill then
// reaches only the immediate worker process.
func setProcGroup(cmd *exec.Cmd) {}

// killGroup terminates the worker process.
func killGroup(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Kill() //nolint:errcheck // the process may already be gone
	}
}
