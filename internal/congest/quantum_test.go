package congest

import (
	"errors"
	"testing"
	"time"

	"qdc/internal/graph"
)

// mixedTrafficNode sends one classical and one quantum message to its right
// neighbour for a fixed number of rounds, then terminates.
type mixedTrafficNode struct{ rounds int }

func (m *mixedTrafficNode) Init(*Context) {}

func (m *mixedTrafficNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if round > m.rounds || ctx.ID() != 0 {
		return nil, true
	}
	return []Message{
		NewMessage(1, "c", 3),
		NewQubitMessage(1, "q", 2),
	}, round >= m.rounds
}

func TestQuantumBitAccounting(t *testing.T) {
	nw, err := NewNetwork(graph.Path(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	res, err := nw.Run(func(*Context) Node { return &mixedTrafficNode{rounds: rounds} }, Options{PerRound: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBits != 5*rounds {
		t.Errorf("TotalBits = %d, want %d", res.TotalBits, 5*rounds)
	}
	if res.QuantumBits != 2*rounds {
		t.Errorf("QuantumBits = %d, want %d", res.QuantumBits, 2*rounds)
	}
	if len(res.PerRound) != res.Rounds {
		t.Fatalf("PerRound has %d entries for %d rounds", len(res.PerRound), res.Rounds)
	}
	for r := 0; r < rounds; r++ {
		if res.PerRound[r].ClassicalBits != 3 || res.PerRound[r].QuantumBits != 2 {
			t.Errorf("round %d traffic = %+v, want {3 2}", r+1, res.PerRound[r])
		}
	}
	// The round after the last send carries the in-flight delivery only.
	var total RoundTraffic
	for _, tr := range res.PerRound {
		total.ClassicalBits += tr.ClassicalBits
		total.QuantumBits += tr.QuantumBits
	}
	if total.ClassicalBits+total.QuantumBits != res.TotalBits || total.QuantumBits != res.QuantumBits {
		t.Errorf("per-round totals %+v disagree with TotalBits=%d QuantumBits=%d", total, res.TotalBits, res.QuantumBits)
	}
}

func TestPerRoundIsOptIn(t *testing.T) {
	nw, err := NewNetwork(graph.Path(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(func(*Context) Node { return &mixedTrafficNode{rounds: 2} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRound) != 0 {
		t.Errorf("PerRound recorded %d rounds without opting in", len(res.PerRound))
	}
	if res.QuantumBits != 4 {
		t.Errorf("aggregate QuantumBits = %d without PerRound, want 4", res.QuantumBits)
	}
}

func TestQubitsChargeBandwidth(t *testing.T) {
	nw, err := NewNetwork(graph.Path(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 classical + 2 quantum bits on one edge in one round exceeds B=4:
	// qubits share the same per-edge budget as classical bits.
	_, err = nw.Run(func(*Context) Node { return &mixedTrafficNode{rounds: 1} }, Options{})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("err = %v, want ErrBandwidthExceeded", err)
	}
}

// stubbornNode never terminates and never sends, so a run over it only ends
// via MaxRounds or cancellation.
type stubbornNode struct{}

func (stubbornNode) Init(*Context) {}
func (stubbornNode) Round(*Context, int, []Message) ([]Message, bool) {
	return nil, false
}

func TestRunCancelled(t *testing.T) {
	nw, err := NewNetwork(graph.Path(3), 8)
	if err != nil {
		t.Fatal(err)
	}
	polls := 0
	cancel := func() bool {
		polls++
		return polls > 50
	}
	start := time.Now()
	res, err := nw.Run(func(*Context) Node { return stubbornNode{} }, Options{MaxRounds: 1 << 30, Cancel: cancel})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res.Terminated {
		t.Error("cancelled run reported Terminated")
	}
	if res.Rounds < 45 || res.Rounds > 51 {
		t.Errorf("cancelled after %d rounds, want ~50", res.Rounds)
	}
	// Without the cancellation check the 2^30-round limit would keep this
	// goroutine busy for minutes; the poll must stop it immediately.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s, the round loop did not stop", elapsed)
	}
}

func TestRunNotCancelled(t *testing.T) {
	nw, err := NewNetwork(graph.Path(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(func(*Context) Node { return &mixedTrafficNode{rounds: 1} }, Options{Cancel: func() bool { return false }})
	if err != nil || !res.Terminated {
		t.Fatalf("never-firing cancel broke the run: res=%+v err=%v", res, err)
	}
}
