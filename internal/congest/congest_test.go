package congest

import (
	"errors"
	"testing"

	"qdc/internal/graph"
)

// floodMaxNode floods the maximum ID seen so far; after diameter+1 rounds of
// silence it terminates with the maximum as output. It is the classic
// "leader election by flooding" used here to exercise the simulator.
type floodMaxNode struct {
	best    int
	changed bool
	quiet   int
}

func (f *floodMaxNode) Init(ctx *Context) {
	f.best = ctx.ID()
	f.changed = true
}

func (f *floodMaxNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	for _, m := range inbox {
		if v, ok := m.Payload.(int); ok && v > f.best {
			f.best = v
			f.changed = true
		}
	}
	if f.changed {
		f.changed = false
		f.quiet = 0
		return Broadcast(ctx.Neighbors(), f.best, BitsForID(ctx.N())), false
	}
	f.quiet++
	ctx.SetOutput(f.best)
	return nil, f.quiet > ctx.N()
}

func TestFloodingFindsMaximum(t *testing.T) {
	topo := graph.Path(10)
	nw, err := NewNetwork(topo, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(func(*Context) Node { return &floodMaxNode{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("run did not terminate")
	}
	for id, out := range res.Outputs {
		if out.(int) != 9 {
			t.Fatalf("node %d output %v, want 9", id, out)
		}
	}
	if len(res.Outputs) != 10 {
		t.Fatalf("outputs from %d nodes, want 10", len(res.Outputs))
	}
	if res.TotalMessages == 0 || res.TotalBits == 0 {
		t.Fatal("message accounting is empty")
	}
	if res.MaxEdgeBitsPerRound > 16 {
		t.Fatalf("MaxEdgeBitsPerRound = %d exceeds bandwidth", res.MaxEdgeBitsPerRound)
	}
}

func TestFloodingRoundsScaleWithDiameter(t *testing.T) {
	short := graph.Star(50)
	long := graph.Path(50)
	nwShort, _ := NewNetwork(short, 16)
	nwLong, _ := NewNetwork(long, 16)
	rs, err := nwShort.Run(func(*Context) Node { return &floodMaxNode{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := nwLong.Run(func(*Context) Node { return &floodMaxNode{} }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Rounds <= rs.Rounds {
		t.Fatalf("flooding on a path (%d rounds) should take longer than on a star (%d rounds)", rl.Rounds, rs.Rounds)
	}
}

// oversendNode violates the bandwidth constraint on purpose.
type oversendNode struct{}

func (oversendNode) Init(*Context) {}
func (oversendNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	nbrs := ctx.Neighbors()
	if len(nbrs) == 0 {
		return nil, true
	}
	return []Message{NewMessage(nbrs[0], 0, ctx.Bandwidth()+1)}, false
}

func TestBandwidthEnforced(t *testing.T) {
	nw, _ := NewNetwork(graph.Path(3), 8)
	_, err := nw.Run(func(*Context) Node { return oversendNode{} }, Options{})
	if !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("err = %v, want ErrBandwidthExceeded", err)
	}
}

// strangerNode sends to a node that is not its neighbour.
type strangerNode struct{}

func (strangerNode) Init(*Context) {}
func (strangerNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	target := (ctx.ID() + 2) % ctx.N()
	return []Message{NewMessage(target, 1, 1)}, false
}

func TestNonNeighborRejected(t *testing.T) {
	nw, _ := NewNetwork(graph.Path(5), 8)
	_, err := nw.Run(func(*Context) Node { return strangerNode{} }, Options{})
	if !errors.Is(err, ErrNotNeighbor) {
		t.Fatalf("err = %v, want ErrNotNeighbor", err)
	}
}

// chattyNode never terminates.
type chattyNode struct{}

func (chattyNode) Init(*Context) {}
func (chattyNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	return nil, false
}

func TestRoundLimit(t *testing.T) {
	nw, _ := NewNetwork(graph.Path(4), 8)
	res, err := nw.Run(func(*Context) Node { return chattyNode{} }, Options{MaxRounds: 17})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if res.Rounds != 17 {
		t.Fatalf("rounds = %d, want 17", res.Rounds)
	}
	if res.Terminated {
		t.Fatal("should not be marked terminated")
	}
}

func TestContextView(t *testing.T) {
	topo := graph.New(3)
	topo.MustAddEdge(0, 1, 2.5)
	topo.MustAddEdge(1, 2, 7)
	nw, _ := NewNetwork(topo, 0) // default bandwidth
	if nw.Bandwidth() != DefaultBandwidth {
		t.Fatalf("bandwidth = %d, want default", nw.Bandwidth())
	}
	nw.SetInput(1, "hello")
	nw.SetInput(99, "ignored")

	type probe struct {
		neighbors []int
		weight    float64
		input     any
		n         int
	}
	probes := make([]probe, 3)
	factory := func(ctx *Context) Node {
		probes[ctx.ID()] = probe{
			neighbors: ctx.Neighbors(),
			input:     ctx.Input(),
			n:         ctx.N(),
		}
		if w, ok := ctx.EdgeWeight(ctx.Neighbors()[0]); ok {
			probes[ctx.ID()].weight = w
		}
		return &floodMaxNode{}
	}
	if _, err := nw.Run(factory, Options{}); err != nil {
		t.Fatal(err)
	}
	if probes[1].input != "hello" || probes[0].input != nil {
		t.Fatalf("inputs wrong: %+v", probes)
	}
	if probes[0].n != 3 || len(probes[1].neighbors) != 2 {
		t.Fatalf("context view wrong: %+v", probes)
	}
	if probes[0].weight != 2.5 {
		t.Fatalf("edge weight = %g, want 2.5", probes[0].weight)
	}
}

func TestDeterministicRand(t *testing.T) {
	run := func(seed int64) []int {
		nw, _ := NewNetwork(graph.Complete(4), 16)
		nw.SetSeed(seed)
		var draws []int
		factory := func(ctx *Context) Node {
			draws = append(draws, ctx.Rand().Intn(1_000_000))
			return &floodMaxNode{}
		}
		if _, err := nw.Run(factory, Options{}); err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a, b, c := run(5), run(5), run(6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different draws: %v vs %v", a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestNilTopologyAndNilFactory(t *testing.T) {
	if _, err := NewNetwork(nil, 8); !errors.Is(err, ErrNoTopology) {
		t.Fatalf("err = %v, want ErrNoTopology", err)
	}
	nw, _ := NewNetwork(graph.Path(2), 8)
	if _, err := nw.Run(func(*Context) Node { return nil }, Options{}); err == nil {
		t.Fatal("nil node should be rejected")
	}
}

func TestBitsHelpers(t *testing.T) {
	tests := []struct {
		fn   func(int) int
		in   int
		want int
	}{
		{BitsForID, 1, 1},
		{BitsForID, 2, 1},
		{BitsForID, 1024, 10},
		{BitsForID, 1025, 11},
		{BitsForInt, 0, 1},
		{BitsForInt, 1, 1},
		{BitsForInt, 7, 3},
		{BitsForInt, 8, 4},
		{BitsForInt, -8, 4},
	}
	for _, tc := range tests {
		if got := tc.fn(tc.in); got != tc.want {
			t.Errorf("bits(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBroadcastHelper(t *testing.T) {
	msgs := Broadcast([]int{3, 5}, "x", 4)
	if len(msgs) != 2 || msgs[0].To != 3 || msgs[1].To != 5 || msgs[0].Bits != 4 {
		t.Fatalf("broadcast = %+v", msgs)
	}
}

func TestClearInputs(t *testing.T) {
	nw, _ := NewNetwork(graph.Path(2), 8)
	nw.SetInput(0, 1)
	nw.ClearInputs()
	sawInput := false
	factory := func(ctx *Context) Node {
		if ctx.Input() != nil {
			sawInput = true
		}
		return &floodMaxNode{}
	}
	if _, err := nw.Run(factory, Options{}); err != nil {
		t.Fatal(err)
	}
	if sawInput {
		t.Fatal("inputs should have been cleared")
	}
}
