package congest

import (
	"fmt"
	"runtime"
	"testing"

	"qdc/internal/graph"
)

// The round-loop microbenchmarks measure the simulator's own per-round cost
// — validation, bandwidth accounting, delivery — with node programs whose
// local work is negligible and allocation-free, so the reported
// node-rounds/sec is the hot path itself, not the algorithm on top. The CI
// bench-smoke job runs them with -benchmem on every push, and `qdcbench
// roundbench` feeds the same workloads' deterministic rounds/bits into the
// BENCH_*.json trend (see internal/exp/roundbench.go).

// benchFloodNode broadcasts a fixed payload to every neighbour each round
// for a set number of rounds, then goes quiet. The outbox is built once in
// Init and reused, and the payload is a small boxed int, so a steady-state
// round allocates nothing in the node program — every measured allocation
// belongs to the simulator.
type benchFloodNode struct {
	rounds int
	outbox []Message
}

func (f *benchFloodNode) Init(ctx *Context) {
	f.outbox = BroadcastAll(ctx, 1, 8)
}

func (f *benchFloodNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if round > f.rounds {
		return nil, true
	}
	return f.outbox, false
}

// benchFloodWordsNode is benchFloodNode with a word-encoded outbox: the same
// traffic shape carried in Message.W0 under a kind tag instead of a boxed
// payload. Benchmarked against the boxed variant it isolates what the word
// encoding saves on the delivery path (no interface headers in the inboxes).
type benchFloodWordsNode struct {
	rounds int
	outbox []Message
}

func (f *benchFloodWordsNode) Init(ctx *Context) {
	f.outbox = BroadcastAllWords(ctx, 1, 1, 0, 8)
}

func (f *benchFloodWordsNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if round > f.rounds {
		return nil, true
	}
	return f.outbox, false
}

// benchPingPongNode sends one message per round to a single partner: node
// 2k exchanges with node 2k+1 along a path. Traffic is two messages per
// node pair per round, so this measures the loop's fixed per-round overhead
// at near-zero load — the regime where the old per-round map and slice
// churn was pure waste.
type benchPingPongNode struct {
	rounds int
	outbox []Message
}

func (p *benchPingPongNode) Init(ctx *Context) {
	partner := ctx.ID() + 1
	if ctx.ID()%2 == 1 {
		partner = ctx.ID() - 1
	}
	if partner >= 0 && partner < ctx.N() && ctx.IsNeighbor(partner) {
		p.outbox = []Message{NewMessage(partner, 1, 8)}
	}
}

func (p *benchPingPongNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if round > p.rounds || p.outbox == nil {
		return nil, true
	}
	return p.outbox, false
}

// runRoundLoopBench executes the workload b.N times and reports
// node-rounds/sec and allocs/round (mallocs measured around the runs, so
// node-program and simulator allocations both count — the node programs
// above are allocation-free by construction).
func runRoundLoopBench(b *testing.B, topo Topology, workers, rounds int, factory NodeFactory) {
	b.Helper()
	nw, err := NewNetwork(topo, 64)
	if err != nil {
		b.Fatal(err)
	}
	n := topo.N()
	opts := Options{MaxRounds: rounds + 2, Workers: workers}

	b.ResetTimer()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		res, err := nw.Run(factory, opts)
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += res.Rounds
	}
	runtime.ReadMemStats(&after)
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(totalRounds*n)/elapsed, "node-rounds/sec")
	}
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(totalRounds), "allocs/round")
}

func BenchmarkRoundLoopFlood(b *testing.B) {
	const rounds = 64
	for _, n := range []int{1024, 10_000, 100_000} {
		side := intSqrt(n)
		topo := graph.Grid(side, side)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("grid%d/workers=%d", side*side, workers), func(b *testing.B) {
				runRoundLoopBench(b, topo, workers, rounds, func(*Context) Node {
					return &benchFloodNode{rounds: rounds}
				})
			})
		}
	}
}

// BenchmarkRoundLoopFloodWords is BenchmarkRoundLoopFlood with word-encoded
// messages — the data plane the migrated internal/dist programs run on. The
// CI bench-smoke job picks it up alongside the boxed variant via -bench
// RoundLoop, so the word path's throughput and allocs/round are tracked on
// every push.
func BenchmarkRoundLoopFloodWords(b *testing.B) {
	const rounds = 64
	for _, n := range []int{1024, 10_000, 100_000} {
		side := intSqrt(n)
		topo := graph.Grid(side, side)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("grid%d/workers=%d", side*side, workers), func(b *testing.B) {
				runRoundLoopBench(b, topo, workers, rounds, func(*Context) Node {
					return &benchFloodWordsNode{rounds: rounds}
				})
			})
		}
	}
}

func BenchmarkRoundLoopPingPong(b *testing.B) {
	const rounds = 256
	topo := graph.Path(1024)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("path1024/workers=%d", workers), func(b *testing.B) {
			runRoundLoopBench(b, topo, workers, rounds, func(*Context) Node {
				return &benchPingPongNode{rounds: rounds}
			})
		})
	}
}

// BenchmarkRoundLoopScaleMatrix is the scale sweep of the round loop: the
// flood workload across a size ladder on path and grid families, the same
// shapes the exp `scale-xl` matrix runs end to end.
func BenchmarkRoundLoopScaleMatrix(b *testing.B) {
	const rounds = 32
	cases := []struct {
		name string
		topo Topology
	}{
		{"path1025", graph.Path(1025)},
		{"path16385", graph.Path(16385)},
		{"grid1024", graph.Grid(32, 32)},
		{"grid16384", graph.Grid(128, 128)},
		{"grid102400", graph.Grid(320, 320)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			runRoundLoopBench(b, tc.topo, 1, rounds, func(*Context) Node {
				return &benchFloodNode{rounds: rounds}
			})
		})
	}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
