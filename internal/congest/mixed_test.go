package congest

import (
	"reflect"
	"testing"
)

// mixedBoxed is the boxed payload of the mixed workload, a struct so the
// message genuinely round-trips through the interface path.
type mixedBoxed struct {
	Round int
	Hops  int
}

// mixedPayloadNode sends word-encoded, boxed and quantum messages side by
// side in the same rounds: per neighbour the class rotates with the round, so
// every inbox interleaves all three representations. The node folds what it
// receives into a running digest it outputs at the end, which makes the
// outputs sensitive to every delivered message of every class.
type mixedPayloadNode struct {
	rounds int
	digest uint64
}

const (
	kindMixedInts  uint8 = 2
	kindMixedFlags uint8 = 3
)

func (m *mixedPayloadNode) Init(*Context) {}

func (m *mixedPayloadNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	for i := range inbox {
		msg := &inbox[i]
		switch {
		case msg.Kind == kindMixedInts:
			u, v := UnpackIDs(msg.W0)
			m.digest = m.digest*31 + uint64(u) + uint64(v)<<8 + msg.W1
		case msg.Kind == kindMixedFlags:
			m.digest = m.digest*31 + WordFromBool(msg.Bool0()) + 2*WordFromBool(msg.Bool1())
		case msg.Quantum:
			m.digest = m.digest*31 + uint64(msg.Payload.(int))
		default:
			b := msg.Payload.(mixedBoxed)
			m.digest = m.digest*31 + uint64(b.Round)<<4 + uint64(b.Hops)
		}
	}
	if round > m.rounds {
		ctx.SetOutput(m.digest)
		return nil, true
	}
	var out []Message
	for i := 0; i < ctx.Degree(); i++ {
		u := ctx.NeighborAt(i)
		switch (ctx.ID() + u + round) % 4 {
		case 0:
			out = AppendWordMessage(out, u, kindMixedInts, PackIDs(ctx.ID(), u), uint64(round), 2+round%7)
		case 1:
			out = AppendWordMessage(out, u, kindMixedFlags,
				WordFromBool(round%2 == 0), WordFromBool(ctx.ID() < u), 2)
		case 2:
			out = append(out, NewQubitMessage(u, 3+ctx.Rand().Intn(5), 3+round%3))
		default:
			out = AppendMessage(out, u, mixedBoxed{Round: round, Hops: ctx.ID() % 5}, 4+round%5)
		}
	}
	return out, false
}

// runMixed executes the mixed workload and returns the Result plus the full
// traced message stream — Kind, W0/W1, Payload and Quantum included, since
// both merge paths run the same program and must agree on the representation
// itself, not just the accounting projection.
func runMixed(t *testing.T, workers int) (*Result, []traceEvent) {
	t.Helper()
	nw, err := NewNetwork(ring(41), 64)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetSeed(29)
	var events []traceEvent
	res, err := nw.Run(func(*Context) Node { return &mixedPayloadNode{rounds: 17} },
		Options{
			Workers:  workers,
			PerRound: true,
			Trace: func(round int, msg Message) {
				events = append(events, traceEvent{Round: round, Msg: msg})
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestMixedPayloadsIdenticalAcrossWorkers pins the data plane's contract for
// a workload that interleaves word-encoded, boxed and quantum messages in the
// same rounds: the full Result (rounds, bit and message totals, the quantum
// split, per-round traffic, the digest outputs) and the complete trace stream
// are identical whether the merge runs sequentially or on a worker pool.
func TestMixedPayloadsIdenticalAcrossWorkers(t *testing.T) {
	seqRes, seqEvents := runMixed(t, 0)

	// The workload must genuinely mix all three representations.
	var words, boxed, quantum int
	for _, ev := range seqEvents {
		switch {
		case ev.Msg.IsWord():
			words++
		case ev.Msg.Quantum:
			quantum++
		default:
			boxed++
		}
	}
	if words == 0 || boxed == 0 || quantum == 0 {
		t.Fatalf("workload must mix word/boxed/quantum traffic, got %d/%d/%d", words, boxed, quantum)
	}
	if seqRes.QuantumBits == 0 || seqRes.QuantumBits >= seqRes.TotalBits {
		t.Fatalf("quantum accounting off: %d of %d bits", seqRes.QuantumBits, seqRes.TotalBits)
	}
	if seqRes.TotalMessages != len(seqEvents) {
		t.Fatalf("trace saw %d events for %d delivered messages", len(seqEvents), seqRes.TotalMessages)
	}

	for _, workers := range []int{1, 4} {
		res, events := runMixed(t, workers)
		if !reflect.DeepEqual(seqRes, res) {
			t.Errorf("Workers=%d: Result diverged from sequential:\nseq %+v\ngot %+v", workers, seqRes, res)
		}
		if !reflect.DeepEqual(seqEvents, events) {
			t.Errorf("Workers=%d: trace stream diverged (%d vs %d events)", workers, len(seqEvents), len(events))
		}
	}
}
