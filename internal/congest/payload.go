package congest

import "math"

// Bit-size helpers. The CONGEST model charges per bit; the helpers below give
// the sizes used uniformly across the algorithms in internal/dist so that the
// measured TotalBits of a run reflects the paper's accounting (IDs and
// weights are O(log n)-bit words).

// BitsForID returns the number of bits needed to name one of n distinct
// values (at least 1).
func BitsForID(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// BitsForInt returns the number of bits needed to represent the non-negative
// integer v (at least 1).
func BitsForInt(v int) int {
	if v < 0 {
		v = -v
	}
	if v <= 1 {
		return 1
	}
	return int(math.Floor(math.Log2(float64(v)))) + 1
}

// BitsForWeight is the fixed word size charged for one edge weight. Weights
// are real numbers in the paper; a 64-bit word is the standard encoding.
const BitsForWeight = 64

// BitsForBool is the size of a single flag.
const BitsForBool = 1

// NewMessage builds a message to the given neighbour with an explicit bit
// size. From is filled in by the simulator.
func NewMessage(to int, payload any, bits int) Message {
	return Message{To: to, Payload: payload, Bits: bits}
}

// NewQubitMessage builds a quantum-marked message carrying the given number
// of qubits. Qubits are charged against the same per-edge bandwidth B as
// classical bits (the paper's quantum CONGEST model), but are accounted
// separately in Result.QuantumBits.
func NewQubitMessage(to int, payload any, qubits int) Message {
	return Message{To: to, Payload: payload, Bits: qubits, Quantum: true}
}

// Broadcast builds one identical message per listed neighbour.
func Broadcast(neighbors []int, payload any, bits int) []Message {
	out := make([]Message, 0, len(neighbors))
	for _, v := range neighbors {
		out = append(out, NewMessage(v, payload, bits))
	}
	return out
}

// BroadcastAll builds one identical message per neighbour of ctx. It is the
// hot-path form of Broadcast(ctx.Neighbors(), ...): the same messages
// without first copying the neighbour list. The returned slice is owned by
// the caller and may be reused across rounds (the simulator never mutates a
// node's outbox).
func BroadcastAll(ctx *Context, payload any, bits int) []Message {
	out := make([]Message, ctx.Degree())
	for i := range out {
		out[i] = Message{To: ctx.NeighborAt(i), Payload: payload, Bits: bits}
	}
	return out
}
