package congest

import "math"

// Bit-size helpers. The CONGEST model charges per bit; the helpers below give
// the sizes used uniformly across the algorithms in internal/dist so that the
// measured TotalBits of a run reflects the paper's accounting (IDs and
// weights are O(log n)-bit words).

// BitsForID returns the number of bits needed to name one of n distinct
// values (at least 1).
func BitsForID(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// BitsForInt returns the number of bits needed to represent the non-negative
// integer v (at least 1).
func BitsForInt(v int) int {
	if v < 0 {
		v = -v
	}
	if v <= 1 {
		return 1
	}
	return int(math.Floor(math.Log2(float64(v)))) + 1
}

// BitsForWeight is the fixed word size charged for one edge weight. Weights
// are real numbers in the paper; a 64-bit word is the standard encoding.
const BitsForWeight = 64

// BitsForBool is the size of a single flag.
const BitsForBool = 1

// Word-encoded payloads. A message whose content fits two 64-bit words can
// travel inline in Message.W0/W1 under an algorithm-defined Kind tag instead
// of being boxed into Payload — no allocation when the message is built, no
// type assertion when it is delivered. The wire cost is whatever Bits says
// in either representation; the encoding never changes the accounting.
//
// Encoding conventions used across internal/dist:
//   - a small non-negative integer is stored directly in a word (Int0/Int1);
//   - a flag is stored as 0/1 (WordFromBool/Bool0);
//   - two node IDs share one word via PackIDs/UnpackIDs (32 bits each);
//   - a float64 travels as math.Float64bits in a word.
//
// KindBoxed is the zero value, so plain NewMessage/Broadcast payloads remain
// boxed without any change.
const KindBoxed uint8 = 0

// IsWord reports whether the message is word-encoded (Kind != KindBoxed).
func (m *Message) IsWord() bool { return m.Kind != KindBoxed }

// Int0 returns W0 as a small non-negative integer.
func (m *Message) Int0() int { return int(m.W0) }

// Int1 returns W1 as a small non-negative integer.
func (m *Message) Int1() int { return int(m.W1) }

// Bool0 returns W0 as a flag (non-zero means true).
func (m *Message) Bool0() bool { return m.W0 != 0 }

// Bool1 returns W1 as a flag (non-zero means true).
func (m *Message) Bool1() bool { return m.W1 != 0 }

// WordFromBool encodes a flag as a payload word.
func WordFromBool(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// PackIDs packs two node IDs into one payload word, 32 bits each. IDs are
// bounded by n, far below 2^32 for any simulable network.
func PackIDs(u, v int) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// UnpackIDs is the inverse of PackIDs.
func UnpackIDs(w uint64) (u, v int) { return int(w >> 32), int(uint32(w)) }

// NewMessage builds a boxed message to the given neighbour with an explicit
// bit size. From is filled in by the simulator.
func NewMessage(to int, payload any, bits int) Message {
	return Message{To: to, Payload: payload, Bits: bits}
}

// NewWordMessage builds a word-encoded message to the given neighbour: kind
// tags the encoding (an algorithm-defined constant >= 1), w0 and w1 are the
// inline payload words, and bits is the wire size charged, exactly as for a
// boxed message. From is filled in by the simulator.
func NewWordMessage(to int, kind uint8, w0, w1 uint64, bits int) Message {
	return Message{To: to, Kind: kind, W0: w0, W1: w1, Bits: bits}
}

// NewQubitMessage builds a quantum-marked message carrying the given number
// of qubits. Qubits are charged against the same per-edge bandwidth B as
// classical bits (the paper's quantum CONGEST model), but are accounted
// separately in Result.QuantumBits.
func NewQubitMessage(to int, payload any, qubits int) Message {
	return Message{To: to, Payload: payload, Bits: qubits, Quantum: true}
}

// Broadcast builds one identical message per listed neighbour.
func Broadcast(neighbors []int, payload any, bits int) []Message {
	out := make([]Message, 0, len(neighbors))
	for _, v := range neighbors {
		out = append(out, NewMessage(v, payload, bits))
	}
	return out
}

// BroadcastWords builds one identical word-encoded message per listed
// neighbour.
func BroadcastWords(neighbors []int, kind uint8, w0, w1 uint64, bits int) []Message {
	out := make([]Message, 0, len(neighbors))
	return BroadcastWordsInto(out, neighbors, kind, w0, w1, bits)
}

// BroadcastAll builds one identical message per neighbour of ctx. It is the
// hot-path form of Broadcast(ctx.Neighbors(), ...): the same messages
// without first copying the neighbour list. The returned slice is owned by
// the caller and may be reused across rounds (the simulator never mutates a
// node's outbox).
func BroadcastAll(ctx *Context, payload any, bits int) []Message {
	out := make([]Message, ctx.Degree())
	for i := range out {
		out[i] = Message{To: ctx.NeighborAt(i), Payload: payload, Bits: bits}
	}
	return out
}

// BroadcastAllWords is BroadcastAll for a word-encoded payload.
func BroadcastAllWords(ctx *Context, kind uint8, w0, w1 uint64, bits int) []Message {
	out := make([]Message, ctx.Degree())
	for i := range out {
		out[i] = Message{To: ctx.NeighborAt(i), Kind: kind, W0: w0, W1: w1, Bits: bits}
	}
	return out
}

// Append variants. The constructors above allocate a fresh slice per call;
// a node that sends every round should instead keep one outbox slice and
// append into it with the Into forms below — append against retained
// capacity allocates nothing, so steady-state message construction stays
// off the heap (pinned by allocs_test.go). The pattern is
//
//	n.outbox = congest.BroadcastAllWordsInto(n.outbox[:0], ctx, kind, w0, w1, bits)
//	return n.outbox, false
//
// which is safe because the simulator copies messages out of the outbox
// during the round's merge and never retains the slice.

// AppendMessage appends one boxed message to dst and returns the extended
// slice.
func AppendMessage(dst []Message, to int, payload any, bits int) []Message {
	return append(dst, Message{To: to, Payload: payload, Bits: bits})
}

// AppendWordMessage appends one word-encoded message to dst and returns the
// extended slice.
func AppendWordMessage(dst []Message, to int, kind uint8, w0, w1 uint64, bits int) []Message {
	return append(dst, Message{To: to, Kind: kind, W0: w0, W1: w1, Bits: bits})
}

// BroadcastInto appends one identical boxed message per listed neighbour to
// dst and returns the extended slice.
func BroadcastInto(dst []Message, neighbors []int, payload any, bits int) []Message {
	for _, v := range neighbors {
		dst = append(dst, Message{To: v, Payload: payload, Bits: bits})
	}
	return dst
}

// BroadcastWordsInto appends one identical word-encoded message per listed
// neighbour to dst and returns the extended slice.
func BroadcastWordsInto(dst []Message, neighbors []int, kind uint8, w0, w1 uint64, bits int) []Message {
	for _, v := range neighbors {
		dst = append(dst, Message{To: v, Kind: kind, W0: w0, W1: w1, Bits: bits})
	}
	return dst
}

// BroadcastAllInto appends one identical boxed message per neighbour of ctx
// to dst and returns the extended slice.
func BroadcastAllInto(dst []Message, ctx *Context, payload any, bits int) []Message {
	for i, deg := 0, ctx.Degree(); i < deg; i++ {
		dst = append(dst, Message{To: ctx.NeighborAt(i), Payload: payload, Bits: bits})
	}
	return dst
}

// BroadcastAllWordsInto appends one identical word-encoded message per
// neighbour of ctx to dst and returns the extended slice.
func BroadcastAllWordsInto(dst []Message, ctx *Context, kind uint8, w0, w1 uint64, bits int) []Message {
	for i, deg := 0, ctx.Degree(); i < deg; i++ {
		dst = append(dst, Message{To: ctx.NeighborAt(i), Kind: kind, W0: w0, W1: w1, Bits: bits})
	}
	return dst
}
