package congest

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// mixerNode sums everything it hears with a private random increment each
// round — a worst case for accidental cross-node state sharing.
type mixerNode struct {
	sum    int
	rounds int
}

func (m *mixerNode) Init(ctx *Context) { m.sum = ctx.ID() }

func (m *mixerNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	for _, msg := range inbox {
		if v, ok := msg.Payload.(int); ok {
			m.sum += v
		}
	}
	m.sum += ctx.Rand().Intn(8)
	if round >= m.rounds {
		ctx.SetOutput(m.sum)
		return nil, true
	}
	return Broadcast(ctx.Neighbors(), m.sum%1024, 10), false
}

// ring builds a cycle topology without importing internal/graph (which
// would create an import cycle in this package's tests).
type ring int

func (r ring) N() int { return int(r) }

func (r ring) Neighbors(v int) []int {
	n := int(r)
	return []int{(v + n - 1) % n, (v + 1) % n}
}

func (r ring) Weight(u, v int) (float64, bool) {
	n := int(r)
	if (u+1)%n == v || (v+1)%n == u {
		return 1, true
	}
	return 0, false
}

func TestWorkersProduceIdenticalResults(t *testing.T) {
	run := func(workers int) *Result {
		nw, err := NewNetwork(ring(37), 16)
		if err != nil {
			t.Fatal(err)
		}
		nw.SetSeed(9)
		nw.SetInput(5, 1000)
		res, err := nw.Run(func(*Context) Node { return &mixerNode{rounds: 20} }, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sequential := run(0)
	for _, workers := range []int{1, 2, 8, 64} {
		if got := run(workers); !reflect.DeepEqual(sequential, got) {
			t.Errorf("Workers=%d diverged from sequential:\nseq %+v\ngot %+v", workers, sequential, got)
		}
	}
}

// fuseNode panics at its trigger round on one node.
type fuseNode struct{ trigger bool }

func (f *fuseNode) Init(*Context) {}

func (f *fuseNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if f.trigger && round == 2 {
		panic("short circuit")
	}
	if round >= 3 {
		return nil, true
	}
	return Broadcast(ctx.Neighbors(), 0, 1), false
}

func TestNodePanicsPropagateDeterministically(t *testing.T) {
	// Nodes 4 and 11 both panic in round 2; every worker count must report
	// the lowest-ID panicking node with identical text, so failing runs
	// reproduce bit for bit across backends.
	for _, workers := range []int{0, 1, 8} {
		got := func() (p any) {
			defer func() { p = recover() }()
			nw, err := NewNetwork(ring(16), 16)
			if err != nil {
				t.Fatal(err)
			}
			nw.Run(func(ctx *Context) Node {
				return &fuseNode{trigger: ctx.ID() == 11 || ctx.ID() == 4}
			}, Options{Workers: workers})
			return nil
		}()
		if got == nil {
			t.Fatalf("Workers=%d: expected the node panic to propagate", workers)
		}
		want := "congest: node 4 panicked in round 2: short circuit"
		if msg, ok := got.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("Workers=%d: panic %v, want it to contain %q", workers, got, want)
		}
	}
}

func TestWorkersDeterministicAcrossRepeats(t *testing.T) {
	// The per-node random streams must not depend on scheduling: hammer the
	// parallel path repeatedly and require byte-identical outputs.
	var first map[int]any
	for i := 0; i < 10; i++ {
		nw, err := NewNetwork(ring(24), 16)
		if err != nil {
			t.Fatal(err)
		}
		nw.SetSeed(rand.New(rand.NewSource(4)).Int63())
		res, err := nw.Run(func(*Context) Node { return &mixerNode{rounds: 15} }, Options{Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res.Outputs
		} else if !reflect.DeepEqual(first, res.Outputs) {
			t.Fatalf("repeat %d produced different outputs", i)
		}
	}
}
