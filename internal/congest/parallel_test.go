package congest

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// mixerNode sums everything it hears with a private random increment each
// round — a worst case for accidental cross-node state sharing.
type mixerNode struct {
	sum    int
	rounds int
}

func (m *mixerNode) Init(ctx *Context) { m.sum = ctx.ID() }

func (m *mixerNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	for _, msg := range inbox {
		if v, ok := msg.Payload.(int); ok {
			m.sum += v
		}
	}
	m.sum += ctx.Rand().Intn(8)
	if round >= m.rounds {
		ctx.SetOutput(m.sum)
		return nil, true
	}
	return Broadcast(ctx.Neighbors(), m.sum%1024, 10), false
}

// ring builds a cycle topology without importing internal/graph (which
// would create an import cycle in this package's tests).
type ring int

func (r ring) N() int { return int(r) }

func (r ring) Neighbors(v int) []int {
	n := int(r)
	return []int{(v + n - 1) % n, (v + 1) % n}
}

func (r ring) Weight(u, v int) (float64, bool) {
	n := int(r)
	if (u+1)%n == v || (v+1)%n == u {
		return 1, true
	}
	return 0, false
}

func TestWorkersProduceIdenticalResults(t *testing.T) {
	run := func(workers int) *Result {
		nw, err := NewNetwork(ring(37), 16)
		if err != nil {
			t.Fatal(err)
		}
		nw.SetSeed(9)
		nw.SetInput(5, 1000)
		res, err := nw.Run(func(*Context) Node { return &mixerNode{rounds: 20} }, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sequential := run(0)
	for _, workers := range []int{1, 2, 8, 64} {
		if got := run(workers); !reflect.DeepEqual(sequential, got) {
			t.Errorf("Workers=%d diverged from sequential:\nseq %+v\ngot %+v", workers, sequential, got)
		}
	}
}

// hybridNode exercises every accounted quantity at once: classical and
// quantum messages of uneven sizes, per-round traffic splits, outputs, and
// private randomness. Used to pin full-Result equality across worker counts.
type hybridNode struct{ rounds int }

func (h *hybridNode) Init(*Context) {}

func (h *hybridNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if round > h.rounds {
		return nil, true
	}
	if round == h.rounds {
		ctx.SetOutput([2]int{ctx.ID(), len(inbox)})
	}
	var out []Message
	for i := 0; i < ctx.Degree(); i++ {
		u := ctx.NeighborAt(i)
		if (ctx.ID()+u+round)%3 == 0 {
			out = append(out, NewQubitMessage(u, round, 3+ctx.Rand().Intn(3)))
		} else {
			out = append(out, NewMessage(u, round, 2+(ctx.ID()+round)%5))
		}
	}
	return out, false
}

func TestWorkersIdenticalFullResult(t *testing.T) {
	// Bit-for-bit equality of the whole Result — rounds, message and bit
	// totals, the quantum split, the per-round traffic breakdown, the
	// per-edge maximum and the outputs map — between the sequential merge
	// and the pooled parallel merge.
	run := func(workers int) *Result {
		nw, err := NewNetwork(ring(53), 64)
		if err != nil {
			t.Fatal(err)
		}
		nw.SetSeed(17)
		res, err := nw.Run(func(*Context) Node { return &hybridNode{rounds: 24} },
			Options{Workers: workers, PerRound: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sequential := run(0)
	if sequential.QuantumBits == 0 || sequential.QuantumBits == sequential.TotalBits {
		t.Fatalf("workload must mix quantum and classical traffic, got %d of %d quantum",
			sequential.QuantumBits, sequential.TotalBits)
	}
	if len(sequential.PerRound) != sequential.Rounds {
		t.Fatalf("PerRound has %d entries for %d rounds", len(sequential.PerRound), sequential.Rounds)
	}
	for _, workers := range []int{1, 4} {
		if got := run(workers); !reflect.DeepEqual(sequential, got) {
			t.Errorf("Workers=%d diverged from sequential:\nseq %+v\ngot %+v", workers, sequential, got)
		}
	}
}

// roguePeer floods legally until round 3, when one designated node breaks a
// rule: addressing a non-neighbour or overrunning the bandwidth budget.
// Every node records an output in round 1, before the violation, so the
// partial result's Outputs map is non-trivial at error time.
type roguePeer struct {
	rogue    bool
	overrun  bool
	partner  int
	stranger int
}

func (r *roguePeer) Init(ctx *Context) {
	r.partner = ctx.NeighborAt(0)
	r.stranger = (ctx.ID() + ctx.N()/2) % ctx.N()
}

func (r *roguePeer) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if round == 1 {
		ctx.SetOutput(ctx.ID() * 10)
	}
	if r.rogue && round == 3 {
		if r.overrun {
			return []Message{NewMessage(r.partner, 0, 9), NewMessage(r.partner, 0, 9)}, false
		}
		return []Message{NewMessage(r.stranger, 0, 1)}, false
	}
	if round >= 5 {
		return nil, true
	}
	return []Message{NewMessage(r.partner, round, 4)}, false
}

func TestErrorPathsIdenticalAcrossWorkers(t *testing.T) {
	// A validation failure makes the parallel merge abandon the round and
	// replay it sequentially, so the partial Result and the error text must
	// match the sequential run exactly — and both must still collect the
	// outputs nodes had recorded before the violation.
	for _, overrun := range []bool{false, true} {
		run := func(workers int) (*Result, error) {
			nw, err := NewNetwork(ring(32), 16)
			if err != nil {
				t.Fatal(err)
			}
			return nw.Run(func(ctx *Context) Node {
				return &roguePeer{rogue: ctx.ID() == 7, overrun: overrun}
			}, Options{Workers: workers, PerRound: true})
		}
		seqRes, seqErr := run(0)
		if seqErr == nil {
			t.Fatalf("overrun=%v: expected a validation error", overrun)
		}
		wantErr := ErrNotNeighbor
		if overrun {
			wantErr = ErrBandwidthExceeded
		}
		if !errors.Is(seqErr, wantErr) {
			t.Fatalf("overrun=%v: got error %v, want %v", overrun, seqErr, wantErr)
		}
		if len(seqRes.Outputs) != 32 {
			t.Errorf("overrun=%v: error return collected %d outputs, want all 32",
				overrun, len(seqRes.Outputs))
		}
		for _, workers := range []int{1, 4} {
			gotRes, gotErr := run(workers)
			if gotErr == nil || gotErr.Error() != seqErr.Error() {
				t.Errorf("overrun=%v Workers=%d: error %v, want %v", overrun, workers, gotErr, seqErr)
			}
			if !reflect.DeepEqual(seqRes, gotRes) {
				t.Errorf("overrun=%v Workers=%d: partial result diverged:\nseq %+v\ngot %+v",
					overrun, workers, seqRes, gotRes)
			}
		}
	}
}

// fuseNode panics at its trigger round on one node.
type fuseNode struct{ trigger bool }

func (f *fuseNode) Init(*Context) {}

func (f *fuseNode) Round(ctx *Context, round int, inbox []Message) ([]Message, bool) {
	if f.trigger && round == 2 {
		panic("short circuit")
	}
	if round >= 3 {
		return nil, true
	}
	return Broadcast(ctx.Neighbors(), 0, 1), false
}

func TestNodePanicsPropagateDeterministically(t *testing.T) {
	// Nodes 4 and 11 both panic in round 2; every worker count must report
	// the lowest-ID panicking node with identical text, so failing runs
	// reproduce bit for bit across backends.
	for _, workers := range []int{0, 1, 8} {
		got := func() (p any) {
			defer func() { p = recover() }()
			nw, err := NewNetwork(ring(16), 16)
			if err != nil {
				t.Fatal(err)
			}
			nw.Run(func(ctx *Context) Node {
				return &fuseNode{trigger: ctx.ID() == 11 || ctx.ID() == 4}
			}, Options{Workers: workers})
			return nil
		}()
		if got == nil {
			t.Fatalf("Workers=%d: expected the node panic to propagate", workers)
		}
		want := "congest: node 4 panicked in round 2: short circuit"
		if msg, ok := got.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("Workers=%d: panic %v, want it to contain %q", workers, got, want)
		}
	}
}

func TestWorkersDeterministicAcrossRepeats(t *testing.T) {
	// The per-node random streams must not depend on scheduling: hammer the
	// parallel path repeatedly and require byte-identical outputs.
	var first map[int]any
	for i := 0; i < 10; i++ {
		nw, err := NewNetwork(ring(24), 16)
		if err != nil {
			t.Fatal(err)
		}
		nw.SetSeed(rand.New(rand.NewSource(4)).Int63())
		res, err := nw.Run(func(*Context) Node { return &mixerNode{rounds: 15} }, Options{Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res.Outputs
		} else if !reflect.DeepEqual(first, res.Outputs) {
			t.Fatalf("repeat %d produced different outputs", i)
		}
	}
}
