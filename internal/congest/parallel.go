package congest

import "fmt"

// The parallel execution path. With Options.Workers > 1 a run owns a pool of
// goroutines that lives from round 1 to termination; each round dispatches
// the same pre-built job closures to the pool, so the steady state allocates
// nothing. Nodes are claimed from a shared counter in chunks to amortise the
// atomic and keep neighbouring nodes' state on one worker's cache.
//
// The contract is bit-for-bit equality with the sequential path, argued in
// DESIGN.md ("The congest hot path"): stepping is trivially order-free (a
// node's Round touches only its own state and inbox), accounting folds
// per-worker sums and maxes in worker-index order, and delivery writes every
// message at the exact index the sequential append would have used, computed
// from the CSR edge index. Error rounds leave the parallel path entirely:
// the round is re-merged sequentially, so partial results and error text
// match the sequential run down to the byte.

// mergeChunk is the number of consecutive node IDs a worker claims per
// shared-counter increment.
const mergeChunk = 64

// mergeScratch is one worker's private accounting for a round, folded into
// the shared Result between phases. Padded so adjacent workers' counters do
// not share a cache line.
type mergeScratch struct {
	totalMessages int
	totalBits     int64
	quantumBits   int64
	classicalBits int64
	maxEdgeBits   int
	notAllDone    bool
	anyMessage    bool
	_             [64]byte
}

func (sc *mergeScratch) reset() {
	*sc = mergeScratch{}
}

// workerPool is a fixed set of goroutines that execute one job function at a
// time. run dispatches the job to every worker and blocks until all report
// back; the pool is reused across rounds and phases without spawning.
type workerPool struct {
	workers int
	jobs    []chan func(w int)
	done    chan struct{}
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{
		workers: workers,
		jobs:    make([]chan func(w int), workers),
		done:    make(chan struct{}, workers),
	}
	for w := 0; w < workers; w++ {
		ch := make(chan func(w int), 1)
		p.jobs[w] = ch
		go func(w int, ch chan func(w int)) {
			for job := range ch {
				job(w)
				p.done <- struct{}{}
			}
		}(w, ch)
	}
	return p
}

// run executes job(w) on every worker w and returns when all have finished.
func (p *workerPool) run(job func(w int)) {
	for _, ch := range p.jobs {
		ch <- job
	}
	for i := 0; i < p.workers; i++ {
		<-p.done
	}
}

// close terminates the pool's goroutines. The pool must be idle.
func (p *workerPool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

func panicText(v, round int, p any) string {
	return fmt.Sprintf("congest: node %d panicked in round %d: %v", v, round, p)
}

// claim hands the worker the next chunk of node IDs, [lo, hi); ok is false
// when the round's nodes are exhausted.
func (st *runState) claim() (lo, hi int, ok bool) {
	end := int(st.nextNode.Add(mergeChunk))
	lo = end - mergeChunk
	if lo >= st.n {
		return 0, 0, false
	}
	if end > st.n {
		end = st.n
	}
	return lo, end, true
}

// stepWorker steps claimed nodes, recording panics per node so the caller
// can re-raise the lowest ID deterministically.
func (st *runState) stepWorker(int) {
	for {
		lo, hi, ok := st.claim()
		if !ok {
			return
		}
		for v := lo; v < hi; v++ {
			if p := st.stepOne(v); p != nil {
				st.panics[v] = p
				st.panicked.Store(true)
			}
		}
	}
}

// mergePar is the parallel merge: three barrier-separated phases over the
// round's traffic.
//
//  1. validate: workers claim senders and charge each message against the
//     sender-private slots of the CSR edge index (edgeBits/edgeMsgs), summing
//     traffic into per-worker scratch. Slots of distinct senders are
//     distinct, so no two workers touch the same table entry.
//  2. size: workers claim receivers, turn each receiver's in-slot message
//     counts into inbox positions (basePos), length-reset its inbox buffer,
//     and zero the tables for the next round. Every slot is an in-slot of
//     exactly one receiver, so this phase is also write-disjoint.
//  3. scatter: workers claim senders again and write each message at
//     basePos[slot]+cursor[slot]++ — the position the sequential merge's
//     append would have chosen, since a receiver's in-slots are ordered by
//     sender ID and cursors advance in outbox order.
//
// A validation failure abandons the round's staged state and replays the
// whole merge sequentially (cold path), reproducing the sequential partial
// accounting and error text exactly.
func (st *runState) mergePar(round int) error {
	for w := range st.scratch {
		st.scratch[w].reset()
	}
	for w := range st.traceBufs {
		st.traceBufs[w] = st.traceBufs[w][:0]
	}
	st.mergeFailed.Store(false)
	st.nextNode.Store(0)
	st.pool.run(st.validateJob)

	if st.mergeFailed.Load() {
		// Cold path: wipe all staged state — including any half-recorded
		// trace buffers — and re-run the round's merge sequentially for
		// byte-identical partial results, trace stream and error.
		for i := range st.edgeBits {
			st.edgeBits[i] = 0
			st.edgeMsgs[i] = 0
		}
		st.touched = st.touched[:0]
		for w := range st.traceBufs {
			st.traceBufs[w] = st.traceBufs[w][:0]
		}
		for v := 0; v < st.n; v++ {
			st.next[v] = st.next[v][:0]
		}
		st.allDone = true
		st.anyMessage = false
		return st.mergeSeq(round)
	}

	res := st.res
	var traffic RoundTraffic
	for w := range st.scratch {
		sc := &st.scratch[w]
		if sc.notAllDone {
			st.allDone = false
		}
		if sc.anyMessage {
			st.anyMessage = true
		}
		res.TotalMessages += sc.totalMessages
		res.TotalBits += sc.totalBits
		res.QuantumBits += sc.quantumBits
		traffic.Messages += sc.totalMessages
		traffic.QuantumBits += sc.quantumBits
		traffic.ClassicalBits += sc.classicalBits
		if sc.maxEdgeBits > res.MaxEdgeBitsPerRound {
			res.MaxEdgeBitsPerRound = sc.maxEdgeBits
		}
	}
	if st.opts.PerRound {
		res.PerRound = append(res.PerRound, traffic)
	}
	if st.traceBufs != nil {
		st.emitTrace(round)
	}

	st.nextNode.Store(0)
	st.pool.run(st.sizeJob)
	st.nextNode.Store(0)
	st.pool.run(st.scatterJob)
	return nil
}

// validateWorker is phase 1 of mergePar.
func (st *runState) validateWorker(w int) {
	sc := &st.scratch[w]
	bandwidth := st.nw.bandwidth
	for {
		if st.mergeFailed.Load() {
			return
		}
		lo, hi, ok := st.claim()
		if !ok {
			return
		}
		for v := lo; v < hi; v++ {
			if !st.done[v] {
				sc.notAllDone = true
			}
			ctx := st.ctxs[v]
			base := st.offsets[v]
			out := st.outboxes[v]
			for i := range out {
				r := ctx.neighborRank(out[i].To)
				if r < 0 {
					st.mergeFailed.Store(true)
					return
				}
				bits := out[i].Bits
				if bits < 0 {
					bits = 0
				}
				slot := base + int32(r)
				total := int(st.edgeBits[slot]) + bits
				if total > bandwidth {
					st.mergeFailed.Store(true)
					return
				}
				st.edgeBits[slot] = int32(total)
				st.edgeMsgs[slot]++
				if st.traceBufs != nil {
					m := out[i]
					m.From = v
					m.Bits = bits
					st.traceBufs[w] = append(st.traceBufs[w], m)
				}
				sc.totalMessages++
				sc.totalBits += int64(bits)
				if out[i].Quantum {
					sc.quantumBits += int64(bits)
				} else {
					sc.classicalBits += int64(bits)
				}
				sc.anyMessage = true
				if total > sc.maxEdgeBits {
					sc.maxEdgeBits = total
				}
			}
		}
	}
}

// sizeWorker is phase 2 of mergePar.
func (st *runState) sizeWorker(int) {
	for {
		lo, hi, ok := st.claim()
		if !ok {
			return
		}
		for u := lo; u < hi; u++ {
			base := st.offsets[u]
			deg := st.offsets[u+1] - base
			var total int32
			for i := int32(0); i < deg; i++ {
				slot := st.inSlot[base+i]
				st.basePos[slot] = total
				st.cursor[slot] = 0
				total += st.edgeMsgs[slot]
				st.edgeMsgs[slot] = 0
				st.edgeBits[slot] = 0
			}
			buf := st.next[u]
			if cap(buf) < int(total) {
				buf = make([]Message, total)
			} else {
				buf = buf[:total]
			}
			st.next[u] = buf
		}
	}
}

// emitTrace replays the round's accepted messages to Options.Trace in the
// exact order the sequential merge emits them: ascending sender ID, outbox
// order within a sender. Each per-worker buffer is sorted by sender ID and
// the buffers partition the round's senders (claims hand each worker
// strictly increasing, disjoint node ranges), so a k-way merge on the head
// sender — draining each sender's contiguous run in one go — reproduces the
// sequential stream exactly. It runs on one goroutine, after the validate
// barrier, and allocates nothing.
func (st *runState) emitTrace(round int) {
	idx := st.traceIdx
	for w := range idx {
		idx[w] = 0
	}
	trace := st.opts.Trace
	for {
		best, bestFrom := -1, 0
		for w := range st.traceBufs {
			if idx[w] >= len(st.traceBufs[w]) {
				continue
			}
			if from := st.traceBufs[w][idx[w]].From; best < 0 || from < bestFrom {
				best, bestFrom = w, from
			}
		}
		if best < 0 {
			return
		}
		buf := st.traceBufs[best]
		i := idx[best]
		for i < len(buf) && buf[i].From == bestFrom {
			trace(round, buf[i])
			i++
		}
		idx[best] = i
	}
}

// scatterWorker is phase 3 of mergePar.
func (st *runState) scatterWorker(int) {
	for {
		lo, hi, ok := st.claim()
		if !ok {
			return
		}
		for v := lo; v < hi; v++ {
			ctx := st.ctxs[v]
			base := st.offsets[v]
			out := st.outboxes[v]
			for i := range out {
				msg := out[i]
				msg.From = v
				if msg.Bits < 0 {
					msg.Bits = 0
				}
				slot := base + int32(ctx.neighborRank(msg.To))
				pos := st.basePos[slot] + st.cursor[slot]
				st.cursor[slot]++
				st.next[msg.To][pos] = msg
			}
		}
	}
}
