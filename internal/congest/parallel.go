package congest

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// stepNodes invokes every node's Round for the given round, filling
// outboxes[v] and done[v]. With workers <= 1 the nodes step sequentially in
// ID order; otherwise up to workers goroutines claim nodes from a shared
// counter and step them concurrently.
//
// The concurrent path is observationally identical to the sequential one:
// a node's Round only reads its own state, its own Context and its own
// inbox, so the cross-node data flow (validation, bandwidth accounting,
// delivery, tracing) stays entirely inside the caller's sequential merge
// loop. Panics are part of the contract too: either path re-raises the
// panic of the lowest-ID panicking node, tagged with the node and round,
// so a failing run reports identically whatever the worker count or
// scheduling.
func stepNodes(nodes []Node, ctxs []*Context, round int, inboxes, outboxes [][]Message, done []bool, workers int) {
	n := len(nodes)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for v := 0; v < n; v++ {
			if p := stepOne(nodes, ctxs, round, inboxes, outboxes, done, v); p != nil {
				panic(panicText(v, round, p))
			}
		}
		return
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panickedV atomic.Bool
		panics    = make([]any, n)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := int(next.Add(1)) - 1
				if v >= n {
					return
				}
				if p := stepOne(nodes, ctxs, round, inboxes, outboxes, done, v); p != nil {
					panics[v] = p
					panickedV.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if panickedV.Load() {
		for v := 0; v < n; v++ {
			if panics[v] != nil {
				panic(panicText(v, round, panics[v]))
			}
		}
	}
}

func panicText(v, round int, p any) string {
	return fmt.Sprintf("congest: node %d panicked in round %d: %v", v, round, p)
}

// stepOne runs one node's Round and returns its panic value, if any, so
// the caller can surface it deterministically.
func stepOne(nodes []Node, ctxs []*Context, round int, inboxes, outboxes [][]Message, done []bool, v int) (panicked any) {
	defer func() { panicked = recover() }()
	outboxes[v], done[v] = nodes[v].Round(ctxs[v], round, inboxes[v])
	return nil
}
