// Package congest implements a synchronous message-passing simulator for the
// CONGEST(B) distributed computing model of Peleg, the model in which all of
// the paper's upper and lower bounds are stated (Section 2.1 and Appendix A.1).
//
// A network is an undirected graph whose vertices are processors. Computation
// proceeds in synchronous rounds. In each round every node may send at most B
// bits over each incident edge in each direction; messages sent in round r are
// delivered at the beginning of round r+1. Nodes have unbounded local
// computation power, so only the number of rounds and the number of bits on
// the wire are accounted for.
//
// The paper's *quantum* CONGEST model allows qubits and shared entanglement on
// top of this; since all the paper's quantitative statements are about round
// and bit counts, the simulator models communication classically and exposes
// exact accounting, while package quantum provides the quantum primitives
// (EPR pairs, teleportation, Grover search) whose costs are plugged into the
// same accounting (see DESIGN.md, substitution table).
//
// The simulator is engineered for scale: the round loop is steady-state
// allocation-free (CSR edge index, double-buffered inboxes/outboxes, a
// write-disjoint parallel merge behind Options.Workers), messages carry
// small contents word-encoded in two inline uint64s instead of a boxed
// Payload (see payload.go — Kind/W0/W1, with boxed `any` kept as the escape
// hatch), and a topology implementing IndexedTopology (such as *graph.CSR,
// built by the streaming graph.Builder) is adopted without per-node copies
// or sorts. Together these carry the same bit-exact accounting from the
// paper-sized networks up to million-node topologies; see DESIGN.md,
// "The congest hot path" and "Compact payloads and streaming topologies".
package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Default bandwidths used across benchmarks. CONGEST conventionally takes
// B = Θ(log n); DefaultBandwidth is a convenient fixed stand-in for
// moderate n.
const DefaultBandwidth = 32

// Message is a single message sent over one edge in one round.
//
// A message carries its content in one of two representations. Word-encoded
// messages (Kind != KindBoxed) pack the content into the two inline words W0
// and W1 — no heap allocation, no interface header, no type assertion on
// delivery — and are what the hot-path algorithms in internal/dist send.
// Boxed messages (Kind == KindBoxed) carry arbitrary structured content in
// Payload; they remain the escape hatch for payloads that do not fit two
// words (quantum state references, variable-length chunks). The simulator
// treats both identically: only Bits is charged against the bandwidth
// budget, and the merge, trace and accounting paths never look inside
// either representation.
type Message struct {
	// From and To are node IDs; To must be a neighbour of From.
	From, To int
	// Payload is the boxed message content, interpreted by the receiving
	// node. It is nil for word-encoded messages.
	Payload any
	// Bits is the size charged against the per-edge, per-round budget.
	Bits int
	// Quantum marks the message as carrying qubits rather than classical
	// bits. The paper's quantum CONGEST model (Section 2.1) charges qubits
	// against the same per-edge bandwidth B, so the budget check is
	// identical; the split only matters for accounting — Result reports
	// quantum and classical wire traffic separately, which is what the
	// Grover re-accounting backend (engine.NewQuantum) and any future
	// genuinely quantum node program feed on.
	Quantum bool
	// Kind tags a word-encoded message. KindBoxed (the zero value) means
	// the content is in Payload; any other value is algorithm-defined and
	// says how to decode W0/W1. Kinds are scoped to one node program — the
	// simulator never interprets them — so algorithms declare their own
	// small constants starting at 1.
	Kind uint8
	// W0 and W1 are the inline payload words of a word-encoded message.
	// The typed accessors (Int0, Int1, Bool0, …) and the pack helpers
	// (PackIDs, WordFromBool) in payload.go are the supported encodings.
	W0, W1 uint64
}

// Node is the per-processor state machine supplied by an algorithm.
//
// The simulator calls Init exactly once before the first round and then calls
// Round once per round until every node has reported done (and no messages
// remain in flight) or the round limit is reached.
type Node interface {
	// Init is called once with the node's static context before round 1.
	Init(ctx *Context)
	// Round is called at every round with the messages delivered this round
	// (i.e. sent during the previous round). It returns the messages to send
	// this round and whether the node has terminated. A terminated node is
	// still called in later rounds (it may simply return nil, true).
	Round(ctx *Context, round int, inbox []Message) (outbox []Message, done bool)
}

// NodeFactory builds the Node that will run at the given context's node.
// The context is fully initialised (ID, neighbours, input) when the factory
// is invoked.
type NodeFactory func(ctx *Context) Node

// Context is the static, per-node view of the network handed to a Node. It
// corresponds to the paper's assumption that a node knows its own ID, the IDs
// of its neighbours, the weights of its incident edges, the network size n,
// and its problem-specific input, and nothing else about the topology.
type Context struct {
	id        int
	n         int
	bandwidth int
	neighbors []int
	// weights[i] is the weight of the edge to neighbors[i]. The parallel
	// sorted slices replace the old per-node map so that the hot-path
	// lookups (IsNeighbor, EdgeWeight, the simulator's own edge indexing)
	// are a rank scan instead of a hash.
	weights []float64
	input   any
	// rng is built lazily from rngSeed on the first Rand() call: a
	// rand.Rand is several kilobytes of generator state, which at
	// million-node scale would dwarf the topology itself, and most node
	// programs never draw randomness.
	rngSeed int64
	rng     *rand.Rand

	output    any
	outputSet bool
}

// ID returns this node's identifier (0..n-1).
func (c *Context) ID() int { return c.id }

// N returns the number of nodes in the network.
func (c *Context) N() int { return c.n }

// Bandwidth returns the per-edge, per-round bit budget B.
func (c *Context) Bandwidth() int { return c.bandwidth }

// Degree returns the number of neighbours.
func (c *Context) Degree() int { return len(c.neighbors) }

// Neighbors returns the IDs of the neighbours in ascending order. The slice
// is a copy and may be modified by the caller.
func (c *Context) Neighbors() []int {
	out := make([]int, len(c.neighbors))
	copy(out, c.neighbors)
	return out
}

// NeighborAt returns the i-th neighbour in ascending-ID order, 0 <= i <
// Degree(). Together with Degree it is the zero-alloc form of Neighbors().
func (c *Context) NeighborAt(i int) int { return c.neighbors[i] }

// ForEachNeighbor calls f for every neighbour in ascending-ID order without
// copying the neighbour list.
func (c *Context) ForEachNeighbor(f func(v int)) {
	for _, v := range c.neighbors {
		f(v)
	}
}

// IsNeighbor reports whether v is adjacent to this node.
func (c *Context) IsNeighbor(v int) bool { return c.neighborRank(v) >= 0 }

// EdgeWeight returns the weight of the edge to neighbour v.
func (c *Context) EdgeWeight(v int) (float64, bool) {
	r := c.neighborRank(v)
	if r < 0 {
		return 0, false
	}
	return c.weights[r], true
}

// neighborRank returns v's index in the sorted neighbour list, or -1 when v
// is not a neighbour. Real topologies are dominated by small degrees, where
// a linear scan beats binary search; large degrees fall back to the search.
func (c *Context) neighborRank(v int) int {
	ns := c.neighbors
	if len(ns) <= 16 {
		for i, u := range ns {
			if u == v {
				return i
			}
		}
		return -1
	}
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns) && ns[lo] == v {
		return lo
	}
	return -1
}

// Input returns the problem-specific input assigned to this node via
// Network.SetInput (nil if none).
func (c *Context) Input() any { return c.input }

// Rand returns this node's private deterministic random source. Nodes at
// different IDs receive independent streams; re-running the same network
// with the same seed reproduces the same stream (the paper's algorithms are
// Monte Carlo, so reproducibility matters for tests). The source is
// constructed on first use, so runs whose node programs never draw
// randomness pay nothing for it.
func (c *Context) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.rngSeed))
	}
	return c.rng
}

// SetOutput records the node's final output for the problem being solved.
func (c *Context) SetOutput(v any) {
	c.output = v
	c.outputSet = true
}

// Output returns the node's recorded output and whether one was set.
func (c *Context) Output() (any, bool) { return c.output, c.outputSet }

// Errors reported by the simulator.
var (
	// ErrBandwidthExceeded reports that a node attempted to send more than B
	// bits over a single edge in a single round.
	ErrBandwidthExceeded = errors.New("congest: bandwidth exceeded")
	// ErrNotNeighbor reports a message addressed to a non-neighbour.
	ErrNotNeighbor = errors.New("congest: message to non-neighbour")
	// ErrNoTopology reports a network constructed without a topology.
	ErrNoTopology = errors.New("congest: nil topology")
	// ErrRoundLimit reports that the round limit was reached before all
	// nodes terminated.
	ErrRoundLimit = errors.New("congest: round limit reached before termination")
	// ErrCancelled reports that Options.Cancel requested a stop before all
	// nodes terminated.
	ErrCancelled = errors.New("congest: run cancelled")
)

// Topology is the read-only view of the underlying graph that the simulator
// needs. *graph.Graph satisfies it.
type Topology interface {
	N() int
	Neighbors(v int) []int
	Weight(u, v int) (float64, bool)
}

// IndexedTopology is the optional fast-path extension of Topology: a
// topology that can enumerate each vertex's incident edges by rank, in
// ascending neighbour-ID order, without allocating. For such a topology the
// simulator builds every per-node context from two shared flat arrays — no
// per-node Neighbors copy, no per-node sort, no per-edge Weight lookup —
// which is what makes million-node run construction feasible. *graph.CSR
// implements it; implementations must return neighbours in strictly
// ascending ID order or the simulator's edge index is undefined.
type IndexedTopology interface {
	Topology
	// Degree returns the number of neighbours of v.
	Degree(v int) int
	// Neighbor returns the i-th neighbour of v in ascending-ID order and
	// the weight of the connecting edge, 0 <= i < Degree(v).
	Neighbor(v, i int) (int, float64)
}

// Network is a configured CONGEST(B) network ready to run algorithms.
// A Network may be reused for several runs; per-run state lives in Run.
type Network struct {
	topo      Topology
	bandwidth int
	seed      int64
	inputs    map[int]any
}

// NewNetwork returns a network over the given topology with per-edge
// bandwidth B (bits per round per direction). If bandwidth <= 0,
// DefaultBandwidth is used.
func NewNetwork(topo Topology, bandwidth int) (*Network, error) {
	if topo == nil {
		return nil, ErrNoTopology
	}
	if bandwidth <= 0 {
		bandwidth = DefaultBandwidth
	}
	return &Network{
		topo:      topo,
		bandwidth: bandwidth,
		seed:      1,
		inputs:    make(map[int]any),
	}, nil
}

// SetSeed fixes the seed from which all per-node random streams are derived.
func (nw *Network) SetSeed(seed int64) { nw.seed = seed }

// SetInput assigns a problem-specific input to node id. It silently ignores
// out-of-range ids (they cannot correspond to any node).
func (nw *Network) SetInput(id int, input any) {
	if id < 0 || id >= nw.topo.N() {
		return
	}
	nw.inputs[id] = input
}

// ClearInputs removes all per-node inputs.
func (nw *Network) ClearInputs() { nw.inputs = make(map[int]any) }

// Bandwidth returns the configured per-edge bandwidth.
func (nw *Network) Bandwidth() int { return nw.bandwidth }

// Size returns the number of nodes.
func (nw *Network) Size() int { return nw.topo.N() }

// RoundTraffic splits one round's wire traffic into classical bits and
// qubits (messages sent with Message.Quantum set), plus the number of
// messages delivered — the per-round feed of the observability layer's
// histograms (internal/obs via engine.StageObserver).
type RoundTraffic struct {
	Messages      int
	ClassicalBits int64
	QuantumBits   int64
}

// Result summarises one run of an algorithm.
type Result struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Terminated reports whether every node signalled done within the limit.
	Terminated bool
	// TotalMessages is the number of messages delivered.
	TotalMessages int
	// TotalBits is the number of bits sent over all edges in all rounds,
	// classical and quantum together.
	TotalBits int64
	// QuantumBits is the subset of TotalBits carried by quantum-marked
	// messages (qubits on the wire).
	QuantumBits int64
	// PerRound is the round-by-round quantum-vs-classical split of the wire
	// traffic; PerRound[r-1] describes round r. It is recorded only when
	// Options.PerRound is set (aggregate QuantumBits always is).
	PerRound []RoundTraffic
	// MaxEdgeBitsPerRound is the maximum number of bits observed on any
	// single directed edge in any single round (always <= bandwidth).
	MaxEdgeBitsPerRound int
	// Outputs maps node ID to the output recorded via Context.SetOutput.
	Outputs map[int]any
}

// Options configures a run.
type Options struct {
	// MaxRounds limits the number of rounds; if the limit is hit before all
	// nodes terminate, Run returns the partial result and ErrRoundLimit.
	// Zero means a default of 64*n + 64 rounds.
	MaxRounds int
	// Trace, if non-nil, is invoked for every accepted message with the
	// round in which it was sent, in deterministic sender-ID order (outbox
	// order within a sender). It is used by the Simulation Theorem engine
	// (internal/simulation) to re-account each message to the party that
	// owns its sender, and by the Grover backend to measure stream volume.
	// Tracing no longer forces the sequential merge: under Workers > 1 the
	// validate phase records accepted messages into per-worker buffers and
	// the round's barrier folds them back into sender-ID order before the
	// callback runs, so the observed event stream is identical to a
	// sequential run's (the callback itself always executes on one
	// goroutine, after validation, never concurrently).
	Trace func(round int, msg Message)
	// Workers selects how many goroutines step nodes and merge traffic
	// within each round. Values <= 1 run sequentially. Any value produces
	// bit-for-bit identical Results: nodes only interact through messages
	// delivered at round boundaries, each node owns a private random
	// stream, every per-round quantity is a sum or max folded in
	// deterministic order, and messages are delivered at positions computed
	// from the CSR edge index, independent of worker scheduling.
	Workers int
	// Cancel, if non-nil, is polled once per round before the round's nodes
	// step; when it returns true, Run stops and returns the partial result
	// with ErrCancelled. It is how the experiment harness makes a
	// per-scenario timeout actually terminate the simulating goroutine
	// instead of abandoning it mid-sweep.
	Cancel func() bool
	// PerRound opts into recording Result.PerRound, the round-by-round
	// classical/quantum traffic split; long sweeps leave it off and pay
	// nothing for the breakdown.
	PerRound bool
}

// Run executes the algorithm produced by factory on every node and returns
// run statistics. It is deterministic for a fixed seed.
//
// The round loop is steady-state allocation-free: the per-run state below
// (CSR edge index, flat bandwidth tables, double-buffered inboxes) is built
// once, and each round only resets lengths and counters. A node's inbox
// slice is therefore valid only for the duration of the Round call that
// receives it — the buffer is reused for a later round's delivery (payload
// values themselves are never touched; only the []Message backing array is
// recycled). See DESIGN.md, "The congest hot path".
func (nw *Network) Run(factory NodeFactory, opts Options) (*Result, error) {
	st, err := newRunState(nw, factory, opts)
	if err != nil {
		return nil, err
	}
	defer st.close()
	return st.run()
}

// runState is the per-run working set of Network.Run. Everything in it is
// allocated before round 1 and reused by every round.
type runState struct {
	nw   *Network
	opts Options
	n    int
	res  *Result

	ctxs  []*Context
	nodes []Node
	done  []bool

	// inboxes are the messages delivered this round; next is the buffer
	// the current round's traffic is staged into. The two swap at every
	// round boundary, and next's per-node slices are length-reset, not
	// reallocated.
	inboxes  [][]Message
	next     [][]Message
	outboxes [][]Message

	// The CSR edge index. Directed edge (v -> u) has slot
	// offsets[v] + rank of u in v's sorted neighbour list; node v owns
	// slots offsets[v]..offsets[v+1]. inSlot is the reverse view used by
	// the parallel merge: in-edge i of receiver u (from its i-th smallest
	// neighbour) is slot inSlot[offsets[u]+i].
	offsets []int32
	inSlot  []int32

	// Flat per-directed-edge tables, indexed by slot and reset via the
	// touched lists so a quiet round costs O(traffic), not O(m). Bandwidths
	// beyond ~2^31 bits/round would overflow the int32 accumulation; the
	// budget check itself runs in int, so violations are still caught.
	edgeBits []int32 // bits charged this round
	edgeMsgs []int32 // messages staged this round
	basePos  []int32 // parallel merge: first inbox position of the slot
	cursor   []int32 // parallel merge: next free offset within the slot
	touched  []int32 // slots charged this round (sequential merge)

	// Per-round termination folds.
	round      int
	allDone    bool
	anyMessage bool

	// Parallel execution (Options.Workers > 1): a pool of goroutines that
	// lives for the whole run, per-worker accounting scratch, and the
	// phase closures built once so rounds allocate nothing.
	pool        *workerPool
	scratch     []mergeScratch
	panics      []any
	panicked    atomic.Bool
	mergeFailed atomic.Bool
	nextNode    atomic.Int64
	stepJob     func(w int)
	validateJob func(w int)
	sizeJob     func(w int)
	scatterJob  func(w int)
	// The parallel round tracer (Options.Trace with Workers > 1): each
	// worker appends the messages it accepts during the validate phase to
	// its own reused buffer. A worker's successive claims have strictly
	// increasing node ranges and every sender is claimed by exactly one
	// worker, so each buffer is sorted by sender ID and the buffers
	// partition the round's senders — emitTrace merges them back into the
	// exact sequential callback order after the barrier.
	traceBufs [][]Message
	traceIdx  []int
	// asymmetric marks a degenerate Topology whose neighbour lists are not
	// symmetric; the reverse edge index is unusable then, so the merge
	// stays on the sequential path.
	asymmetric bool
}

func newRunState(nw *Network, factory NodeFactory, opts Options) (*runState, error) {
	n := nw.topo.N()
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 64*n + 64
	}
	st := &runState{
		nw:   nw,
		opts: opts,
		n:    n,
		res:  &Result{Outputs: make(map[int]any, n)},
	}

	// Contexts are slab-allocated: one backing array instead of n small
	// heap objects. An IndexedTopology additionally gets its neighbour and
	// weight lists carved out of two shared flat arrays (already sorted by
	// contract), skipping the per-node copy/sort/Weight-lookup detour of
	// the generic path.
	st.ctxs = make([]*Context, n)
	st.nodes = make([]Node, n)
	ctxSlab := make([]Context, n)
	if ix, ok := nw.topo.(IndexedTopology); ok {
		total := 0
		for v := 0; v < n; v++ {
			total += ix.Degree(v)
		}
		flatNbrs := make([]int, total)
		flatWts := make([]float64, total)
		pos := 0
		for v := 0; v < n; v++ {
			deg := ix.Degree(v)
			nbrs := flatNbrs[pos : pos+deg : pos+deg]
			wts := flatWts[pos : pos+deg : pos+deg]
			for i := 0; i < deg; i++ {
				nbrs[i], wts[i] = ix.Neighbor(v, i)
			}
			pos += deg
			ctxSlab[v] = Context{
				id:        v,
				n:         n,
				bandwidth: nw.bandwidth,
				neighbors: nbrs,
				weights:   wts,
				input:     nw.inputs[v],
				rngSeed:   nw.seed*1_000_003 + int64(v),
			}
			st.ctxs[v] = &ctxSlab[v]
		}
	} else {
		for v := 0; v < n; v++ {
			nbrs := nw.topo.Neighbors(v)
			sort.Ints(nbrs)
			neighbors := make([]int, 0, len(nbrs))
			weights := make([]float64, 0, len(nbrs))
			for _, u := range nbrs {
				if w, ok := nw.topo.Weight(v, u); ok {
					neighbors = append(neighbors, u)
					weights = append(weights, w)
				}
			}
			ctxSlab[v] = Context{
				id:        v,
				n:         n,
				bandwidth: nw.bandwidth,
				neighbors: neighbors,
				weights:   weights,
				input:     nw.inputs[v],
				rngSeed:   nw.seed*1_000_003 + int64(v),
			}
			st.ctxs[v] = &ctxSlab[v]
		}
	}
	for v := 0; v < n; v++ {
		st.nodes[v] = factory(st.ctxs[v])
		if st.nodes[v] == nil {
			return nil, fmt.Errorf("congest: factory returned nil node for id %d", v)
		}
	}
	for v := 0; v < n; v++ {
		st.nodes[v].Init(st.ctxs[v])
	}

	// CSR edge index over the contexts' sorted neighbour lists.
	st.offsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		st.offsets[v+1] = st.offsets[v] + int32(len(st.ctxs[v].neighbors))
	}
	slots := st.offsets[n]
	st.inSlot = make([]int32, slots)
	for u := 0; u < n; u++ {
		for i, v := range st.ctxs[u].neighbors {
			r := st.ctxs[v].neighborRank(u)
			if r < 0 {
				st.asymmetric = true
				continue
			}
			st.inSlot[st.offsets[u]+int32(i)] = st.offsets[v] + int32(r)
		}
	}
	st.edgeBits = make([]int32, slots)
	st.edgeMsgs = make([]int32, slots)
	st.basePos = make([]int32, slots)
	st.cursor = make([]int32, slots)

	st.inboxes = make([][]Message, n)
	st.next = make([][]Message, n)
	st.outboxes = make([][]Message, n)
	st.done = make([]bool, n)

	workers := opts.Workers
	if workers > n {
		workers = n
	}
	if workers > 1 {
		st.pool = newWorkerPool(workers)
		st.scratch = make([]mergeScratch, workers)
		st.panics = make([]any, n)
		st.stepJob = st.stepWorker
		st.validateJob = st.validateWorker
		st.sizeJob = st.sizeWorker
		st.scatterJob = st.scatterWorker
		if opts.Trace != nil {
			st.traceBufs = make([][]Message, workers)
			st.traceIdx = make([]int, workers)
		}
	}
	return st, nil
}

// close releases the worker pool; it is safe on the sequential path.
func (st *runState) close() {
	if st.pool != nil {
		st.pool.close()
	}
}

func (st *runState) run() (*Result, error) {
	res := st.res
	for round := 1; round <= st.opts.MaxRounds; round++ {
		if st.opts.Cancel != nil && st.opts.Cancel() {
			st.collectOutputs()
			return res, fmt.Errorf("%w: before round %d", ErrCancelled, round)
		}
		res.Rounds = round
		st.step(round)
		if err := st.merge(round); err != nil {
			st.collectOutputs()
			return res, err
		}
		st.inboxes, st.next = st.next, st.inboxes
		if st.allDone && !st.anyMessage {
			res.Terminated = true
			break
		}
	}
	st.collectOutputs()
	if !res.Terminated {
		return res, fmt.Errorf("%w: after %d rounds", ErrRoundLimit, res.Rounds)
	}
	return res, nil
}

// collectOutputs copies every node's recorded output into the result. It
// runs on every exit path — success, round limit, cancellation and message
// validation errors alike — so partial results always carry whatever the
// nodes managed to decide.
func (st *runState) collectOutputs() {
	for v := 0; v < st.n; v++ {
		if out, ok := st.ctxs[v].Output(); ok {
			st.res.Outputs[v] = out
		}
	}
}

// step invokes every node's Round for the given round, filling outboxes
// and done.
func (st *runState) step(round int) {
	st.round = round
	if st.pool == nil {
		for v := 0; v < st.n; v++ {
			if p := st.stepOne(v); p != nil {
				panic(panicText(v, round, p))
			}
		}
		return
	}
	st.panicked.Store(false)
	st.nextNode.Store(0)
	st.pool.run(st.stepJob)
	if st.panicked.Load() {
		// Re-raise the panic of the lowest-ID panicking node, so a failing
		// run reports identically whatever the worker count or scheduling.
		for v := 0; v < st.n; v++ {
			if st.panics[v] != nil {
				panic(panicText(v, round, st.panics[v]))
			}
		}
	}
}

// stepOne runs one node's Round and returns its panic value, if any, so the
// caller can surface it deterministically.
func (st *runState) stepOne(v int) (panicked any) {
	defer func() { panicked = recover() }()
	st.outboxes[v], st.done[v] = st.nodes[v].Round(st.ctxs[v], st.round, st.inboxes[v])
	return nil
}

// merge validates, accounts and delivers the round's traffic. The parallel
// path requires the reverse edge index, so asymmetric topologies stay
// sequential; tracing runs on either path (see the parallel round tracer in
// parallel.go).
func (st *runState) merge(round int) error {
	st.allDone = true
	st.anyMessage = false
	if st.pool == nil || st.asymmetric {
		for v := 0; v < st.n; v++ {
			st.next[v] = st.next[v][:0]
		}
		return st.mergeSeq(round)
	}
	return st.mergePar(round)
}

// mergeSeq is the sequential merge: one pass over senders in ID order,
// appending into the reused next-inbox buffers. It is also the reference
// semantics the parallel path replays on its (cold) error paths, so the two
// return bit-for-bit identical partial results.
func (st *runState) mergeSeq(round int) error {
	res := st.res
	bandwidth := st.nw.bandwidth
	var traffic RoundTraffic
	for v := 0; v < st.n; v++ {
		if !st.done[v] {
			st.allDone = false
		}
		ctx := st.ctxs[v]
		base := st.offsets[v]
		for _, msg := range st.outboxes[v] {
			msg.From = v
			r := ctx.neighborRank(msg.To)
			if r < 0 {
				st.resetEdgeTables()
				return fmt.Errorf("%w: node %d -> %d in round %d", ErrNotNeighbor, v, msg.To, round)
			}
			if msg.Bits < 0 {
				msg.Bits = 0
			}
			slot := base + int32(r)
			if st.edgeMsgs[slot] == 0 {
				st.touched = append(st.touched, slot)
			}
			total := int(st.edgeBits[slot]) + msg.Bits
			if total > bandwidth {
				st.resetEdgeTables()
				return fmt.Errorf("%w: node %d -> %d sent %d bits in round %d (B=%d)",
					ErrBandwidthExceeded, v, msg.To, total, round, bandwidth)
			}
			st.edgeBits[slot] = int32(total)
			st.edgeMsgs[slot]++
			st.next[msg.To] = append(st.next[msg.To], msg)
			traffic.Messages++
			res.TotalMessages++
			res.TotalBits += int64(msg.Bits)
			if msg.Quantum {
				res.QuantumBits += int64(msg.Bits)
				traffic.QuantumBits += int64(msg.Bits)
			} else {
				traffic.ClassicalBits += int64(msg.Bits)
			}
			st.anyMessage = true
			if st.opts.Trace != nil {
				st.opts.Trace(round, msg)
			}
			if total > res.MaxEdgeBitsPerRound {
				res.MaxEdgeBitsPerRound = total
			}
		}
	}
	if st.opts.PerRound {
		res.PerRound = append(res.PerRound, traffic)
	}
	st.resetEdgeTables()
	return nil
}

// resetEdgeTables zeroes only the slots the round actually charged, so the
// per-round cost tracks traffic rather than graph size.
func (st *runState) resetEdgeTables() {
	for _, slot := range st.touched {
		st.edgeBits[slot] = 0
		st.edgeMsgs[slot] = 0
	}
	st.touched = st.touched[:0]
}
