// Package congest implements a synchronous message-passing simulator for the
// CONGEST(B) distributed computing model of Peleg, the model in which all of
// the paper's upper and lower bounds are stated (Section 2.1 and Appendix A.1).
//
// A network is an undirected graph whose vertices are processors. Computation
// proceeds in synchronous rounds. In each round every node may send at most B
// bits over each incident edge in each direction; messages sent in round r are
// delivered at the beginning of round r+1. Nodes have unbounded local
// computation power, so only the number of rounds and the number of bits on
// the wire are accounted for.
//
// The paper's *quantum* CONGEST model allows qubits and shared entanglement on
// top of this; since all the paper's quantitative statements are about round
// and bit counts, the simulator models communication classically and exposes
// exact accounting, while package quantum provides the quantum primitives
// (EPR pairs, teleportation, Grover search) whose costs are plugged into the
// same accounting (see DESIGN.md, substitution table).
package congest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Default bandwidths used across benchmarks. CONGEST conventionally takes
// B = Θ(log n); DefaultBandwidth is a convenient fixed stand-in for
// moderate n.
const DefaultBandwidth = 32

// Message is a single message sent over one edge in one round.
//
// Payload is opaque to the simulator; Bits is the number of bits the payload
// occupies on the wire and is what the bandwidth limit is charged against.
// Helper constructors in this package compute Bits for common payloads.
type Message struct {
	// From and To are node IDs; To must be a neighbour of From.
	From, To int
	// Payload is the message content, interpreted by the receiving node.
	Payload any
	// Bits is the size charged against the per-edge, per-round budget.
	Bits int
	// Quantum marks the message as carrying qubits rather than classical
	// bits. The paper's quantum CONGEST model (Section 2.1) charges qubits
	// against the same per-edge bandwidth B, so the budget check is
	// identical; the split only matters for accounting — Result reports
	// quantum and classical wire traffic separately, which is what the
	// Grover re-accounting backend (engine.NewQuantum) and any future
	// genuinely quantum node program feed on.
	Quantum bool
}

// Node is the per-processor state machine supplied by an algorithm.
//
// The simulator calls Init exactly once before the first round and then calls
// Round once per round until every node has reported done (and no messages
// remain in flight) or the round limit is reached.
type Node interface {
	// Init is called once with the node's static context before round 1.
	Init(ctx *Context)
	// Round is called at every round with the messages delivered this round
	// (i.e. sent during the previous round). It returns the messages to send
	// this round and whether the node has terminated. A terminated node is
	// still called in later rounds (it may simply return nil, true).
	Round(ctx *Context, round int, inbox []Message) (outbox []Message, done bool)
}

// NodeFactory builds the Node that will run at the given context's node.
// The context is fully initialised (ID, neighbours, input) when the factory
// is invoked.
type NodeFactory func(ctx *Context) Node

// Context is the static, per-node view of the network handed to a Node. It
// corresponds to the paper's assumption that a node knows its own ID, the IDs
// of its neighbours, the weights of its incident edges, the network size n,
// and its problem-specific input, and nothing else about the topology.
type Context struct {
	id        int
	n         int
	bandwidth int
	neighbors []int
	weights   map[int]float64
	input     any
	rng       *rand.Rand

	output    any
	outputSet bool
}

// ID returns this node's identifier (0..n-1).
func (c *Context) ID() int { return c.id }

// N returns the number of nodes in the network.
func (c *Context) N() int { return c.n }

// Bandwidth returns the per-edge, per-round bit budget B.
func (c *Context) Bandwidth() int { return c.bandwidth }

// Degree returns the number of neighbours.
func (c *Context) Degree() int { return len(c.neighbors) }

// Neighbors returns the IDs of the neighbours in ascending order. The slice
// is a copy and may be modified by the caller.
func (c *Context) Neighbors() []int {
	out := make([]int, len(c.neighbors))
	copy(out, c.neighbors)
	return out
}

// IsNeighbor reports whether v is adjacent to this node.
func (c *Context) IsNeighbor(v int) bool {
	_, ok := c.weights[v]
	return ok
}

// EdgeWeight returns the weight of the edge to neighbour v.
func (c *Context) EdgeWeight(v int) (float64, bool) {
	w, ok := c.weights[v]
	return w, ok
}

// Input returns the problem-specific input assigned to this node via
// Network.SetInput (nil if none).
func (c *Context) Input() any { return c.input }

// Rand returns this node's private deterministic random source. Nodes at
// different IDs receive independent streams; re-running the same network
// with the same seed reproduces the same stream (the paper's algorithms are
// Monte Carlo, so reproducibility matters for tests).
func (c *Context) Rand() *rand.Rand { return c.rng }

// SetOutput records the node's final output for the problem being solved.
func (c *Context) SetOutput(v any) {
	c.output = v
	c.outputSet = true
}

// Output returns the node's recorded output and whether one was set.
func (c *Context) Output() (any, bool) { return c.output, c.outputSet }

// Errors reported by the simulator.
var (
	// ErrBandwidthExceeded reports that a node attempted to send more than B
	// bits over a single edge in a single round.
	ErrBandwidthExceeded = errors.New("congest: bandwidth exceeded")
	// ErrNotNeighbor reports a message addressed to a non-neighbour.
	ErrNotNeighbor = errors.New("congest: message to non-neighbour")
	// ErrNoTopology reports a network constructed without a topology.
	ErrNoTopology = errors.New("congest: nil topology")
	// ErrRoundLimit reports that the round limit was reached before all
	// nodes terminated.
	ErrRoundLimit = errors.New("congest: round limit reached before termination")
	// ErrCancelled reports that Options.Cancel requested a stop before all
	// nodes terminated.
	ErrCancelled = errors.New("congest: run cancelled")
)

// Topology is the read-only view of the underlying graph that the simulator
// needs. *graph.Graph satisfies it.
type Topology interface {
	N() int
	Neighbors(v int) []int
	Weight(u, v int) (float64, bool)
}

// Network is a configured CONGEST(B) network ready to run algorithms.
// A Network may be reused for several runs; per-run state lives in Run.
type Network struct {
	topo      Topology
	bandwidth int
	seed      int64
	inputs    map[int]any
}

// NewNetwork returns a network over the given topology with per-edge
// bandwidth B (bits per round per direction). If bandwidth <= 0,
// DefaultBandwidth is used.
func NewNetwork(topo Topology, bandwidth int) (*Network, error) {
	if topo == nil {
		return nil, ErrNoTopology
	}
	if bandwidth <= 0 {
		bandwidth = DefaultBandwidth
	}
	return &Network{
		topo:      topo,
		bandwidth: bandwidth,
		seed:      1,
		inputs:    make(map[int]any),
	}, nil
}

// SetSeed fixes the seed from which all per-node random streams are derived.
func (nw *Network) SetSeed(seed int64) { nw.seed = seed }

// SetInput assigns a problem-specific input to node id. It silently ignores
// out-of-range ids (they cannot correspond to any node).
func (nw *Network) SetInput(id int, input any) {
	if id < 0 || id >= nw.topo.N() {
		return
	}
	nw.inputs[id] = input
}

// ClearInputs removes all per-node inputs.
func (nw *Network) ClearInputs() { nw.inputs = make(map[int]any) }

// Bandwidth returns the configured per-edge bandwidth.
func (nw *Network) Bandwidth() int { return nw.bandwidth }

// Size returns the number of nodes.
func (nw *Network) Size() int { return nw.topo.N() }

// RoundTraffic splits one round's wire traffic into classical bits and
// qubits (messages sent with Message.Quantum set).
type RoundTraffic struct {
	ClassicalBits int64
	QuantumBits   int64
}

// Result summarises one run of an algorithm.
type Result struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Terminated reports whether every node signalled done within the limit.
	Terminated bool
	// TotalMessages is the number of messages delivered.
	TotalMessages int
	// TotalBits is the number of bits sent over all edges in all rounds,
	// classical and quantum together.
	TotalBits int64
	// QuantumBits is the subset of TotalBits carried by quantum-marked
	// messages (qubits on the wire).
	QuantumBits int64
	// PerRound is the round-by-round quantum-vs-classical split of the wire
	// traffic; PerRound[r-1] describes round r. It is recorded only when
	// Options.PerRound is set (aggregate QuantumBits always is).
	PerRound []RoundTraffic
	// MaxEdgeBitsPerRound is the maximum number of bits observed on any
	// single directed edge in any single round (always <= bandwidth).
	MaxEdgeBitsPerRound int
	// Outputs maps node ID to the output recorded via Context.SetOutput.
	Outputs map[int]any
}

// Options configures a run.
type Options struct {
	// MaxRounds limits the number of rounds; if the limit is hit before all
	// nodes terminate, Run returns the partial result and ErrRoundLimit.
	// Zero means a default of 64*n + 64 rounds.
	MaxRounds int
	// Trace, if non-nil, is invoked for every accepted message with the
	// round in which it was sent. It is used by the Simulation Theorem
	// engine (internal/simulation) to re-account each message to the party
	// that owns its sender.
	Trace func(round int, msg Message)
	// Workers selects how many goroutines step nodes within each round.
	// Values <= 1 step nodes sequentially. Any value produces bit-for-bit
	// identical Results: nodes only interact through messages delivered at
	// round boundaries, each node owns a private random stream, and message
	// validation, accounting and delivery always happen sequentially in
	// node-ID order after all nodes of the round have stepped.
	Workers int
	// Cancel, if non-nil, is polled once per round before the round's nodes
	// step; when it returns true, Run stops and returns the partial result
	// with ErrCancelled. It is how the experiment harness makes a
	// per-scenario timeout actually terminate the simulating goroutine
	// instead of abandoning it mid-sweep.
	Cancel func() bool
	// PerRound opts into recording Result.PerRound, the round-by-round
	// classical/quantum traffic split; long sweeps leave it off and pay
	// nothing for the breakdown.
	PerRound bool
}

type directedEdge struct{ from, to int }

// Run executes the algorithm produced by factory on every node and returns
// run statistics. It is deterministic for a fixed seed.
func (nw *Network) Run(factory NodeFactory, opts Options) (*Result, error) {
	n := nw.topo.N()
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64*n + 64
	}

	ctxs := make([]*Context, n)
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		neighbors := nw.topo.Neighbors(v)
		sort.Ints(neighbors)
		weights := make(map[int]float64, len(neighbors))
		for _, u := range neighbors {
			if w, ok := nw.topo.Weight(v, u); ok {
				weights[u] = w
			}
		}
		ctxs[v] = &Context{
			id:        v,
			n:         n,
			bandwidth: nw.bandwidth,
			neighbors: neighbors,
			weights:   weights,
			input:     nw.inputs[v],
			rng:       rand.New(rand.NewSource(nw.seed*1_000_003 + int64(v))),
		}
		nodes[v] = factory(ctxs[v])
		if nodes[v] == nil {
			return nil, fmt.Errorf("congest: factory returned nil node for id %d", v)
		}
	}
	for v := 0; v < n; v++ {
		nodes[v].Init(ctxs[v])
	}

	res := &Result{Outputs: make(map[int]any, n)}
	inboxes := make([][]Message, n)
	outboxes := make([][]Message, n)
	done := make([]bool, n)

	for round := 1; round <= maxRounds; round++ {
		if opts.Cancel != nil && opts.Cancel() {
			for v := 0; v < n; v++ {
				if out, ok := ctxs[v].Output(); ok {
					res.Outputs[v] = out
				}
			}
			return res, fmt.Errorf("%w: before round %d", ErrCancelled, round)
		}
		res.Rounds = round
		stepNodes(nodes, ctxs, round, inboxes, outboxes, done, opts.Workers)
		nextInboxes := make([][]Message, n)
		edgeBits := make(map[directedEdge]int)
		traffic := RoundTraffic{}
		allDone := true
		anyMessage := false

		for v := 0; v < n; v++ {
			if !done[v] {
				allDone = false
			}
			for _, msg := range outboxes[v] {
				msg.From = v
				if !ctxs[v].IsNeighbor(msg.To) {
					return res, fmt.Errorf("%w: node %d -> %d in round %d", ErrNotNeighbor, v, msg.To, round)
				}
				if msg.Bits < 0 {
					msg.Bits = 0
				}
				key := directedEdge{from: v, to: msg.To}
				edgeBits[key] += msg.Bits
				if edgeBits[key] > nw.bandwidth {
					return res, fmt.Errorf("%w: node %d -> %d sent %d bits in round %d (B=%d)",
						ErrBandwidthExceeded, v, msg.To, edgeBits[key], round, nw.bandwidth)
				}
				nextInboxes[msg.To] = append(nextInboxes[msg.To], msg)
				res.TotalMessages++
				res.TotalBits += int64(msg.Bits)
				if msg.Quantum {
					res.QuantumBits += int64(msg.Bits)
					traffic.QuantumBits += int64(msg.Bits)
				} else {
					traffic.ClassicalBits += int64(msg.Bits)
				}
				anyMessage = true
				if opts.Trace != nil {
					opts.Trace(round, msg)
				}
				if edgeBits[key] > res.MaxEdgeBitsPerRound {
					res.MaxEdgeBitsPerRound = edgeBits[key]
				}
			}
		}

		if opts.PerRound {
			res.PerRound = append(res.PerRound, traffic)
		}
		inboxes = nextInboxes
		if allDone && !anyMessage {
			res.Terminated = true
			break
		}
	}

	for v := 0; v < n; v++ {
		if out, ok := ctxs[v].Output(); ok {
			res.Outputs[v] = out
		}
	}
	if !res.Terminated {
		return res, fmt.Errorf("%w: after %d rounds", ErrRoundLimit, res.Rounds)
	}
	return res, nil
}
