package congest

import (
	"fmt"
	"testing"

	"qdc/internal/graph"
)

// measureRunAllocs returns the average heap allocations of one full Run of
// the flood workload for the given round count.
func measureRunAllocs(t *testing.T, topo Topology, workers, rounds int) float64 {
	t.Helper()
	nw, err := NewNetwork(topo, 64)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(*Context) Node { return &benchFloodNode{rounds: rounds} }
	opts := Options{MaxRounds: rounds + 2, Workers: workers}
	return testing.AllocsPerRun(5, func() {
		if _, err := nw.Run(factory, opts); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAppendConstructorsAllocFree pins the contract the Into constructors
// advertise: appending into a slice with retained capacity allocates nothing,
// so a node that keeps one outbox across rounds builds its messages entirely
// off the heap. The boxed variants are measured with a pre-boxed payload —
// boxing itself is the caller's business; the constructors must add nothing.
func TestAppendConstructorsAllocFree(t *testing.T) {
	nw, err := NewNetwork(graph.Star(8), 64)
	if err != nil {
		t.Fatal(err)
	}
	var hub *Context
	if _, err := nw.Run(func(ctx *Context) Node {
		if ctx.ID() == 0 {
			hub = ctx
		}
		return &benchFloodNode{rounds: 0}
	}, Options{MaxRounds: 4}); err != nil {
		t.Fatal(err)
	}
	neighbors := hub.Neighbors()
	var payload any = 1
	dst := make([]Message, 0, 64)
	cases := map[string]func(){
		"AppendMessage":         func() { dst = AppendMessage(dst[:0], 1, payload, 8) },
		"AppendWordMessage":     func() { dst = AppendWordMessage(dst[:0], 1, 1, 7, 0, 8) },
		"BroadcastInto":         func() { dst = BroadcastInto(dst[:0], neighbors, payload, 8) },
		"BroadcastWordsInto":    func() { dst = BroadcastWordsInto(dst[:0], neighbors, 1, 7, 0, 8) },
		"BroadcastAllInto":      func() { dst = BroadcastAllInto(dst[:0], hub, payload, 8) },
		"BroadcastAllWordsInto": func() { dst = BroadcastAllWordsInto(dst[:0], hub, 1, 7, 0, 8) },
	}
	for name, f := range cases {
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s: %.1f allocs per call into retained capacity, want 0", name, allocs)
		}
	}
}

// TestRoundLoopSteadyStateAllocFree pins the tentpole guarantee: once a
// run's buffers have warmed up (a handful of rounds), extra rounds allocate
// nothing. Two runs of the same workload that differ only in round count
// isolate the steady state — the per-run setup cost cancels in the
// difference, so (allocs(long) - allocs(short)) / extra rounds must be ~0
// on both the sequential and the pooled parallel path.
func TestRoundLoopSteadyStateAllocFree(t *testing.T) {
	topo := graph.Grid(24, 24)
	const short, long = 8, 104
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := measureRunAllocs(t, topo, workers, short)
			grown := measureRunAllocs(t, topo, workers, long)
			perRound := (grown - base) / float64(long-short)
			if perRound > 0.5 {
				t.Errorf("steady state allocates %.2f objects/round (short run %.0f, long run %.0f); want 0",
					perRound, base, grown)
			}
		})
	}
}
