package congest

import (
	"fmt"
	"testing"

	"qdc/internal/graph"
)

// measureRunAllocs returns the average heap allocations of one full Run of
// the flood workload for the given round count.
func measureRunAllocs(t *testing.T, topo Topology, workers, rounds int) float64 {
	t.Helper()
	nw, err := NewNetwork(topo, 64)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(*Context) Node { return &benchFloodNode{rounds: rounds} }
	opts := Options{MaxRounds: rounds + 2, Workers: workers}
	return testing.AllocsPerRun(5, func() {
		if _, err := nw.Run(factory, opts); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRoundLoopSteadyStateAllocFree pins the tentpole guarantee: once a
// run's buffers have warmed up (a handful of rounds), extra rounds allocate
// nothing. Two runs of the same workload that differ only in round count
// isolate the steady state — the per-run setup cost cancels in the
// difference, so (allocs(long) - allocs(short)) / extra rounds must be ~0
// on both the sequential and the pooled parallel path.
func TestRoundLoopSteadyStateAllocFree(t *testing.T) {
	topo := graph.Grid(24, 24)
	const short, long = 8, 104
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := measureRunAllocs(t, topo, workers, short)
			grown := measureRunAllocs(t, topo, workers, long)
			perRound := (grown - base) / float64(long-short)
			if perRound > 0.5 {
				t.Errorf("steady state allocates %.2f objects/round (short run %.0f, long run %.0f); want 0",
					perRound, base, grown)
			}
		})
	}
}
