package congest

import (
	"fmt"
	"reflect"
	"testing"

	"qdc/internal/graph"
)

// traceEvent is one Trace callback invocation, captured for comparison.
type traceEvent struct {
	Round int
	Msg   Message
}

// collectTrace runs the hybrid workload with a recording Trace callback and
// returns the full event stream plus the run's Result.
func collectTrace(t *testing.T, workers int) ([]traceEvent, *Result) {
	t.Helper()
	nw, err := NewNetwork(ring(53), 64)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetSeed(17)
	var events []traceEvent
	res, err := nw.Run(func(*Context) Node { return &hybridNode{rounds: 24} },
		Options{
			Workers:  workers,
			PerRound: true,
			Trace: func(round int, msg Message) {
				events = append(events, traceEvent{Round: round, Msg: msg})
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// TestTraceIdenticalAcrossWorkers pins the parallel round tracer's contract:
// the event stream observed through Options.Trace is identical — same
// events, same order — whether the merge runs sequentially or on a worker
// pool, and enabling tracing does not perturb the Result.
func TestTraceIdenticalAcrossWorkers(t *testing.T) {
	seqEvents, seqRes := collectTrace(t, 0)
	if len(seqEvents) == 0 {
		t.Fatal("workload produced no trace events")
	}
	if len(seqEvents) != seqRes.TotalMessages {
		t.Fatalf("trace saw %d events for %d delivered messages", len(seqEvents), seqRes.TotalMessages)
	}
	for _, workers := range []int{1, 4, 8} {
		events, res := collectTrace(t, workers)
		if !reflect.DeepEqual(seqEvents, events) {
			for i := range seqEvents {
				if i < len(events) && !reflect.DeepEqual(seqEvents[i], events[i]) {
					t.Fatalf("Workers=%d: event %d diverged:\nseq %+v\ngot %+v",
						workers, i, seqEvents[i], events[i])
				}
			}
			t.Fatalf("Workers=%d: event stream diverged (%d vs %d events)",
				workers, len(seqEvents), len(events))
		}
		if !reflect.DeepEqual(seqRes, res) {
			t.Errorf("Workers=%d: traced Result diverged from sequential", workers)
		}
	}
}

// TestTraceDoesNotForceSequentialMerge is the white-box check that the old
// restriction is really gone: a traced run with Workers > 1 arms the
// per-worker trace buffers and keeps the pooled merge path.
func TestTraceDoesNotForceSequentialMerge(t *testing.T) {
	nw, err := NewNetwork(ring(16), 16)
	if err != nil {
		t.Fatal(err)
	}
	st, err := newRunState(nw, func(*Context) Node { return &hybridNode{rounds: 2} },
		Options{Workers: 4, Trace: func(int, Message) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	if st.pool == nil {
		t.Fatal("Workers=4 did not build a worker pool")
	}
	if st.asymmetric {
		t.Fatal("ring topology flagged asymmetric")
	}
	if len(st.traceBufs) != 4 || len(st.traceIdx) != 4 {
		t.Fatalf("trace buffers not armed: %d bufs, %d idx", len(st.traceBufs), len(st.traceIdx))
	}
}

// TestEmitTraceFoldOrder unit-tests the k-way fold in isolation: buffers
// sorted by sender and partitioning the senders — however the senders are
// spread across workers — must come out in ascending sender ID with outbox
// order preserved within a sender.
func TestEmitTraceFoldOrder(t *testing.T) {
	var got []traceEvent
	st := &runState{
		opts: Options{Trace: func(round int, msg Message) {
			got = append(got, traceEvent{Round: round, Msg: msg})
		}},
		traceBufs: [][]Message{
			{{From: 1, To: 0, Bits: 1}, {From: 1, To: 2, Bits: 2}, {From: 5, To: 4, Bits: 3}},
			{},
			{{From: 0, To: 1, Bits: 4}, {From: 6, To: 5, Bits: 5}},
			{{From: 3, To: 2, Bits: 6}, {From: 3, To: 4, Bits: 7}},
		},
		traceIdx: []int{99, 99, 99, 99}, // stale from a previous round; must be reset
	}
	st.emitTrace(7)
	want := []traceEvent{
		{7, Message{From: 0, To: 1, Bits: 4}},
		{7, Message{From: 1, To: 0, Bits: 1}},
		{7, Message{From: 1, To: 2, Bits: 2}},
		{7, Message{From: 3, To: 2, Bits: 6}},
		{7, Message{From: 3, To: 4, Bits: 7}},
		{7, Message{From: 5, To: 4, Bits: 3}},
		{7, Message{From: 6, To: 5, Bits: 5}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fold order:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestTraceErrorPathsIdenticalAcrossWorkers extends the cold-path guarantee
// to the tracer: when a round fails validation the parallel merge discards
// its half-recorded buffers and replays sequentially, so the traced event
// stream up to and including the failing round matches the sequential run
// byte for byte.
func TestTraceErrorPathsIdenticalAcrossWorkers(t *testing.T) {
	for _, overrun := range []bool{false, true} {
		run := func(workers int) ([]traceEvent, error) {
			nw, err := NewNetwork(ring(32), 16)
			if err != nil {
				t.Fatal(err)
			}
			var events []traceEvent
			_, err = nw.Run(func(ctx *Context) Node {
				return &roguePeer{rogue: ctx.ID() == 7, overrun: overrun}
			}, Options{
				Workers: workers,
				Trace: func(round int, msg Message) {
					events = append(events, traceEvent{Round: round, Msg: msg})
				},
			})
			return events, err
		}
		seqEvents, seqErr := run(0)
		if seqErr == nil {
			t.Fatalf("overrun=%v: expected a validation error", overrun)
		}
		if len(seqEvents) == 0 {
			t.Fatalf("overrun=%v: no events before the violation", overrun)
		}
		for _, workers := range []int{1, 4} {
			events, err := run(workers)
			if err == nil || err.Error() != seqErr.Error() {
				t.Errorf("overrun=%v Workers=%d: error %v, want %v", overrun, workers, err, seqErr)
			}
			if !reflect.DeepEqual(seqEvents, events) {
				t.Errorf("overrun=%v Workers=%d: error-path trace diverged (%d vs %d events)",
					overrun, workers, len(seqEvents), len(events))
			}
		}
	}
}

// TestTraceSteadyStateAllocFree extends the steady-state guarantee to traced
// runs: once the per-worker trace buffers have grown to the workload's
// per-round traffic, extra rounds allocate nothing on either merge path.
func TestTraceSteadyStateAllocFree(t *testing.T) {
	topo := graph.Grid(24, 24)
	const short, long = 8, 104
	measure := func(workers, rounds int) float64 {
		nw, err := NewNetwork(topo, 64)
		if err != nil {
			t.Fatal(err)
		}
		factory := func(*Context) Node { return &benchFloodNode{rounds: rounds} }
		opts := Options{
			MaxRounds: rounds + 2,
			Workers:   workers,
			Trace:     func(int, Message) {},
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := nw.Run(factory, opts); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := measure(workers, short)
			grown := measure(workers, long)
			perRound := (grown - base) / float64(long-short)
			if perRound > 0.5 {
				t.Errorf("traced steady state allocates %.2f objects/round (short %.0f, long %.0f); want 0",
					perRound, base, grown)
			}
		})
	}
}
