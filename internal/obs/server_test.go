package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	var done Counter
	done.Add(12)
	reg.PublishCounter("scenarios_done", &done)
	progress := func() any { return map[string]any{"done": done.Load(), "total": int64(97)} }
	mux := NewMux(reg, progress)

	do := func(path string) (int, string) {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, req)
		body, _ := io.ReadAll(rr.Result().Body)
		return rr.Code, string(body)
	}

	code, body := do("/progress")
	if code != 200 {
		t.Fatalf("/progress status %d", code)
	}
	var prog map[string]any
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if prog["done"] != float64(12) || prog["total"] != float64(97) {
		t.Errorf("/progress = %v", prog)
	}

	code, body = do("/vars")
	if code != 200 || !strings.Contains(body, "scenarios_done") {
		t.Errorf("/vars status %d body %s", code, body)
	}

	code, _ = do("/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	code, body = do("/debug/vars")
	if code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars status %d", code)
	}
}

func TestMuxWithoutRegistryOrProgress(t *testing.T) {
	mux := NewMux(nil, nil)
	req := httptest.NewRequest("GET", "/progress", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != 404 {
		t.Errorf("/progress without a provider should 404, got %d", rr.Code)
	}
}

// TestVarsHandlerSortedJSON pins the /vars wire format: an array of
// name/value pairs with names in sorted order, so scraping scripts see a
// stable shape.
func TestVarsHandlerSortedJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Publish("zeta", func() any { return 1 })
	reg.Publish("alpha", func() any { return 2 })
	req := httptest.NewRequest("GET", "/vars", nil)
	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, req)
	var rows []struct {
		Name  string `json:"name"`
		Value any    `json:"value"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &rows); err != nil {
		t.Fatalf("/vars not JSON: %v\n%s", err, rr.Body.String())
	}
	if len(rows) != 2 || rows[0].Name != "alpha" || rows[1].Name != "zeta" {
		t.Errorf("rows = %+v, want alpha then zeta", rows)
	}
}
