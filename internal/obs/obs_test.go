package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
	if snap.Sum != 1010 {
		t.Errorf("sum = %d, want 1010", snap.Sum)
	}
	if snap.Min != 0 || snap.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", snap.Min, snap.Max)
	}
	// 0 and the clamped -5 → [0,0]; 1 → [1,1]; 2,3 → [2,3]; 4 → [4,7];
	// 1000 → [512,1023].
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 2},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 4, Hi: 7, Count: 1},
		{Lo: 512, Hi: 1023, Count: 1},
	}
	if !reflect.DeepEqual(snap.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", snap.Buckets, want)
	}
}

// TestHistogramOrderIndependent pins the determinism contract: equal
// observation multisets yield equal snapshots whatever the order or the
// concurrency of the Observe calls.
func TestHistogramOrderIndependent(t *testing.T) {
	values := make([]int64, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range values {
		values[i] = rng.Int63n(1 << 20)
	}
	var seq Histogram
	for _, v := range values {
		seq.Observe(v)
	}

	var conc Histogram
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(values); i += 4 {
				conc.Observe(values[i])
			}
		}(w)
	}
	wg.Wait()

	if got, want := conc.Snapshot(), seq.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("concurrent snapshot diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestHistogramZeroValueSnapshot(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 || snap.Min != 0 || snap.Max != 0 || snap.Buckets != nil {
		t.Errorf("zero-value snapshot not empty: %+v", snap)
	}
}

func TestRegistrySnapshotAndReplace(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(3)
	reg.PublishCounter("msgs", &c)
	reg.Publish("label", func() any { return "sweep" })
	snap := reg.Snapshot()
	if snap["msgs"] != int64(3) || snap["label"] != "sweep" {
		t.Errorf("snapshot = %v", snap)
	}
	reg.Publish("label", func() any { return "replaced" })
	if got := reg.Snapshot()["label"]; got != "replaced" {
		t.Errorf("replaced provider not used, got %v", got)
	}
}

func TestEventLogFormat(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	base := time.Unix(100, 0)
	log.start = base
	tick := 0
	log.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 250 * time.Millisecond)
	}
	if err := log.Emit("sweep_start", map[string]any{"matrix": "quick"}); err != nil {
		t.Fatal(err)
	}
	if err := log.Emit("sweep_done", nil); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || first.Kind != "sweep_start" {
		t.Errorf("first event = %+v", first)
	}
	if first.ElapsedMillis <= 0 {
		t.Errorf("elapsed_ms = %v, want > 0", first.ElapsedMillis)
	}
	var second Event
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second.Seq != 2 || second.Data != nil {
		t.Errorf("second event = %+v", second)
	}
}
