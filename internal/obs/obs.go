// Package obs is the repository's deterministic, low-overhead observability
// core: counters, gauges and power-of-two histograms with snapshot
// semantics, a named-variable registry with an expvar-style HTTP view, a
// JSONL event log, and the HTTP mux that serves pprof and the live sweep
// endpoints (`qdcbench -listen`).
//
// Two properties shape every type here:
//
//   - Determinism where the data is deterministic. Histograms and counters
//     fed with deterministic quantities (per-round message counts, bits)
//     snapshot to values that are a pure function of those quantities — no
//     timestamps, no map iteration order, no host-dependent fields — so a
//     metrics block can ride inside an exp.Record without breaking the
//     byte-identity guarantees of the results pipeline. Wall-clock-derived
//     rates live only in live views (Registry, /progress), never in
//     snapshots that claim determinism.
//
//   - Zero cost when off. Nothing in this package is consulted by the
//     congest round loop or the experiment executor unless a caller opts in
//     (engine.StageObserver, exp.ExecOptions.Metrics, qdcbench -listen);
//     disabled observability preserves the hot path's 0 allocs/round.
package obs

import (
	"encoding/json"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. scenarios in flight).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds the value 0 and bucket i>0 holds values with bit length i, i.e.
// [2^(i-1), 2^i). 64-bit values cannot exceed bucket 64.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram of non-negative int64
// observations. Bucketing by bit length keeps Observe branch-free and the
// snapshot deterministic: equal observation multisets yield equal
// snapshots, regardless of observation order or concurrency. Negative
// observations are clamped to zero. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	minPlus alwaysPositiveMin
	buckets [histBuckets]atomic.Int64
}

// alwaysPositiveMin tracks the minimum of non-negative observations; the
// value is stored shifted by one so the zero value means "no observations".
type alwaysPositiveMin struct{ v atomic.Int64 }

func (m *alwaysPositiveMin) observe(v int64) {
	for {
		cur := m.v.Load()
		if cur != 0 && cur <= v+1 {
			return
		}
		if m.v.CompareAndSwap(cur, v+1) {
			return
		}
	}
}

func (m *alwaysPositiveMin) load() int64 {
	if v := m.v.Load(); v != 0 {
		return v - 1
	}
	return 0
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if cur >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.minPlus.observe(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket: Count observations fell in
// [Lo, Hi] inclusive.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the point-in-time view of a Histogram. It is plain
// data with a canonical JSON form: buckets ascend and empty buckets are
// omitted, so two histograms fed the same multiset of values marshal to
// identical bytes.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns the current state as plain data. Concurrent Observe
// calls may or may not be included; callers wanting exact totals snapshot
// after their recording phase completes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.minPlus.load(),
		Max:   h.max.Load(),
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = int64(1) << (i - 1)
			b.Hi = (int64(1) << i) - 1
		}
		snap.Buckets = append(snap.Buckets, b)
	}
	return snap
}

// Registry is a named set of live variables, each backed by a function
// returning its current value — the expvar pattern without expvar's
// process-global namespace, so tests and multiple sweeps can own
// independent registries. Registry is an http.Handler serving the sorted
// name → value map as indented JSON (mounted at /vars by NewMux).
type Registry struct {
	mu   sync.Mutex
	vars map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{vars: make(map[string]func() any)} }

// Publish registers f as the provider of name's current value, replacing
// any previous provider of the same name.
func (r *Registry) Publish(name string, f func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vars[name] = f
}

// PublishCounter publishes a counter's live value under name.
func (r *Registry) PublishCounter(name string, c *Counter) {
	r.Publish(name, func() any { return c.Load() })
}

// PublishGauge publishes a gauge's live value under name.
func (r *Registry) PublishGauge(name string, g *Gauge) {
	r.Publish(name, func() any { return g.Load() })
}

// Snapshot evaluates every provider and returns the name → value map.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fs := make(map[string]func() any, len(r.vars))
	for name, f := range r.vars {
		fs[name] = f
	}
	r.mu.Unlock()
	// Providers run outside the lock: one may itself publish (or serve a
	// slow snapshot) without deadlocking the registry.
	out := make(map[string]any, len(fs))
	for name, f := range fs {
		out[name] = f()
	}
	return out
}

// ServeHTTP implements http.Handler: the snapshot as indented JSON with
// keys in sorted order.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make([]struct {
		Name  string `json:"name"`
		Value any    `json:"value"`
	}, len(names))
	for i, name := range names {
		ordered[i].Name = name
		ordered[i].Value = snap[name]
	}
	writeJSON(w, ordered)
}

// writeJSON writes v as indented JSON with the standard header.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a failed write means the client went away
}
