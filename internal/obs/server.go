package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// NewMux returns the HTTP mux behind `qdcbench -listen`: the read-side seed
// of the future qdcd daemon. It mounts
//
//	/debug/pprof/...  net/http/pprof (profiles of the live sweep)
//	/debug/vars      the process-global expvar view (memstats, cmdline)
//	/vars            reg's live variables as sorted JSON (nil reg: omitted)
//	/progress        progress() as JSON (nil progress: omitted)
//
// The mux is deliberately built on a private ServeMux rather than
// http.DefaultServeMux so multiple servers (tests, a sweep per port) never
// collide on registrations.
func NewMux(reg *Registry, progress func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/vars", reg)
	}
	if progress != nil {
		mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, progress())
		})
	}
	return mux
}
