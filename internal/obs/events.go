package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one line of an event log: a monotonically increasing sequence
// number, the milliseconds elapsed since the log was opened, the event
// kind, and an arbitrary JSON payload.
type Event struct {
	Seq int64 `json:"seq"`
	// ElapsedMillis is wall-clock time since the log was opened. It is the
	// one non-deterministic field of an event — event logs are operational
	// records of a run, not canonical snapshots, and are never diffed for
	// byte identity.
	ElapsedMillis float64 `json:"elapsed_ms"`
	Kind          string  `json:"event"`
	Data          any     `json:"data,omitempty"`
}

// EventLog is a thread-safe JSONL event stream: each Emit appends one Event
// line. Sweeps use it as the machine-readable companion of the human
// progress output — `tail -f` the file, or parse it after the run (the CI
// observability smoke job uploads it as an artifact).
type EventLog struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	seq    int64
	start  time.Time
	now    func() time.Time // test hook; defaults to time.Now
}

// NewEventLog wraps an open writer; CreateEventLog opens a file.
func NewEventLog(w io.Writer) *EventLog {
	l := &EventLog{w: bufio.NewWriter(w), now: time.Now}
	l.start = l.now()
	return l
}

// CreateEventLog creates (or truncates) path and returns an event log over
// it.
func CreateEventLog(path string) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := NewEventLog(f)
	l.closer = f
	return l, nil
}

// Emit appends one event line. Safe for concurrent use.
func (l *EventLog) Emit(kind string, data any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev := Event{
		Seq:           l.seq,
		ElapsedMillis: float64(l.now().Sub(l.start)) / float64(time.Millisecond),
		Kind:          kind,
		Data:          data,
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(line); err != nil {
		return err
	}
	return l.w.WriteByte('\n')
}

// Close flushes buffered lines; when the log owns a file it is closed even
// if the flush fails, and the first error wins.
func (l *EventLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.w.Flush()
	if l.closer != nil {
		if cerr := l.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
