package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func TestGroverRoundsFormula(t *testing.T) {
	cases := []struct {
		b, distance, want int
	}{
		{1, 1, 1},     // ⌈√1⌉·1
		{8, 1, 3},     // ⌈√8⌉ = 3
		{8, 4, 12},    // scales linearly with distance
		{256, 8, 128}, // ⌈√256⌉ = 16
		{0, 4, 0},     // degenerate inputs cost nothing
		{16, 0, 0},
		{-3, 5, 0},
	}
	for _, c := range cases {
		if got := GroverRounds(c.b, c.distance); got != c.want {
			t.Errorf("GroverRounds(%d, %d) = %d, want %d", c.b, c.distance, got, c.want)
		}
	}
	// The formula is ⌈√b⌉·D for every positive pair.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		b := 1 + rng.Intn(1<<16)
		d := 1 + rng.Intn(1024)
		want := int(math.Ceil(math.Sqrt(float64(b)))) * d
		if got := GroverRounds(b, d); got != want {
			t.Fatalf("GroverRounds(%d, %d) = %d, want %d", b, d, got, want)
		}
	}
}

func TestGroverQueryQubits(t *testing.T) {
	cases := []struct{ b, want int }{
		{0, 2}, {1, 2}, {2, 2},
		{8, 4},     // 3 index qubits + 1 ancilla
		{256, 9},   // 8 + 1
		{1000, 11}, // ⌈log₂ 1000⌉ = 10, + 1
	}
	for _, c := range cases {
		if got := GroverQueryQubits(c.b); got != c.want {
			t.Errorf("GroverQueryQubits(%d) = %d, want %d", c.b, got, c.want)
		}
	}
}

// TestGroverRoundsConsistentWithSearch ties the round formula to the actual
// Grover machinery: the simulated search over b items performs ⌊π/4·√b⌋
// oracle queries, which the per-hop formula ⌈√b⌉ must dominate.
func TestGroverRoundsConsistentWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, b := range []int{4, 16, 64, 256} {
		res, err := GroverSearch(b, 1, func(i int) bool { return i == b/2 }, rng)
		if err != nil {
			t.Fatal(err)
		}
		perHop := GroverRounds(b, 1)
		if res.OracleQueries > perHop {
			t.Errorf("b=%d: simulated search used %d queries, formula allows ⌈√b⌉ = %d", b, res.OracleQueries, perHop)
		}
	}
}
