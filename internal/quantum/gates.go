package quantum

import (
	"math"
	"math/cmplx"
)

// Standard single-qubit gate matrices.
var (
	invSqrt2 = complex(1/math.Sqrt2, 0)

	// GateH is the Hadamard gate.
	GateH = [2][2]complex128{{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}}
	// GateX is the Pauli-X (NOT) gate.
	GateX = [2][2]complex128{{0, 1}, {1, 0}}
	// GateY is the Pauli-Y gate.
	GateY = [2][2]complex128{{0, -1i}, {1i, 0}}
	// GateZ is the Pauli-Z gate.
	GateZ = [2][2]complex128{{1, 0}, {0, -1}}
	// GateS is the phase gate (√Z).
	GateS = [2][2]complex128{{1, 0}, {0, 1i}}
	// GateT is the π/8 gate (√S).
	GateT = [2][2]complex128{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}
)

// RyGate returns the single-qubit rotation about the Y axis by angle theta:
// Ry(θ) = [[cos(θ/2), −sin(θ/2)], [sin(θ/2), cos(θ/2)]].
func RyGate(theta float64) [2][2]complex128 {
	c, s := complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
	return [2][2]complex128{{c, -s}, {s, c}}
}

// RzGate returns the rotation about the Z axis by angle theta.
func RzGate(theta float64) [2][2]complex128 {
	return [2][2]complex128{
		{cmplx.Exp(complex(0, -theta/2)), 0},
		{0, cmplx.Exp(complex(0, theta/2))},
	}
}

// H applies a Hadamard to qubit q.
func (s *State) H(q int) error { return s.ApplySingle(q, GateH) }

// X applies a Pauli-X to qubit q.
func (s *State) X(q int) error { return s.ApplySingle(q, GateX) }

// Y applies a Pauli-Y to qubit q.
func (s *State) Y(q int) error { return s.ApplySingle(q, GateY) }

// Z applies a Pauli-Z to qubit q.
func (s *State) Z(q int) error { return s.ApplySingle(q, GateZ) }

// Ry applies a Y-rotation by theta to qubit q.
func (s *State) Ry(q int, theta float64) error { return s.ApplySingle(q, RyGate(theta)) }

// CNOT applies a controlled-NOT with the given control and target qubits.
func (s *State) CNOT(control, target int) error { return s.ApplyControlled(control, target, GateX) }

// CZ applies a controlled-Z with the given control and target qubits.
func (s *State) CZ(control, target int) error { return s.ApplyControlled(control, target, GateZ) }

// MeasureInRotatedBasis measures qubit q in the basis obtained by rotating
// the computational basis by angle theta about the Y axis (the measurement
// used by optimal XOR-game strategies: outcome 0 corresponds to the state
// cos(θ)|0⟩+sin(θ)|1⟩). The state collapses accordingly.
func (s *State) MeasureInRotatedBasis(q int, theta float64) (int, error) {
	// Rotate so the desired basis becomes the computational basis, measure,
	// then rotate back.
	if err := s.Ry(q, -2*theta); err != nil {
		return 0, err
	}
	out, err := s.Measure(q)
	if err != nil {
		return 0, err
	}
	if err := s.Ry(q, 2*theta); err != nil {
		return 0, err
	}
	return out, nil
}

// ProbabilityOneInRotatedBasis returns the probability of outcome 1 when
// measuring qubit q in the theta-rotated basis, without collapsing the state.
func (s *State) ProbabilityOneInRotatedBasis(q int, theta float64) (float64, error) {
	cp := s.Clone()
	if err := cp.Ry(q, -2*theta); err != nil {
		return 0, err
	}
	return cp.ProbabilityOfOne(q)
}
