package quantum

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// ErrBadClassicalBit reports a classical bit outside {0,1}.
var ErrBadClassicalBit = errors.New("quantum: classical bit must be 0 or 1")

// BellPair returns a two-qubit register in the EPR state (|00⟩+|11⟩)/√2.
// Shared EPR pairs are the basic form of prior entanglement discussed in
// footnote 2 of the paper.
func BellPair(rng *rand.Rand) (*State, error) {
	s, err := NewState(2, rng)
	if err != nil {
		return nil, err
	}
	if err := s.H(0); err != nil {
		return nil, err
	}
	if err := s.CNOT(0, 1); err != nil {
		return nil, err
	}
	return s, nil
}

// SharedRandomBitFromEPR measures both halves of a fresh EPR pair and
// returns the common bit, demonstrating that shared entanglement subsumes
// shared randomness (footnote 2).
func SharedRandomBitFromEPR(rng *rand.Rand) (int, error) {
	pair, err := BellPair(rng)
	if err != nil {
		return 0, err
	}
	a, err := pair.Measure(0)
	if err != nil {
		return 0, err
	}
	b, err := pair.Measure(1)
	if err != nil {
		return 0, err
	}
	if a != b {
		return 0, fmt.Errorf("quantum: EPR halves disagreed (%d vs %d)", a, b)
	}
	return a, nil
}

// TeleportResult reports the outcome of one teleportation.
type TeleportResult struct {
	// ClassicalBits are the two bits Alice sends to Bob.
	ClassicalBits [2]int
	// Fidelity is the overlap between Bob's received qubit and the state
	// Alice teleported (1 for a correct implementation).
	Fidelity float64
}

// Teleport teleports the single-qubit state α|0⟩+β|1⟩ from Alice to Bob
// using one shared EPR pair and two classical bits, and returns the fidelity
// of Bob's resulting qubit with the input state.
//
// Teleportation is the tool used in the proof of Lemma 3.2 (and Appendix B.2)
// to replace each qubit Carol/David send to the server by two classical,
// uniformly distributed bits.
func Teleport(alpha, beta complex128, rng *rand.Rand) (*TeleportResult, error) {
	norm := real(alpha)*real(alpha) + imag(alpha)*imag(alpha) +
		real(beta)*real(beta) + imag(beta)*imag(beta)
	if norm < 1e-12 {
		return nil, ErrNotNormalized
	}
	// Qubit 0: Alice's payload. Qubit 1: Alice's EPR half. Qubit 2: Bob's half.
	amps := make([]complex128, 8)
	amps[0] = alpha
	amps[1] = beta
	s, err := FromAmplitudes(normalize(amps), rng)
	if err != nil {
		return nil, err
	}
	// Entangle qubits 1 and 2 into an EPR pair.
	if err := s.H(1); err != nil {
		return nil, err
	}
	if err := s.CNOT(1, 2); err != nil {
		return nil, err
	}
	// Alice's Bell measurement on qubits 0 and 1.
	if err := s.CNOT(0, 1); err != nil {
		return nil, err
	}
	if err := s.H(0); err != nil {
		return nil, err
	}
	m0, err := s.Measure(0)
	if err != nil {
		return nil, err
	}
	m1, err := s.Measure(1)
	if err != nil {
		return nil, err
	}
	// Bob's corrections conditioned on the two classical bits.
	if m1 == 1 {
		if err := s.X(2); err != nil {
			return nil, err
		}
	}
	if m0 == 1 {
		if err := s.Z(2); err != nil {
			return nil, err
		}
	}
	// Compare Bob's qubit with the intended state. After the measurements
	// qubits 0 and 1 are fixed to m0 and m1, so Bob's qubit amplitudes sit at
	// basis indices m0 + 2*m1 (+ 4 for the |1⟩ component).
	base := m0 + 2*m1
	a0, a1 := s.Amplitude(base), s.Amplitude(base+4)
	scale := complex(1/math.Sqrt(norm), 0)
	ta, tb := alpha*scale, beta*scale
	overlap := cmplx.Conj(ta)*a0 + cmplx.Conj(tb)*a1
	fidelity := real(overlap)*real(overlap) + imag(overlap)*imag(overlap)
	return &TeleportResult{ClassicalBits: [2]int{m0, m1}, Fidelity: fidelity}, nil
}

// SuperdenseEncodeDecode transmits the two classical bits (b0, b1) from
// Alice to Bob by sending a single qubit of a shared EPR pair, and returns
// the bits Bob decodes. A correct implementation returns the input bits.
func SuperdenseEncodeDecode(b0, b1 int, rng *rand.Rand) (int, int, error) {
	if b0 != 0 && b0 != 1 || b1 != 0 && b1 != 1 {
		return 0, 0, fmt.Errorf("%w: (%d,%d)", ErrBadClassicalBit, b0, b1)
	}
	s, err := BellPair(rng)
	if err != nil {
		return 0, 0, err
	}
	// Alice encodes on her half (qubit 0).
	if b1 == 1 {
		if err := s.X(0); err != nil {
			return 0, 0, err
		}
	}
	if b0 == 1 {
		if err := s.Z(0); err != nil {
			return 0, 0, err
		}
	}
	// Alice sends qubit 0 to Bob; Bob decodes with CNOT + H and measures.
	if err := s.CNOT(0, 1); err != nil {
		return 0, 0, err
	}
	if err := s.H(0); err != nil {
		return 0, 0, err
	}
	d0, err := s.Measure(0)
	if err != nil {
		return 0, 0, err
	}
	d1, err := s.Measure(1)
	if err != nil {
		return 0, 0, err
	}
	return d0, d1, nil
}

func normalize(amps []complex128) []complex128 {
	var norm float64
	for _, a := range amps {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if norm == 0 {
		return amps
	}
	scale := complex(1/math.Sqrt(norm), 0)
	out := make([]complex128, len(amps))
	for i, a := range amps {
		out[i] = a * scale
	}
	return out
}
