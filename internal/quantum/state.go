// Package quantum provides a small state-vector simulator for the quantum
// phenomena invoked by the paper: qubits and quantum messages, EPR pairs and
// shared entanglement (footnote 2), teleportation (used in the proof of
// Lemma 3.2 to replace qubit messages by classical bits), superdense coding,
// the optimal entangled strategies of nonlocal XOR games such as CHSH
// (Section 6 and Appendix B.1), and Grover/BBHT search, which underlies the
// Aaronson–Ambainis O(√b) Set Disjointness protocol of Example 1.1.
//
// The simulator stores the full 2^n-dimensional state vector and is intended
// for protocol-sized registers (n up to ~20 qubits), which is all the
// reproduction needs: the paper's quantitative content is carried by *counts*
// (queries, rounds, bits), and those are measured exactly on these small
// instances and extrapolated by the closed-form cost models in
// internal/bounds.
package quantum

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// MaxQubits bounds the register size so that a mistake cannot allocate an
// unreasonable amount of memory (2^24 amplitudes = 256 MiB).
const MaxQubits = 24

// Errors returned by the simulator.
var (
	// ErrQubitOutOfRange reports a qubit index outside the register.
	ErrQubitOutOfRange = errors.New("quantum: qubit index out of range")
	// ErrTooManyQubits reports a register larger than MaxQubits.
	ErrTooManyQubits = errors.New("quantum: register too large")
	// ErrSameQubit reports a two-qubit gate applied to a single wire.
	ErrSameQubit = errors.New("quantum: control and target must differ")
	// ErrNotNormalized reports an amplitude vector whose norm is not 1.
	ErrNotNormalized = errors.New("quantum: state is not normalised")
)

// State is a pure quantum state on n qubits. Basis states are indexed by
// integers whose bit k is the value of qubit k (qubit 0 is the least
// significant bit).
//
// The zero value is not usable; construct with NewState or FromAmplitudes.
type State struct {
	n    int
	amps []complex128
	rng  *rand.Rand
}

// NewState returns the n-qubit all-zero state |0…0⟩. rng is used for
// measurement outcomes; if nil, a deterministic source seeded with 1 is used
// so that tests are reproducible by default.
func NewState(n int, rng *rand.Rand) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("%w: n=%d", ErrTooManyQubits, n)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	amps := make([]complex128, 1<<n)
	amps[0] = 1
	return &State{n: n, amps: amps, rng: rng}, nil
}

// FromAmplitudes builds a state from an explicit amplitude vector of length
// 2^n. The vector must be normalised to within a small tolerance.
func FromAmplitudes(amps []complex128, rng *rand.Rand) (*State, error) {
	n := 0
	for 1<<n < len(amps) {
		n++
	}
	if 1<<n != len(amps) || n < 1 {
		return nil, fmt.Errorf("quantum: amplitude vector length %d is not a power of two >= 2", len(amps))
	}
	if n > MaxQubits {
		return nil, fmt.Errorf("%w: n=%d", ErrTooManyQubits, n)
	}
	var norm float64
	for _, a := range amps {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		return nil, fmt.Errorf("%w: squared norm %g", ErrNotNormalized, norm)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	cp := make([]complex128, len(amps))
	copy(cp, amps)
	return &State{n: n, amps: cp, rng: rng}, nil
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of the given basis state.
func (s *State) Amplitude(basis int) complex128 {
	if basis < 0 || basis >= len(s.amps) {
		return 0
	}
	return s.amps[basis]
}

// Probability returns the probability of observing the given basis state if
// all qubits were measured.
func (s *State) Probability(basis int) float64 {
	a := s.Amplitude(basis)
	return real(a)*real(a) + imag(a)*imag(a)
}

// Clone returns an independent copy sharing the same random source.
func (s *State) Clone() *State {
	cp := make([]complex128, len(s.amps))
	copy(cp, s.amps)
	return &State{n: s.n, amps: cp, rng: s.rng}
}

func (s *State) checkQubit(q int) error {
	if q < 0 || q >= s.n {
		return fmt.Errorf("%w: qubit %d of %d", ErrQubitOutOfRange, q, s.n)
	}
	return nil
}

// ApplySingle applies the 2x2 unitary m to qubit q.
func (s *State) ApplySingle(q int, m [2][2]complex128) error {
	if err := s.checkQubit(q); err != nil {
		return err
	}
	bit := 1 << q
	for i := 0; i < len(s.amps); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amps[i], s.amps[j]
		s.amps[i] = m[0][0]*a0 + m[0][1]*a1
		s.amps[j] = m[1][0]*a0 + m[1][1]*a1
	}
	return nil
}

// ApplyControlled applies the 2x2 unitary m to the target qubit conditioned
// on the control qubit being 1.
func (s *State) ApplyControlled(control, target int, m [2][2]complex128) error {
	if err := s.checkQubit(control); err != nil {
		return err
	}
	if err := s.checkQubit(target); err != nil {
		return err
	}
	if control == target {
		return ErrSameQubit
	}
	cbit, tbit := 1<<control, 1<<target
	for i := 0; i < len(s.amps); i++ {
		if i&cbit == 0 || i&tbit != 0 {
			continue
		}
		j := i | tbit
		a0, a1 := s.amps[i], s.amps[j]
		s.amps[i] = m[0][0]*a0 + m[0][1]*a1
		s.amps[j] = m[1][0]*a0 + m[1][1]*a1
	}
	return nil
}

// PhaseFlip multiplies the amplitude of every basis state selected by the
// predicate by -1. It is the oracle primitive used by Grover search.
func (s *State) PhaseFlip(pred func(basis int) bool) {
	for i := range s.amps {
		if pred(i) {
			s.amps[i] = -s.amps[i]
		}
	}
}

// ProbabilityOfOne returns the probability that measuring qubit q yields 1.
func (s *State) ProbabilityOfOne(q int) (float64, error) {
	if err := s.checkQubit(q); err != nil {
		return 0, err
	}
	bit := 1 << q
	var p float64
	for i, a := range s.amps {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p, nil
}

// Measure measures qubit q in the computational basis, collapses the state,
// and returns the outcome (0 or 1).
func (s *State) Measure(q int) (int, error) {
	p1, err := s.ProbabilityOfOne(q)
	if err != nil {
		return 0, err
	}
	outcome := 0
	if s.rng.Float64() < p1 {
		outcome = 1
	}
	if err := s.collapse(q, outcome, p1); err != nil {
		return 0, err
	}
	return outcome, nil
}

// MeasureAll measures every qubit and returns the outcomes indexed by qubit.
func (s *State) MeasureAll() ([]int, error) {
	out := make([]int, s.n)
	for q := 0; q < s.n; q++ {
		b, err := s.Measure(q)
		if err != nil {
			return nil, err
		}
		out[q] = b
	}
	return out, nil
}

func (s *State) collapse(q, outcome int, p1 float64) error {
	p := p1
	if outcome == 0 {
		p = 1 - p1
	}
	if p <= 0 {
		return fmt.Errorf("quantum: collapsing qubit %d to impossible outcome %d", q, outcome)
	}
	bit := 1 << q
	scale := complex(1/math.Sqrt(p), 0)
	for i := range s.amps {
		has := 0
		if i&bit != 0 {
			has = 1
		}
		if has == outcome {
			s.amps[i] *= scale
		} else {
			s.amps[i] = 0
		}
	}
	return nil
}

// InnerProduct returns ⟨s|other⟩. The registers must have the same size.
func (s *State) InnerProduct(other *State) (complex128, error) {
	if s.n != other.n {
		return 0, fmt.Errorf("quantum: register sizes differ (%d vs %d)", s.n, other.n)
	}
	var sum complex128
	for i := range s.amps {
		sum += cmplx.Conj(s.amps[i]) * other.amps[i]
	}
	return sum, nil
}

// Fidelity returns |⟨s|other⟩|², the overlap between two pure states.
func (s *State) Fidelity(other *State) (float64, error) {
	ip, err := s.InnerProduct(other)
	if err != nil {
		return 0, err
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip), nil
}
