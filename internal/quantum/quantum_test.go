package quantum

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestNewStateIsAllZero(t *testing.T) {
	s, err := NewState(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumQubits() != 3 {
		t.Fatalf("NumQubits = %d, want 3", s.NumQubits())
	}
	if !approx(s.Probability(0), 1) {
		t.Fatalf("P(|000>) = %g, want 1", s.Probability(0))
	}
	for b := 1; b < 8; b++ {
		if s.Probability(b) > eps {
			t.Fatalf("P(%d) = %g, want 0", b, s.Probability(b))
		}
	}
}

func TestNewStateBounds(t *testing.T) {
	if _, err := NewState(0, nil); !errors.Is(err, ErrTooManyQubits) {
		t.Fatalf("NewState(0) err = %v", err)
	}
	if _, err := NewState(MaxQubits+1, nil); !errors.Is(err, ErrTooManyQubits) {
		t.Fatalf("NewState(too many) err = %v", err)
	}
}

func TestFromAmplitudesValidation(t *testing.T) {
	if _, err := FromAmplitudes([]complex128{1, 0, 0}, nil); err == nil {
		t.Fatal("non power-of-two length should fail")
	}
	if _, err := FromAmplitudes([]complex128{0.5, 0.5}, nil); !errors.Is(err, ErrNotNormalized) {
		t.Fatalf("unnormalised vector err = %v", err)
	}
	s, err := FromAmplitudes([]complex128{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Probability(0), 0.5) {
		t.Fatalf("P(0) = %g, want 0.5", s.Probability(0))
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s, _ := NewState(1, nil)
	if err := s.H(0); err != nil {
		t.Fatal(err)
	}
	if !approx(s.Probability(0), 0.5) || !approx(s.Probability(1), 0.5) {
		t.Fatalf("H|0> probabilities = %g, %g", s.Probability(0), s.Probability(1))
	}
	// H is self-inverse.
	if err := s.H(0); err != nil {
		t.Fatal(err)
	}
	if !approx(s.Probability(0), 1) {
		t.Fatalf("HH|0> should be |0>, got P0=%g", s.Probability(0))
	}
}

func TestPauliGates(t *testing.T) {
	s, _ := NewState(1, nil)
	if err := s.X(0); err != nil {
		t.Fatal(err)
	}
	if !approx(s.Probability(1), 1) {
		t.Fatal("X|0> should be |1>")
	}
	if err := s.Z(0); err != nil {
		t.Fatal(err)
	}
	if !approx(cmplx.Abs(s.Amplitude(1)+1), 0) {
		t.Fatalf("Z|1> amplitude = %v, want -1", s.Amplitude(1))
	}
	if err := s.Y(0); err != nil {
		t.Fatal(err)
	}
	if !approx(s.Probability(0), 1) {
		t.Fatal("Y|1> (up to phase) should be |0>")
	}
}

func TestGateErrors(t *testing.T) {
	s, _ := NewState(2, nil)
	if err := s.H(5); !errors.Is(err, ErrQubitOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if err := s.CNOT(1, 1); !errors.Is(err, ErrSameQubit) {
		t.Fatalf("err = %v", err)
	}
	if err := s.CNOT(0, 9); !errors.Is(err, ErrQubitOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.ProbabilityOfOne(-1); !errors.Is(err, ErrQubitOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Measure(7); !errors.Is(err, ErrQubitOutOfRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestBellPairCorrelations(t *testing.T) {
	pair, err := BellPair(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pair.Probability(0), 0.5) || !approx(pair.Probability(3), 0.5) {
		t.Fatalf("Bell pair probabilities: P(00)=%g P(11)=%g", pair.Probability(0), pair.Probability(3))
	}
	if pair.Probability(1) > eps || pair.Probability(2) > eps {
		t.Fatal("Bell pair has weight on anti-correlated outcomes")
	}
	// Measuring both halves always agrees.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		b, err := SharedRandomBitFromEPR(rng)
		if err != nil {
			t.Fatal(err)
		}
		if b != 0 && b != 1 {
			t.Fatalf("shared bit = %d", b)
		}
	}
}

func TestSharedRandomBitIsUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ones := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		b, err := SharedRandomBitFromEPR(rng)
		if err != nil {
			t.Fatal(err)
		}
		ones += b
	}
	if ones < trials/4 || ones > 3*trials/4 {
		t.Fatalf("shared bit heavily biased: %d ones out of %d", ones, trials)
	}
}

func TestMeasurementCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, _ := NewState(2, rng)
	if err := s.H(0); err != nil {
		t.Fatal(err)
	}
	if err := s.CNOT(0, 1); err != nil {
		t.Fatal(err)
	}
	first, err := s.Measure(0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Measure(1)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("entangled qubits measured differently: %d vs %d", first, second)
	}
	// Re-measuring gives the same answer.
	again, err := s.Measure(0)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("repeated measurement changed outcome")
	}
}

func TestMeasureAllStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	zeros := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		s, _ := NewState(1, rng)
		if err := s.H(0); err != nil {
			t.Fatal(err)
		}
		bits, err := s.MeasureAll()
		if err != nil {
			t.Fatal(err)
		}
		if bits[0] == 0 {
			zeros++
		}
	}
	if zeros < trials/4 || zeros > 3*trials/4 {
		t.Fatalf("H|0> measurement heavily biased: %d zeros of %d", zeros, trials)
	}
}

func TestCloneIndependent(t *testing.T) {
	s, _ := NewState(1, nil)
	c := s.Clone()
	if err := c.X(0); err != nil {
		t.Fatal(err)
	}
	if !approx(s.Probability(0), 1) {
		t.Fatal("mutating clone affected original")
	}
}

func TestInnerProductAndFidelity(t *testing.T) {
	a, _ := NewState(1, nil)
	b, _ := NewState(1, nil)
	if err := b.X(0); err != nil {
		t.Fatal(err)
	}
	f, err := a.Fidelity(b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f, 0) {
		t.Fatalf("fidelity of orthogonal states = %g", f)
	}
	f, err = a.Fidelity(a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f, 1) {
		t.Fatalf("self fidelity = %g", f)
	}
	big, _ := NewState(2, nil)
	if _, err := a.Fidelity(big); err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestRotatedBasisMeasurement(t *testing.T) {
	// |0> measured in the θ-rotated basis yields 1 with probability sin²θ.
	for _, theta := range []float64{0, math.Pi / 8, math.Pi / 4, math.Pi / 3} {
		s, _ := NewState(1, nil)
		p, err := s.ProbabilityOneInRotatedBasis(0, theta)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Sin(theta) * math.Sin(theta)
		if !approx(p, want) {
			t.Fatalf("theta=%g: P(1) = %g, want %g", theta, p, want)
		}
	}
}

func TestTeleportationPerfectFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct{ alpha, beta complex128 }{
		{1, 0},
		{0, 1},
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(0.6, 0), complex(0, 0.8)},
		{complex(0.3, 0.4), complex(0.5, -0.707106781)},
	}
	for _, tc := range cases {
		for trial := 0; trial < 8; trial++ {
			res, err := Teleport(tc.alpha, tc.beta, rng)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fidelity < 1-1e-6 {
				t.Fatalf("teleport fidelity = %g for (%v,%v), bits %v", res.Fidelity, tc.alpha, tc.beta, res.ClassicalBits)
			}
		}
	}
	if _, err := Teleport(0, 0, rng); !errors.Is(err, ErrNotNormalized) {
		t.Fatalf("teleporting the zero vector should fail, err = %v", err)
	}
}

func TestTeleportationClassicalBitsAreUniform(t *testing.T) {
	// The two classical bits of teleportation are uniformly distributed and
	// independent of the payload; this is exactly the property Lemma 3.2
	// relies on (the game players can guess them).
	rng := rand.New(rand.NewSource(17))
	counts := make(map[[2]int]int)
	const trials = 600
	for i := 0; i < trials; i++ {
		res, err := Teleport(complex(0.6, 0), complex(0.8, 0), rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.ClassicalBits]++
	}
	for _, pair := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		frac := float64(counts[pair]) / trials
		if frac < 0.13 || frac > 0.40 {
			t.Fatalf("classical bit pair %v frequency %g far from 1/4 (counts %v)", pair, frac, counts)
		}
	}
}

func TestSuperdenseCoding(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for b0 := 0; b0 <= 1; b0++ {
		for b1 := 0; b1 <= 1; b1++ {
			for trial := 0; trial < 10; trial++ {
				d0, d1, err := SuperdenseEncodeDecode(b0, b1, rng)
				if err != nil {
					t.Fatal(err)
				}
				if d0 != b0 || d1 != b1 {
					t.Fatalf("superdense decode (%d,%d) != encode (%d,%d)", d0, d1, b0, b1)
				}
			}
		}
	}
	if _, _, err := SuperdenseEncodeDecode(2, 0, rng); !errors.Is(err, ErrBadClassicalBit) {
		t.Fatalf("bad bit err = %v", err)
	}
}

func TestGroverFindsSingleMarkedItem(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, size := range []int{8, 16, 64, 256} {
		target := size / 3
		res, err := GroverSearch(size, 1, func(i int) bool { return i == target }, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.SuccessProbability < 0.8 {
			t.Fatalf("size %d: success probability %g too low", size, res.SuccessProbability)
		}
		wantQueries := GroverIterations(nextPow2(size), 1)
		if res.OracleQueries != wantQueries {
			t.Fatalf("size %d: queries = %d, want %d", size, res.OracleQueries, wantQueries)
		}
	}
}

func TestGroverQueryScaling(t *testing.T) {
	// Quadrupling the search space should roughly double the query count.
	q64 := GroverIterations(64, 1)
	q256 := GroverIterations(256, 1)
	ratio := float64(q256) / float64(q64)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("query ratio 256/64 = %g, want ~2", ratio)
	}
	if GroverIterations(16, 0) != 1 || GroverIterations(0, 1) != 1 {
		t.Fatal("degenerate inputs should clamp to 1 iteration")
	}
	if GroverQueryCost(1<<20, 1) <= GroverQueryCost(1<<10, 1) {
		t.Fatal("query cost should grow with the search space")
	}
}

func TestGroverNoMarkedItem(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	res, err := GroverSearch(32, 1, func(i int) bool { return false }, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.IsMarked {
		t.Fatal("cannot find a marked item when none exists")
	}
	if res.SuccessProbability > eps {
		t.Fatalf("success probability %g should be 0", res.SuccessProbability)
	}
}

func TestGroverErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	if _, err := GroverSearch(0, 1, func(int) bool { return false }, rng); !errors.Is(err, ErrEmptySearchSpace) {
		t.Fatalf("err = %v", err)
	}
	if _, err := GroverSearch(1<<25, 1, func(int) bool { return false }, rng); !errors.Is(err, ErrTooManyQubits) {
		t.Fatalf("err = %v", err)
	}
}

// Property: unitaries preserve the norm of the state.
func TestQuickUnitariesPreserveNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewState(4, rng)
		if err != nil {
			return false
		}
		for step := 0; step < 30; step++ {
			q := rng.Intn(4)
			switch rng.Intn(6) {
			case 0:
				err = s.H(q)
			case 1:
				err = s.X(q)
			case 2:
				err = s.Z(q)
			case 3:
				err = s.Ry(q, rng.Float64()*math.Pi)
			case 4:
				err = s.CNOT(q, (q+1)%4)
			case 5:
				err = s.CZ(q, (q+2)%4)
			}
			if err != nil {
				return false
			}
		}
		var norm float64
		for b := 0; b < 16; b++ {
			norm += s.Probability(b)
		}
		return math.Abs(norm-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: teleportation has unit fidelity for random payload states.
func TestQuickTeleportationFidelity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := rng.Float64() * math.Pi
		phi := rng.Float64() * 2 * math.Pi
		alpha := complex(math.Cos(theta/2), 0)
		beta := cmplx.Exp(complex(0, phi)) * complex(math.Sin(theta/2), 0)
		res, err := Teleport(alpha, beta, rng)
		if err != nil {
			return false
		}
		return res.Fidelity > 1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
