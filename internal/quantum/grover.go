package quantum

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrEmptySearchSpace reports a Grover search over zero items.
var ErrEmptySearchSpace = errors.New("quantum: empty search space")

// GroverResult describes one run of Grover search.
type GroverResult struct {
	// Found is the measured index.
	Found int
	// IsMarked reports whether the measured index satisfies the oracle.
	IsMarked bool
	// OracleQueries is the number of oracle applications performed, which is
	// the quantity that scales as O(√(N/M)).
	OracleQueries int
	// SuccessProbability is the exact probability (computed from the final
	// state vector, before measurement) of measuring a marked item.
	SuccessProbability float64
}

// GroverSearch runs Grover's algorithm over a search space of `size` items
// (rounded up to the next power of two internally) with the given oracle,
// using the standard ⌊π/4·√(N/M)⌋ iteration count where M is the number of
// marked items (which the caller states via numMarked; pass 1 when unknown
// to get the single-solution behaviour the Disjointness protocol uses).
//
// The O(√N) query count of this routine is the engine behind the
// Aaronson–Ambainis O(√b) quantum protocol for Set Disjointness cited in
// Example 1.1 of the paper.
func GroverSearch(size int, numMarked int, oracle func(i int) bool, rng *rand.Rand) (*GroverResult, error) {
	if size <= 0 {
		return nil, ErrEmptySearchSpace
	}
	if numMarked < 1 {
		numMarked = 1
	}
	nQubits := 1
	for 1<<nQubits < size {
		nQubits++
	}
	if nQubits > MaxQubits {
		return nil, fmt.Errorf("%w: need %d qubits for size %d", ErrTooManyQubits, nQubits, size)
	}
	dim := 1 << nQubits

	// Indices >= size are never marked (padding of the search space).
	marked := func(i int) bool { return i < size && oracle(i) }

	s, err := NewState(nQubits, rng)
	if err != nil {
		return nil, err
	}
	for q := 0; q < nQubits; q++ {
		if err := s.H(q); err != nil {
			return nil, err
		}
	}

	iters := GroverIterations(dim, numMarked)
	queries := 0
	for it := 0; it < iters; it++ {
		// Oracle: phase-flip marked items.
		s.PhaseFlip(marked)
		queries++
		// Diffusion: reflect about the uniform superposition.
		if err := groverDiffusion(s, nQubits); err != nil {
			return nil, err
		}
	}

	// Exact success probability from the state vector.
	var pSuccess float64
	for i := 0; i < dim; i++ {
		if marked(i) {
			pSuccess += s.Probability(i)
		}
	}

	bits, err := s.MeasureAll()
	if err != nil {
		return nil, err
	}
	idx := 0
	for q, b := range bits {
		idx |= b << q
	}
	return &GroverResult{
		Found:              idx,
		IsMarked:           marked(idx),
		OracleQueries:      queries,
		SuccessProbability: pSuccess,
	}, nil
}

// GroverIterations returns the standard iteration count ⌊(π/4)·√(N/M)⌋
// (at least 1) for a search space of N items with M marked items.
func GroverIterations(n, marked int) int {
	if n <= 0 || marked <= 0 || marked >= n {
		return 1
	}
	it := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(n)/float64(marked))))
	if it < 1 {
		it = 1
	}
	return it
}

// GroverQueryCost returns the oracle-query cost model Θ(√(N/M)) used by the
// Example 1.1 benchmarks for search spaces too large to simulate directly.
func GroverQueryCost(n, marked int) int { return GroverIterations(n, marked) }

// GroverRounds is the distributed-Grover round formula of Example 1.1: a
// search over b items needs ⌈√b⌉ oracle iterations, and in a network each
// iteration propagates its query register across the hop distance separating
// the querier from the oracle's input, so the round cost is ⌈√b⌉·distance.
// It is the formula engine.NewQuantum re-accounts streaming stages with and
// disjointness.QuantumRounds exposes under its paper name; non-positive
// parameters cost 0.
func GroverRounds(b, distance int) int {
	if b < 1 || distance < 1 {
		return 0
	}
	return int(math.Ceil(math.Sqrt(float64(b)))) * distance
}

// GroverQueryQubits is the width of the query register the distributed
// Grover protocol routes per iteration: an index into the b-item search
// space plus one phase ancilla.
func GroverQueryQubits(b int) int {
	if b < 2 {
		return 2
	}
	return int(math.Ceil(math.Log2(float64(b)))) + 1
}

func groverDiffusion(s *State, nQubits int) error {
	// D = H^n (2|0⟩⟨0| − I) H^n, implemented as: H^n, phase-flip all states
	// except |0…0⟩, H^n (global phase ignored).
	for q := 0; q < nQubits; q++ {
		if err := s.H(q); err != nil {
			return err
		}
	}
	s.PhaseFlip(func(i int) bool { return i != 0 })
	for q := 0; q < nQubits; q++ {
		if err := s.H(q); err != nil {
			return err
		}
	}
	return nil
}
