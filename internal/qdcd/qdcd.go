// Package qdcd is the sweep control plane: a long-running daemon that
// accepts matrix specs over an HTTP/JSON API, schedules each job's
// Matrix.Shard slices onto a persistent bounded worker pool built on the
// internal/fanout supervision tree (crash retry, process-group cleanup,
// completion judged by stream completeness), streams records to any number
// of concurrent clients as shard JSONL lines complete, and serves merged
// canonical snapshots and diffs — the service face of `qdcbench fanout`.
//
// # On-disk layout and crash recovery
//
// Everything the daemon believes about a job is re-derivable from the
// job's directory under the state dir:
//
//	<state>/jobs/<id>/job.json       submission parameters + terminal state
//	<state>/jobs/<id>/matrix.json    the frozen spec (exp.SaveMatrix)
//	<state>/jobs/<id>/streams/       per-shard per-attempt JSONL streams
//	<state>/jobs/<id>/snapshot.json  canonical merged snapshot, written once
//
// The recovery posture follows the self-stabilization tradition: a
// restarted daemon converges back to a correct view of its jobs purely
// from what is on disk. Jobs whose job.json records a terminal state are
// re-adopted as-is (done jobs re-serve their snapshot byte for byte,
// failed jobs re-serve their error); jobs that never reached a terminal
// state — the daemon died mid-sweep — are re-run from their frozen spec.
// Re-running is safe because the supervisor removes any stale stream file
// before each attempt spawns and every record is deterministic given the
// frozen spec, so a re-run converges to the exact snapshot the interrupted
// run would have produced.
//
// # The frozen-spec rule
//
// A job's matrix is resolved exactly once, at submission, and snapshotted
// to matrix.json; workers and retries are handed only the frozen path.
// A *.json spec edited after submission therefore cannot make a worker run
// a different sweep than the one the daemon expanded and will verify with
// exp.CheckComplete.
package qdcd

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"qdc/internal/exp"
	"qdc/internal/fanout"
	"qdc/internal/obs"
)

// JobView is the slice of a job a SpawnJob needs to start workers: the
// worker re-runs the frozen spec's shard slice and streams records to the
// path the supervisor hands each attempt.
type JobView struct {
	// ID is the job's identifier ("job-3").
	ID string
	// SpecPath is the job's frozen matrix spec (matrix.json).
	SpecPath string
	// Shards is the job's shard count; shard i runs slice i/Shards.
	Shards int
}

// SpawnJob returns the fanout.SpawnFunc used for one job's shard attempts.
// The daemon's CLI wiring execs the qdcbench binary with
// `-matrix <SpecPath> -shard i/n -jsonl <path>`; tests substitute
// in-process stubs, which drive the entire control plane without any
// subprocess.
type SpawnJob func(j JobView) fanout.SpawnFunc

// Options configures New.
type Options struct {
	// StateDir is the daemon's persistent root; see the package doc for the
	// layout. Created if absent. Required.
	StateDir string
	// Pool bounds the number of concurrently running shard workers across
	// all jobs — the persistent worker pool. Zero or negative selects
	// GOMAXPROCS.
	Pool int
	// Retries is the default per-shard crash-retry budget for jobs that do
	// not override it; negative selects fanout.DefaultRetries.
	Retries int
	// ShardTimeout bounds one shard attempt's wall time; 0 means unbounded.
	ShardTimeout time.Duration
	// Spawn starts one job's shard attempts. Required.
	Spawn SpawnJob
}

// Server owns the job table, the worker pool and the state dir. Create it
// with New, mount Handler on an HTTP server, and Close it to interrupt
// running jobs and wait them out.
type Server struct {
	opts  Options
	slots chan struct{} // worker-pool semaphore: one token per running shard attempt

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int

	wg sync.WaitGroup // one entry per live runJob goroutine

	reg           *obs.Registry
	jobsSubmitted obs.Counter
	jobsDone      obs.Counter
	jobsFailed    obs.Counter
}

// New builds a Server over opts.StateDir and immediately converges it with
// the disk state: terminal jobs are adopted, interrupted ones re-run.
func New(opts Options) (*Server, error) {
	if opts.Spawn == nil {
		return nil, errors.New("qdcd: Options.Spawn is required")
	}
	if opts.StateDir == "" {
		return nil, errors.New("qdcd: Options.StateDir is required")
	}
	if opts.Pool < 1 {
		opts.Pool = runtime.GOMAXPROCS(0)
	}
	if opts.Retries < 0 {
		opts.Retries = fanout.DefaultRetries
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("qdcd: %w", err)
	}
	s := &Server{
		opts:  opts,
		slots: make(chan struct{}, opts.Pool),
		jobs:  make(map[string]*Job),
		reg:   obs.NewRegistry(),
	}
	s.reg.PublishCounter("jobs_submitted", &s.jobsSubmitted)
	s.reg.PublishCounter("jobs_done", &s.jobsDone)
	s.reg.PublishCounter("jobs_failed", &s.jobsFailed)
	s.reg.Publish("jobs_known", func() any {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.jobs)
	})
	if err := s.adoptStateDir(); err != nil {
		return nil, err
	}
	return s, nil
}

// adoptStateDir converges the in-memory job table with the state dir; see
// the package doc for the semantics per on-disk state.
func (s *Server) adoptStateDir() error {
	jobsDir := filepath.Join(s.opts.StateDir, "jobs")
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return fmt.Errorf("qdcd: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(jobsDir, e.Name())
		jf, err := readJobFile(dir)
		if err != nil {
			// A half-created job dir (the daemon died inside submit, an
			// operator's stray file) carries no adoptable state; skipping it
			// converges to the correct view of every job that does.
			continue
		}
		if n, ok := idNumber(jf.ID); ok && n > s.nextID {
			s.nextID = n
		}
		j := newJob(jf, dir)
		switch jf.State {
		case StateDone:
			recs, err := exp.ReadRecords(j.snapshotPath())
			if err != nil {
				// The terminal marker exists but its artifact does not (the
				// daemon died between the two writes): the job never really
				// finished, so re-run it.
				s.startJob(j)
				break
			}
			j.adoptDone(recs)
		case StateFailed:
			j.state = StateFailed
			j.errMsg = jf.Error
		default:
			// No terminal state on disk: the previous daemon died mid-job.
			s.startJob(j)
		}
		s.jobs[jf.ID] = j
	}
	return nil
}

// startJob transitions the job to pending and launches its supervision
// goroutine.
func (s *Server) startJob(j *Job) {
	j.state = StatePending
	s.wg.Add(1)
	go s.runJob(j)
}

// Submit resolves, freezes and schedules one job; the HTTP POST /jobs
// handler is a thin wrapper around it. The returned job is already
// running (or queued on the worker pool).
func (s *Server) Submit(req SubmitRequest) (*Job, error) {
	var m exp.Matrix
	var err error
	switch {
	case req.Spec != nil:
		m = *req.Spec
		if m.Name == "" {
			// LoadMatrix would default the name from the frozen file's base
			// name; pinning it here keeps the daemon's view identical to the
			// workers'.
			m.Name = "matrix"
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("qdcd: inline spec: %w", err)
		}
	case req.Matrix != "":
		if m, err = exp.ResolveMatrix(req.Matrix); err != nil {
			return nil, err
		}
	default:
		return nil, errors.New("qdcd: a job needs either a matrix name/path or an inline spec")
	}
	if req.Seed != 0 {
		m.BaseSeed = req.Seed
	}
	if req.Shards < 1 {
		return nil, fmt.Errorf("qdcd: shard count %d is not positive", req.Shards)
	}
	total := len(m.Expand())
	if total == 0 {
		return nil, fmt.Errorf("qdcd: matrix %s has no scenarios to run", m.Name)
	}
	retries := s.opts.Retries
	if req.Retries != nil {
		if *req.Retries < 0 {
			return nil, fmt.Errorf("qdcd: retry budget %d is negative", *req.Retries)
		}
		retries = *req.Retries
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	s.mu.Unlock()

	jf := jobFile{
		ID:      id,
		Matrix:  m.Name,
		Shards:  req.Shards,
		Retries: retries,
		Total:   total,
		Created: time.Now().UTC(),
	}
	dir := filepath.Join(s.opts.StateDir, "jobs", id)
	j := newJob(jf, dir)
	if err := os.MkdirAll(j.streamDir(), 0o755); err != nil {
		return nil, fmt.Errorf("qdcd: %w", err)
	}
	if err := exp.SaveMatrix(j.specPath(), m); err != nil {
		return nil, err
	}
	if err := writeJobFile(dir, jf); err != nil {
		return nil, err
	}

	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	s.jobsSubmitted.Inc()
	s.startJob(j)
	return j, nil
}

// runJob supervises one job to a terminal state (or an interrupt): it
// re-loads the frozen spec, runs the fanout supervision tree over the
// pooled spawn, and on completion folds the shards through
// exp.MergeRecords + exp.CheckComplete into the canonical snapshot — the
// byte-identical-to-unsharded artifact the /snapshot endpoint serves.
func (s *Server) runJob(j *Job) {
	defer s.wg.Done()
	m, err := exp.LoadMatrix(j.specPath())
	if err != nil {
		s.finishJob(j, StateFailed, err)
		return
	}
	expected := make([]int, j.Shards)
	for i := range expected {
		slice, err := m.Shard(i+1, j.Shards)
		if err != nil {
			s.finishJob(j, StateFailed, err)
			return
		}
		expected[i] = len(slice)
	}
	j.setState(StateRunning)

	spawn := s.opts.Spawn(JobView{ID: j.ID, SpecPath: j.specPath(), Shards: j.Shards})
	res, runErr := fanout.Run(fanout.Options{
		Shards:    j.Shards,
		Expected:  expected,
		Retries:   j.Retries,
		Timeout:   s.opts.ShardTimeout,
		Dir:       j.streamDir(),
		Spawn:     s.pooled(spawn),
		OnRecord:  j.onRecord,
		OnDiscard: j.onDiscard,
		Interrupt: j.interrupt,
	})
	if errors.Is(runErr, fanout.ErrInterrupted) {
		// Deliberately not persisted: the on-disk state stays non-terminal,
		// which is exactly what makes the next daemon re-run the job.
		j.setState(StateInterrupted)
		return
	}
	if runErr != nil {
		s.finishJob(j, StateFailed, runErr)
		return
	}
	merged, err := exp.MergeRecords(res.Records()...)
	if err == nil {
		err = exp.CheckComplete(m, merged)
	}
	if err == nil {
		err = writeSnapshot(j.snapshotPath(), merged)
	}
	if err != nil {
		s.finishJob(j, StateFailed, err)
		return
	}
	s.finishJob(j, StateDone, nil)
}

// finishJob records the terminal state in memory and on disk, in that
// order of authority: the on-disk job file is what the next daemon trusts.
func (s *Server) finishJob(j *Job, state string, cause error) {
	jf := j.file
	jf.State = state
	if cause != nil {
		jf.Error = cause.Error()
	}
	if err := writeJobFile(j.dir, jf); err != nil && cause == nil {
		state, cause = StateFailed, err
		jf.State, jf.Error = state, err.Error()
	}
	j.finish(state, jf.Error)
	if state == StateDone {
		s.jobsDone.Inc()
	} else {
		s.jobsFailed.Inc()
	}
}

// pooled wraps a job's SpawnFunc with the worker-pool semaphore: an
// attempt only starts once a slot frees up, and holds it until its worker
// exits. This is what bounds concurrency across jobs while each job keeps
// its own fanout supervision tree.
func (s *Server) pooled(inner fanout.SpawnFunc) fanout.SpawnFunc {
	return func(shard, attempt int, path string) (fanout.Worker, error) {
		s.slots <- struct{}{}
		w, err := inner(shard, attempt, path)
		if err != nil {
			<-s.slots
			return nil, err
		}
		return &slotWorker{Worker: w, free: func() { <-s.slots }}, nil
	}
}

// slotWorker releases its pool slot when the worker exits. Wait is called
// exactly once per the Worker contract, so the release cannot double.
type slotWorker struct {
	fanout.Worker
	free func()
}

func (w *slotWorker) Wait() error {
	err := w.Worker.Wait()
	w.free()
	return err
}

// Close interrupts every running job (killing live workers through the
// fanout tree, which kills whole process groups) and waits for the
// supervision goroutines to drain. Interrupted jobs stay non-terminal on
// disk, so the next daemon re-runs them.
func (s *Server) Close() {
	s.mu.Lock()
	for _, j := range s.jobs {
		j.signalInterrupt()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Job returns the job with the given id, or nil.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns every known job sorted by submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool {
		ni, _ := idNumber(out[i].ID)
		nk, _ := idNumber(out[k].ID)
		return ni < nk
	})
	return out
}

// idNumber extracts the sequence number of a "job-N" id.
func idNumber(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// writeSnapshot writes recs as the canonical sorted JSON array — the very
// bytes an unsharded `qdcbench -json` run of the same matrix produces.
func writeSnapshot(path string, recs []exp.Record) error {
	sink, err := exp.CreateJSON(path)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := sink.Write(r); err != nil {
			sink.Close() //nolint:errcheck // the write error is the one to report
			return err
		}
	}
	return sink.Close()
}
