package qdcd

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"qdc/internal/exp"
	"qdc/internal/fanout"
)

// testMatrix is the control-plane test sweep: 4 cheap deterministic
// scenarios (2 topologies x 2 algorithms x local x one bandwidth).
func testMatrix() exp.Matrix {
	return exp.Matrix{
		Name: "qdcdtest",
		Topologies: []exp.TopologySpec{
			{Family: exp.FamilyPath, Size: 8},
			{Family: exp.FamilyStar, Size: 9},
		},
		Bandwidths: []int{32},
		Backends:   []string{exp.BackendLocal},
		Algorithms: []string{exp.AlgFlood, exp.AlgVerify},
		BaseSeed:   7,
	}
}

// referenceSnapshot renders the matrix the way an unsharded -json run
// would: every scenario executed in one process, canonical sorted output.
func referenceSnapshot(t *testing.T, m exp.Matrix) []byte {
	t.Helper()
	path := t.TempDir() + "/reference.json"
	sink, err := exp.CreateJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.Expand() {
		if err := sink.Write(exp.RunScenario(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// stubWorker blocks in Wait until finished (or killed).
type stubWorker struct {
	done chan struct{}
	err  error
	once sync.Once
}

func newStubWorker() *stubWorker { return &stubWorker{done: make(chan struct{})} }

func (w *stubWorker) finish(err error) {
	w.once.Do(func() {
		w.err = err
		close(w.done)
	})
}

func (w *stubWorker) Wait() error {
	<-w.done
	return w.err
}

func (w *stubWorker) Kill()          { w.finish(errors.New("killed")) }
func (w *stubWorker) Output() string { return "" }

// healthySpawn is the in-process stand-in for the qdcbench worker exec: it
// re-loads the job's frozen spec, runs its shard slice, and streams the
// records to the attempt's path — the whole control plane with no
// subprocess.
func healthySpawn(j JobView) fanout.SpawnFunc {
	return func(shard, attempt int, path string) (fanout.Worker, error) {
		w := newStubWorker()
		go func() {
			w.finish(func() error {
				m, err := exp.LoadMatrix(j.SpecPath)
				if err != nil {
					return err
				}
				slice, err := m.Shard(shard, j.Shards)
				if err != nil {
					return err
				}
				sink, err := exp.CreateJSONL(path)
				if err != nil {
					return err
				}
				for _, s := range slice {
					if err := sink.Write(exp.RunScenario(s)); err != nil {
						return err
					}
				}
				return sink.Close()
			}())
		}()
		return w, nil
	}
}

func newTestServer(t *testing.T, stateDir string, spawn SpawnJob) *Server {
	t.Helper()
	s, err := New(Options{StateDir: stateDir, Pool: 4, Spawn: spawn})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitTerminal polls the job until it leaves the non-terminal states.
func waitTerminal(t *testing.T, j *Job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := j.Status()
		if terminal(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", j.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// get performs a request against the daemon's handler.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestSubmitToSnapshot is the package's acceptance gate: a job submitted
// over the API runs its shards on the pool and its /snapshot is
// byte-identical to an unsharded run of the same matrix.
func TestSubmitToSnapshot(t *testing.T) {
	m := testMatrix()
	want := referenceSnapshot(t, m)
	s := newTestServer(t, t.TempDir(), healthySpawn)
	h := s.Handler()

	body, _ := json.Marshal(SubmitRequest{Spec: &m, Shards: 2})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("POST /jobs = %d: %s", rec.Code, rec.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-1" || st.Total != len(m.Expand()) || st.Shards != 2 {
		t.Errorf("submit status = %+v", st)
	}

	j := s.Job(st.ID)
	if fin := waitTerminal(t, j); fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	snap := get(t, h, "/jobs/job-1/snapshot")
	if snap.Code != http.StatusOK {
		t.Fatalf("GET /snapshot = %d: %s", snap.Code, snap.Body)
	}
	if !bytes.Equal(snap.Body.Bytes(), want) {
		t.Error("daemon snapshot is not byte-identical to the unsharded run")
	}

	// The live status endpoints agree once the job is done.
	list := get(t, h, "/jobs")
	var all []JobStatus
	if err := json.Unmarshal(list.Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != "job-1" || all[0].State != StateDone || all[0].Done != int64(st.Total) {
		t.Errorf("GET /jobs = %+v", all)
	}
	if one := get(t, h, "/jobs/job-1"); one.Code != http.StatusOK || !strings.Contains(one.Body.String(), `"state": "done"`) {
		t.Errorf("GET /jobs/job-1 = %d: %s", one.Code, one.Body)
	}
}

// TestRecordsStreamAndDiff: /records serves every record as JSONL, and
// /diff between two runs of the same spec is clean.
func TestRecordsStreamAndDiff(t *testing.T) {
	m := testMatrix()
	s := newTestServer(t, t.TempDir(), healthySpawn)
	h := s.Handler()
	for i := 0; i < 2; i++ {
		j, err := s.Submit(SubmitRequest{Spec: &m, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if fin := waitTerminal(t, j); fin.State != StateDone {
			t.Fatalf("job finished %s: %s", fin.State, fin.Error)
		}
	}

	rec := get(t, h, "/jobs/job-1/records")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("GET /records = %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != len(m.Expand()) {
		t.Fatalf("streamed %d records, want %d", len(lines), len(m.Expand()))
	}
	for _, line := range lines {
		var r exp.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}

	diff := get(t, h, "/jobs/job-2/diff?baseline=job-1")
	if diff.Code != http.StatusOK {
		t.Fatalf("GET /diff = %d: %s", diff.Code, diff.Body)
	}
	var d struct {
		Clean bool `json:"clean"`
	}
	if err := json.Unmarshal(diff.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if !d.Clean {
		t.Errorf("identical jobs diff dirty: %s", diff.Body)
	}
}

// TestRestartAdoptsDoneJob: a new daemon over the same state dir re-serves
// a finished job's snapshot byte for byte without re-running anything.
func TestRestartAdoptsDoneJob(t *testing.T) {
	m := testMatrix()
	state := t.TempDir()
	s1, err := New(Options{StateDir: state, Pool: 4, Spawn: healthySpawn})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(SubmitRequest{Spec: &m, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, j); fin.State != StateDone {
		t.Fatalf("job finished %s: %s", fin.State, fin.Error)
	}
	want := get(t, s1.Handler(), "/jobs/job-1/snapshot").Body.Bytes()
	s1.Close()

	// The adopted job must never spawn a worker; later jobs may.
	s2 := newTestServer(t, state, func(j JobView) fanout.SpawnFunc {
		if j.ID == "job-1" {
			return func(int, int, string) (fanout.Worker, error) {
				t.Error("adopting a done job spawned a worker")
				return nil, errors.New("unexpected spawn")
			}
		}
		return healthySpawn(j)
	})
	adopted := s2.Job("job-1")
	if adopted == nil {
		t.Fatal("restarted daemon does not know job-1")
	}
	st := adopted.Status()
	if st.State != StateDone || st.Done != int64(len(m.Expand())) || st.Records != len(m.Expand()) {
		t.Errorf("adopted status = %+v", st)
	}
	got := get(t, s2.Handler(), "/jobs/job-1/snapshot")
	if got.Code != http.StatusOK || !bytes.Equal(got.Body.Bytes(), want) {
		t.Error("adopted snapshot differs from the one the first daemon served")
	}
	// A fresh submission continues the id sequence past the adopted job.
	j2, err := s2.Submit(SubmitRequest{Spec: &m, Shards: 1})
	if err == nil && j2.ID == "job-1" {
		t.Error("restarted daemon reused an adopted job id")
	}
}

// TestRestartRerunsInterruptedJob is the crash-recovery gate: a daemon dying
// mid-job leaves no terminal state on disk, and the next daemon re-runs the
// job from its frozen spec to the very snapshot a clean run produces.
func TestRestartRerunsInterruptedJob(t *testing.T) {
	m := testMatrix()
	want := referenceSnapshot(t, m)
	state := t.TempDir()

	// Workers that never finish: the job is mid-sweep until Close kills it.
	spawned := make(chan struct{}, 8)
	s1, err := New(Options{StateDir: state, Pool: 4, Spawn: func(JobView) fanout.SpawnFunc {
		return func(int, int, string) (fanout.Worker, error) {
			spawned <- struct{}{}
			return newStubWorker(), nil
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(SubmitRequest{Spec: &m, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-spawned // at least one worker is live, the job is genuinely mid-sweep
	s1.Close()
	if st := j.Status(); st.State != StateInterrupted {
		t.Fatalf("after Close the job is %s, want interrupted", st.State)
	}

	s2 := newTestServer(t, state, healthySpawn)
	rerun := s2.Job("job-1")
	if rerun == nil {
		t.Fatal("restarted daemon does not know the interrupted job")
	}
	if fin := waitTerminal(t, rerun); fin.State != StateDone {
		t.Fatalf("re-run finished %s: %s", fin.State, fin.Error)
	}
	got := get(t, s2.Handler(), "/jobs/job-1/snapshot")
	if !bytes.Equal(got.Body.Bytes(), want) {
		t.Error("re-run snapshot is not byte-identical to a clean unsharded run")
	}
}

// TestSubmitValidationAndErrors pins the API's failure modes.
func TestSubmitValidationAndErrors(t *testing.T) {
	m := testMatrix()
	s := newTestServer(t, t.TempDir(), healthySpawn)
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", strings.NewReader(body)))
		return rec
	}
	for name, body := range map[string]string{
		"no spec":        `{"shards": 2}`,
		"zero shards":    `{"matrix": "quick", "shards": 0}`,
		"unknown matrix": `{"matrix": "no-such-matrix", "shards": 1}`,
		"unknown field":  `{"matrxi": "quick", "shards": 1}`,
		"negative retry": `{"matrix": "quick", "shards": 1, "retries": -1}`,
	} {
		if rec := post(body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: POST /jobs = %d, want 400", name, rec.Code)
		}
	}
	if rec := get(t, h, "/jobs/job-99"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/jobs/job-99/snapshot"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job snapshot = %d, want 404", rec.Code)
	}
	if _, err := s.Submit(SubmitRequest{Spec: &exp.Matrix{Name: "empty"}, Shards: 1}); err == nil {
		t.Error("an invalid inline spec must be rejected")
	}

	// A snapshot demanded before the job is done is a conflict, not a hang:
	// a separate daemon whose workers never finish pins the job mid-sweep.
	blocked := newTestServer(t, t.TempDir(), func(JobView) fanout.SpawnFunc {
		return func(int, int, string) (fanout.Worker, error) { return newStubWorker(), nil }
	})
	bh := blocked.Handler()
	slow, err := blocked.Submit(SubmitRequest{Spec: &m, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(t, bh, "/jobs/"+slow.ID+"/snapshot"); rec.Code != http.StatusConflict {
		t.Errorf("snapshot of an unfinished job = %d, want 409", rec.Code)
	}
	if rec := get(t, bh, "/jobs/"+slow.ID+"/diff?baseline="+slow.ID); rec.Code != http.StatusConflict {
		t.Errorf("diff of an unfinished job = %d, want 409", rec.Code)
	}
	if rec := get(t, bh, "/jobs/"+slow.ID+"/diff"); rec.Code != http.StatusBadRequest {
		t.Errorf("diff without baseline = %d, want 400", rec.Code)
	}
}

// TestPoolBoundsConcurrency: the worker-pool semaphore caps concurrently
// live workers across jobs at Options.Pool.
func TestPoolBoundsConcurrency(t *testing.T) {
	m := testMatrix()
	var mu sync.Mutex
	live, maxLive := 0, 0
	spawn := func(j JobView) fanout.SpawnFunc {
		inner := healthySpawn(j)
		return func(shard, attempt int, path string) (fanout.Worker, error) {
			mu.Lock()
			live++
			if live > maxLive {
				maxLive = live
			}
			mu.Unlock()
			w, err := inner(shard, attempt, path)
			if err != nil {
				return nil, err
			}
			time.Sleep(5 * time.Millisecond) // hold the slot long enough to overlap
			return &countedWorker{Worker: w, dec: func() {
				mu.Lock()
				live--
				mu.Unlock()
			}}, nil
		}
	}
	s, err := New(Options{StateDir: t.TempDir(), Pool: 2, Spawn: spawn})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(SubmitRequest{Spec: &m, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		if fin := waitTerminal(t, j); fin.State != StateDone {
			t.Fatalf("job %s finished %s: %s", j.ID, fin.State, fin.Error)
		}
	}
	if maxLive > 2 {
		t.Errorf("pool of 2 had %d concurrently live workers", maxLive)
	}
}

type countedWorker struct {
	fanout.Worker
	dec func()
}

func (w *countedWorker) Wait() error {
	err := w.Worker.Wait()
	w.dec()
	return err
}
