package qdcd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"

	"qdc/internal/exp"
	"qdc/internal/obs"
)

// Handler returns the daemon's HTTP API, mounted on the same obs mux a
// local sweep serves (/debug/pprof, /debug/vars, /vars with the daemon's
// job counters, /progress with every job's live status):
//
//	POST /jobs                submit a job (SubmitRequest body)
//	GET  /jobs                every job's JobStatus, submission order
//	GET  /jobs/{id}           one job's JobStatus
//	GET  /jobs/{id}/records   chunked JSONL stream of records, live-followed
//	                          until the job reaches a terminal state
//	GET  /jobs/{id}/snapshot  the canonical merged snapshot (byte-identical
//	                          to an unsharded -json run; 409 until done)
//	GET  /jobs/{id}/diff?baseline=<id>  exp.Compare against another done job
func (s *Server) Handler() http.Handler {
	mux := obs.NewMux(s.reg, s.progress)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{$}", s.handleList)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/{$}", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/records", s.handleRecords)
	mux.HandleFunc("GET /jobs/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /jobs/{id}/diff", s.handleDiff)
	return mux
}

// progress is the daemon's /progress payload: one JobStatus per job, the
// multi-job analogue of a local sweep's single progress map.
func (s *Server) progress() any {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return map[string]any{"jobs": out}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// lookup resolves the {id} path value, writing the 404 itself when the
// job does not exist.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	j := s.Job(id)
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("qdcd: no job %q", id))
	}
	return j
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("qdcd: request body: %w", err))
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleRecords streams the job's records as chunked JSONL: everything
// streamed so far immediately, then live as shard lines complete, until
// the job reaches a terminal state or the client goes away. A shard retry
// may re-deliver records the crashed attempt already streamed (records
// are deterministic, so the copies are identical); the snapshot is the
// canonical artifact.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		recs, n, state, changed := j.view(next)
		next = n
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	st := j.Status()
	if st.State != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("qdcd: job %s is %s; the snapshot exists once it is done", j.ID, st.State))
		return
	}
	f, err := os.Open(j.snapshotPath())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close() //nolint:errcheck // read-only descriptor
	// Raw bytes, not re-encoded: the endpoint's contract is byte identity
	// with the unsharded run's -json file.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	io.Copy(w, f) //nolint:errcheck // the response is already committed
}

// handleDiff compares the job's snapshot against another done job's —
// exp.Compare over the API, so clients gate on regressions without
// downloading either snapshot.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	baseID := r.URL.Query().Get("baseline")
	if baseID == "" {
		writeError(w, http.StatusBadRequest, errors.New("qdcd: diff needs ?baseline=<job id>"))
		return
	}
	base := s.Job(baseID)
	if base == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("qdcd: no baseline job %q", baseID))
		return
	}
	for _, side := range []*Job{j, base} {
		if side.Status().State != StateDone {
			writeError(w, http.StatusConflict, fmt.Errorf("qdcd: job %s is not done", side.ID))
			return
		}
	}
	oldRecs, err := exp.ReadRecords(base.snapshotPath())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	newRecs, err := exp.ReadRecords(j.snapshotPath())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	diff := exp.Compare(oldRecs, newRecs)
	writeJSON(w, http.StatusOK, map[string]any{
		"baseline": base.ID,
		"job":      j.ID,
		"clean":    diff.Clean(),
		"diff":     diff,
	})
}
