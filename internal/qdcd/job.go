package qdcd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"qdc/internal/exp"
)

// Job lifecycle states. Only StateDone and StateFailed are terminal and
// only terminal states are persisted to disk; everything else is the
// in-memory view of a job in flight (an interrupted job deliberately
// leaves no terminal marker, so a restarted daemon re-runs it).
const (
	StatePending     = "pending"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// SubmitRequest is the POST /jobs body. Exactly one of Matrix and Spec
// selects the sweep: Matrix is a registered name or a *.json spec path
// resolved on the daemon's host, Spec is a full inline matrix (what
// `qdcbench submit` sends for local spec files, so the daemon never needs
// the client's filesystem).
type SubmitRequest struct {
	Matrix string      `json:"matrix,omitempty"`
	Spec   *exp.Matrix `json:"spec,omitempty"`
	// Shards is the number of worker slices the job is split into.
	Shards int `json:"shards"`
	// Seed, when non-zero, overrides the spec's base seed before the spec
	// is frozen.
	Seed int64 `json:"seed,omitempty"`
	// Retries, when set, overrides the daemon's default per-shard crash
	// retry budget.
	Retries *int `json:"retries,omitempty"`
}

// JobStatus is the wire view of a job: the POST /jobs response and the
// GET /jobs and GET /jobs/{id} payloads. Live counters come from the
// job's exp.Status, so a poll during the sweep sees the same numbers the
// /progress endpoint of a local sweep would show.
type JobStatus struct {
	ID               string    `json:"id"`
	Matrix           string    `json:"matrix"`
	Shards           int       `json:"shards"`
	State            string    `json:"state"`
	Total            int       `json:"total"`
	Done             int64     `json:"done"`
	Failed           int64     `json:"failed"`
	InFlight         int64     `json:"in_flight"`
	Records          int       `json:"records"`
	NodeRoundsPerSec float64   `json:"node_rounds_per_sec"`
	Created          time.Time `json:"created"`
	Error            string    `json:"error,omitempty"`
}

// jobFile is the persisted half of a job: the submission parameters plus,
// once the job reaches a terminal state, that state. It is written at
// submission and rewritten exactly once, by finishJob.
type jobFile struct {
	ID      string    `json:"id"`
	Matrix  string    `json:"matrix"`
	Shards  int       `json:"shards"`
	Retries int       `json:"retries"`
	Total   int       `json:"total"`
	Created time.Time `json:"created"`
	State   string    `json:"state,omitempty"`
	Error   string    `json:"error,omitempty"`
}

// shardRec tags a streamed record with the shard that produced it, so a
// retried shard's rolled-back records can be dropped from the live list.
type shardRec struct {
	shard int
	rec   exp.Record
}

// Job is one submitted sweep. Immutable identity fields are plain; the
// mutable live view (state, streamed records) is guarded by mu, with
// changed closed-and-replaced on every mutation so streaming clients can
// wait for news without polling.
type Job struct {
	ID      string
	Matrix  string
	Shards  int
	Retries int
	Total   int
	Created time.Time

	file jobFile
	dir  string

	status    *exp.Status
	interrupt chan os.Signal

	mu      sync.Mutex
	state   string
	errMsg  string
	recs    []shardRec
	changed chan struct{}
}

// newJob builds the in-memory job for a job file; the caller decides the
// initial state (adoption vs a fresh submission).
func newJob(jf jobFile, dir string) *Job {
	return &Job{
		ID:        jf.ID,
		Matrix:    jf.Matrix,
		Shards:    jf.Shards,
		Retries:   jf.Retries,
		Total:     jf.Total,
		Created:   jf.Created,
		file:      jf,
		dir:       dir,
		status:    exp.NewStatus(jf.Total),
		interrupt: make(chan os.Signal, 1),
		state:     StatePending,
		changed:   make(chan struct{}),
	}
}

func (j *Job) specPath() string     { return filepath.Join(j.dir, "matrix.json") }
func (j *Job) streamDir() string    { return filepath.Join(j.dir, "streams") }
func (j *Job) snapshotPath() string { return filepath.Join(j.dir, "snapshot.json") }

// adoptDone restores a finished job from its snapshot: the records feed
// the live list (for /records and /diff) and the status counters, so an
// adopted job reports the same numbers it did the moment it finished.
func (j *Job) adoptDone(recs []exp.Record) {
	j.state = StateDone
	for _, r := range recs {
		j.recs = append(j.recs, shardRec{rec: r})
		j.status.ScenarioStarted()
		j.status.ScenarioDone(r)
	}
}

// setState transitions the in-memory state and wakes streaming clients.
func (j *Job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.wake()
	j.mu.Unlock()
}

// finish records a terminal in-memory state.
func (j *Job) finish(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.wake()
	j.mu.Unlock()
}

// wake closes and replaces the change channel; callers hold mu.
func (j *Job) wake() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// onRecord is the fanout OnRecord hook: append to the live list, count in
// the live status, wake streamers.
func (j *Job) onRecord(shard int, rec exp.Record) {
	j.status.ScenarioStarted()
	j.status.ScenarioDone(rec)
	j.mu.Lock()
	j.recs = append(j.recs, shardRec{shard: shard, rec: rec})
	j.wake()
	j.mu.Unlock()
}

// onDiscard is the fanout OnDiscard hook: a crashed attempt's records are
// rolled back out of the live list and counters (the retry re-streams
// identical ones). Clients already holding the dropped records simply see
// them again when the retry re-produces them — the snapshot, not the live
// stream, is the canonical artifact.
func (j *Job) onDiscard(shard int, recs []exp.Record) {
	for _, rec := range recs {
		j.status.ScenarioUncounted(rec)
	}
	j.mu.Lock()
	kept := j.recs[:0]
	for _, sr := range j.recs {
		if sr.shard != shard {
			kept = append(kept, sr)
		}
	}
	j.recs = kept
	j.wake()
	j.mu.Unlock()
}

// signalInterrupt delivers one interrupt to the job's fanout tree; a
// buffered channel makes it safe to signal a job whose run has not reached
// (or already passed) fanout.Run.
func (j *Job) signalInterrupt() {
	select {
	case j.interrupt <- os.Interrupt:
	default:
	}
}

// view returns the records from index from on (clamped: a retry rollback
// may have shrunk the list), the current state, and a channel that closes
// on the next change — the contract the /records streaming handler loops
// on.
func (j *Job) view(from int) (recs []exp.Record, next int, state string, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from > len(j.recs) {
		from = len(j.recs)
	}
	for _, sr := range j.recs[from:] {
		recs = append(recs, sr.rec)
	}
	return recs, from + len(recs), j.state, j.changed
}

// terminal reports whether state is one no further records can follow.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateInterrupted
}

// Status assembles the wire view of the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	state, errMsg, records := j.state, j.errMsg, len(j.recs)
	j.mu.Unlock()
	return JobStatus{
		ID:               j.ID,
		Matrix:           j.Matrix,
		Shards:           j.Shards,
		State:            state,
		Total:            j.Total,
		Done:             j.status.Done.Load(),
		Failed:           j.status.Failed.Load(),
		InFlight:         j.status.InFlight.Load(),
		Records:          records,
		NodeRoundsPerSec: j.status.NodeRoundsPerSec(),
		Created:          j.Created,
		Error:            errMsg,
	}
}

// readJobFile loads and minimally validates a job dir's job.json.
func readJobFile(dir string) (jobFile, error) {
	data, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return jobFile{}, err
	}
	var jf jobFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return jobFile{}, fmt.Errorf("qdcd: %s: %w", dir, err)
	}
	if jf.ID == "" || jf.Shards < 1 || jf.Total < 1 {
		return jobFile{}, fmt.Errorf("qdcd: %s: job file is incomplete", dir)
	}
	return jf, nil
}

// writeJobFile persists jf into dir atomically enough for the adoption
// scan: a rename is either fully old or fully new, never a torn file.
func writeJobFile(dir string, jf jobFile) error {
	data, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		return fmt.Errorf("qdcd: %w", err)
	}
	tmp := filepath.Join(dir, "job.json.tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("qdcd: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "job.json")); err != nil {
		return fmt.Errorf("qdcd: %w", err)
	}
	return nil
}
