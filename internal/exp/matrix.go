package exp

import (
	"fmt"
	"sort"

	"qdc/internal/congest"
	"qdc/internal/dist/engine"
	"qdc/internal/lbnetwork"
)

// Matrix is a declarative sweep spec: the cross product of its axes, minus
// the combinations that are structurally impossible (see Compatible),
// expands into concrete scenarios with deterministic per-scenario seeds.
type Matrix struct {
	Name       string         `json:"name"`
	Topologies []TopologySpec `json:"topologies"`
	Bandwidths []int          `json:"bandwidths"`
	Backends   []string       `json:"backends"`
	Algorithms []string       `json:"algorithms"`
	// BaseSeed is folded into every derived scenario seed; two expansions
	// with the same base produce identical runs.
	BaseSeed int64 `json:"base_seed"`
}

// Compatible reports whether the combination can execute at all, and the
// constraint it violates when it cannot:
//
//   - AlgDisjointness runs a pipelined path protocol, so it needs
//     FamilyPath and a non-simulation backend;
//   - BackendSimulation re-accounts messages on the lower-bound network,
//     so it needs FamilyLBNet;
//   - BackendQuantum re-accounts with the Grover substitution, which the
//     paper licenses only for the Set Disjointness family (for everything
//     else the Ω̃(√n + D) lower bounds survive quantumly), so it needs
//     AlgDisjointness;
//   - AlgMST (exact) sends full weight words, so the bandwidth must carry
//     the widest candidate message for the topology's size.
//
// Matrix.Expand silently skips incompatible cells, which is what lets the
// axes stay orthogonal while e.g. disjointness appears in the same matrix
// as MST.
func Compatible(t TopologySpec, algorithm, backend string, bandwidth int) (bool, string) {
	if algorithm == AlgDisjointness {
		if t.Family != FamilyPath {
			return false, "disjointness needs a path topology"
		}
		if backend == BackendSimulation {
			return false, "disjointness cannot run under the simulation backend"
		}
	}
	if backend == BackendSimulation && t.Family != FamilyLBNet {
		return false, "the simulation backend needs the lower-bound network"
	}
	if backend == BackendQuantum && algorithm != AlgDisjointness {
		return false, "the quantum backend re-accounts only the disjointness protocol"
	}
	if algorithm == AlgFlood {
		if backend == BackendSimulation {
			return false, "flood does not run under the simulation backend"
		}
		// One distance announcement: tag + a distance that can reach n-1.
		need := engine.TagBits + congest.BitsForID(lbSizeUpperBound(t))
		if bandwidth < need {
			return false, fmt.Sprintf("flood needs %d bits per round, bandwidth is %d", need, bandwidth)
		}
	}
	if algorithm == AlgMST {
		// Widest exact-MST message: tag + has-flag + two IDs + weight word.
		need := engine.TagBits + congest.BitsForBool + 2*congest.BitsForID(lbSizeUpperBound(t)) + congest.BitsForWeight
		if bandwidth < need {
			return false, fmt.Sprintf("exact MST needs %d bits per round, bandwidth is %d", need, bandwidth)
		}
	}
	return true, ""
}

// lbSizeUpperBound returns a vertex-count upper bound for ID sizing: the
// nominal size for plain families, and Γ·(2L+log L) for the lower-bound
// network, computed from the spec's Γ (= Size) and the rounded path length
// the constructor actually uses. The realised network has Γ·L path vertices
// plus at most L+log L highway vertices, so Γ·(2L+log L) dominates it for
// every Γ >= 2 that lbnetwork.New accepts; TestLBSizeUpperBound pins the
// bound against the constructor's real vertex counts.
func lbSizeUpperBound(t TopologySpec) int {
	if t.Family != FamilyLBNet {
		return t.Size
	}
	pathLen := int(t.Param)
	if pathLen <= 0 {
		pathLen = 17
	}
	l, k := lbnetwork.RoundedDims(pathLen)
	return t.Size * (2*l + k)
}

// Expand returns the concrete scenarios of the matrix in a deterministic
// order with deterministic seeds.
func (m Matrix) Expand() []Scenario {
	var out []Scenario
	for _, topo := range m.Topologies {
		for _, algo := range m.Algorithms {
			for _, backend := range m.Backends {
				for _, bw := range m.Bandwidths {
					if ok, _ := Compatible(topo, algo, backend, bw); !ok {
						continue
					}
					key := scenarioKey(topo, algo, backend, bw)
					out = append(out, Scenario{
						Name:      key,
						Topology:  topo,
						Algorithm: algo,
						Backend:   backend,
						Bandwidth: bw,
						Seed:      DeriveSeed(m.BaseSeed, key),
					})
				}
			}
		}
	}
	return out
}

// matrices is the registry of named sweeps cmd/qdcbench exposes via -matrix.
var matrices = map[string]Matrix{
	// quick is the smoke-test sweep: small networks, three backends, every
	// algorithm class. CI runs it on every push.
	"quick": {
		Name: "quick",
		Topologies: []TopologySpec{
			{Family: FamilyPath, Size: 9},
			{Family: FamilyCycle, Size: 8},
			{Family: FamilyRandom, Size: 12, Param: 0.3, MaxWeight: 16},
		},
		Bandwidths: []int{32},
		Backends:   []string{BackendLocal, BackendParallel, BackendQuantum},
		Algorithms: []string{AlgVerify, AlgMSTApprox, AlgDisjointness},
		BaseSeed:   1,
	},
	// default is the standing BENCH sweep: every topology family, both
	// bandwidth regimes, all four backends, all four algorithms. The short
	// path5 exists so the disjointness local/quantum pairs probe a small
	// diameter as well as path33's large one.
	"default": {
		Name: "default",
		Topologies: []TopologySpec{
			{Family: FamilyPath, Size: 5},
			{Family: FamilyPath, Size: 33},
			{Family: FamilyCycle, Size: 32},
			{Family: FamilyStar, Size: 24},
			{Family: FamilyGrid, Size: 36},
			{Family: FamilyRandom, Size: 40, Param: 0.15, MaxWeight: 64},
			{Family: FamilyTree, Size: 48, MaxWeight: 1024},
			{Family: FamilyLBNet, Size: 6, Param: 17},
		},
		Bandwidths: []int{32, 128},
		Backends:   []string{BackendLocal, BackendParallel, BackendSimulation, BackendQuantum},
		Algorithms: []string{AlgVerify, AlgMST, AlgMSTApprox, AlgDisjointness},
		BaseSeed:   1,
	},
	// scale pushes the same families to the sizes where the parallel
	// backend's per-round fan-out pays off.
	"scale": {
		Name: "scale",
		Topologies: []TopologySpec{
			{Family: FamilyPath, Size: 129},
			{Family: FamilyCycle, Size: 128},
			{Family: FamilyGrid, Size: 144},
			{Family: FamilyRandom, Size: 128, Param: 0.06, MaxWeight: 256},
			{Family: FamilyTree, Size: 160, MaxWeight: 4096},
			{Family: FamilyLBNet, Size: 10, Param: 33},
		},
		Bandwidths: []int{64, 256},
		Backends:   []string{BackendLocal, BackendParallel, BackendSimulation, BackendQuantum},
		Algorithms: []string{AlgVerify, AlgMST, AlgMSTApprox, AlgDisjointness},
		BaseSeed:   1,
	},
	// roundbench is the deterministic companion of the round-loop
	// microbenchmarks in internal/congest: the same flood workload shapes,
	// sized for CI, run through the regular scenario pipeline so their
	// rounds/bits land in the BENCH_*.json snapshots and the trend view.
	// `qdcbench roundbench -append` folds these records into an existing
	// snapshot (see cmd/qdcbench and FoldRecords).
	// The grid102400 cell is the n=100k word-payload workload: it pins the
	// streaming-CSR + word-message data plane's throughput and peak heap
	// (qdcbench roundbench measures both) where the compact payload
	// migration is worth whole gigabytes.
	"roundbench": {
		Name: "roundbench",
		Topologies: []TopologySpec{
			{Family: FamilyPath, Size: 1025},
			{Family: FamilyGrid, Size: 4096},
			{Family: FamilyGrid, Size: 102_400},
		},
		Bandwidths: []int{64},
		Backends:   []string{BackendLocal, BackendParallel},
		Algorithms: []string{AlgFlood},
		BaseSeed:   1,
	},
	// scale-xl is the 100k+-node sweep the allocation-free round loop
	// unlocked: flooding on path and grid at n >= 100k, local vs parallel,
	// topped by the million-node grid the streaming CSR loader and the
	// word-encoded flood payloads exist for (its ~2000-round eccentricity
	// needs an explicit -timeout of several minutes). It is deliberately
	// absent from quick/default (and from CI) — run it explicitly with
	// -matrix scale-xl when chasing round-loop throughput.
	"scale-xl": {
		Name: "scale-xl",
		Topologies: []TopologySpec{
			{Family: FamilyPath, Size: 100_001},
			{Family: FamilyGrid, Size: 102_400},
			{Family: FamilyGrid, Size: 1_000_000},
		},
		Bandwidths: []int{64},
		Backends:   []string{BackendLocal, BackendParallel},
		Algorithms: []string{AlgFlood},
		BaseSeed:   1,
	},
	// crossover is the Example 1.1 sweep: disjointness only, local vs
	// quantum on paths whose diameters straddle the predicted crossover
	// (with b = 8B the crossover diameter is 4 at B=1 and 2 at B=4/B=8, so
	// both sides of the separation appear on every bandwidth).
	"crossover": {
		Name: "crossover",
		Topologies: []TopologySpec{
			{Family: FamilyPath, Size: 2},
			{Family: FamilyPath, Size: 3},
			{Family: FamilyPath, Size: 4},
			{Family: FamilyPath, Size: 5},
			{Family: FamilyPath, Size: 9},
			{Family: FamilyPath, Size: 17},
			{Family: FamilyPath, Size: 33},
		},
		Bandwidths: []int{1, 4, 8},
		Backends:   []string{BackendLocal, BackendQuantum},
		Algorithms: []string{AlgDisjointness},
		BaseSeed:   1,
	},
}

// LookupMatrix returns the named matrix from the registry.
func LookupMatrix(name string) (Matrix, bool) {
	m, ok := matrices[name]
	return m, ok
}

// MatrixNames returns the registered matrix names, sorted.
func MatrixNames() []string {
	names := make([]string, 0, len(matrices))
	for name := range matrices {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
