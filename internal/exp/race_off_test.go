//go:build !race

package exp

// raceEnabled reports whether the race detector instruments this build; the
// million-node smoke skips under it (instrumented shadow memory multiplies
// the footprint the test exists to bound).
const raceEnabled = false
