// Package exp is the experiment harness of the repository: it turns the
// paper's cost-separation claims into sweeps that are cheap to run and
// cheap to diff.
//
// The subsystem has three parts:
//
//   - a scenario registry: named Scenario values (topology family ×
//     algorithm × backend × bandwidth × deterministic seed) and Matrix
//     specs that expand into hundreds of concrete runs (see matrix.go) —
//     compiled into the registry or loaded from strictly validated JSON
//     files (LoadMatrix, see load.go);
//   - a worker-pool executor that runs scenarios concurrently across
//     shards with per-run timeouts and panic isolation (see pool.go);
//     Matrix.Shard additionally slices one expansion into deterministic,
//     disjoint pieces for multi-process or multi-machine fan-out (see
//     shard.go), and MergeRecords folds the shard outputs back into the
//     canonical snapshot an unsharded run would have produced, byte for
//     byte (see merge.go);
//   - a results pipeline: Record rows streamed to JSONL/JSON sinks, a
//     Compare regression diff between two result sets (see sink.go), and a
//     Trend view over a directory of snapshots that tracks per-scenario
//     cost trajectories across many PRs (see trend.go).
//
// cmd/qdcbench drives the harness from the command line
// (-matrix/-shard/-workers/-json plus the merge and trend subcommands),
// which is how BENCH_*.json snapshots are produced, merged and compared
// across commits.
package exp

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"qdc/internal/congest"
	"qdc/internal/graph"
	"qdc/internal/lbnetwork"
)

// Topology families understood by TopologySpec.Build.
const (
	FamilyPath     = "path"
	FamilyCycle    = "cycle"
	FamilyStar     = "star"
	FamilyGrid     = "grid"
	FamilyComplete = "complete"
	FamilyRandom   = "random"
	FamilyTree     = "tree"
	// FamilyLBNet is the paper's Section 8 lower-bound network; Size is the
	// number of paths Γ and Param the path length L (rounded up to the next
	// 2^k+1). It is the only family the simulation backend accepts.
	FamilyLBNet = "lbnet"
)

// Backends a Scenario can execute on.
const (
	// BackendLocal is engine.NewLocal: plain sequential CONGEST(B).
	BackendLocal = "local"
	// BackendParallel is engine.NewParallel: identical accounting, rounds
	// stepped concurrently across GOMAXPROCS goroutines.
	BackendParallel = "parallel"
	// BackendSimulation is simulation.NewRunner: the Theorem 3.5 three-party
	// re-accounting on the lower-bound network (FamilyLBNet only).
	BackendSimulation = "simulation"
	// BackendQuantum is engine.NewQuantum: the same classical execution
	// re-accounted with the distributed-Grover round formula of Example 1.1.
	// It pairs with BackendLocal on identical path scenarios to measure the
	// classical-vs-quantum crossover diameter (AlgDisjointness only — the
	// paper's lower bounds rule out a quantum speed-up for the other
	// problem families).
	BackendQuantum = "quantum"
)

// Algorithms a Scenario can run.
const (
	// AlgVerify runs the verify.SpanningTree CONGEST verifier on a positive
	// instance (a reference MST) and a negative one (the same tree with one
	// edge removed) and checks both verdicts.
	AlgVerify = "verify"
	// AlgMST runs the exact distributed Borůvka MST; it needs enough
	// bandwidth for a full weight word per candidate message.
	AlgMST = "mst"
	// AlgMSTApprox runs the 2-approximate rounded-weight MST, whose class
	// keys fit narrow bandwidths.
	AlgMSTApprox = "mst2"
	// AlgDisjointness runs the pipelined Example 1.1 Set Disjointness
	// protocol (FamilyPath only).
	AlgDisjointness = "disjointness"
	// AlgFlood runs the BFS flooding primitive from vertex 0 and checks the
	// adopted distances against a sequential BFS. It is the scale workload:
	// O(1) messages per edge and rounds equal to the eccentricity, so it
	// stays affordable on topologies far beyond the other sweeps.
	AlgFlood = "flood"
)

// TopologySpec names one concrete network topology of a scenario.
type TopologySpec struct {
	// Family is one of the Family* constants.
	Family string `json:"family"`
	// Size is the nominal vertex count (for FamilyGrid it is rounded down
	// to a square; for FamilyLBNet it is the path count Γ).
	Size int `json:"size"`
	// Param is the family-specific knob: edge probability for FamilyRandom,
	// path length L for FamilyLBNet. Zero selects a family default.
	Param float64 `json:"param,omitempty"`
	// MaxWeight, when > 1, redraws edge weights uniformly from
	// [1, MaxWeight] with the scenario's rng (aspect-ratio workloads for
	// MST). Ignored by FamilyLBNet.
	MaxWeight float64 `json:"max_weight,omitempty"`
}

// String returns the label used in scenario names, e.g. "path33" or
// "random40(p=0.15,w=64)". Param and MaxWeight are part of the label
// because they are part of the identity: two topologies differing only in
// them must not collide on scenario name or derived seed.
func (t TopologySpec) String() string {
	label := fmt.Sprintf("%s%d", t.Family, t.Size)
	var knobs []string
	if t.Param != 0 {
		knobs = append(knobs, fmt.Sprintf("p=%g", t.Param))
	}
	if t.MaxWeight > 1 {
		knobs = append(knobs, fmt.Sprintf("w=%g", t.MaxWeight))
	}
	if len(knobs) > 0 {
		label += "(" + strings.Join(knobs, ",") + ")"
	}
	return label
}

// Scenario is one fully specified experiment run. Scenarios are plain data:
// expanding a Matrix yields them, RunScenario executes them, and Records
// embed them so a results file is self-describing.
type Scenario struct {
	// Name uniquely identifies the scenario inside its matrix; Compare
	// matches old and new records by it.
	Name      string       `json:"name"`
	Topology  TopologySpec `json:"topology"`
	Algorithm string       `json:"algorithm"`
	Backend   string       `json:"backend"`
	// Bandwidth is the per-edge, per-round bit budget B.
	Bandwidth int `json:"bandwidth"`
	// Seed drives every random choice of the run (topology weights, inputs,
	// per-node streams). Matrix.Expand derives it deterministically from the
	// scenario name, so re-running a matrix reproduces each run exactly.
	Seed int64 `json:"seed"`
}

// key is the canonical identity of a scenario within a matrix.
func scenarioKey(t TopologySpec, algorithm, backend string, bandwidth int) string {
	return fmt.Sprintf("%s/%s/%s/B%d", t, algorithm, backend, bandwidth)
}

// DeriveSeed returns the deterministic per-scenario seed for a scenario key:
// a 64-bit FNV-1a hash of the key folded with the matrix base seed. Distinct
// scenarios get independent streams while identical (matrix, base) pairs
// reproduce identical runs.
func DeriveSeed(base int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return base ^ int64(h.Sum64())
}

// builtTopology is the realised network of a scenario: a map-based graph
// (plus the lower-bound network when the family is FamilyLBNet — the
// simulation backend needs its ownership structure, not just its edges), or
// a CSR built by the streaming loader when the scenario qualifies for it
// (see BuildCSR). Exactly one of Graph and CSR is set.
type builtTopology struct {
	Graph *graph.Graph
	LB    *lbnetwork.Network
	CSR   *graph.CSR
}

// topology returns the congest.Topology view the backends run over.
func (b *builtTopology) topology() congest.Topology {
	if b.CSR != nil {
		return b.CSR
	}
	return b.Graph
}

// Build realises the topology. Random families draw from rng, so callers
// must seed it from Scenario.Seed for reproducibility.
func (t TopologySpec) Build(rng *rand.Rand) (*builtTopology, error) {
	if t.Size < 2 && t.Family != FamilyLBNet {
		return nil, fmt.Errorf("exp: %s needs size >= 2, got %d", t.Family, t.Size)
	}
	var (
		g   *graph.Graph
		err error
	)
	switch t.Family {
	case FamilyPath:
		g = graph.Path(t.Size)
	case FamilyCycle:
		g, err = graph.Cycle(t.Size)
	case FamilyStar:
		g = graph.Star(t.Size)
	case FamilyComplete:
		g = graph.Complete(t.Size)
	case FamilyGrid:
		side := int(math.Sqrt(float64(t.Size)))
		if side < 2 {
			return nil, fmt.Errorf("exp: grid needs size >= 4, got %d", t.Size)
		}
		g = graph.Grid(side, side)
	case FamilyRandom:
		p := t.Param
		if p <= 0 {
			p = 0.1
		}
		g = graph.RandomConnectedGraph(t.Size, p, rng)
	case FamilyTree:
		g = graph.RandomSpanningTree(t.Size, rng)
	case FamilyLBNet:
		pathLen := int(t.Param)
		if pathLen <= 0 {
			pathLen = 17
		}
		lb, lbErr := lbnetwork.New(t.Size, pathLen)
		if lbErr != nil {
			return nil, fmt.Errorf("exp: %v", lbErr)
		}
		return &builtTopology{Graph: lb.Graph, LB: lb}, nil
	default:
		return nil, fmt.Errorf("exp: unknown topology family %q", t.Family)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: %v", err)
	}
	if t.MaxWeight > 1 {
		g, err = graph.AssignRandomWeights(g, t.MaxWeight, rng)
		if err != nil {
			return nil, fmt.Errorf("exp: %v", err)
		}
	}
	return &builtTopology{Graph: g}, nil
}

// Streamable reports whether BuildCSR can realise the topology: a unit-weight
// family whose edges can be emitted as a flat stream. Reweighted topologies
// (MaxWeight > 1) redraw weights over the built graph's edge list, and the
// lower-bound network carries ownership structure beyond its edges, so both
// take the map-based Build route.
func (t TopologySpec) Streamable() bool {
	if t.MaxWeight > 1 {
		return false
	}
	switch t.Family {
	case FamilyPath, FamilyCycle, FamilyStar, FamilyComplete, FamilyGrid, FamilyRandom, FamilyTree:
		return true
	}
	return false
}

// BuildCSR realises a Streamable topology directly as a congest-ready CSR:
// the family's edge stream feeds graph.Builder's two counting passes over
// flat tables, so no per-vertex adjacency maps are ever materialised — the
// constructor the million-node scenarios run through. Random families
// consume rng exactly as Build does (the generators and the builder share
// one edge-emitter per family), so a scenario produces bit-identical runs
// whichever route built its topology.
func (t TopologySpec) BuildCSR(rng *rand.Rand) (*graph.CSR, error) {
	if !t.Streamable() {
		return nil, fmt.Errorf("exp: topology %s is not streamable", t)
	}
	if t.Size < 2 {
		return nil, fmt.Errorf("exp: %s needs size >= 2, got %d", t.Family, t.Size)
	}
	n := t.Size
	b := graph.NewBuilder(n)
	switch t.Family {
	case FamilyPath:
		graph.EmitPath(n, b.MustAddEdge)
	case FamilyCycle:
		if n < 3 {
			return nil, fmt.Errorf("exp: a cycle needs at least 3 vertices, got %d", n)
		}
		graph.EmitCycle(n, b.MustAddEdge)
	case FamilyStar:
		graph.EmitStar(n, b.MustAddEdge)
	case FamilyComplete:
		graph.EmitComplete(n, b.MustAddEdge)
	case FamilyGrid:
		side := int(math.Sqrt(float64(n)))
		if side < 2 {
			return nil, fmt.Errorf("exp: grid needs size >= 4, got %d", n)
		}
		b = graph.NewBuilder(side * side)
		graph.EmitGrid(side, side, b.MustAddEdge)
	case FamilyRandom:
		p := t.Param
		if p <= 0 {
			p = 0.1
		}
		graph.EmitRandomConnected(n, p, rng, b.MustAddEdge)
	case FamilyTree:
		graph.EmitSpanningTree(n, rng, b.MustAddEdge)
	}
	csr, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("exp: %v", err)
	}
	return csr, nil
}
