package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// shardTestMatrix is small enough to execute for real in the byte-identity
// test below, but expands to enough scenarios (8) to exercise uneven splits.
var shardTestMatrix = Matrix{
	Name: "shardtest",
	Topologies: []TopologySpec{
		{Family: FamilyPath, Size: 5},
		{Family: FamilyCycle, Size: 4},
	},
	Bandwidths: []int{16, 32},
	Backends:   []string{BackendLocal},
	Algorithms: []string{AlgVerify, AlgMSTApprox},
	BaseSeed:   11,
}

func TestShardDisjointCover(t *testing.T) {
	m := shardTestMatrix
	all := m.Expand()
	for _, n := range []int{1, 2, 3, len(all), len(all) + 3} {
		seen := make(map[string]int)
		total := 0
		for i := 1; i <= n; i++ {
			shard, err := m.Shard(i, n)
			if err != nil {
				t.Fatalf("Shard(%d,%d): %v", i, n, err)
			}
			again, err := m.Shard(i, n)
			if err != nil || !reflect.DeepEqual(shard, again) {
				t.Fatalf("Shard(%d,%d) is not deterministic", i, n)
			}
			total += len(shard)
			for _, s := range shard {
				seen[s.Name]++
			}
		}
		if total != len(all) {
			t.Errorf("n=%d: shards hold %d scenarios, expansion has %d", n, total, len(all))
		}
		for _, s := range all {
			if seen[s.Name] != 1 {
				t.Errorf("n=%d: scenario %q appears in %d shards, want exactly 1", n, s.Name, seen[s.Name])
			}
		}
	}
}

func TestShardBounds(t *testing.T) {
	m := shardTestMatrix
	for _, c := range [][2]int{{0, 2}, {3, 2}, {1, 0}, {-1, -1}} {
		if _, err := m.Shard(c[0], c[1]); err == nil {
			t.Errorf("Shard(%d,%d) accepted an out-of-range slice", c[0], c[1])
		}
	}
}

func TestParseShard(t *testing.T) {
	if i, n, err := ParseShard("2/4"); err != nil || i != 2 || n != 4 {
		t.Errorf("ParseShard(2/4) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "2", "2/", "/4", "0/4", "5/4", "a/4", "2/b", "2/4/6", "-1/4"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted a malformed spec", bad)
		}
	}
}

func TestMergeRecordsRejectsDuplicates(t *testing.T) {
	a := Record{Scenario: Scenario{Name: "x"}}
	b := Record{Scenario: Scenario{Name: "y"}}
	if _, err := MergeRecords([]Record{a, b}, []Record{a}); err == nil {
		t.Fatal("a scenario present in two shards must fail the merge")
	} else if !strings.Contains(err.Error(), `"x"`) {
		t.Errorf("duplicate error does not name the scenario: %v", err)
	}
	merged, err := MergeRecords([]Record{b}, []Record{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 || merged[0].Scenario.Name != "x" || merged[1].Scenario.Name != "y" {
		t.Errorf("merged set not sorted by name: %+v", merged)
	}
}

func TestCheckComplete(t *testing.T) {
	m := shardTestMatrix
	var recs []Record
	for _, s := range m.Expand() {
		recs = append(recs, Record{Scenario: s})
	}
	if err := CheckComplete(m, recs); err != nil {
		t.Errorf("full cover reported incomplete: %v", err)
	}
	if err := CheckComplete(m, recs[1:]); err == nil {
		t.Error("a missing scenario must fail the completeness check")
	} else if !strings.Contains(err.Error(), recs[0].Scenario.Name) {
		t.Errorf("incompleteness error does not name the missing scenario: %v", err)
	}
	extra := append(append([]Record{}, recs...), Record{Scenario: Scenario{Name: "stray"}})
	if err := CheckComplete(m, extra); err == nil || !strings.Contains(err.Error(), "stray") {
		t.Errorf("an unexpected scenario must fail the completeness check, got %v", err)
	}
	// A record with the right name but a different embedded spec (e.g. a
	// shard run with another -seed) must fail too, or mixed-seed shards
	// would merge into a silently inconsistent snapshot.
	mixed := append([]Record{}, recs...)
	mixed[0].Scenario.Seed++
	if err := CheckComplete(m, mixed); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("a same-name different-spec record must fail the completeness check, got %v", err)
	}
}

// TestMergeMatchesUnsharded is the scale-out invariant: executing the matrix
// as n separate shards and merging the results must reproduce, byte for
// byte, the canonical JSON snapshot of one unsharded run. The sharded CI
// job enforces the same property through the qdcbench CLI.
func TestMergeMatchesUnsharded(t *testing.T) {
	m := shardTestMatrix

	var unsharded bytes.Buffer
	sink := NewJSONSink(&unsharded)
	if _, err := Execute(m.Expand(), ExecOptions{Workers: 2}, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 3} {
		var sets [][]Record
		for i := 1; i <= n; i++ {
			shard, err := m.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			collect := &Collect{}
			if _, err := Execute(shard, ExecOptions{Workers: 2}, collect); err != nil {
				t.Fatal(err)
			}
			sets = append(sets, collect.Records)
		}
		merged, err := MergeRecords(sets...)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckComplete(m, merged); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		mergeSink := NewJSONSink(&got)
		for _, r := range merged {
			if err := mergeSink.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := mergeSink.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), unsharded.Bytes()) {
			t.Errorf("n=%d: merged snapshot differs from the unsharded run:\n%s\nvs\n%s",
				n, got.Bytes(), unsharded.Bytes())
		}
	}
}
