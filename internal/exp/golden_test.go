package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"qdc/internal/dist/engine"
)

// update regenerates the golden files under testdata/:
//
//	go test ./internal/exp -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenRecords is a fixed, fully deterministic record set covering the
// sink-visible surface: a passing classical run, a quantum-backend run with
// qubit accounting, and a failed run with an error. WallMillis is zero
// everywhere — it is the one field the pipeline promises not to reproduce.
func goldenRecords() []Record {
	return []Record{
		{
			Scenario: Scenario{
				Name:      "path9/disjointness/local/B4",
				Topology:  TopologySpec{Family: FamilyPath, Size: 9},
				Algorithm: AlgDisjointness,
				Backend:   BackendLocal,
				Bandwidth: 4,
				Seed:      41,
			},
			Stats:  engine.Stats{Stages: 1, Rounds: 26, Messages: 74, Bits: 263},
			OK:     true,
			Detail: "b=32 verdict=true want=true rounds=26 (Θ(D+b/B)=16)",
		},
		{
			Scenario: Scenario{
				Name:      "path9/disjointness/quantum/B4",
				Topology:  TopologySpec{Family: FamilyPath, Size: 9},
				Algorithm: AlgDisjointness,
				Backend:   BackendQuantum,
				Bandwidth: 4,
				Seed:      42,
			},
			Stats:  engine.Stats{Stages: 1, Rounds: 48, Messages: 48, Bits: 288, QuantumBits: 288},
			OK:     true,
			Detail: "b=32 verdict=true want=true rounds=48 (Θ(D+b/B)=16); grover: b=32 D=8 quantum_rounds=48 classical_rounds=26",
		},
		{
			Scenario: Scenario{
				Name:      "cycle8/verify/local/B32",
				Topology:  TopologySpec{Family: FamilyCycle, Size: 8},
				Algorithm: AlgVerify,
				Backend:   BackendLocal,
				Bandwidth: 32,
				Seed:      43,
			},
			Error: "exp: verify needs a topology with at least one edge",
		},
	}
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden file.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestGoldenJSONSink pins the exact bytes of a BENCH-style JSON snapshot:
// records sorted by scenario name, two-space indentation, quantum bits
// present only where charged.
func TestGoldenJSONSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONSink(&buf)
	recs := goldenRecords()
	// Write out of order: the sink must sort on Close.
	for _, i := range []int{2, 0, 1} {
		if err := sink.Write(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records_golden.json", buf.Bytes())

	back, err := readRecordsBytes(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{recs[2], recs[0], recs[1]} // name order
	if !reflect.DeepEqual(back, want) {
		t.Errorf("JSON snapshot did not round-trip:\n%+v\nwant:\n%+v", back, want)
	}
}

// TestGoldenJSONLSink pins the JSONL stream format: one compact object per
// line in write (completion) order.
func TestGoldenJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	recs := goldenRecords()
	for _, r := range recs {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "records_golden.jsonl", buf.Bytes())

	back, err := readRecordsBytes(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Errorf("JSONL stream did not round-trip:\n%+v\nwant:\n%+v", back, recs)
	}
}

// readRecordsBytes routes bytes through ReadRecords via a temp file, so the
// golden tests exercise the same sniffing loader the CLI uses.
func readRecordsBytes(t *testing.T, data []byte) ([]Record, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "records")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return ReadRecords(path)
}

// TestGoldenCompare pins the Compare diff of two fixed snapshots: a cost
// regression, a verdict break, an improvement, and asymmetric scenario sets.
func TestGoldenCompare(t *testing.T) {
	recs := goldenRecords()
	old := []Record{recs[0], recs[1]}
	newer := make([]Record, 2, 3)
	copy(newer, old)
	newer[0].Stats.Rounds += 5 // rounds regression on the local record
	newer[0].Stats.Bits -= 32  // bits improvement on the same record
	newer[1].OK = false        // verdict break on the quantum record
	newer[1].Detail = "verdicts diverged"
	newer = append(newer, Record{Scenario: Scenario{Name: "fresh/scenario"}, OK: true})

	diff := Compare(old, newer)
	got, err := json.MarshalIndent(diff, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	checkGolden(t, "compare_golden.json", got)
}

func TestReadRecordsEdgeCases(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("empty snapshot", func(t *testing.T) {
		recs, err := ReadRecords(write("empty.jsonl", ""))
		if err != nil {
			t.Fatalf("an empty results file must load as zero records, got error %v", err)
		}
		if len(recs) != 0 {
			t.Fatalf("read %d records from an empty file", len(recs))
		}
	})
	t.Run("empty array snapshot", func(t *testing.T) {
		recs, err := ReadRecords(write("empty.json", "[]\n"))
		if err != nil || len(recs) != 0 {
			t.Fatalf("empty array: recs=%v err=%v", recs, err)
		}
	})
	t.Run("corrupt line", func(t *testing.T) {
		good, _ := json.Marshal(goldenRecords()[0])
		path := write("corrupt.jsonl", string(good)+"\n{\"scenario\": TRUNC\n")
		_, err := ReadRecords(path)
		if err == nil {
			t.Fatal("a corrupt JSONL line must be an explicit error")
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("corrupt-line error does not name the file: %v", err)
		}
	})
	t.Run("corrupt array", func(t *testing.T) {
		_, err := ReadRecords(write("corrupt.json", "[{\"scenario\":}]"))
		if err == nil {
			t.Fatal("a corrupt JSON array must be an explicit error")
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := ReadRecords(filepath.Join(dir, "absent.json")); err == nil {
			t.Fatal("a missing results file must be an explicit error")
		}
	})
}

func TestCompareEdgeCases(t *testing.T) {
	recs := goldenRecords()

	t.Run("empty old snapshot", func(t *testing.T) {
		diff := Compare(nil, recs[:2])
		if !diff.Clean() {
			t.Errorf("everything-added diff must be clean, got %+v", diff.Regressions)
		}
		if len(diff.Added) != 2 || len(diff.Removed) != 0 {
			t.Errorf("added=%v removed=%v, want 2 added", diff.Added, diff.Removed)
		}
	})
	t.Run("empty new snapshot", func(t *testing.T) {
		diff := Compare(recs[:2], nil)
		// Losing every scenario is the extreme form of the removal blind
		// spot: it must not pass the gate, only the explicit escape hatch.
		if diff.Clean() {
			t.Error("everything-removed diff must not be clean")
		}
		if !diff.CleanExceptRemoved() {
			t.Errorf("everything-removed diff has no cost regressions, got %+v", diff.Regressions)
		}
		if len(diff.Removed) != 2 || len(diff.Added) != 0 {
			t.Errorf("added=%v removed=%v, want 2 removed", diff.Added, diff.Removed)
		}
	})
	t.Run("mismatched scenario sets", func(t *testing.T) {
		diff := Compare(recs[:1], recs[1:2])
		if len(diff.Added) != 1 || diff.Added[0] != recs[1].Scenario.Name {
			t.Errorf("added = %v", diff.Added)
		}
		if len(diff.Removed) != 1 || diff.Removed[0] != recs[0].Scenario.Name {
			t.Errorf("removed = %v", diff.Removed)
		}
	})
}
