package exp

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// validMatrixJSON is a minimal well-formed spec the error cases perturb.
const validMatrixJSON = `{
  "name": "filetest",
  "topologies": [{"family": "path", "size": 9}],
  "bandwidths": [32],
  "backends": ["local"],
  "algorithms": ["verify"],
  "base_seed": 3
}`

func writeSpec(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadMatrix(t *testing.T) {
	m, err := LoadMatrix(writeSpec(t, "m.json", validMatrixJSON))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "filetest" || m.BaseSeed != 3 {
		t.Errorf("loaded %+v", m)
	}
	scenarios := m.Expand()
	if len(scenarios) != 1 || scenarios[0].Name != "path9/verify/local/B32" {
		t.Errorf("expansion: %+v", scenarios)
	}
	// The derived seed must match an identical compiled-in matrix: a file
	// spec is a definition, not a different sweep.
	if want := DeriveSeed(3, "path9/verify/local/B32"); scenarios[0].Seed != want {
		t.Errorf("seed %d, want %d", scenarios[0].Seed, want)
	}
}

func TestLoadMatrixNameDefaultsToFileBase(t *testing.T) {
	spec := strings.Replace(validMatrixJSON, `"name": "filetest",`, "", 1)
	m, err := LoadMatrix(writeSpec(t, "nightly-sweep.json", spec))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "nightly-sweep" {
		t.Errorf("name %q, want the file base name", m.Name)
	}
}

func TestLoadMatrixErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"base_seed"`, `"base_sed"`, 1)
		}, "base_sed"},
		{"unknown family", func(s string) string {
			return strings.Replace(s, `"path"`, `"moebius"`, 1)
		}, "unknown topology family"},
		{"unknown backend", func(s string) string {
			return strings.Replace(s, `"local"`, `"telepathy"`, 1)
		}, "unknown backend"},
		{"unknown algorithm", func(s string) string {
			return strings.Replace(s, `"verify"`, `"sorting"`, 1)
		}, "unknown algorithm"},
		{"empty topologies", func(s string) string {
			return strings.Replace(s, `[{"family": "path", "size": 9}]`, `[]`, 1)
		}, "no topologies"},
		{"empty bandwidths", func(s string) string {
			return strings.Replace(s, `[32]`, `[]`, 1)
		}, "no bandwidths"},
		{"empty backends", func(s string) string {
			return strings.Replace(s, `["local"]`, `[]`, 1)
		}, "no backends"},
		{"empty algorithms", func(s string) string {
			return strings.Replace(s, `["verify"]`, `[]`, 1)
		}, "no algorithms"},
		{"undersized topology", func(s string) string {
			return strings.Replace(s, `"size": 9`, `"size": 1`, 1)
		}, "size >= 2"},
		{"non-positive bandwidth", func(s string) string {
			return strings.Replace(s, `[32]`, `[0]`, 1)
		}, "not positive"},
		{"duplicate backend", func(s string) string {
			return strings.Replace(s, `["local"]`, `["local", "local"]`, 1)
		}, "duplicate backend"},
		{"empty expansion", func(s string) string {
			// Simulation needs lbnet, so a path-only matrix with only the
			// simulation backend has zero runnable cells.
			return strings.Replace(s, `["local"]`, `["simulation"]`, 1)
		}, "zero scenarios"},
		{"not JSON", func(string) string { return "topologies: [path]\n" }, "invalid character"},
		{"trailing data", func(s string) string { return s + "\n{}" }, "trailing data"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := LoadMatrix(writeSpec(t, "m.json", c.mutate(validMatrixJSON)))
			if err == nil {
				t.Fatal("LoadMatrix accepted a bad spec")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}

	if _, err := LoadMatrix(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("LoadMatrix accepted a missing file")
	}
}

// TestRegisteredMatricesValidate holds the compiled-in registry to the same
// rules as file specs, so the vocabularies cannot drift apart.
func TestRegisteredMatricesValidate(t *testing.T) {
	for _, name := range MatrixNames() {
		m, _ := LookupMatrix(name)
		if err := m.Validate(); err != nil {
			t.Errorf("registered matrix %q fails validation: %v", name, err)
		}
	}
}

func TestResolveMatrix(t *testing.T) {
	if m, err := ResolveMatrix("quick"); err != nil || m.Name != "quick" {
		t.Errorf("registry name: %v, %v", m.Name, err)
	}
	path := writeSpec(t, "sweep.json", validMatrixJSON)
	if m, err := ResolveMatrix(path); err != nil || m.Name != "filetest" {
		t.Errorf("file path: %v, %v", m.Name, err)
	}
	_, err := ResolveMatrix("no-such-matrix")
	if err == nil || !strings.Contains(err.Error(), "quick") {
		t.Errorf("unknown name must list the registry, got %v", err)
	}
	if _, err := ResolveMatrix("no-such-file.json"); err == nil {
		t.Error("a .json argument must resolve as a file, and a missing file must error")
	}
}

// TestSaveMatrixRoundTrip: the frozen-spec file written at fan-out (or job
// submission) must load back as the very matrix that was expanded, seed
// override and all — the property that makes the frozen path a faithful
// stand-in for the original -matrix argument.
func TestSaveMatrixRoundTrip(t *testing.T) {
	m, ok := LookupMatrix("quick")
	if !ok {
		t.Fatal("quick matrix not registered")
	}
	m.BaseSeed = 12345 // a submit-time -seed override travels in the frozen file

	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := SaveMatrix(path, m); err != nil {
		t.Fatalf("SaveMatrix: %v", err)
	}
	got, err := LoadMatrix(path)
	if err != nil {
		t.Fatalf("LoadMatrix: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round-tripped matrix differs:\n got %+v\nwant %+v", got, m)
	}
	want, gotExp := m.Expand(), got.Expand()
	if !reflect.DeepEqual(gotExp, want) {
		t.Errorf("round-tripped expansion differs: %d vs %d scenarios", len(gotExp), len(want))
	}

	if err := SaveMatrix(filepath.Join(t.TempDir(), "bad.json"), Matrix{Name: "empty"}); err == nil {
		t.Error("SaveMatrix must refuse an invalid matrix")
	}
}
