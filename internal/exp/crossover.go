package exp

import (
	"sort"

	"qdc/internal/dist/disjointness"
)

// CrossoverPoint pairs one disjointness path scenario's classical-backend
// record with its quantum-backend record and compares the measured winner
// against the side disjointness.CrossoverDiameter predicts.
type CrossoverPoint struct {
	Topology  TopologySpec `json:"topology"`
	Bandwidth int          `json:"bandwidth"`
	// Distance is the endpoint hop distance D (path size − 1).
	Distance int `json:"distance"`
	// InputBits is the input size b of the scenario (the 8B rule).
	InputBits int `json:"input_bits"`
	// ClassicalRounds and QuantumRounds are the measured per-backend costs.
	ClassicalRounds int `json:"classical_rounds"`
	QuantumRounds   int `json:"quantum_rounds"`
	// MeasuredWinner is "quantum" when the quantum backend took strictly
	// fewer rounds, else "classical" (ties go to classical, matching
	// CrossoverDiameter's "at least as fast" convention).
	MeasuredWinner string `json:"measured_winner"`
	// PredictedCrossover is disjointness.CrossoverDiameter(b, B): the
	// smallest D at which the classical pipeline is predicted to win.
	PredictedCrossover int `json:"predicted_crossover"`
	// PredictedWinner is the side of the crossover D falls on.
	PredictedWinner string `json:"predicted_winner"`
	// Agree reports MeasuredWinner == PredictedWinner.
	Agree bool `json:"agree"`
	// Decisive reports whether the prediction is outside the protocol's
	// constant-factor ambiguity band. The measured classical protocol pays
	// the formula's D + ⌈b/B⌉ plus disjointness.MeasuredOverhead(D) extra
	// rounds at most, so when the quantum formula wins it always wins
	// measured too, while a predicted classical win is only guaranteed
	// measured once the formula margin exceeds that slack. Near-crossover
	// points are reported but flagged non-decisive.
	Decisive bool `json:"decisive"`
}

// CrossoverReport pairs the disjointness records of a result set — same
// topology and bandwidth, BackendQuantum against its classical counterpart
// (BackendLocal, or BackendParallel when no local record exists) — and
// reports one CrossoverPoint per pair, sorted by bandwidth then distance.
// Failed records and unpaired scenarios are skipped.
func CrossoverReport(records []Record) []CrossoverPoint {
	type pairKey struct {
		topo      TopologySpec
		bandwidth int
	}
	classical := make(map[pairKey]Record)
	quantum := make(map[pairKey]Record)
	for _, r := range records {
		if r.Scenario.Algorithm != AlgDisjointness || r.Failed() {
			continue
		}
		key := pairKey{topo: r.Scenario.Topology, bandwidth: r.Scenario.Bandwidth}
		switch r.Scenario.Backend {
		case BackendQuantum:
			quantum[key] = r
		case BackendLocal:
			classical[key] = r
		case BackendParallel:
			if _, ok := classical[key]; !ok {
				classical[key] = r
			}
		}
	}

	var out []CrossoverPoint
	for key, qr := range quantum {
		cr, ok := classical[key]
		if !ok {
			continue
		}
		d := key.topo.Size - 1
		b := DisjointnessInputBits(key.bandwidth)
		p := CrossoverPoint{
			Topology:           key.topo,
			Bandwidth:          key.bandwidth,
			Distance:           d,
			InputBits:          b,
			ClassicalRounds:    cr.Stats.Rounds,
			QuantumRounds:      qr.Stats.Rounds,
			PredictedCrossover: disjointness.CrossoverDiameter(b, key.bandwidth),
		}
		p.MeasuredWinner = "classical"
		if p.QuantumRounds < p.ClassicalRounds {
			p.MeasuredWinner = "quantum"
		}
		p.PredictedWinner = "classical"
		if d < p.PredictedCrossover {
			p.PredictedWinner = "quantum"
		}
		p.Agree = p.MeasuredWinner == p.PredictedWinner
		formulaClassical := disjointness.ClassicalRounds(b, key.bandwidth, d)
		formulaQuantum := disjointness.QuantumRounds(b, d)
		p.Decisive = p.PredictedWinner == "quantum" ||
			formulaQuantum >= formulaClassical+disjointness.MeasuredOverhead(d)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bandwidth != out[j].Bandwidth {
			return out[i].Bandwidth < out[j].Bandwidth
		}
		return out[i].Distance < out[j].Distance
	})
	return out
}

// CrossoverSummary aggregates the points of one bandwidth: the smallest
// measured diameter at which the classical backend won, next to the
// predicted crossover.
type CrossoverSummary struct {
	Bandwidth int `json:"bandwidth"`
	InputBits int `json:"input_bits"`
	// MeasuredCrossover is the smallest swept D whose measured winner was
	// classical; 0 when the quantum backend won at every swept diameter.
	MeasuredCrossover int `json:"measured_crossover"`
	// PredictedCrossover is disjointness.CrossoverDiameter(b, B).
	PredictedCrossover int `json:"predicted_crossover"`
	// Points is the number of paired diameters swept at this bandwidth.
	Points int `json:"points"`
}

// MeasuredCrossovers condenses a crossover report into one summary per
// bandwidth, sorted by bandwidth.
func MeasuredCrossovers(points []CrossoverPoint) []CrossoverSummary {
	byBW := make(map[int]*CrossoverSummary)
	for _, p := range points {
		s := byBW[p.Bandwidth]
		if s == nil {
			s = &CrossoverSummary{
				Bandwidth:          p.Bandwidth,
				InputBits:          p.InputBits,
				PredictedCrossover: p.PredictedCrossover,
			}
			byBW[p.Bandwidth] = s
		}
		s.Points++
		if p.MeasuredWinner == "classical" && (s.MeasuredCrossover == 0 || p.Distance < s.MeasuredCrossover) {
			s.MeasuredCrossover = p.Distance
		}
	}
	out := make([]CrossoverSummary, 0, len(byBW))
	for _, s := range byBW {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bandwidth < out[j].Bandwidth })
	return out
}
