package exp

import (
	"fmt"
	"sort"
)

// MergeRecords folds the record sets of several shard runs into one set
// sorted by scenario name. A scenario name appearing twice is an error:
// shards of the same matrix are disjoint by construction, so a duplicate
// means the inputs were not shards of one expansion (the same file twice,
// overlapping specs) and silently keeping either copy would corrupt the
// snapshot. Writing the merged set through a JSONSink yields bytes
// identical to an unsharded -json run of the same matrix — the invariant
// that makes multi-process fan-out trustworthy, pinned by
// TestMergeMatchesUnsharded and the sharded CI job.
func MergeRecords(sets ...[]Record) ([]Record, error) {
	var out []Record
	from := make(map[string]int) // scenario name -> 1-based set index
	for i, set := range sets {
		for _, r := range set {
			if prev, dup := from[r.Scenario.Name]; dup {
				if prev == i+1 {
					return nil, fmt.Errorf("exp: scenario %q appears twice within shard %d",
						r.Scenario.Name, prev)
				}
				return nil, fmt.Errorf("exp: scenario %q appears in both shard %d and shard %d",
					r.Scenario.Name, prev, i+1)
			}
			from[r.Scenario.Name] = i + 1
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scenario.Name < out[j].Scenario.Name })
	return out, nil
}

// CheckComplete verifies that the records cover the matrix expansion
// exactly: every expanded scenario has a record, no record names a scenario
// outside the expansion, and each record's embedded Scenario matches the
// expanded one field for field — a record whose name matches but whose seed
// (or any other knob) differs came from a different sweep (e.g. shards run
// with inconsistent -seed) and would corrupt the snapshot just as silently
// as a missing one. It is the merge-time guard against crashed, forgotten
// or mismatched shards.
func CheckComplete(m Matrix, recs []Record) error {
	want := make(map[string]Scenario)
	for _, s := range m.Expand() {
		want[s.Name] = s
	}
	got := make(map[string]bool, len(recs))
	var mismatched []string
	for _, r := range recs {
		got[r.Scenario.Name] = true
		if w, ok := want[r.Scenario.Name]; ok && r.Scenario != w {
			mismatched = append(mismatched, r.Scenario.Name)
		}
	}
	var missing, unexpected []string
	for name := range want {
		if !got[name] {
			missing = append(missing, name)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			unexpected = append(unexpected, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	sort.Strings(mismatched)
	if len(mismatched) > 0 {
		return fmt.Errorf("exp: merged records do not match matrix %q: %d scenarios differ from the expansion (same name, different spec — were the shards run with different -seed?): %v",
			m.Name, len(mismatched), mismatched)
	}
	if len(missing) > 0 || len(unexpected) > 0 {
		return fmt.Errorf("exp: merged records do not cover matrix %q: %d missing %v, %d unexpected %v",
			m.Name, len(missing), missing, len(unexpected), unexpected)
	}
	return nil
}
