package exp

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"qdc/internal/lbnetwork"
)

func TestDefaultMatrixExpansion(t *testing.T) {
	m, ok := LookupMatrix("default")
	if !ok {
		t.Fatal("default matrix not registered")
	}
	scenarios := m.Expand()
	if len(scenarios) < 50 {
		t.Fatalf("default matrix expands to %d scenarios, want >= 50", len(scenarios))
	}
	names := make(map[string]bool, len(scenarios))
	seeds := make(map[int64]bool, len(scenarios))
	for _, s := range scenarios {
		if names[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		seeds[s.Seed] = true
	}
	if len(seeds) != len(scenarios) {
		t.Errorf("expected distinct per-scenario seeds, got %d for %d scenarios", len(seeds), len(scenarios))
	}
	if again := m.Expand(); !reflect.DeepEqual(scenarios, again) {
		t.Error("expanding the same matrix twice produced different scenarios")
	}
}

func TestTopologyKnobsAreScenarioIdentity(t *testing.T) {
	// Two topologies differing only in Param/MaxWeight must expand into
	// scenarios with distinct names and seeds; otherwise Compare would
	// silently mispair records.
	m := Matrix{
		Name: "collide",
		Topologies: []TopologySpec{
			{Family: FamilyRandom, Size: 40, Param: 0.15},
			{Family: FamilyRandom, Size: 40, Param: 0.3},
			{Family: FamilyRandom, Size: 40, Param: 0.3, MaxWeight: 64},
		},
		Bandwidths: []int{32},
		Backends:   []string{BackendLocal},
		Algorithms: []string{AlgVerify},
		BaseSeed:   1,
	}
	scenarios := m.Expand()
	if len(scenarios) != 3 {
		t.Fatalf("expanded %d scenarios, want 3", len(scenarios))
	}
	names := make(map[string]bool)
	seeds := make(map[int64]bool)
	for _, s := range scenarios {
		if names[s.Name] {
			t.Errorf("colliding scenario name %q", s.Name)
		}
		names[s.Name] = true
		seeds[s.Seed] = true
	}
	if len(seeds) != 3 {
		t.Errorf("expected 3 distinct seeds, got %d", len(seeds))
	}
}

func TestCompatibleRules(t *testing.T) {
	path := TopologySpec{Family: FamilyPath, Size: 9}
	lbnet := TopologySpec{Family: FamilyLBNet, Size: 6, Param: 17}
	cases := []struct {
		name      string
		topo      TopologySpec
		algorithm string
		backend   string
		bandwidth int
		want      bool
	}{
		{"disjointness on path", path, AlgDisjointness, BackendLocal, 32, true},
		{"disjointness off path", TopologySpec{Family: FamilyCycle, Size: 8}, AlgDisjointness, BackendLocal, 32, false},
		{"disjointness under simulation", path, AlgDisjointness, BackendSimulation, 32, false},
		{"simulation off lbnet", path, AlgVerify, BackendSimulation, 32, false},
		{"simulation on lbnet", lbnet, AlgVerify, BackendSimulation, 32, true},
		{"exact mst narrow bandwidth", path, AlgMST, BackendLocal, 32, false},
		{"exact mst wide bandwidth", path, AlgMST, BackendLocal, 128, true},
		{"approx mst narrow bandwidth", path, AlgMSTApprox, BackendLocal, 32, true},
	}
	for _, c := range cases {
		if got, reason := Compatible(c.topo, c.algorithm, c.backend, c.bandwidth); got != c.want {
			t.Errorf("%s: Compatible = %v (%s), want %v", c.name, got, reason, c.want)
		}
	}
}

// TestLBSizeUpperBound pins the ID-sizing bound for the lower-bound network
// against the constructor's real vertex counts: for every spec the bound
// must dominate lbnetwork.New's N() (so the exact-MST bandwidth check never
// under-requires, even at large Γ where the old hardcoded estimate fell
// short), and it must follow the documented Γ·(2L+log L) shape.
func TestLBSizeUpperBound(t *testing.T) {
	cases := []struct {
		gamma, pathLen int
	}{
		{2, 3}, {6, 17}, {10, 33}, {6, 0}, // 0 selects the family default of 17
		{40, 17},  // large Γ: the regime the hardcoded 16 under-required in
		{40, 18},  // large Γ plus rounding (18 -> 33)
		{64, 100}, // rounding 100 -> 129 at scale
		{33, 5},
	}
	for _, c := range cases {
		spec := TopologySpec{Family: FamilyLBNet, Size: c.gamma, Param: float64(c.pathLen)}
		bound := lbSizeUpperBound(spec)
		pathLen := c.pathLen
		if pathLen <= 0 {
			pathLen = 17
		}
		nw, err := lbnetwork.New(c.gamma, pathLen)
		if err != nil {
			t.Fatalf("Γ=%d L=%d: %v", c.gamma, pathLen, err)
		}
		if bound < nw.N() {
			t.Errorf("Γ=%d L=%d: bound %d is below the realised vertex count %d",
				c.gamma, pathLen, bound, nw.N())
		}
		if want := c.gamma * (2*nw.L + nw.K); bound != want {
			t.Errorf("Γ=%d L=%d: bound %d, want the documented Γ·(2L+log L) = %d",
				c.gamma, pathLen, bound, want)
		}
	}
	// Plain families keep the nominal size.
	if got := lbSizeUpperBound(TopologySpec{Family: FamilyPath, Size: 9}); got != 9 {
		t.Errorf("non-lbnet bound = %d, want the nominal size", got)
	}
}

// TestParallelMatchesLocal is the parallel-runner equivalence guarantee:
// for the same scenario and seed, engine.NewParallel and engine.NewLocal
// must produce identical Stats and identical verdicts.
func TestParallelMatchesLocal(t *testing.T) {
	m, _ := LookupMatrix("quick")
	for _, s := range m.Expand() {
		if s.Backend != BackendLocal {
			continue
		}
		local := RunScenario(s)
		par := s
		par.Backend = BackendParallel
		// Same derived seed as the local variant: equivalence is about the
		// backend, not the seed.
		par.Seed = s.Seed
		parallel := RunScenario(par)
		if local.Error != "" || parallel.Error != "" {
			t.Fatalf("%s: errors local=%q parallel=%q", s.Name, local.Error, parallel.Error)
		}
		if local.Stats != parallel.Stats {
			t.Errorf("%s: stats diverge: local=%+v parallel=%+v", s.Name, local.Stats, parallel.Stats)
		}
		if local.OK != parallel.OK || local.Detail != parallel.Detail {
			t.Errorf("%s: verdicts diverge: local=(%v,%q) parallel=(%v,%q)",
				s.Name, local.OK, local.Detail, parallel.OK, parallel.Detail)
		}
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	s := Scenario{
		Name:      "det",
		Topology:  TopologySpec{Family: FamilyRandom, Size: 12, Param: 0.3, MaxWeight: 16},
		Algorithm: AlgMSTApprox,
		Backend:   BackendLocal,
		Bandwidth: 32,
		Seed:      7,
	}
	a, b := RunScenario(s), RunScenario(s)
	a.WallMillis, b.WallMillis = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same scenario produced different records:\n%+v\n%+v", a, b)
	}
	if !a.OK || a.Error != "" {
		t.Errorf("scenario failed: %+v", a)
	}
}

func TestRunScenarioSimulationBackend(t *testing.T) {
	s := Scenario{
		Name:      "sim",
		Topology:  TopologySpec{Family: FamilyLBNet, Size: 4, Param: 9},
		Algorithm: AlgVerify,
		Backend:   BackendSimulation,
		Bandwidth: 32,
		Seed:      3,
	}
	rec := RunScenario(s)
	if rec.Error != "" || !rec.OK {
		t.Fatalf("simulation scenario failed: %+v", rec)
	}
	if !strings.Contains(rec.Detail, "server_cost=") {
		t.Errorf("simulation record missing server-model accounting: %q", rec.Detail)
	}
}

func TestRunScenarioBadSpecs(t *testing.T) {
	bad := []Scenario{
		{Name: "family", Topology: TopologySpec{Family: "moebius", Size: 8}, Algorithm: AlgVerify, Backend: BackendLocal, Bandwidth: 32},
		{Name: "algorithm", Topology: TopologySpec{Family: FamilyPath, Size: 8}, Algorithm: "sorting", Backend: BackendLocal, Bandwidth: 32},
		{Name: "backend", Topology: TopologySpec{Family: FamilyPath, Size: 8}, Algorithm: AlgVerify, Backend: "telepathy", Bandwidth: 32},
		{Name: "sim-needs-lbnet", Topology: TopologySpec{Family: FamilyPath, Size: 8}, Algorithm: AlgVerify, Backend: BackendSimulation, Bandwidth: 32},
		{Name: "quantum-needs-disjointness", Topology: TopologySpec{Family: FamilyPath, Size: 8}, Algorithm: AlgVerify, Backend: BackendQuantum, Bandwidth: 32},
	}
	for _, s := range bad {
		rec := RunScenario(s)
		if rec.Error == "" {
			t.Errorf("%s: expected an error record, got %+v", s.Name, rec)
		}
	}
}

func TestExecuteQuickMatrix(t *testing.T) {
	m, _ := LookupMatrix("quick")
	scenarios := m.Expand()
	var collect Collect
	var jsonl bytes.Buffer
	jsonlSink := NewJSONLSink(&jsonl)
	sum, err := Execute(scenarios, ExecOptions{Workers: 4}, &collect, jsonlSink)
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonlSink.Close(); err != nil {
		t.Fatal(err)
	}
	if sum.Scenarios != len(scenarios) || len(collect.Records) != len(scenarios) {
		t.Fatalf("summary %+v and %d records, want %d scenarios", sum, len(collect.Records), len(scenarios))
	}
	if sum.Failed != 0 || sum.Passed != len(scenarios) {
		for _, r := range collect.Records {
			if r.Failed() {
				t.Errorf("failed: %s: %s %s", r.Scenario.Name, r.Error, r.Detail)
			}
		}
		t.Fatalf("summary: %+v", sum)
	}
	if lines := bytes.Count(jsonl.Bytes(), []byte("\n")); lines != len(scenarios) {
		t.Errorf("JSONL sink wrote %d lines, want %d", lines, len(scenarios))
	}
}

func TestExecutePanicAndTimeoutIsolation(t *testing.T) {
	scenarios := []Scenario{{Name: "boom"}, {Name: "slow"}, {Name: "fine"}}
	opts := ExecOptions{
		Workers: 3,
		Timeout: 50 * time.Millisecond,
		run: func(s Scenario, cancel func() bool) Record {
			switch s.Name {
			case "boom":
				panic("node exploded")
			case "slow":
				time.Sleep(time.Second)
			}
			return Record{Scenario: s, OK: true}
		},
	}
	var collect Collect
	sum, err := Execute(scenarios, opts, &collect)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scenarios != 3 || sum.Errors != 2 || sum.Passed != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	byName := make(map[string]Record)
	for _, r := range collect.Records {
		byName[r.Scenario.Name] = r
	}
	if !strings.Contains(byName["boom"].Error, "panic") {
		t.Errorf("panic not isolated: %+v", byName["boom"])
	}
	if !strings.Contains(byName["slow"].Error, "timeout") {
		t.Errorf("timeout not reported: %+v", byName["slow"])
	}
}

func TestSinksRoundTrip(t *testing.T) {
	m, _ := LookupMatrix("quick")
	scenarios := m.Expand()[:4]
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	jsonlPath := filepath.Join(dir, "out.jsonl")
	jsonSink, err := CreateJSON(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonlSink, err := CreateJSONL(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(scenarios, ExecOptions{Workers: 2}, jsonSink, jsonlSink); err != nil {
		t.Fatal(err)
	}
	if err := jsonSink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jsonlSink.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, jsonlPath} {
		recs, err := ReadRecords(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(recs) != len(scenarios) {
			t.Errorf("%s: read %d records, want %d", path, len(recs), len(scenarios))
		}
	}
	// The JSON array is sorted by scenario name regardless of completion
	// order, so snapshots diff cleanly.
	recs, _ := ReadRecords(jsonPath)
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Scenario.Name > recs[i].Scenario.Name {
			t.Errorf("JSON records out of order: %q before %q", recs[i-1].Scenario.Name, recs[i].Scenario.Name)
		}
	}
}

func TestJSONRecordShape(t *testing.T) {
	rec := RunScenario(Scenario{
		Name:      "shape",
		Topology:  TopologySpec{Family: FamilyPath, Size: 5},
		Algorithm: AlgVerify,
		Backend:   BackendLocal,
		Bandwidth: 32,
		Seed:      1,
	})
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != rec.Scenario || back.Stats != rec.Stats || back.OK != rec.OK {
		t.Errorf("record did not survive a JSON round trip: %+v vs %+v", rec, back)
	}
}

func TestCompare(t *testing.T) {
	mk := func(name string, ok bool, rounds int, bits int64, errMsg string) Record {
		r := Record{OK: ok, Error: errMsg}
		r.Scenario.Name = name
		r.Stats.Rounds = rounds
		r.Stats.Bits = bits
		return r
	}
	old := []Record{
		mk("same", true, 10, 100, ""),
		mk("slower", true, 10, 100, ""),
		mk("cheaper", true, 10, 100, ""),
		mk("breaks", true, 10, 100, ""),
		mk("gone", true, 10, 100, ""),
		mk("was-broken", false, 10, 100, "boom"),
	}
	new := []Record{
		mk("same", true, 10, 100, ""),
		mk("slower", true, 12, 100, ""),
		mk("cheaper", true, 10, 80, ""),
		mk("breaks", false, 10, 100, ""),
		mk("was-broken", true, 99, 999, ""),
		mk("fresh", true, 1, 1, ""),
	}
	diff := Compare(old, new)
	if diff.Clean() {
		t.Fatal("expected regressions")
	}
	kinds := make(map[string]string)
	for _, d := range diff.Regressions {
		kinds[d.Name] = d.Kind
	}
	if kinds["slower"] != "rounds" || kinds["breaks"] != "verdict" {
		t.Errorf("regressions: %v", diff.Regressions)
	}
	if _, ok := kinds["was-broken"]; ok {
		t.Error("a previously broken scenario must not count as a cost regression")
	}
	if len(diff.Improvements) != 1 || diff.Improvements[0].Name != "cheaper" {
		t.Errorf("improvements: %v", diff.Improvements)
	}
	if !reflect.DeepEqual(diff.Added, []string{"fresh"}) || !reflect.DeepEqual(diff.Removed, []string{"gone"}) {
		t.Errorf("added=%v removed=%v", diff.Added, diff.Removed)
	}
}

func TestDeriveSeedStability(t *testing.T) {
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Error("DeriveSeed is not deterministic")
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") || DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("DeriveSeed collides on trivially different inputs")
	}
}
