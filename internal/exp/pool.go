package exp

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// DefaultTimeout bounds a single scenario run. The CONGEST simulator already
// bounds rounds (64n+64 by default), so a timeout here signals a genuinely
// pathological scenario rather than a slow one.
const DefaultTimeout = 60 * time.Second

// ExecOptions configures one Execute call.
type ExecOptions struct {
	// Workers is the number of scenarios executing concurrently; values
	// <= 0 select GOMAXPROCS.
	Workers int
	// Timeout is the per-scenario wall-clock budget; values <= 0 select
	// DefaultTimeout.
	Timeout time.Duration
	// Metrics opts every scenario into the observability collector: each
	// record carries a ScenarioMetrics block (deterministic, stripped from
	// canonical snapshots). Off by default — disabled metrics cost nothing.
	Metrics bool
	// MeasureHeap samples the process heap while each scenario runs and
	// records the HeapAlloc high-water mark on its record (PeakHeapBytes).
	// The heap is a process-wide observable — concurrent scenarios would
	// attribute each other's allocations — so the pool degrades to one
	// scenario at a time (Workers is ignored). qdcbench roundbench turns
	// this on.
	MeasureHeap bool
	// Status, if non-nil, receives live sweep counters (scenarios done,
	// failed, in flight, node-rounds) as scenarios start and finish; the
	// -listen endpoints and the -progress heartbeat read it concurrently.
	Status *Status
	// run overrides the scenario runner in tests. The cancel poll reports
	// whether the scenario's timeout has fired; real runners forward it to
	// congest.Options.Cancel so a timed-out simulation stops at its next
	// round boundary.
	run func(s Scenario, cancel func() bool) Record
}

// Summary aggregates one Execute call.
type Summary struct {
	Scenarios  int     `json:"scenarios"`
	Passed     int     `json:"passed"`
	Failed     int     `json:"failed"`
	Errors     int     `json:"errors"`
	WallMillis float64 `json:"wall_ms"`
}

// Execute runs every scenario on a pool of worker goroutines and streams
// each Record to every sink as it completes (sinks are written from a single
// collector goroutine, so they need not be thread-safe; JSONL output order
// is completion order, not scenario order).
//
// Worker isolation: a panicking scenario is converted into a Record with an
// Error, and a scenario exceeding the timeout is reported as such; the
// timed-out goroutine sees its cancel poll flip, stops the simulation at
// the next round boundary, and exits instead of leaking CPU.
// Execute itself returns an error only for sink failures; per-scenario
// failures are data, counted in the Summary.
func Execute(scenarios []Scenario, opts ExecOptions, sinks ...Sink) (Summary, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.MeasureHeap {
		workers = 1
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	run := opts.run
	if run == nil {
		// Divide the machine between scenario-level and round-level
		// parallelism: with W scenarios in flight, each parallel-backend
		// runner gets GOMAXPROCS/W stepping goroutines so a full pool does
		// not oversubscribe cores W-fold.
		stepWorkers := runtime.GOMAXPROCS(0) / workers
		if stepWorkers < 1 {
			stepWorkers = 1
		}
		run = func(s Scenario, cancel func() bool) Record { return runScenario(s, stepWorkers, cancel, opts.Metrics) }
	}
	if opts.MeasureHeap {
		base := run
		run = func(s Scenario, cancel func() bool) Record {
			rec, peak := measureHeapDuring(func() Record { return base(s, cancel) })
			rec.PeakHeapBytes = peak
			return rec
		}
	}

	start := time.Now()
	jobs := make(chan Scenario)
	results := make(chan Record)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				opts.Status.ScenarioStarted()
				rec := runIsolated(s, timeout, run)
				opts.Status.ScenarioDone(rec)
				results <- rec
			}
		}()
	}
	go func() {
		for _, s := range scenarios {
			jobs <- s
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	var (
		sum     Summary
		sinkErr error
	)
	// live is a private copy of the sink fan-out: a sink whose Write fails is
	// dropped from it (set to nil) so later records are not written to a dead
	// file — repeated writes burn time and their errors could mask the first,
	// root-cause one. Results keep draining either way so the Summary stays
	// complete and the workers never block on a full channel.
	live := append([]Sink(nil), sinks...)
	for rec := range results {
		sum.Scenarios++
		switch {
		case rec.Error != "":
			sum.Errors++
			sum.Failed++
		case !rec.OK:
			sum.Failed++
		default:
			sum.Passed++
		}
		for i, sink := range live {
			if sink == nil {
				continue
			}
			if err := sink.Write(rec); err != nil {
				if sinkErr == nil {
					sinkErr = fmt.Errorf("exp: sink write: %w", err)
				}
				live[i] = nil
			}
		}
	}
	sum.WallMillis = float64(time.Since(start)) / float64(time.Millisecond)
	return sum, sinkErr
}

// runIsolated executes one scenario on its own goroutine so that the worker
// survives both panics (in stub runners; RunScenario already recovers its
// own) and runs that outlive the timeout. On timeout the expired channel
// closes, the run's cancel poll starts reporting true, and the scenario
// goroutine terminates at its next round boundary — the timeout record is
// returned immediately either way. Timeout and panic records carry the
// elapsed wall time like every other record: they are exactly the scenarios
// the -slowest table and the summary's wall accounting must not lose.
func runIsolated(s Scenario, timeout time.Duration, run func(Scenario, func() bool) Record) Record {
	ch := make(chan Record, 1)
	expired := make(chan struct{})
	cancel := func() bool {
		select {
		case <-expired:
			return true
		default:
			return false
		}
	}
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- Record{Scenario: s, Error: fmt.Sprintf("panic: %v", p), WallMillis: millisSince(start)}
			}
		}()
		ch <- run(s, cancel)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rec := <-ch:
		return rec
	case <-timer.C:
		close(expired)
		return Record{Scenario: s, Error: fmt.Sprintf("timeout after %s", timeout), WallMillis: millisSince(start)}
	}
}

// millisSince returns the wall-clock milliseconds elapsed since start.
func millisSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}
