package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Sink consumes Records as the executor produces them. Execute serialises
// all Write calls onto one goroutine, so implementations need no locking.
type Sink interface {
	Write(Record) error
	// Close flushes buffered output; file-backed sinks also close the file.
	Close() error
}

// Collect is the in-memory sink, used for summaries and Compare.
type Collect struct {
	Records []Record
}

// Write implements Sink.
func (c *Collect) Write(r Record) error {
	c.Records = append(c.Records, r)
	return nil
}

// Close implements Sink.
func (c *Collect) Close() error { return nil }

// JSONLSink streams one JSON object per line in completion order — the
// append-friendly format for long sweeps watched with tail -f.
type JSONLSink struct {
	w      *bufio.Writer
	closer io.Closer
}

// NewJSONLSink wraps an open writer; CreateJSONL opens a file.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: bufio.NewWriter(w)} }

// CreateJSONL creates (or truncates) path and returns a JSONL sink over it.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewJSONLSink(f)
	s.closer = f
	return s, nil
}

// Write implements Sink.
func (s *JSONLSink) Write(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(line); err != nil {
		return err
	}
	return s.w.WriteByte('\n')
}

// Close implements Sink. The underlying file is closed even when the flush
// fails, so an encoding error never leaks the descriptor; the first error
// wins.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// JSONSink buffers every record and writes a single canonical JSON array on
// Close: records sorted by scenario name and WallMillis zeroed, so the file
// bytes are a pure function of the records' deterministic fields regardless
// of completion order, host speed, or how many processes produced them.
// This is the format BENCH_*.json snapshots use, and the canonicalisation is
// what makes a merged sharded run byte-identical to an unsharded one
// (per-run wall times remain available in the JSONL stream and the printed
// summary).
type JSONSink struct {
	w       io.Writer
	closer  io.Closer
	records []Record
}

// NewJSONSink wraps an open writer; CreateJSON opens a file.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{w: w} }

// CreateJSON creates (or truncates) path and returns a JSON-array sink.
func CreateJSON(path string) (*JSONSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &JSONSink{w: f, closer: f}, nil
}

// Write implements Sink.
func (s *JSONSink) Write(r Record) error {
	s.records = append(s.records, r)
	return nil
}

// Close implements Sink. The underlying file is closed even when the encode
// fails, so an encoding error never leaks the descriptor; the first error
// wins.
func (s *JSONSink) Close() error {
	if s.records == nil {
		// An empty snapshot (e.g. a shard wider than the expansion) must be
		// an empty array, not JSON null — ReadRecords would misparse null as
		// a JSONL stream holding one zero record.
		s.records = []Record{}
	}
	sort.Slice(s.records, func(i, j int) bool { return s.records[i].Scenario.Name < s.records[j].Scenario.Name })
	for i := range s.records {
		s.records[i].WallMillis = 0
		// Metrics are deterministic but optional: stripping them keeps a
		// snapshot's bytes identical whether or not the sweep collected
		// metrics, so baseline diffs never churn on observability settings.
		s.records[i].Metrics = nil
		// The heap high-water mark is host-dependent like wall time, so it
		// lives in the printed roundbench table and the JSONL stream, never
		// in a canonical snapshot (re-running roundbench -append must not
		// change a byte when the deterministic costs are unchanged).
		s.records[i].PeakHeapBytes = 0
	}
	enc := json.NewEncoder(s.w)
	enc.SetIndent("", "  ")
	err := enc.Encode(s.records)
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadRecords loads a results file written by either sink: a JSON array or
// JSONL, sniffed from the first non-space byte.
func ReadRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var recs []Record
		if err := json.Unmarshal(trimmed, &recs); err != nil {
			return nil, fmt.Errorf("exp: %s: %w", path, err)
		}
		return recs, nil
	}
	var recs []Record
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	for dec.More() {
		var r Record
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("exp: %s: %w", path, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// Delta is one scenario-level difference between two result sets.
type Delta struct {
	// Name is the scenario name the old and new records were matched by.
	Name string `json:"name"`
	// Kind is "verdict", "rounds", "bits" or "missing".
	Kind string `json:"kind"`
	Old  string `json:"old"`
	New  string `json:"new"`
}

func (d Delta) String() string {
	return fmt.Sprintf("%s: %s %s -> %s", d.Name, d.Kind, d.Old, d.New)
}

// Diff is the result of comparing an old results file against a new one.
type Diff struct {
	// Regressions are scenarios that got worse: a passing run now failing,
	// or a deterministic cost (rounds, bits) that grew.
	Regressions []Delta `json:"regressions,omitempty"`
	// Improvements are deterministic costs that shrank.
	Improvements []Delta `json:"improvements,omitempty"`
	// Added and Removed are scenario names present on only one side.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	// DuplicateOld and DuplicateNew name scenarios appearing more than once
	// on the old or new side. A canonical snapshot never contains duplicates
	// (MergeRecords rejects them), so a duplicate means the input was
	// assembled by hand — concatenated files, the same shard twice — and any
	// cost comparison over it is built on an arbitrary choice of copy. The
	// diff surfaces them instead of silently keeping the last old copy and
	// double-counting new ones, and Clean fails on them.
	DuplicateOld []string `json:"duplicate_old,omitempty"`
	DuplicateNew []string `json:"duplicate_new,omitempty"`
}

// duplicated reports whether either side held a scenario name twice.
func (d Diff) duplicated() bool { return len(d.DuplicateOld) > 0 || len(d.DuplicateNew) > 0 }

// Clean reports whether the diff contains no regressions, no removals and
// no duplicated scenario names. A scenario missing from the new snapshot
// counts as a regression: a shrunken matrix, a crashed shard, or a merge
// that lost records would otherwise sail through a baseline gate that only
// watched costs grow. Callers that intend the shrink (a deliberate matrix
// edit) can accept a removal-only diff via CleanExceptRemoved.
func (d Diff) Clean() bool {
	return len(d.Regressions) == 0 && len(d.Removed) == 0 && !d.duplicated()
}

// CleanExceptRemoved reports whether the diff is clean apart from removed
// scenarios — the escape hatch for intentional matrix shrinks (qdcbench
// -allow-removed). Duplicates are never acceptable: they make the whole
// comparison unreliable, not just one scenario's row.
func (d Diff) CleanExceptRemoved() bool { return len(d.Regressions) == 0 && !d.duplicated() }

// Compare matches records by scenario name and reports how the new results
// moved relative to the old ones. Because every scenario is deterministic
// given its seed, *any* growth in rounds or bits between snapshots of the
// same matrix is a genuine algorithmic regression, not noise; wall-clock
// time is deliberately ignored. A name appearing more than once on either
// side is reported in DuplicateOld/DuplicateNew (the first copy is the one
// compared), and a diff with duplicates is never Clean.
func Compare(old, new []Record) Diff {
	var diff Diff
	oldBy := make(map[string]Record, len(old))
	for _, r := range old {
		if _, dup := oldBy[r.Scenario.Name]; dup {
			diff.DuplicateOld = appendName(diff.DuplicateOld, r.Scenario.Name)
			continue
		}
		oldBy[r.Scenario.Name] = r
	}
	seen := make(map[string]bool, len(new))
	for _, nr := range new {
		if seen[nr.Scenario.Name] {
			diff.DuplicateNew = appendName(diff.DuplicateNew, nr.Scenario.Name)
			continue
		}
		seen[nr.Scenario.Name] = true
		or, ok := oldBy[nr.Scenario.Name]
		if !ok {
			diff.Added = append(diff.Added, nr.Scenario.Name)
			continue
		}
		if !or.Failed() && nr.Failed() {
			diff.Regressions = append(diff.Regressions, Delta{
				Name: nr.Scenario.Name, Kind: "verdict",
				Old: "ok", New: failureText(nr),
			})
			continue
		}
		if or.Failed() || nr.Failed() {
			continue
		}
		diff.Regressions = append(diff.Regressions, costDeltas(nr.Scenario.Name, or, nr, true)...)
		diff.Improvements = append(diff.Improvements, costDeltas(nr.Scenario.Name, or, nr, false)...)
	}
	for _, or := range old {
		if !seen[or.Scenario.Name] {
			diff.Removed = append(diff.Removed, or.Scenario.Name)
		}
	}
	sort.Slice(diff.Regressions, func(i, j int) bool { return diff.Regressions[i].Name < diff.Regressions[j].Name })
	sort.Slice(diff.Improvements, func(i, j int) bool { return diff.Improvements[i].Name < diff.Improvements[j].Name })
	sort.Strings(diff.Added)
	sort.Strings(diff.Removed)
	sort.Strings(diff.DuplicateOld)
	sort.Strings(diff.DuplicateNew)
	return diff
}

// appendName appends name if the (small) list does not already hold it, so
// a scenario occurring three times is still reported once.
func appendName(names []string, name string) []string {
	for _, n := range names {
		if n == name {
			return names
		}
	}
	return append(names, name)
}

func failureText(r Record) string {
	if r.Error != "" {
		return "error: " + r.Error
	}
	return "verdict mismatch: " + r.Detail
}

func costDeltas(name string, old, new Record, worse bool) []Delta {
	var out []Delta
	add := func(kind string, o, n int64) {
		if (worse && n > o) || (!worse && n < o) {
			out = append(out, Delta{Name: name, Kind: kind, Old: fmt.Sprint(o), New: fmt.Sprint(n)})
		}
	}
	add("rounds", int64(old.Stats.Rounds), int64(new.Stats.Rounds))
	add("bits", old.Stats.Bits, new.Stats.Bits)
	return out
}
