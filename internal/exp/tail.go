package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrTruncated is the permanent error Tail.Poll returns when the tailed
// file shrank below the bytes already consumed: something rewrote the
// stream under the tail (a worker re-created a file another attempt owned,
// an operator truncated it), so everything decoded so far is suspect and
// the failure report must name the real cause instead of timing out on a
// stream that silently reads as empty forever.
var ErrTruncated = errors.New("stream truncated")

// Tail incrementally decodes Records from a JSONL stream that another
// process is still appending to — the live view a fan-out supervisor keeps
// on each worker's -jsonl output. Poll returns the records whose lines have
// been completely written since the previous call; a trailing line without
// its newline is carried over and decoded once the writer finishes it, so a
// record is never observed half-written.
type Tail struct {
	path string
	f    *os.File
	buf  []byte // bytes read past the last complete line
	off  int64  // bytes consumed from the file so far
	err  error  // permanent stream failure (truncation), sticky across polls
}

// NewTail returns a tail over path. The file need not exist yet: the worker
// that writes it may not have started, and Poll treats a missing file as an
// empty stream.
func NewTail(path string) *Tail { return &Tail{path: path} }

// Poll decodes every record appended as a complete line since the last
// call. A file that does not exist yet reads as empty; a complete line that
// fails to decode is a permanent error (the stream is corrupt, not merely
// short), returned along with the records decoded before it; a file that
// shrank below the consumed offset is a permanent ErrTruncated — a plain
// read at the stale offset would silently return nothing forever, and the
// attempt would die as a generic incomplete-stream timeout instead of
// naming the truncation.
func (t *Tail) Poll() ([]Record, error) {
	if t.err != nil {
		return nil, t.err
	}
	if t.f == nil {
		f, err := os.Open(t.path)
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		t.f = f
	}
	if fi, err := t.f.Stat(); err != nil {
		return nil, fmt.Errorf("exp: %s: %w", t.path, err)
	} else if fi.Size() < t.off {
		t.err = fmt.Errorf("exp: %s: %w (consumed %d bytes, file now %d)",
			t.path, ErrTruncated, t.off, fi.Size())
		return nil, t.err
	}
	data, err := io.ReadAll(t.f)
	t.off += int64(len(data))
	if len(data) > 0 {
		t.buf = append(t.buf, data...)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", t.path, err)
	}
	var recs []Record
	for {
		nl := bytes.IndexByte(t.buf, '\n')
		if nl < 0 {
			return recs, nil
		}
		line := t.buf[:nl]
		t.buf = t.buf[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return recs, fmt.Errorf("exp: %s: %w", t.path, err)
		}
		recs = append(recs, r)
	}
}

// Pending reports whether bytes of an incomplete trailing line are buffered
// — after the writer has exited, pending bytes mean it died mid-record.
func (t *Tail) Pending() bool { return len(t.buf) > 0 }

// Close releases the underlying file, if it was ever opened.
func (t *Tail) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
