package exp

import (
	"math/rand"
	"testing"
)

// streamableSpecs covers every family Streamable admits, including the ones
// that consume the scenario rng (random, tree).
var streamableSpecs = []TopologySpec{
	{Family: FamilyPath, Size: 9},
	{Family: FamilyCycle, Size: 8},
	{Family: FamilyStar, Size: 10},
	{Family: FamilyComplete, Size: 6},
	{Family: FamilyGrid, Size: 36},
	{Family: FamilyRandom, Size: 30, Param: 0.2},
	{Family: FamilyTree, Size: 25},
}

// TestBuildCSRMatchesBuild pins the streaming loader against the map-based
// constructor: identical seeds must yield identical vertex counts, edge
// counts, neighbour tables (ids, order and weights) and rng consumption, so a
// scenario is bit-identical whichever route built its topology.
func TestBuildCSRMatchesBuild(t *testing.T) {
	for _, spec := range streamableSpecs {
		rngMap := rand.New(rand.NewSource(99))
		rngCSR := rand.New(rand.NewSource(99))
		built, err := spec.Build(rngMap)
		if err != nil {
			t.Fatalf("%s: Build: %v", spec, err)
		}
		csr, err := spec.BuildCSR(rngCSR)
		if err != nil {
			t.Fatalf("%s: BuildCSR: %v", spec, err)
		}
		g := built.Graph
		if csr.N() != g.N() || csr.M() != g.M() {
			t.Fatalf("%s: CSR is %d vertices / %d edges, graph is %d / %d",
				spec, csr.N(), csr.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if csr.Degree(v) != g.Degree(v) {
				t.Fatalf("%s: degree(%d) = %d via CSR, %d via graph", spec, v, csr.Degree(v), g.Degree(v))
			}
			for i, u := range g.Neighbors(v) {
				id, w := csr.Neighbor(v, i)
				if id != u {
					t.Fatalf("%s: neighbor(%d,%d) = %d via CSR, %d via graph", spec, v, i, id, u)
				}
				gw, ok := g.Weight(v, u)
				if !ok || w != gw {
					t.Fatalf("%s: weight(%d,%d) = %g via CSR, %g via graph", spec, v, u, w, gw)
				}
			}
		}
		if a, b := rngMap.Int63(), rngCSR.Int63(); a != b {
			t.Errorf("%s: the two routes consumed the rng differently (next draws %d vs %d)", spec, a, b)
		}
	}
}

// TestStreamable pins which specs qualify for the streaming route: reweighted
// topologies and the lower-bound network must keep the map-based Build.
func TestStreamable(t *testing.T) {
	for _, spec := range streamableSpecs {
		if !spec.Streamable() {
			t.Errorf("%s: want streamable", spec)
		}
	}
	for _, spec := range []TopologySpec{
		{Family: FamilyGrid, Size: 36, MaxWeight: 64},
		{Family: FamilyLBNet, Size: 4, Param: 17},
	} {
		if spec.Streamable() {
			t.Errorf("%s: must not be streamable", spec)
		}
	}
}

// TestBuildTopologyRouting pins which scenarios take the streaming route:
// flood on a streamable family gets a CSR (and no map graph), everything else
// keeps the graph.
func TestBuildTopologyRouting(t *testing.T) {
	grid := TopologySpec{Family: FamilyGrid, Size: 36}
	flood := Scenario{Topology: grid, Algorithm: AlgFlood, Backend: BackendLocal, Bandwidth: 32, Seed: 3}
	topo, err := buildTopology(flood, rand.New(rand.NewSource(flood.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	if topo.CSR == nil || topo.Graph != nil {
		t.Error("flood on a streamable family must build a CSR and no map graph")
	}
	if topo.CSR.SlowNeighborCalls() != 0 {
		t.Error("building the CSR must not touch the slow Neighbors path")
	}

	verify := flood
	verify.Algorithm = AlgVerify
	topo, err = buildTopology(verify, rand.New(rand.NewSource(verify.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	if topo.CSR != nil || topo.Graph == nil {
		t.Error("verify needs the map graph (reference Kruskal), not a CSR")
	}
}

// TestFloodRecordIndependentOfRoute runs the same flood scenario through the
// streaming route (RunScenario's default) and through a forced map-graph
// topology, and requires identical records: same rounds, same bits, same
// verdict and detail line. The record must not reveal which constructor ran.
func TestFloodRecordIndependentOfRoute(t *testing.T) {
	for _, spec := range []TopologySpec{
		{Family: FamilyGrid, Size: 36},
		{Family: FamilyRandom, Size: 30, Param: 0.2},
	} {
		s := Scenario{
			Name:      scenarioKey(spec, AlgFlood, BackendParallel, 32),
			Topology:  spec,
			Algorithm: AlgFlood,
			Backend:   BackendParallel,
			Bandwidth: 32,
			Seed:      DeriveSeed(1, "route-independence"),
		}
		streamed := RunScenario(s)
		if streamed.Failed() {
			t.Fatalf("%s streamed: %s %s", spec, streamed.Error, streamed.Detail)
		}

		topo, err := s.Topology.Build(rand.New(rand.NewSource(s.Seed)))
		if err != nil {
			t.Fatal(err)
		}
		runner, err := buildRunner(s, topo, 0)
		if err != nil {
			t.Fatal(err)
		}
		ok, detail, err := runFlood(runner, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s map route: %s", spec, detail)
		}
		if streamed.Detail != detail {
			t.Errorf("%s: detail %q streamed vs %q via map graph", spec, streamed.Detail, detail)
		}
		if streamed.Stats != runner.Stats() {
			t.Errorf("%s: stats %+v streamed vs %+v via map graph", spec, streamed.Stats, runner.Stats())
		}
	}
}
