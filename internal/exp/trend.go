package exp

import (
	"fmt"
	"path/filepath"
	"sort"
)

// TrendPoint is one scenario's measurement in one snapshot.
type TrendPoint struct {
	// Snapshot is the base name of the BENCH_*.json file the point came from.
	Snapshot string `json:"snapshot"`
	Rounds   int    `json:"rounds"`
	Bits     int64  `json:"bits"`
	// Failed marks a point whose record carried an error or a wrong verdict;
	// its costs are shown but should not be read as a measurement.
	Failed bool `json:"failed,omitempty"`
}

// ScenarioTrend is one scenario's trajectory across a directory of
// snapshots: the points of every snapshot it appears in, in snapshot order.
type ScenarioTrend struct {
	Name string `json:"name"`
	// First and Last are the snapshots the scenario first appeared in and
	// was last seen in. Last older than the newest snapshot means the
	// scenario vanished — exactly the blind spot a two-snapshot Compare gate
	// has when only one side is inspected.
	First  string       `json:"first"`
	Last   string       `json:"last"`
	Points []TrendPoint `json:"points"`
	// Missing lists the snapshots between First and Last the scenario was
	// absent from: a transient disappearance (a bad merge later reverted, a
	// temporarily shrunken matrix) that a first/last comparison alone would
	// splice over as a continuous trajectory.
	Missing []string `json:"missing,omitempty"`
}

// Changed reports whether the scenario's rounds or bits moved at any step
// of its trajectory.
func (s ScenarioTrend) Changed() bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Rounds != s.Points[i-1].Rounds || s.Points[i].Bits != s.Points[i-1].Bits {
			return true
		}
	}
	return false
}

// TrendReport is the result of Trend: every scenario ever seen in the
// directory's snapshots, with its cost trajectory.
type TrendReport struct {
	// Snapshots are the base names of the snapshot files, in the
	// lexicographic order the trajectories use.
	Snapshots []string        `json:"snapshots"`
	Scenarios []ScenarioTrend `json:"scenarios"`
}

// Vanished returns the names of scenarios absent from the newest snapshot,
// sorted.
func (r TrendReport) Vanished() []string {
	if len(r.Snapshots) == 0 {
		return nil
	}
	newest := r.Snapshots[len(r.Snapshots)-1]
	var out []string
	for _, s := range r.Scenarios {
		if s.Last != newest {
			out = append(out, s.Name)
		}
	}
	return out
}

// Trend reads every BENCH_*.json snapshot in dir (in lexicographic file
// order, so date- or sequence-stamped names line up chronologically),
// matches records across snapshots by scenario name, and returns the
// per-scenario rounds/bits trajectories. Where Compare answers "did this PR
// regress against the baseline", Trend answers "how did every scenario move
// across the last N snapshots, and which ones quietly disappeared".
func Trend(dir string) (TrendReport, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return TrendReport{}, fmt.Errorf("exp: %w", err)
	}
	if len(paths) == 0 {
		return TrendReport{}, fmt.Errorf("exp: no BENCH_*.json snapshots in %s", dir)
	}
	sort.Strings(paths)

	var report TrendReport
	byName := make(map[string]*ScenarioTrend)
	for _, path := range paths {
		recs, err := ReadRecords(path)
		if err != nil {
			return TrendReport{}, err
		}
		label := filepath.Base(path)
		report.Snapshots = append(report.Snapshots, label)
		for _, r := range recs {
			st := byName[r.Scenario.Name]
			if st == nil {
				st = &ScenarioTrend{Name: r.Scenario.Name, First: label}
				byName[r.Scenario.Name] = st
			}
			st.Last = label
			st.Points = append(st.Points, TrendPoint{
				Snapshot: label,
				Rounds:   r.Stats.Rounds,
				Bits:     r.Stats.Bits,
				Failed:   r.Failed(),
			})
		}
	}
	for _, st := range byName {
		present := make(map[string]bool, len(st.Points))
		for _, p := range st.Points {
			present[p.Snapshot] = true
		}
		inRange := false
		for _, label := range report.Snapshots {
			if label == st.First {
				inRange = true
			}
			if inRange && !present[label] {
				st.Missing = append(st.Missing, label)
			}
			if label == st.Last {
				break
			}
		}
		report.Scenarios = append(report.Scenarios, *st)
	}
	sort.Slice(report.Scenarios, func(i, j int) bool {
		return report.Scenarios[i].Name < report.Scenarios[j].Name
	})
	return report, nil
}
