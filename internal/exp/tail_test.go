package exp

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTailStreamsCompletedLines drives the live-tail contract: records
// appear as their lines complete, a half-written trailing line is never
// surfaced, and a missing file reads as an empty stream.
func TestTailStreamsCompletedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	tail := NewTail(path)
	defer tail.Close()

	// The worker has not created the file yet.
	if recs, err := tail.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("missing file: recs=%v err=%v, want empty", recs, err)
	}

	mk := func(name string) []byte {
		r := Record{OK: true}
		r.Scenario.Name = name
		line, _ := json.Marshal(r)
		return append(line, '\n')
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	write := func(b []byte) {
		t.Helper()
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
	}

	// One complete record plus the first half of a second one.
	second := mk("two")
	write(mk("one"))
	write(second[:10])
	recs, err := tail.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Scenario.Name != "one" {
		t.Fatalf("first poll = %v, want exactly the one complete record", recs)
	}
	if !tail.Pending() {
		t.Error("a half-written line must report as pending")
	}

	// Completing the second line surfaces it on the next poll.
	write(second[10:])
	recs, err = tail.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Scenario.Name != "two" {
		t.Fatalf("second poll = %v, want the completed record", recs)
	}
	if tail.Pending() {
		t.Error("no partial bytes remain, Pending must be false")
	}

	// A corrupt completed line is a permanent error.
	write([]byte("{\"scenario\": TRUNC}\n"))
	if _, err := tail.Poll(); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("corrupt line error = %v, want one naming the stream", err)
	}
}

// TestTailDetectsTruncation pins the truncation contract: a stream file
// that shrinks below the bytes already consumed (a worker wrapper recreated
// the file, an operator truncated it) is a permanent ErrTruncated, sticky
// across polls — not a silent empty read that would let the supervisor
// judge the shard complete on bytes that no longer exist.
func TestTailDetectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	tail := NewTail(path)
	defer tail.Close()

	mk := func(name string) []byte {
		r := Record{OK: true}
		r.Scenario.Name = name
		line, _ := json.Marshal(r)
		return append(line, '\n')
	}
	if err := os.WriteFile(path, append(mk("one"), mk("two")...), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := tail.Poll()
	if err != nil || len(recs) != 2 {
		t.Fatalf("first poll: recs=%v err=%v, want both records", recs, err)
	}

	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tail.Poll(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("poll after truncation = %v, want ErrTruncated", err)
	}
	if _, err := tail.Poll(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("repeated poll = %v, want the sticky ErrTruncated", err)
	}
}
