package exp

import (
	"testing"

	"qdc/internal/congest"
)

// smokeWordFloodNode floods word-encoded announcements for a fixed number of
// rounds and halts — the minimal all-touch workload for the streaming smoke.
type smokeWordFloodNode struct {
	rounds int
	outbox []congest.Message
}

func (f *smokeWordFloodNode) Init(ctx *congest.Context) {
	f.outbox = congest.BroadcastAllWords(ctx, 1, 1, 0, 8)
}

func (f *smokeWordFloodNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	if round > f.rounds {
		return nil, true
	}
	return f.outbox, false
}

// TestMillionNodeStreamingSmoke is the CI gate on the million-node data path:
// the streaming loader must build the n=1,000,000 grid CSR without ever
// materialising adjacency maps, and the simulator must step a few word-flood
// rounds over it through the CSR's fast indexed interface only. The
// SlowNeighborCalls counter is the tripwire — any regression that routes the
// round loop (or the loader) through the allocating Neighbors fallback shows
// up as a non-zero count.
func TestMillionNodeStreamingSmoke(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation multiplies the million-node footprint")
	}
	if testing.Short() {
		t.Skip("million-node smoke skipped in short mode")
	}
	spec := TopologySpec{Family: FamilyGrid, Size: 1_000_000}
	csr, err := spec.BuildCSR(nil)
	if err != nil {
		t.Fatal(err)
	}
	if csr.N() != 1_000_000 {
		t.Fatalf("CSR has %d vertices, want 1000000", csr.N())
	}
	nw, err := congest.NewNetwork(csr, 64)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	res, err := nw.Run(func(*congest.Context) congest.Node {
		return &smokeWordFloodNode{rounds: rounds}
	}, congest.Options{MaxRounds: rounds + 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < rounds {
		t.Fatalf("ran %d rounds, want at least %d", res.Rounds, rounds)
	}
	if res.TotalMessages == 0 {
		t.Fatal("flood rounds delivered no messages")
	}
	if calls := csr.SlowNeighborCalls(); calls != 0 {
		t.Errorf("the run touched the slow Neighbors path %d times; the streaming data plane must stay on the indexed interface", calls)
	}
}
