//go:build race

package exp

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
