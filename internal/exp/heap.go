package exp

import (
	"runtime"
	"time"
)

// heapSampleEvery is the ReadMemStats polling interval of measureHeapDuring.
// Each read briefly stops the world, so the interval trades watermark
// resolution against measurement overhead; at 5ms the overhead stays well
// under 1% of a scenario that runs for seconds.
const heapSampleEvery = 5 * time.Millisecond

// measureHeapDuring runs f while polling the runtime's HeapAlloc and returns
// f's result together with the observed high-water mark in bytes. A GC pass
// establishes the baseline first, so the mark reflects f's own working set
// plus whatever live heap the process already held — the quantity a
// million-node scenario must keep bounded. The sampler is a goroutine joined
// before the final read, so the returned peak is safely published.
func measureHeapDuring(f func() Record) (Record, uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	peak := ms.HeapAlloc

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(heapSampleEvery)
		defer ticker.Stop()
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > peak {
					peak = s.HeapAlloc
				}
			}
		}
	}()

	rec := f()
	close(stop)
	<-done
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	return rec, peak
}
