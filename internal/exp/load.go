package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The validation vocabularies of Matrix.Validate: every axis value of a
// file-defined matrix must name something the harness can actually build.
var (
	knownFamilies = map[string]bool{
		FamilyPath: true, FamilyCycle: true, FamilyStar: true,
		FamilyGrid: true, FamilyComplete: true, FamilyRandom: true,
		FamilyTree: true, FamilyLBNet: true,
	}
	knownBackends = map[string]bool{
		BackendLocal: true, BackendParallel: true,
		BackendSimulation: true, BackendQuantum: true,
	}
	knownAlgorithms = map[string]bool{
		AlgVerify: true, AlgMST: true, AlgMSTApprox: true,
		AlgDisjointness: true, AlgFlood: true,
	}
)

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Validate checks that every axis of the matrix is non-empty and names only
// topology families, algorithms and backends the harness knows, that sizes
// and bandwidths are positive, and that no axis repeats a value (a repeated
// cell would expand into colliding scenario names, which Compare and merge
// both key on). It does not check cross-axis compatibility — Expand skips
// incompatible cells by design — but it does reject a matrix whose whole
// expansion is empty, since running it could only ever produce an empty
// snapshot.
func (m Matrix) Validate() error {
	if len(m.Topologies) == 0 {
		return fmt.Errorf("matrix %q has no topologies", m.Name)
	}
	if len(m.Bandwidths) == 0 {
		return fmt.Errorf("matrix %q has no bandwidths", m.Name)
	}
	if len(m.Backends) == 0 {
		return fmt.Errorf("matrix %q has no backends", m.Name)
	}
	if len(m.Algorithms) == 0 {
		return fmt.Errorf("matrix %q has no algorithms", m.Name)
	}
	seenTopo := make(map[string]bool)
	for _, t := range m.Topologies {
		if !knownFamilies[t.Family] {
			return fmt.Errorf("matrix %q: unknown topology family %q (known: %v)",
				m.Name, t.Family, sortedKeys(knownFamilies))
		}
		if t.Size < 2 {
			return fmt.Errorf("matrix %q: topology %s needs size >= 2", m.Name, t)
		}
		if t.Param < 0 || t.MaxWeight < 0 {
			return fmt.Errorf("matrix %q: topology %s has a negative knob", m.Name, t)
		}
		key := t.String()
		if seenTopo[key] {
			return fmt.Errorf("matrix %q: duplicate topology %s", m.Name, t)
		}
		seenTopo[key] = true
	}
	seenBW := make(map[int]bool)
	for _, b := range m.Bandwidths {
		if b < 1 {
			return fmt.Errorf("matrix %q: bandwidth %d is not positive", m.Name, b)
		}
		if seenBW[b] {
			return fmt.Errorf("matrix %q: duplicate bandwidth %d", m.Name, b)
		}
		seenBW[b] = true
	}
	seenBackend := make(map[string]bool)
	for _, b := range m.Backends {
		if !knownBackends[b] {
			return fmt.Errorf("matrix %q: unknown backend %q (known: %v)",
				m.Name, b, sortedKeys(knownBackends))
		}
		if seenBackend[b] {
			return fmt.Errorf("matrix %q: duplicate backend %q", m.Name, b)
		}
		seenBackend[b] = true
	}
	seenAlg := make(map[string]bool)
	for _, a := range m.Algorithms {
		if !knownAlgorithms[a] {
			return fmt.Errorf("matrix %q: unknown algorithm %q (known: %v)",
				m.Name, a, sortedKeys(knownAlgorithms))
		}
		if seenAlg[a] {
			return fmt.Errorf("matrix %q: duplicate algorithm %q", m.Name, a)
		}
		seenAlg[a] = true
	}
	if len(m.Expand()) == 0 {
		return fmt.Errorf("matrix %q expands to zero scenarios: every cell is incompatible", m.Name)
	}
	return nil
}

// LoadMatrix parses a JSON Matrix spec from path with strict validation:
// unknown fields, trailing data, empty axes and unknown family, algorithm
// or backend names are all errors, so a typo in a sweep file fails loudly
// instead of silently shrinking the sweep. An absent "name" defaults to the
// file's base name without extension.
func LoadMatrix(path string) (Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Matrix{}, fmt.Errorf("exp: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Matrix
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("exp: %s: %w", path, err)
	}
	if dec.More() {
		return Matrix{}, fmt.Errorf("exp: %s: trailing data after the matrix object", path)
	}
	if m.Name == "" {
		base := filepath.Base(path)
		m.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	if err := m.Validate(); err != nil {
		return Matrix{}, fmt.Errorf("exp: %s: %w", path, err)
	}
	return m, nil
}

// SaveMatrix writes m to path as a JSON spec that LoadMatrix round-trips
// into an identical Matrix — same name, axes and base seed, hence an
// identical expansion with identical derived scenario seeds. This is the
// frozen-spec rule of the fan-out paths: a supervisor (qdcbench fanout, the
// qdcd daemon) resolves a -matrix argument exactly once, snapshots the
// result next to the shard streams, and hands workers the frozen path — so
// a *.json spec edited mid-sweep can never make a worker (or a retry) run a
// silently different sweep than the one the parent expanded.
func SaveMatrix(path string, m Matrix) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("exp: %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	return nil
}

// ResolveMatrix turns a -matrix argument into a Matrix: a registered name
// resolves through the registry, anything that looks like a file path
// (a .json suffix or a path separator) loads from disk, and everything else
// is an explicit error naming both options.
func ResolveMatrix(nameOrPath string) (Matrix, error) {
	if m, ok := LookupMatrix(nameOrPath); ok {
		return m, nil
	}
	if strings.HasSuffix(nameOrPath, ".json") || strings.ContainsRune(nameOrPath, os.PathSeparator) {
		return LoadMatrix(nameOrPath)
	}
	return Matrix{}, fmt.Errorf("exp: unknown matrix %q (registered: %v; a *.json path defines one from a file)",
		nameOrPath, MatrixNames())
}
