package exp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"qdc/internal/obs"
)

// metricsScenarios covers every backend family the observer hook threads
// through: plain local, the pooled parallel merge, Grover re-accounting and
// the Simulation Theorem runner.
func metricsScenarios() []Scenario {
	return []Scenario{
		{
			Name:      "local-mst",
			Topology:  TopologySpec{Family: FamilyRandom, Size: 12, Param: 0.3, MaxWeight: 16},
			Algorithm: AlgMSTApprox,
			Backend:   BackendLocal,
			Bandwidth: 32,
			Seed:      7,
		},
		{
			Name:      "parallel-verify",
			Topology:  TopologySpec{Family: FamilyRandom, Size: 16, Param: 0.3, MaxWeight: 16},
			Algorithm: AlgVerify,
			Backend:   BackendParallel,
			Bandwidth: 32,
			Seed:      11,
		},
		{
			Name:      "quantum-disj",
			Topology:  TopologySpec{Family: FamilyPath, Size: 6},
			Algorithm: AlgDisjointness,
			Backend:   BackendQuantum,
			Bandwidth: 16,
			Seed:      5,
		},
		{
			Name:      "sim-verify",
			Topology:  TopologySpec{Family: FamilyLBNet, Size: 4, Param: 9},
			Algorithm: AlgVerify,
			Backend:   BackendSimulation,
			Bandwidth: 32,
			Seed:      3,
		},
	}
}

// TestMetricsByteIdentical pins the PR's central determinism guarantee: with
// metrics enabled, a record — metrics block included — is byte-for-bit
// identical across step-worker counts, and stripping the block recovers the
// exact record a metrics-disabled run produces. WallMillis is the one
// excluded field.
func TestMetricsByteIdentical(t *testing.T) {
	for _, s := range metricsScenarios() {
		plain := runScenario(s, 1, nil, false)
		plain.WallMillis = 0
		if plain.Failed() {
			t.Fatalf("%s: scenario failed: %+v", s.Name, plain)
		}
		if plain.Metrics != nil {
			t.Fatalf("%s: metrics-disabled run grew a metrics block", s.Name)
		}
		var base []byte
		for _, stepWorkers := range []int{1, 4} {
			rec := runScenario(s, stepWorkers, nil, true)
			rec.WallMillis = 0
			if rec.Metrics == nil {
				t.Fatalf("%s workers=%d: no metrics collected", s.Name, stepWorkers)
			}
			got, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = got
			} else if !bytes.Equal(base, got) {
				t.Errorf("%s: metrics record diverged across Workers {1,4}:\n%s\n%s", s.Name, base, got)
			}
			stripped := rec
			stripped.Metrics = nil
			if !reflect.DeepEqual(stripped, plain) {
				t.Errorf("%s workers=%d: observed run differs from unobserved beyond Metrics:\nobs   %+v\nplain %+v",
					s.Name, stepWorkers, stripped, plain)
			}
		}
	}
}

// TestMetricsContentConsistent cross-checks the histograms against the
// record's own accounting on a classical backend: one observation per round,
// and the per-round message and bit sums refold to the Stats totals.
func TestMetricsContentConsistent(t *testing.T) {
	s := metricsScenarios()[0] // local backend: Stats and observed rounds coincide
	rec := runScenario(s, 1, nil, true)
	if rec.Failed() || rec.Metrics == nil {
		t.Fatalf("scenario failed or unobserved: %+v", rec)
	}
	m := rec.Metrics
	if m.Rounds != rec.Stats.Rounds || m.Stages != rec.Stats.Stages {
		t.Errorf("metrics stages/rounds %d/%d, stats %d/%d", m.Stages, m.Rounds, rec.Stats.Stages, rec.Stats.Rounds)
	}
	if m.MessagesPerRound.Count != int64(m.Rounds) {
		t.Errorf("messages histogram has %d observations for %d rounds", m.MessagesPerRound.Count, m.Rounds)
	}
	if m.MessagesPerRound.Sum != int64(rec.Stats.Messages) {
		t.Errorf("messages histogram sums to %d, stats count %d", m.MessagesPerRound.Sum, rec.Stats.Messages)
	}
	if got := m.ClassicalBitsPerRound.Sum + m.QuantumBitsPerRound.Sum; got != rec.Stats.Bits {
		t.Errorf("bit histograms sum to %d, stats %d", got, rec.Stats.Bits)
	}
}

// TestExecuteMetricsAndStatus runs a real matrix through the executor with
// metrics and a live Status and checks both ends: every record carries a
// block, and the status counters add up when the sweep settles.
func TestExecuteMetricsAndStatus(t *testing.T) {
	m, _ := LookupMatrix("quick")
	scenarios := m.Expand()
	status := NewStatus(len(scenarios))
	var collect Collect
	sum, err := Execute(scenarios, ExecOptions{Workers: 4, Metrics: true, Status: status}, &collect)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("quick matrix failed under metrics: %+v", sum)
	}
	for _, r := range collect.Records {
		if r.Metrics == nil {
			t.Errorf("%s: no metrics block", r.Scenario.Name)
		}
	}
	if got := status.Done.Load(); got != int64(len(scenarios)) {
		t.Errorf("status done = %d, want %d", got, len(scenarios))
	}
	if got := status.InFlight.Load(); got != 0 {
		t.Errorf("status in-flight = %d after completion", got)
	}
	if status.NodeRounds.Load() <= 0 {
		t.Error("status accumulated no node-rounds")
	}
	prog, ok := status.Progress().(map[string]any)
	if !ok {
		t.Fatalf("Progress() = %T, want map", status.Progress())
	}
	if prog["done"] != int64(len(scenarios)) || prog["total"] != len(scenarios) {
		t.Errorf("progress = %v", prog)
	}
	reg := obs.NewRegistry()
	status.Register(reg)
	snap := reg.Snapshot()
	for _, name := range []string{"scenarios_total", "scenarios_done", "scenarios_failed",
		"scenarios_in_flight", "node_rounds", "node_rounds_per_sec"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("registry missing %q", name)
		}
	}
}

// TestJSONSinkStripsMetrics pins the snapshot guarantee: the canonical JSON
// array is byte-identical whether or not the records carried metrics.
func TestJSONSinkStripsMetrics(t *testing.T) {
	rec := runScenario(metricsScenarios()[0], 1, nil, true)
	if rec.Metrics == nil {
		t.Fatal("no metrics collected")
	}
	bare := rec
	bare.Metrics = nil

	var with, without bytes.Buffer
	sw := NewJSONSink(&with)
	if err := sw.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	so := NewJSONSink(&without)
	if err := so.Write(bare); err != nil {
		t.Fatal(err)
	}
	if err := so.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(with.Bytes(), without.Bytes()) {
		t.Errorf("canonical snapshot changed under metrics:\n%s\n%s", with.Bytes(), without.Bytes())
	}
	if strings.Contains(with.String(), "metrics") {
		t.Error("canonical snapshot leaked a metrics block")
	}
}

// TestEventSinkStream checks the JSONL activity stream: one "scenario" event
// per record with the identifying fields.
func TestEventSinkStream(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewEventLog(&buf)
	sink := NewEventSink(log)
	if err := sink.Write(Record{Scenario: Scenario{Name: "a"}, OK: true}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(Record{Scenario: Scenario{Name: "b"}, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d event lines, want 2: %q", len(lines), buf.String())
	}
	var ev obs.Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "scenario" {
		t.Errorf("event kind = %q", ev.Kind)
	}
	data, _ := ev.Data.(map[string]any)
	if data["name"] != "b" || data["error"] != "boom" {
		t.Errorf("event data = %v", data)
	}
}
