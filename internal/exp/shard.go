package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard returns the i-th of n slices of the matrix expansion (i is 1-based,
// matching the -shard i/n syntax). The partition is deterministic — it
// depends only on the matrix, never on the host — disjoint, and covering:
// scenario j of Expand goes to shard (j mod n)+1, so the union of all n
// shards is exactly the unsharded expansion and two processes given the
// same spec never run the same scenario twice. Round-robin (rather than
// contiguous blocks) spreads the expensive topologies of an ordered
// expansion across shards, so shard wall times stay comparable.
func (m Matrix) Shard(i, n int) ([]Scenario, error) {
	if n < 1 {
		return nil, fmt.Errorf("exp: shard count %d is not positive", n)
	}
	if i < 1 || i > n {
		return nil, fmt.Errorf("exp: shard index %d outside 1..%d", i, n)
	}
	all := m.Expand()
	var out []Scenario
	for j, s := range all {
		if j%n == i-1 {
			out = append(out, s)
		}
	}
	return out, nil
}

// ParseShard parses the -shard argument "i/n" into its index and count,
// validating 1 <= i <= n.
func ParseShard(spec string) (i, n int, err error) {
	idx, cnt, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("exp: shard spec %q is not of the form i/n", spec)
	}
	i, err = strconv.Atoi(idx)
	if err != nil {
		return 0, 0, fmt.Errorf("exp: shard index %q is not an integer", idx)
	}
	n, err = strconv.Atoi(cnt)
	if err != nil {
		return 0, 0, fmt.Errorf("exp: shard count %q is not an integer", cnt)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("exp: shard %d/%d outside 1..n", i, n)
	}
	return i, n, nil
}
