package exp

import (
	"strings"
	"testing"
	"time"

	"qdc/internal/congest"
)

// TestRunScenarioCancelled proves the cancel poll reaches the backend's
// round loop: a scenario run with an already-fired cancel stops with
// congest.ErrCancelled instead of completing.
func TestRunScenarioCancelled(t *testing.T) {
	for _, backend := range []string{BackendLocal, BackendParallel, BackendQuantum} {
		s := Scenario{
			Name:      "cancelled-" + backend,
			Topology:  TopologySpec{Family: FamilyPath, Size: 9},
			Algorithm: AlgDisjointness,
			Backend:   backend,
			Bandwidth: 4,
			Seed:      5,
		}
		rec := runScenario(s, 1, func() bool { return true }, false)
		if rec.Error == "" || !strings.Contains(rec.Error, congest.ErrCancelled.Error()) {
			t.Errorf("%s: record = %+v, want a %q error", backend, rec, congest.ErrCancelled)
		}
	}
}

// TestTimeoutTerminatesScenarioGoroutine proves the satellite claim end to
// end at the pool level: when the per-scenario timeout fires, the abandoned
// goroutine observes its cancel poll and exits instead of leaking CPU.
func TestTimeoutTerminatesScenarioGoroutine(t *testing.T) {
	exited := make(chan struct{})
	opts := ExecOptions{
		Workers: 1,
		Timeout: 20 * time.Millisecond,
		run: func(s Scenario, cancel func() bool) Record {
			defer close(exited)
			// Spin like a simulation round loop: make progress only until
			// the pool's timeout flips the cancel poll.
			for !cancel() {
				time.Sleep(time.Millisecond)
			}
			return Record{Scenario: s, Error: "cancelled"}
		},
	}
	var collect Collect
	sum, err := Execute([]Scenario{{Name: "wedged"}}, opts, &collect)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 || !strings.Contains(collect.Records[0].Error, "timeout") {
		t.Fatalf("expected a timeout record, got %+v", collect.Records)
	}
	select {
	case <-exited:
		// The abandoned goroutine terminated.
	case <-time.After(5 * time.Second):
		t.Fatal("timed-out scenario goroutine never observed cancellation")
	}
}

// TestRealScenarioTimeoutCancelsSimulation wires a real (not stubbed)
// scenario through the pool with a timeout that always fires before the
// first round: the record reports the timeout, and the simulating goroutine
// must terminate via the cancel poll rather than running the full sweep.
func TestRealScenarioTimeoutCancelsSimulation(t *testing.T) {
	s := Scenario{
		Name:      "slow",
		Topology:  TopologySpec{Family: FamilyPath, Size: 129},
		Algorithm: AlgDisjointness,
		Backend:   BackendLocal,
		Bandwidth: 1,
		Seed:      3,
	}
	var collect Collect
	sum, err := Execute([]Scenario{s}, ExecOptions{Workers: 1, Timeout: time.Nanosecond}, &collect)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 || !strings.Contains(collect.Records[0].Error, "timeout") {
		t.Fatalf("expected a timeout record, got %+v", collect.Records)
	}
}
