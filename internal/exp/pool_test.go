package exp

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestTimeoutAndPanicRecordsCarryWallTime pins the failure-accounting fix:
// the records runIsolated fabricates for timeouts and panics must carry the
// elapsed wall time like any other record — they are exactly the scenarios
// the -slowest table and the summary's wall accounting must not lose.
func TestTimeoutAndPanicRecordsCarryWallTime(t *testing.T) {
	const nap = 20 * time.Millisecond

	t.Run("timeout", func(t *testing.T) {
		rec := runIsolated(Scenario{Name: "slow"}, nap, func(s Scenario, cancel func() bool) Record {
			time.Sleep(time.Second)
			return Record{Scenario: s, OK: true}
		})
		if !strings.Contains(rec.Error, "timeout") {
			t.Fatalf("expected a timeout record, got %+v", rec)
		}
		if rec.WallMillis < float64(nap/time.Millisecond) {
			t.Errorf("timeout record wall_ms = %v, want >= %v", rec.WallMillis, nap)
		}
	})
	t.Run("panic", func(t *testing.T) {
		rec := runIsolated(Scenario{Name: "boom"}, time.Second, func(s Scenario, cancel func() bool) Record {
			time.Sleep(nap)
			panic("node exploded")
		})
		if !strings.Contains(rec.Error, "panic") {
			t.Fatalf("expected a panic record, got %+v", rec)
		}
		if rec.WallMillis < float64(nap/time.Millisecond) {
			t.Errorf("panic record wall_ms = %v, want >= %v", rec.WallMillis, nap)
		}
	})
}

// failingSink errors on every Write after (and including) failAt.
type failingSink struct {
	writes int
	failAt int
}

func (f *failingSink) Write(Record) error {
	f.writes++
	if f.writes >= f.failAt {
		return errors.New("disk full")
	}
	return nil
}

func (f *failingSink) Close() error { return nil }

// TestExecuteDropsFailedSink pins the dead-sink fix: after a sink's first
// write error the executor stops writing to it (no further Write calls that
// could burn time or mask the root cause), keeps feeding the healthy sinks,
// drains every result, and returns the first error.
func TestExecuteDropsFailedSink(t *testing.T) {
	scenarios := make([]Scenario, 8)
	for i := range scenarios {
		scenarios[i] = Scenario{Name: string(rune('a' + i))}
	}
	opts := ExecOptions{
		Workers: 2,
		run: func(s Scenario, cancel func() bool) Record {
			return Record{Scenario: s, OK: true}
		},
	}
	bad := &failingSink{failAt: 2}
	var good Collect
	sum, err := Execute(scenarios, opts, bad, &good)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("expected the sink's write error, got %v", err)
	}
	if bad.writes != 2 {
		t.Errorf("failed sink saw %d writes, want exactly 2 (one success, one failure, then dropped)", bad.writes)
	}
	if len(good.Records) != len(scenarios) {
		t.Errorf("healthy sink saw %d records, want %d", len(good.Records), len(scenarios))
	}
	if sum.Scenarios != len(scenarios) || sum.Passed != len(scenarios) {
		t.Errorf("summary incomplete after sink failure: %+v", sum)
	}
}

// TestCompareDuplicates pins the duplicate-name fix: Compare must surface a
// scenario name occurring twice on either side instead of silently keeping
// the last old copy and double-counting new ones, and the diff must never
// count as clean.
func TestCompareDuplicates(t *testing.T) {
	mk := func(name string, rounds int) Record {
		r := Record{OK: true}
		r.Scenario.Name = name
		r.Stats.Rounds = rounds
		return r
	}
	old := []Record{mk("dup", 10), mk("other", 5), mk("dup", 99)}
	new := []Record{mk("dup", 10), mk("other", 5), mk("dup", 10), mk("dup", 10)}

	diff := Compare(old, new)
	if !reflect.DeepEqual(diff.DuplicateOld, []string{"dup"}) {
		t.Errorf("DuplicateOld = %v, want [dup] exactly once", diff.DuplicateOld)
	}
	if !reflect.DeepEqual(diff.DuplicateNew, []string{"dup"}) {
		t.Errorf("DuplicateNew = %v, want [dup] exactly once", diff.DuplicateNew)
	}
	if diff.Clean() || diff.CleanExceptRemoved() {
		t.Error("a diff over duplicated scenario names must not be clean")
	}
	// The first copy is the one compared: old dup has rounds 10, matching
	// the new one, so the bogus 99-rounds copy must not fabricate a delta.
	if len(diff.Regressions) != 0 || len(diff.Improvements) != 0 {
		t.Errorf("duplicates fabricated cost deltas: reg=%v imp=%v", diff.Regressions, diff.Improvements)
	}
	// Duplicated names are not also "added"/"removed" noise.
	if len(diff.Added) != 0 || len(diff.Removed) != 0 {
		t.Errorf("added=%v removed=%v, want none", diff.Added, diff.Removed)
	}
}

// TestMergeRejectsWithinShardDuplicate checks the merge error names a
// single shard when the duplicate is inside one input set, rather than the
// confusing "both shard 2 and shard 2".
func TestMergeRejectsWithinShardDuplicate(t *testing.T) {
	rec := Record{OK: true}
	rec.Scenario.Name = "twin"
	_, err := MergeRecords([]Record{rec, rec})
	if err == nil || !strings.Contains(err.Error(), "twice within shard 1") {
		t.Fatalf("within-shard duplicate error = %v", err)
	}
}
