package exp

import "sort"

// This file supports `qdcbench roundbench`, the bridge between the round-loop
// microbenchmarks (internal/congest's BenchmarkRoundLoop*) and the results
// pipeline. The microbenchmarks report wall-clock throughput and allocation
// counts, which are host-dependent and therefore must never enter a canonical
// BENCH_*.json snapshot; the "roundbench" matrix runs the same flood
// workloads through the ordinary scenario pipeline, whose Records carry only
// deterministic rounds/bits. FoldRecords then splices those records into an
// existing snapshot (CI's bench-smoke.json), so `qdcbench trend` tracks the
// round loop's cost trajectory across PRs next to the algorithm sweeps.

// FoldRecords merges updates into base by scenario name: an update replaces
// the base record of the same name, new names are added, and the result is
// sorted by name — the canonical snapshot order, so writing the fold through
// a JSONSink stays byte-deterministic. Neither input is modified.
func FoldRecords(base, updates []Record) []Record {
	replaced := make(map[string]bool, len(updates))
	for _, r := range updates {
		replaced[r.Scenario.Name] = true
	}
	out := make([]Record, 0, len(base)+len(updates))
	for _, r := range base {
		if !replaced[r.Scenario.Name] {
			out = append(out, r)
		}
	}
	out = append(out, updates...)
	sort.Slice(out, func(i, j int) bool { return out[i].Scenario.Name < out[j].Scenario.Name })
	return out
}

// NodeRoundsPerSec returns the record's simulation throughput in
// node-rounds per second, or 0 when the record carries no wall time (e.g.
// after canonicalisation zeroed it). It is display-only: wall time is
// host-dependent and never part of a snapshot's identity.
func NodeRoundsPerSec(r Record) float64 {
	if r.WallMillis <= 0 {
		return 0
	}
	return float64(r.Stats.Rounds) * float64(r.Scenario.Topology.Size) / (r.WallMillis / 1000)
}
