package exp

import (
	"fmt"
	"math/rand"
	"time"

	"qdc/internal/dist/disjointness"
	"qdc/internal/dist/engine"
	"qdc/internal/dist/flood"
	"qdc/internal/dist/mst"
	"qdc/internal/dist/verify"
	"qdc/internal/graph"
	"qdc/internal/simulation"
)

// Record is one row of a results file: the scenario that ran, the measured
// CONGEST cost, the wall-clock time, and whether the run's verdict checked
// out against its reference computation. Failed runs carry Error instead.
type Record struct {
	Scenario Scenario     `json:"scenario"`
	Stats    engine.Stats `json:"stats"`
	// WallMillis is host wall-clock time, the one field that is *not*
	// expected to reproduce across runs; Compare ignores it.
	WallMillis float64 `json:"wall_ms"`
	// OK reports whether the run's verdict matched the sequential reference
	// computation (Kruskal for MST, direct intersection for disjointness,
	// the expected answers for the verification pair).
	OK bool `json:"ok"`
	// Detail is a short human-readable account of the verdict.
	Detail string `json:"detail,omitempty"`
	// Error is the failure, panic or timeout message of an unsuccessful run.
	Error string `json:"error,omitempty"`
	// PeakHeapBytes is the process heap high-water mark (runtime HeapAlloc)
	// observed while the scenario ran, populated only by heap-measuring
	// sweeps (ExecOptions.MeasureHeap; qdcbench roundbench). Host-dependent
	// like WallMillis, but kept through FoldRecords so the roundbench rows
	// track the simulator's memory footprint next to its rounds and bits.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
	// Metrics is the optional observability block, populated when the run
	// was collected with metrics enabled (ExecOptions.Metrics, qdcbench
	// -metrics). Its content is deterministic, but canonical snapshots strip
	// it (see JSONSink) so baseline files are byte-identical with metrics on
	// or off.
	Metrics *ScenarioMetrics `json:"metrics,omitempty"`
}

// Failed reports whether the record represents an unusable or wrong run.
func (r Record) Failed() bool { return r.Error != "" || !r.OK }

// RunScenario executes one scenario synchronously and never panics: node
// program panics surface as the record's Error. Cost accounting, inputs and
// random choices all derive from the scenario seed, so equal scenarios
// produce equal records (modulo WallMillis).
func RunScenario(s Scenario) Record { return runScenario(s, 0, nil, false) }

// runScenario is RunScenario with an explicit stepping-goroutine budget for
// the parallel backend and an optional cancellation poll. stepWorkers <= 0
// keeps the backend's GOMAXPROCS default; the executor divides cores
// between scenario-level and round-level parallelism through it, and the
// budget never changes a record's content, only how many goroutines compute
// it. A non-nil cancel is polled by the backend at every round boundary, so
// a timed-out run stops simulating instead of burning CPU until the round
// limit; a cancelled run surfaces as a Record with congest.ErrCancelled in
// its Error. With metrics set, an engine.StageObserver is installed on the
// backend and the collected ScenarioMetrics block rides on the record;
// everything else about the record is unchanged (observation only turns on
// congest's PerRound recording, which no Stats field reads).
func runScenario(s Scenario, stepWorkers int, cancel func() bool, metrics bool) (rec Record) {
	rec.Scenario = s
	start := time.Now()
	defer func() {
		rec.WallMillis = float64(time.Since(start)) / float64(time.Millisecond)
		if p := recover(); p != nil {
			rec.OK = false
			rec.Error = fmt.Sprintf("panic: %v", p)
		}
	}()

	if ok, reason := Compatible(s.Topology, s.Algorithm, s.Backend, s.Bandwidth); !ok {
		rec.Error = "exp: incompatible scenario: " + reason
		return rec
	}
	rng := rand.New(rand.NewSource(s.Seed))
	topo, err := buildTopology(s, rng)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	runner, err := buildRunner(s, topo, stepWorkers)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	if cancel != nil {
		if c, ok := runner.(interface{ SetCancel(func() bool) }); ok {
			c.SetCancel(cancel)
		}
	}
	var collector *metricsCollector
	if metrics {
		if o, ok := runner.(interface{ SetObserver(engine.StageObserver) }); ok {
			collector = &metricsCollector{}
			o.SetObserver(collector)
		}
	}
	defer func() {
		if collector != nil {
			rec.Metrics = collector.metrics()
		}
	}()

	switch s.Algorithm {
	case AlgVerify:
		rec.OK, rec.Detail, err = runVerify(runner, topo.Graph)
	case AlgMST:
		rec.OK, rec.Detail, err = runMST(runner, topo.Graph, 0)
	case AlgMSTApprox:
		rec.OK, rec.Detail, err = runMST(runner, topo.Graph, 2)
	case AlgDisjointness:
		rec.OK, rec.Detail, err = runDisjointness(runner, rng)
	case AlgFlood:
		rec.OK, rec.Detail, err = runFlood(runner, topo)
	default:
		err = fmt.Errorf("exp: unknown algorithm %q", s.Algorithm)
	}
	rec.Stats = runner.Stats()
	if err != nil {
		rec.OK = false
		rec.Error = err.Error()
		return rec
	}
	if sim, ok := runner.(*simulation.Runner); ok {
		rep := sim.Report()
		rec.Detail += fmt.Sprintf("; server_cost=%d within_budget=%v", rep.ServerModelCost, rep.WithinRoundBudget)
	}
	if qr, ok := runner.(*engine.Quantum); ok {
		rep := qr.Report()
		rec.Detail += fmt.Sprintf("; grover: b=%d D=%d quantum_rounds=%d classical_rounds=%d",
			rep.LastStage.StreamBits, rep.Diameter, rep.Quantum.Rounds, rep.Classical.Rounds)
	}
	return rec
}

// buildTopology realises the scenario's network. Flood scenarios on
// streamable families take the streaming CSR route — built from flat tables
// with no adjacency maps, which is what keeps million-node runs inside
// memory — while every other combination keeps the map-based Build. The two
// routes consume the scenario rng identically and yield identical neighbour
// orders, so which one ran is invisible in the record.
func buildTopology(s Scenario, rng *rand.Rand) (*builtTopology, error) {
	if s.Algorithm == AlgFlood && s.Topology.Streamable() {
		csr, err := s.Topology.BuildCSR(rng)
		if err != nil {
			return nil, err
		}
		return &builtTopology{CSR: csr}, nil
	}
	return s.Topology.Build(rng)
}

// buildRunner constructs the scenario's backend over the built topology.
func buildRunner(s Scenario, topo *builtTopology, stepWorkers int) (engine.Runner, error) {
	switch s.Backend {
	case BackendLocal:
		return engine.NewLocal(topo.topology(), s.Bandwidth, s.Seed)
	case BackendParallel:
		r, err := engine.NewParallel(topo.topology(), s.Bandwidth, s.Seed)
		if err == nil && stepWorkers > 0 {
			r.SetWorkers(stepWorkers)
		}
		return r, err
	case BackendSimulation:
		// Compatible has already pinned the family to FamilyLBNet, so
		// topo.LB is set; NewRunner still rejects a nil network itself.
		return simulation.NewRunner(topo.LB, s.Bandwidth, s.Seed)
	case BackendQuantum:
		return engine.NewQuantum(topo.topology(), s.Bandwidth, s.Seed)
	default:
		return nil, fmt.Errorf("exp: unknown backend %q", s.Backend)
	}
}

// runVerify exercises the distributed spanning-tree verifier on one
// positive instance (a reference MST of the network) and one negative
// instance (the same tree with its first edge removed); the run is OK when
// both network-wide verdicts are correct.
func runVerify(r engine.Runner, g *graph.Graph) (bool, string, error) {
	tree, _ := g.KruskalMST()
	if len(tree) == 0 {
		return false, "", fmt.Errorf("exp: verify needs a topology with at least one edge")
	}
	m := graph.NewEdgeSetFrom(tree)
	pos, err := verify.SpanningTree(r, g, m)
	if err != nil {
		return false, "", err
	}
	broken := m.Clone()
	broken.Remove(tree[0].U, tree[0].V)
	neg, err := verify.SpanningTree(r, g, broken)
	if err != nil {
		return false, "", err
	}
	ok := pos.Answer && !neg.Answer
	detail := fmt.Sprintf("spanning-tree verdicts: intact=%v broken=%v", pos.Answer, neg.Answer)
	return ok, detail, nil
}

// runMST builds a distributed MST (exact for alpha 0, rounded-weight
// otherwise) and validates it against Kruskal: a spanning forest of the
// right size whose weight is within the approximation guarantee.
func runMST(r engine.Runner, g *graph.Graph, alpha float64) (bool, string, error) {
	ref, refWeight := g.KruskalMST()
	res, err := mst.Run(r, g, mst.Config{Alpha: alpha})
	if err != nil {
		return false, "", err
	}
	bound := refWeight
	if alpha > 1 {
		bound = alpha * refWeight
	}
	ok := len(res.Tree) == len(ref) && res.OriginalWeight <= bound*(1+1e-9)
	detail := fmt.Sprintf("tree weight %.1f vs optimum %.1f (bound %.1f)", res.OriginalWeight, refWeight, bound)
	return ok, detail, nil
}

// runFlood floods from vertex 0 and checks every node's adopted hop
// distance against a sequential BFS — over the CSR when the streaming
// loader built the topology, over the graph otherwise. The comparison is a
// plain loop (not reflection) because the scale matrices run this on
// 100k+-node graphs.
func runFlood(r engine.Runner, topo *builtTopology) (bool, string, error) {
	res, err := flood.Run(r, 0)
	if err != nil {
		return false, "", err
	}
	var want []int
	if topo.CSR != nil {
		want = topo.CSR.BFSDist(0)
	} else {
		want = topo.Graph.BFS(0).Dist
	}
	mismatches, ecc := 0, 0
	for v, d := range res.Dist {
		if d != want[v] {
			mismatches++
		}
		if d > ecc {
			ecc = d
		}
	}
	detail := fmt.Sprintf("flooded %d nodes, ecc(0)=%d, rounds=%d", len(res.Dist), ecc, res.Rounds)
	if mismatches > 0 {
		detail += fmt.Sprintf("; %d distances disagree with BFS", mismatches)
	}
	return mismatches == 0, detail, nil
}

// DisjointnessInputBits is the input size rule of the disjointness
// scenarios: b = 8B, so the pipelining term ⌈b/B⌉ = 8 is bandwidth-
// independent and the classical-vs-quantum crossover moves with B alone.
// CrossoverReport relies on this rule to reconstruct b from a record.
func DisjointnessInputBits(bandwidth int) int { return 8 * bandwidth }

// runDisjointness draws two b-bit sets with b = 8B (so pipelining dominates
// the diameter term), runs the pipelined path protocol, and checks the
// network's verdict against the direct intersection.
func runDisjointness(r engine.Runner, rng *rand.Rand) (bool, string, error) {
	b := DisjointnessInputBits(r.Bandwidth())
	x := make([]int, b)
	y := make([]int, b)
	intersect := false
	for i := range x {
		if rng.Float64() < 0.05 {
			x[i] = 1
		}
		if rng.Float64() < 0.05 {
			y[i] = 1
		}
		if x[i] == 1 && y[i] == 1 {
			intersect = true
		}
	}
	res, err := disjointness.RunOn(r, x, y)
	if err != nil {
		return false, "", err
	}
	ok := res.Disjoint == !intersect
	detail := fmt.Sprintf("b=%d verdict=%v want=%v rounds=%d (Θ(D+b/B)=%d)",
		b, res.Disjoint, !intersect, res.Rounds, disjointness.ClassicalRounds(b, r.Bandwidth(), r.Size()-1))
	return ok, detail, nil
}
