package exp

import (
	"fmt"
	"strings"
	"testing"

	"qdc/internal/dist/disjointness"
)

func TestRunScenarioQuantumBackend(t *testing.T) {
	s := Scenario{
		Name:      "quantum",
		Topology:  TopologySpec{Family: FamilyPath, Size: 9},
		Algorithm: AlgDisjointness,
		Backend:   BackendQuantum,
		Bandwidth: 4,
		Seed:      11,
	}
	rec := RunScenario(s)
	if rec.Error != "" || !rec.OK {
		t.Fatalf("quantum scenario failed: %+v", rec)
	}
	if !strings.Contains(rec.Detail, "grover:") {
		t.Errorf("quantum record missing Grover accounting detail: %q", rec.Detail)
	}
	b := DisjointnessInputBits(s.Bandwidth)
	d := s.Topology.Size - 1
	if want := disjointness.QuantumRounds(b, d); rec.Stats.Rounds != want {
		t.Errorf("quantum stats measured %d rounds, want QuantumRounds(%d,%d) = %d", rec.Stats.Rounds, b, d, want)
	}
	if rec.Stats.QuantumBits == 0 || rec.Stats.QuantumBits != rec.Stats.Bits {
		t.Errorf("quantum backend cost must be all qubits: %+v", rec.Stats)
	}
}

// TestDefaultMatrixSweepsQuantumBackend is the registration half of the
// acceptance criterion: the standing BENCH sweep must pair quantum-backend
// disjointness scenarios with their classical twins.
func TestDefaultMatrixSweepsQuantumBackend(t *testing.T) {
	m, ok := LookupMatrix("default")
	if !ok {
		t.Fatal("default matrix not registered")
	}
	quantumCells := 0
	paired := 0
	byKey := make(map[string]bool)
	for _, s := range m.Expand() {
		if s.Backend == BackendLocal && s.Algorithm == AlgDisjointness {
			byKey[fmt.Sprintf("%s/B%d", s.Topology, s.Bandwidth)] = true
		}
	}
	for _, s := range m.Expand() {
		if s.Backend != BackendQuantum {
			continue
		}
		quantumCells++
		if s.Algorithm != AlgDisjointness {
			t.Errorf("quantum cell %s is not a disjointness scenario", s.Name)
		}
		if byKey[fmt.Sprintf("%s/B%d", s.Topology, s.Bandwidth)] {
			paired++
		}
	}
	if quantumCells == 0 {
		t.Fatal("default matrix contains no quantum-backend scenarios")
	}
	if paired != quantumCells {
		t.Errorf("%d of %d quantum cells have no classical twin", quantumCells-paired, quantumCells)
	}
}

// TestCrossoverMatrixMeasuresTheSeparation is the measurement half of the
// acceptance criterion: running the crossover matrix, the cheaper measured
// backend on every decisive path scenario matches the side predicted by
// disjointness.CrossoverDiameter, and both sides of the separation are
// observed.
func TestCrossoverMatrixMeasuresTheSeparation(t *testing.T) {
	m, ok := LookupMatrix("crossover")
	if !ok {
		t.Fatal("crossover matrix not registered")
	}
	scenarios := m.Expand()
	var collect Collect
	sum, err := Execute(scenarios, ExecOptions{Workers: 4}, &collect)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		for _, r := range collect.Records {
			if r.Failed() {
				t.Errorf("failed: %s: %s", r.Scenario.Name, r.Error)
			}
		}
		t.Fatalf("summary: %+v", sum)
	}

	points := CrossoverReport(collect.Records)
	if len(points) != len(scenarios)/2 {
		t.Fatalf("paired %d crossover points from %d scenarios", len(points), len(scenarios))
	}
	quantumWins, classicalWins := 0, 0
	for _, p := range points {
		if !p.Decisive {
			continue
		}
		if !p.Agree {
			t.Errorf("B=%d D=%d: measured winner %s (classical %d vs quantum %d rounds) disagrees with predicted %s (D*=%d)",
				p.Bandwidth, p.Distance, p.MeasuredWinner, p.ClassicalRounds, p.QuantumRounds, p.PredictedWinner, p.PredictedCrossover)
		}
		switch p.MeasuredWinner {
		case "quantum":
			quantumWins++
		case "classical":
			classicalWins++
		}
	}
	if quantumWins == 0 || classicalWins == 0 {
		t.Fatalf("crossover sweep did not observe both sides: %d quantum, %d classical decisive wins", quantumWins, classicalWins)
	}

	// The per-bandwidth summaries bracket the predicted crossover: quantum
	// wins strictly below the measured crossover diameter.
	for _, s := range MeasuredCrossovers(points) {
		if s.MeasuredCrossover == 0 {
			t.Errorf("B=%d: classical never won across %d diameters", s.Bandwidth, s.Points)
			continue
		}
		if s.MeasuredCrossover < s.PredictedCrossover {
			t.Errorf("B=%d: classical already won at D=%d, below the predicted crossover D*=%d",
				s.Bandwidth, s.MeasuredCrossover, s.PredictedCrossover)
		}
	}
}

// TestQuantumMatchesClassicalVerdicts pins backend substitution: for the
// same scenario and seed, the quantum backend's verdict must equal the
// local backend's — only the accounting may differ.
func TestQuantumMatchesClassicalVerdicts(t *testing.T) {
	m, _ := LookupMatrix("crossover")
	for _, s := range m.Expand() {
		if s.Backend != BackendQuantum {
			continue
		}
		qrec := RunScenario(s)
		local := s
		local.Backend = BackendLocal
		local.Seed = s.Seed // substitution is about the backend, not the seed
		lrec := RunScenario(local)
		if qrec.Error != "" || lrec.Error != "" {
			t.Fatalf("%s: errors quantum=%q local=%q", s.Name, qrec.Error, lrec.Error)
		}
		if qrec.OK != lrec.OK {
			t.Errorf("%s: verdicts diverge: quantum OK=%v local OK=%v", s.Name, qrec.OK, lrec.OK)
		}
	}
}
