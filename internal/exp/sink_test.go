package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

type recordingCloser struct {
	closed bool
	err    error
}

func (c *recordingCloser) Close() error {
	c.closed = true
	return c.err
}

// TestJSONLSinkCloseAlwaysCloses pins the descriptor-leak fix: a failing
// flush must still close the underlying file, and the flush error must win.
func TestJSONLSinkCloseAlwaysCloses(t *testing.T) {
	rc := &recordingCloser{err: errors.New("close also failed")}
	s := NewJSONLSink(failWriter{})
	s.closer = rc
	if err := s.Write(Record{Scenario: Scenario{Name: "x"}}); err != nil {
		t.Fatalf("buffered write failed early: %v", err)
	}
	err := s.Close()
	if !rc.closed {
		t.Fatal("a failing flush leaked the file descriptor")
	}
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close must return the first (flush) error, got %v", err)
	}
}

// TestJSONSinkCloseAlwaysCloses is the same guarantee for the JSON-array
// sink, whose encode happens entirely inside Close.
func TestJSONSinkCloseAlwaysCloses(t *testing.T) {
	rc := &recordingCloser{}
	s := NewJSONSink(failWriter{})
	s.closer = rc
	if err := s.Write(Record{Scenario: Scenario{Name: "x"}}); err != nil {
		t.Fatal(err)
	}
	err := s.Close()
	if !rc.closed {
		t.Fatal("a failing encode leaked the file descriptor")
	}
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close must return the encode error, got %v", err)
	}
}

func TestJSONLSinkCloseReportsCloserError(t *testing.T) {
	rc := &recordingCloser{err: errors.New("late close error")}
	s := NewJSONLSink(&bytes.Buffer{})
	s.closer = rc
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "late close error") {
		t.Errorf("a clean flush must still surface the close error, got %v", err)
	}
}

// TestJSONSinkCanonicalisesWallClock pins the snapshot canonicalisation the
// shard/merge byte-identity invariant rests on: wall times differ between
// any two runs, so the JSON snapshot zeroes them.
func TestJSONSinkCanonicalisesWallClock(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	rec := Record{Scenario: Scenario{Name: "x"}, WallMillis: 123.456, OK: true}
	if err := s.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].WallMillis != 0 {
		t.Errorf("snapshot kept a wall time: %+v", back)
	}
}

// TestJSONSinkEmptySnapshot pins the empty-shard case: zero records must
// serialise as an empty array (not JSON null) and load back as zero records.
func TestJSONSinkEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty snapshot serialised as %q, want []", got)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil || len(back) != 0 {
		t.Errorf("empty snapshot round-trip: %v, %v", back, err)
	}
}

// TestCleanCountsRemovals pins the baseline-gate fix: a scenario present in
// the old snapshot but missing from the new one is a regression, not a
// clean diff — a crashed shard or a silently shrunken matrix must fail the
// gate unless the caller explicitly allows removals.
func TestCleanCountsRemovals(t *testing.T) {
	old := []Record{
		{Scenario: Scenario{Name: "kept"}, OK: true},
		{Scenario: Scenario{Name: "lost"}, OK: true},
	}
	diff := Compare(old, old[:1])
	if diff.Clean() {
		t.Error("a diff with removed scenarios must not be clean")
	}
	if !diff.CleanExceptRemoved() {
		t.Error("a removal-only diff must pass the explicit escape hatch")
	}
	if withRegression := (Diff{Regressions: []Delta{{Name: "x"}}}); withRegression.CleanExceptRemoved() {
		t.Error("CleanExceptRemoved must still fail on real regressions")
	}
	if !Compare(old, old).Clean() {
		t.Error("an identical snapshot must stay clean")
	}
}
