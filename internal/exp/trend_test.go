package exp

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qdc/internal/dist/engine"
)

// writeSnapshot writes records as a canonical JSON snapshot file.
func writeSnapshot(t *testing.T, path string, recs []Record) {
	t.Helper()
	sink, err := CreateJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func trendRecord(name string, rounds int, bits int64, ok bool) Record {
	return Record{
		Scenario: Scenario{Name: name},
		Stats:    engine.Stats{Rounds: rounds, Bits: bits},
		OK:       ok,
	}
}

func TestTrend(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, filepath.Join(dir, "BENCH_001.json"), []Record{
		trendRecord("steady", 10, 100, true),
		trendRecord("drifts", 10, 100, true),
		trendRecord("vanishes", 7, 70, true),
		trendRecord("blinks", 5, 50, true),
	})
	writeSnapshot(t, filepath.Join(dir, "BENCH_002.json"), []Record{
		trendRecord("steady", 10, 100, true),
		trendRecord("drifts", 12, 90, true),
		trendRecord("vanishes", 7, 70, true),
	})
	writeSnapshot(t, filepath.Join(dir, "BENCH_003.json"), []Record{
		trendRecord("steady", 10, 100, true),
		trendRecord("drifts", 14, 80, false),
		trendRecord("appears", 1, 1, true),
		trendRecord("blinks", 5, 50, true),
	})
	// Files that are not BENCH_*.json snapshots must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.json"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Trend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"BENCH_001.json", "BENCH_002.json", "BENCH_003.json"}; !reflect.DeepEqual(rep.Snapshots, want) {
		t.Fatalf("snapshots %v, want %v", rep.Snapshots, want)
	}
	byName := make(map[string]ScenarioTrend)
	for _, s := range rep.Scenarios {
		byName[s.Name] = s
	}
	if len(byName) != 5 {
		t.Fatalf("got %d scenarios: %+v", len(byName), rep.Scenarios)
	}

	steady := byName["steady"]
	if steady.First != "BENCH_001.json" || steady.Last != "BENCH_003.json" || steady.Changed() {
		t.Errorf("steady: %+v", steady)
	}
	if len(steady.Missing) != 0 {
		t.Errorf("steady has no gaps, got %v", steady.Missing)
	}
	// A scenario absent from an intermediate snapshot but back in a later
	// one must surface the gap, not splice over it.
	blinks := byName["blinks"]
	if !reflect.DeepEqual(blinks.Missing, []string{"BENCH_002.json"}) || blinks.Changed() {
		t.Errorf("blinks: Missing=%v Changed=%v, want the BENCH_002 gap flagged", blinks.Missing, blinks.Changed())
	}
	drifts := byName["drifts"]
	if !drifts.Changed() || len(drifts.Points) != 3 {
		t.Fatalf("drifts: %+v", drifts)
	}
	if got := drifts.Points[2]; got.Rounds != 14 || got.Bits != 80 || !got.Failed {
		t.Errorf("drifts final point: %+v", got)
	}
	appears := byName["appears"]
	if appears.First != "BENCH_003.json" || len(appears.Points) != 1 {
		t.Errorf("appears: %+v", appears)
	}
	vanishes := byName["vanishes"]
	if vanishes.Last != "BENCH_002.json" {
		t.Errorf("vanishes last seen %q", vanishes.Last)
	}
	if got := rep.Vanished(); !reflect.DeepEqual(got, []string{"vanishes"}) {
		t.Errorf("Vanished() = %v", got)
	}
}

func TestTrendErrors(t *testing.T) {
	if _, err := Trend(t.TempDir()); err == nil {
		t.Error("a directory without snapshots must be an explicit error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("[{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Trend(dir); err == nil {
		t.Error("a corrupt snapshot must be an explicit error")
	}
}
