package exp

import (
	"time"

	"qdc/internal/congest"
	"qdc/internal/obs"
)

// ScenarioMetrics is the optional observability block of a Record: per-round
// traffic distributions folded from every stage the scenario's runner
// executed. Every field is a pure function of the scenario (histograms of
// deterministic per-round quantities), so metrics blocks reproduce exactly
// across hosts and across Workers settings; wall-clock-derived rates live
// only in the live sweep Status, never here. Canonical JSON snapshots strip
// the block (see JSONSink), keeping baseline files byte-identical whether or
// not a sweep collected metrics.
type ScenarioMetrics struct {
	// Stages and Rounds mirror the stage/round totals the histograms were
	// folded over (Rounds equals Stats.Rounds for the classical backends;
	// under Grover re-accounting it is the observed classical round count).
	Stages int `json:"stages"`
	Rounds int `json:"rounds"`
	// MessagesPerRound, ClassicalBitsPerRound and QuantumBitsPerRound are
	// power-of-two histograms of one round's delivered messages, classical
	// bits and qubits, one observation per executed round.
	MessagesPerRound      obs.HistogramSnapshot `json:"messages_per_round"`
	ClassicalBitsPerRound obs.HistogramSnapshot `json:"classical_bits_per_round"`
	QuantumBitsPerRound   obs.HistogramSnapshot `json:"quantum_bits_per_round"`
}

// metricsCollector implements engine.StageObserver: it folds every stage's
// per-round traffic split into the scenario's histograms. A collector
// belongs to one scenario run and is only touched from that run's goroutine.
type metricsCollector struct {
	stages int
	rounds int
	msgs   obs.Histogram
	cbits  obs.Histogram
	qbits  obs.Histogram
}

// StageDone implements engine.StageObserver.
func (c *metricsCollector) StageDone(res *congest.Result) {
	c.stages++
	c.rounds += res.Rounds
	for _, rt := range res.PerRound {
		c.msgs.Observe(int64(rt.Messages))
		c.cbits.Observe(rt.ClassicalBits)
		c.qbits.Observe(rt.QuantumBits)
	}
}

// metrics returns the collected block, or nil when no stage ever reported
// (e.g. the scenario failed before its first stage).
func (c *metricsCollector) metrics() *ScenarioMetrics {
	if c.stages == 0 {
		return nil
	}
	return &ScenarioMetrics{
		Stages:                c.stages,
		Rounds:                c.rounds,
		MessagesPerRound:      c.msgs.Snapshot(),
		ClassicalBitsPerRound: c.cbits.Snapshot(),
		QuantumBitsPerRound:   c.qbits.Snapshot(),
	}
}

// Status is the live view of a sweep, shared between the executor's worker
// goroutines and whatever reads it concurrently (the -listen /progress
// endpoint, the -progress heartbeat). All fields are safe for concurrent
// use; everything it reports is monitoring data, never part of a Record.
type Status struct {
	// Total is the number of scenarios the sweep will run.
	Total int
	// Done, Failed and InFlight count completed records, the failed subset,
	// and scenarios currently executing.
	Done     obs.Counter
	Failed   obs.Counter
	InFlight obs.Gauge
	// NodeRounds accumulates rounds × network size over completed records —
	// the sweep-wide simulation throughput numerator.
	NodeRounds obs.Counter

	start time.Time
}

// NewStatus returns a Status for a sweep of total scenarios, with the rate
// clock started now.
func NewStatus(total int) *Status {
	return &Status{Total: total, start: time.Now()}
}

// ScenarioStarted records a scenario entering execution.
func (st *Status) ScenarioStarted() {
	if st != nil {
		st.InFlight.Add(1)
	}
}

// ScenarioDone folds one completed record into the live counters.
func (st *Status) ScenarioDone(rec Record) {
	if st == nil {
		return
	}
	st.InFlight.Add(-1)
	st.Done.Inc()
	if rec.Failed() {
		st.Failed.Inc()
	}
	st.NodeRounds.Add(int64(rec.Stats.Rounds) * int64(rec.Scenario.Topology.Size))
}

// ScenarioUncounted removes a previously counted record from the live
// counters. The fan-out supervisor streams records as each worker's JSONL
// lines complete; when a worker crashes mid-shard those records are
// discarded and the retry re-runs the whole shard, so without the rollback
// the retried records would be counted twice and Done could exceed Total.
func (st *Status) ScenarioUncounted(rec Record) {
	if st == nil {
		return
	}
	st.Done.Add(-1)
	if rec.Failed() {
		st.Failed.Add(-1)
	}
	st.NodeRounds.Add(-int64(rec.Stats.Rounds) * int64(rec.Scenario.Topology.Size))
}

// NodeRoundsPerSec returns the sweep-wide simulation throughput so far.
func (st *Status) NodeRoundsPerSec() float64 {
	secs := time.Since(st.start).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(st.NodeRounds.Load()) / secs
}

// Progress returns the JSON value served at /progress: a self-contained
// snapshot a dashboard can poll.
func (st *Status) Progress() any {
	done := st.Done.Load()
	return map[string]any{
		"total":               st.Total,
		"done":                done,
		"failed":              st.Failed.Load(),
		"in_flight":           st.InFlight.Load(),
		"node_rounds":         st.NodeRounds.Load(),
		"node_rounds_per_sec": st.NodeRoundsPerSec(),
		"elapsed_ms":          float64(time.Since(st.start)) / float64(time.Millisecond),
	}
}

// Register publishes the live counters on reg under stable names, for the
// /vars endpoint.
func (st *Status) Register(reg *obs.Registry) {
	reg.Publish("scenarios_total", func() any { return st.Total })
	reg.PublishCounter("scenarios_done", &st.Done)
	reg.PublishCounter("scenarios_failed", &st.Failed)
	reg.PublishGauge("scenarios_in_flight", &st.InFlight)
	reg.PublishCounter("node_rounds", &st.NodeRounds)
	reg.Publish("node_rounds_per_sec", func() any { return st.NodeRoundsPerSec() })
}

// EventSink forwards every completed record to an obs.EventLog as a
// "scenario" event, giving long sweeps a tail-able JSONL activity stream
// (completion order, wall-clock stamped) next to the canonical results. The
// sink does not own the log: Close flushes nothing, so one log can carry
// sweep-level events around the per-record stream.
type EventSink struct {
	log *obs.EventLog
}

// NewEventSink wraps an event log in a Sink.
func NewEventSink(log *obs.EventLog) *EventSink { return &EventSink{log: log} }

// Write implements Sink.
func (e *EventSink) Write(r Record) error {
	data := map[string]any{
		"name":    r.Scenario.Name,
		"ok":      r.OK,
		"wall_ms": r.WallMillis,
		"rounds":  r.Stats.Rounds,
		"bits":    r.Stats.Bits,
	}
	if r.Error != "" {
		data["error"] = r.Error
	}
	return e.log.Emit("scenario", data)
}

// Close implements Sink; the event log stays open for the caller's
// sweep-level events.
func (e *EventSink) Close() error { return nil }
