package exp

import (
	"strings"
	"testing"

	"qdc/internal/dist/engine"
)

func TestFloodScenarioRuns(t *testing.T) {
	for _, backend := range []string{BackendLocal, BackendParallel} {
		s := Scenario{
			Name:      "grid36/flood/" + backend + "/B32",
			Topology:  TopologySpec{Family: FamilyGrid, Size: 36},
			Algorithm: AlgFlood,
			Backend:   backend,
			Bandwidth: 32,
			Seed:      7,
		}
		rec := RunScenario(s)
		if rec.Failed() {
			t.Fatalf("%s: %s %s", backend, rec.Error, rec.Detail)
		}
		// A 6x6 grid flooded from a corner: ecc(0) = 10, wave dies out two
		// rounds later.
		if rec.Stats.Rounds != 12 {
			t.Errorf("%s: rounds = %d, want 12", backend, rec.Stats.Rounds)
		}
		if !strings.Contains(rec.Detail, "ecc(0)=10") {
			t.Errorf("%s: detail %q lacks the eccentricity", backend, rec.Detail)
		}
	}
}

func TestFloodCompatibility(t *testing.T) {
	grid := TopologySpec{Family: FamilyGrid, Size: 4096}
	if ok, reason := Compatible(grid, AlgFlood, BackendSimulation, 64); ok {
		t.Error("flood must not run under the simulation backend")
	} else if !strings.Contains(reason, "simulation") {
		t.Errorf("unexpected reason %q", reason)
	}
	// One announcement needs tag + distance bits; B=8 cannot carry it at
	// n=4096 (2 + 12 bits) while B=16 can.
	if ok, _ := Compatible(grid, AlgFlood, BackendLocal, 8); ok {
		t.Error("flood at n=4096 must not fit in 8 bits per round")
	}
	if ok, reason := Compatible(grid, AlgFlood, BackendLocal, 16); !ok {
		t.Errorf("flood at n=4096 should fit in 16 bits per round: %s", reason)
	}
}

func TestScaleXLMatrixExpansion(t *testing.T) {
	m, ok := LookupMatrix("scale-xl")
	if !ok {
		t.Fatal("scale-xl matrix is not registered")
	}
	scenarios := m.Expand()
	// 3 topologies x 1 algorithm x 2 backends x 1 bandwidth, nothing skipped.
	if len(scenarios) != 6 {
		t.Fatalf("scale-xl expands to %d scenarios, want 6", len(scenarios))
	}
	for _, s := range scenarios {
		if s.Algorithm != AlgFlood {
			t.Errorf("scenario %s is not a flood run", s.Name)
		}
		if s.Topology.Size < 100_000 {
			t.Errorf("scenario %s has size %d, scale-xl promises n >= 100k", s.Name, s.Topology.Size)
		}
	}
}

func TestRoundbenchMatrixRuns(t *testing.T) {
	m, ok := LookupMatrix("roundbench")
	if !ok {
		t.Fatal("roundbench matrix is not registered")
	}
	scenarios := m.Expand()
	if len(scenarios) != 6 {
		t.Fatalf("roundbench expands to %d scenarios, want 6", len(scenarios))
	}
	rec := RunScenario(scenarios[0])
	if rec.Failed() {
		t.Fatalf("%s: %s %s", rec.Scenario.Name, rec.Error, rec.Detail)
	}
	if nps := NodeRoundsPerSec(rec); nps <= 0 {
		t.Errorf("NodeRoundsPerSec = %g on a live record, want > 0", nps)
	}
	rec.WallMillis = 0
	if nps := NodeRoundsPerSec(rec); nps != 0 {
		t.Errorf("NodeRoundsPerSec = %g on a canonicalised record, want 0", nps)
	}
}

func TestFoldRecords(t *testing.T) {
	mk := func(name string, rounds int) Record {
		return Record{
			Scenario: Scenario{Name: name},
			Stats:    engine.Stats{Rounds: rounds},
			OK:       true,
		}
	}
	base := []Record{mk("b", 1), mk("a", 2), mk("c", 3)}
	updates := []Record{mk("b", 9), mk("d", 4)}
	out := FoldRecords(base, updates)
	if len(out) != 4 {
		t.Fatalf("folded %d records, want 4", len(out))
	}
	wantOrder := []string{"a", "b", "c", "d"}
	wantRounds := []int{2, 9, 3, 4}
	for i, r := range out {
		if r.Scenario.Name != wantOrder[i] || r.Stats.Rounds != wantRounds[i] {
			t.Errorf("out[%d] = %s/%d, want %s/%d",
				i, r.Scenario.Name, r.Stats.Rounds, wantOrder[i], wantRounds[i])
		}
	}
	if len(base) != 3 || base[0].Stats.Rounds != 1 {
		t.Error("FoldRecords modified its base input")
	}
	// Idempotence: folding the same updates again changes nothing.
	again := FoldRecords(out, updates)
	for i := range out {
		if again[i].Scenario.Name != out[i].Scenario.Name || again[i].Stats.Rounds != out[i].Stats.Rounds {
			t.Fatalf("second fold diverged at %d", i)
		}
	}
}
