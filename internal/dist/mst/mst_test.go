package mst_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"qdc/internal/dist/engine"
	"qdc/internal/dist/mst"
	"qdc/internal/graph"
	"qdc/internal/lbnetwork"
)

func runner(t *testing.T, g *graph.Graph) engine.Runner {
	t.Helper()
	r, err := engine.NewLocal(g, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExactMatchesKruskalOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := graph.RandomConnectedGraph(24, 0.2, rng)
		g, err := graph.AssignRandomWeights(base, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, want := g.KruskalMST()

		res, err := mst.Run(runner(t, g), g, mst.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Tree) != g.N()-1 {
			t.Fatalf("seed %d: tree has %d edges, want %d", seed, len(res.Tree), g.N()-1)
		}
		if math.Abs(res.OriginalWeight-want) > 1e-9 {
			t.Fatalf("seed %d: distributed MST weight %g, Kruskal %g", seed, res.OriginalWeight, want)
		}
		if res.Stats.Rounds <= 0 || res.Stats.Bits <= 0 {
			t.Fatalf("seed %d: empty accounting: %+v", seed, res.Stats)
		}
	}
}

func TestExactHandlesTiedWeights(t *testing.T) {
	// Unit weights everywhere: the (key, u, v) tie-break must still produce
	// a spanning tree of minimum (= n−1) total weight.
	g := graph.Complete(10)
	res, err := mst.Run(runner(t, g), g, mst.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree) != 9 || math.Abs(res.OriginalWeight-9) > 1e-9 {
		t.Fatalf("MST of K10 with unit weights: %d edges, weight %g", len(res.Tree), res.OriginalWeight)
	}
}

func TestApproxWithinAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw, err := lbnetwork.New(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.AssignRandomWeights(nw.Graph, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, opt := g.KruskalMST()

	for _, alpha := range []float64{1.5, 2, 8} {
		res, err := mst.Run(runner(t, g), g, mst.Config{Alpha: alpha})
		if err != nil {
			t.Fatalf("alpha=%g: %v", alpha, err)
		}
		if len(res.Tree) != g.N()-1 {
			t.Fatalf("alpha=%g: tree has %d edges, want %d", alpha, len(res.Tree), g.N()-1)
		}
		ratio := res.OriginalWeight / opt
		if ratio < 1-1e-9 || ratio > alpha+1e-6 {
			t.Fatalf("alpha=%g: approximation ratio %g outside [1, alpha]", alpha, ratio)
		}
	}
}

// Weights below 1 map to negative classes; the guarantee must survive them
// (regression: clamping negative classes to 0 once collapsed all sub-unit
// weights into a single class, yielding a ratio of 45× on this instance).
func TestApproxWithSubUnitWeights(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 0.01)
	g.MustAddEdge(1, 2, 0.01)
	g.MustAddEdge(0, 2, 0.9)
	_, opt := g.KruskalMST()
	res, err := mst.Run(runner(t, g), g, mst.Config{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.OriginalWeight / opt
	if ratio < 1-1e-9 || ratio > 2+1e-6 {
		t.Fatalf("approximation ratio %g outside [1, 2] (weight %g vs opt %g)", ratio, res.OriginalWeight, opt)
	}
}

func TestDisconnectedGraphYieldsForest(t *testing.T) {
	// Two unit-weight components; communication still needs a connected
	// network, so the runner uses a connected supergraph while the MST runs
	// on the weighted graph's own topology. Here we simply verify the
	// forest behaviour on a connected runner over the same node set.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		g.MustAddEdge(e[0], e[1], 1)
	}
	g.MustAddEdge(2, 3, 10) // bridge making the network connected
	res, err := mst.Run(runner(t, g), g, mst.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, want := g.KruskalMST()
	if math.Abs(res.OriginalWeight-want) > 1e-9 {
		t.Fatalf("forest weight %g, Kruskal %g", res.OriginalWeight, want)
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := mst.Run(nil, g, mst.Config{}); !errors.Is(err, mst.ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	if _, err := mst.Run(runner(t, g), g, mst.Config{Alpha: 0.5}); !errors.Is(err, mst.ErrBadAlpha) {
		t.Fatalf("err = %v, want ErrBadAlpha", err)
	}
	// Runner and graph must agree on the node set.
	if _, err := mst.Run(runner(t, graph.Path(5)), g, mst.Config{}); !errors.Is(err, mst.ErrBadInput) {
		t.Fatalf("size mismatch: err = %v, want ErrBadInput", err)
	}
	// Exact candidate messages carry a 64-bit weight word and do not fit
	// narrow links; Run must reject that up front rather than abort
	// mid-phase.
	narrow, err := engine.NewLocal(g, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mst.Run(narrow, g, mst.Config{}); !errors.Is(err, mst.ErrBandwidth) {
		t.Fatalf("B=32 exact: err = %v, want ErrBandwidth", err)
	}
	// The α-approximate variant's class keys are narrow enough for B=32.
	if _, err := mst.Run(narrow, g, mst.Config{Alpha: 2}); err != nil {
		t.Fatalf("B=32 approx: %v", err)
	}
}
