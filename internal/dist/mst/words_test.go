package mst

import (
	"math/rand"
	"reflect"
	"testing"

	"qdc/internal/congest"
	"qdc/internal/graph"
)

// Word-encoding equivalence pins for both mst stages: the migrated node
// programs must produce Results bit-for-bit identical to the pre-refactor
// boxed implementations — same rounds, bits, outputs and trace stream — on
// sequential and parallel merges alike. The boxed* nodes below are the
// pre-refactor programs, kept verbatim; fragMsg/nbrMsg/candMsg still exist
// as in-memory structs and double here as the boxed payloads they once were.

type boxedFragNode struct {
	treeNbrs []int
	label    int
	dist     int
	sent     fragMsg
}

func (f *boxedFragNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(fragInput)
	f.treeNbrs = in.TreeNbrs
	f.label = ctx.ID()
	f.dist = 0
	f.sent = fragMsg{Label: -1}
}

func (f *boxedFragNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	for _, m := range inbox {
		if p, ok := m.Payload.(fragMsg); ok {
			if p.Label < f.label || (p.Label == f.label && p.Dist+1 < f.dist) {
				f.label = p.Label
				f.dist = p.Dist + 1
			}
		}
	}
	n := ctx.N()
	if round > n {
		ctx.SetOutput(fragState{Label: f.label, Dist: f.dist, TreeNbrs: f.treeNbrs})
		return nil, true
	}
	if cur := (fragMsg{Label: f.label, Dist: f.dist}); cur != f.sent {
		f.sent = cur
		bits := tagBits + congest.BitsForID(n) + congest.BitsForInt(f.dist)
		return congest.Broadcast(f.treeNbrs, cur, bits), false
	}
	return nil, false
}

type boxedMoeNode struct {
	st   fragState
	keys keyFunc

	parent   int
	children int
	best     candMsg
	received int
	oriented bool
	finished bool
}

func (m *boxedMoeNode) Init(*congest.Context) {}

func (m *boxedMoeNode) candBits(n int, c candMsg) int {
	bits := tagBits + congest.BitsForBool
	if c.Has {
		bits += 2*congest.BitsForID(n) + m.keys.keyBits(c.Key)
	}
	return bits
}

func (m *boxedMoeNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	n := ctx.N()
	if round == 1 {
		bits := tagBits + congest.BitsForID(n) + congest.BitsForInt(m.st.Dist)
		return congest.BroadcastAll(ctx, nbrMsg{Label: m.st.Label, Dist: m.st.Dist}, bits), false
	}

	for _, msg := range inbox {
		switch p := msg.Payload.(type) {
		case nbrMsg:
			if p.Label != m.st.Label {
				if w, ok := ctx.EdgeWeight(msg.From); ok {
					u, v := ctx.ID(), msg.From
					if u > v {
						u, v = v, u
					}
					cand := candMsg{Has: true, U: u, V: v, Key: m.keys.key(w)}
					if better(cand, m.best) {
						m.best = cand
					}
				}
			} else if isTreeNbr(m.st.TreeNbrs, msg.From) {
				switch p.Dist {
				case m.st.Dist - 1:
					m.parent = msg.From
				case m.st.Dist + 1:
					m.children++
				}
			}
		case candMsg:
			m.received++
			if better(p, m.best) {
				m.best = p
			}
		}
	}

	if round == 2 {
		m.oriented = true
	}

	var out []congest.Message
	if m.oriented && !m.finished && m.received == m.children {
		m.finished = true
		if m.st.Label == ctx.ID() {
			ctx.SetOutput(moeOutput{Has: m.best.Has, U: m.best.U, V: m.best.V})
		} else {
			out = append(out, congest.NewMessage(m.parent, m.best, m.candBits(n, m.best)))
		}
	}
	return out, m.finished
}

// traceEv is the accounting-visible view of one traced message. The payload
// representation intentionally differs between the two programs, so Kind,
// the words and Payload are excluded from the comparison.
type traceEv struct {
	Round, From, To, Bits int
	Quantum               bool
}

func runStageTraced(t *testing.T, topo congest.Topology, inputs map[int]any, factory congest.NodeFactory, workers int) (*congest.Result, []traceEv) {
	t.Helper()
	nw, err := congest.NewNetwork(topo, 128)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetSeed(9)
	for v, in := range inputs {
		nw.SetInput(v, in)
	}
	var evs []traceEv
	res, err := nw.Run(factory, congest.Options{
		MaxRounds: topo.N() + 8,
		Workers:   workers,
		Trace: func(round int, m congest.Message) {
			evs = append(evs, traceEv{round, m.From, m.To, m.Bits, m.Quantum})
		},
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res, evs
}

func comparePrograms(t *testing.T, name string, topo congest.Topology, inputs map[int]any, word, boxed congest.NodeFactory) {
	t.Helper()
	for _, workers := range []int{0, 1, 4} {
		wordRes, wordEvs := runStageTraced(t, topo, inputs, word, workers)
		boxedRes, boxedEvs := runStageTraced(t, topo, inputs, boxed, workers)
		if !reflect.DeepEqual(wordRes, boxedRes) {
			t.Errorf("%s workers=%d: results differ\n word:  %+v\n boxed: %+v", name, workers, wordRes, boxedRes)
		}
		if !reflect.DeepEqual(wordEvs, boxedEvs) {
			t.Errorf("%s workers=%d: trace streams differ (%d vs %d events)", name, workers, len(wordEvs), len(boxedEvs))
		}
	}
}

// moeFixture builds a weighted connected graph plus a mid-Borůvka forest of
// chosen edges: a greedy union-find spanning forest with every fourth tree
// edge dropped, so several multi-node fragments coexist with singletons and
// both stages carry non-trivial traffic.
func moeFixture(t *testing.T) (*graph.Graph, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	base := graph.RandomConnectedGraph(22, 0.18, rng)
	g, err := graph.AssignRandomWeights(base, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	chosen := graph.NewEdgeSet()
	accepted := 0
	for _, e := range g.Edges() {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		accepted++
		if accepted%4 == 0 {
			continue // dropped: leaves a fragment boundary here
		}
		chosen.Add(e.U, e.V)
	}
	return g, treeAdjacency(g, chosen)
}

func TestFragmentStageMatchesBoxed(t *testing.T) {
	g, treeAdj := moeFixture(t)
	inputs := make(map[int]any, g.N())
	for v := range treeAdj {
		inputs[v] = fragInput{TreeNbrs: treeAdj[v]}
	}
	comparePrograms(t, "fragments", g, inputs,
		func(*congest.Context) congest.Node { return &fragNode{} },
		func(*congest.Context) congest.Node { return &boxedFragNode{} })
}

func TestMOEStageMatchesBoxed(t *testing.T) {
	g, treeAdj := moeFixture(t)
	fragInputs := make(map[int]any, g.N())
	for v := range treeAdj {
		fragInputs[v] = fragInput{TreeNbrs: treeAdj[v]}
	}
	// Fragment states from a boxed labelling run feed both moe programs.
	res, _ := runStageTraced(t, g, fragInputs, func(*congest.Context) congest.Node { return &boxedFragNode{} }, 0)
	moeInputs := make(map[int]any, g.N())
	for v := 0; v < g.N(); v++ {
		moeInputs[v] = res.Outputs[v]
	}
	for name, keys := range map[string]keyFunc{"exact": exactKeys(), "approx": approxKeys(2)} {
		word := func(ctx *congest.Context) congest.Node {
			st, _ := ctx.Input().(fragState)
			return &moeNode{st: st, keys: keys, parent: -1}
		}
		boxed := func(ctx *congest.Context) congest.Node {
			st, _ := ctx.Input().(fragState)
			return &boxedMoeNode{st: st, keys: keys, parent: -1}
		}
		comparePrograms(t, "moe/"+name, g, moeInputs, word, boxed)
	}
}
