// Package mst implements distributed minimum spanning tree construction in
// the CONGEST model, executed through the engine.Runner abstraction: a
// Borůvka-style algorithm in which fragments repeatedly and simultaneously
// add their minimum-weight outgoing edges, with all coordination done by
// O(log n + log W)-bit messages.
//
// The α-approximate variant (Config.Alpha > 1) is the rounding technique the
// paper's Theorem 3.8 / Figure 3 discussion is about: every weight is
// rounded up to the nearest power of α before the algorithm runs, so
// messages carry a small weight-class index instead of a full weight word
// and the resulting tree weighs at most α times the optimum.
package mst

import (
	"errors"
	"fmt"
	"math"

	"qdc/internal/congest"
	"qdc/internal/dist/engine"
	"qdc/internal/graph"
)

// Errors reported by Run.
var (
	// ErrBadInput reports a nil runner or graph.
	ErrBadInput = errors.New("mst: nil runner or graph")
	// ErrBadAlpha reports an approximation factor below 1.
	ErrBadAlpha = errors.New("mst: alpha must be 0 (exact) or >= 1")
	// ErrBandwidth reports a runner whose per-round budget cannot carry one
	// outgoing-edge candidate message.
	ErrBandwidth = errors.New("mst: bandwidth too small")
)

// Config selects between the exact and the α-approximate algorithm.
type Config struct {
	// Alpha is the approximation factor. Zero or one selects the exact
	// algorithm; a value above one rounds every weight up to the nearest
	// power of Alpha, which guarantees a tree of weight at most Alpha times
	// the optimum while shrinking every weight message to a class index.
	Alpha float64
}

// Result is the outcome of one distributed MST construction.
type Result struct {
	// Tree is the constructed spanning forest, with original weights.
	Tree []graph.Edge
	// OriginalWeight is the total original weight of Tree (the quantity the
	// α-approximation guarantee is stated about).
	OriginalWeight float64
	// Stats is the communication cost of the construction on its runner.
	Stats engine.Stats
}

// keyFunc maps an edge weight to the comparison key the algorithm uses and
// prices the transmission of one key.
type keyFunc struct {
	key     func(w float64) float64
	keyBits func(key float64) int
}

func exactKeys() keyFunc {
	return keyFunc{
		key:     func(w float64) float64 { return w },
		keyBits: func(float64) int { return congest.BitsForWeight },
	}
}

// approxKeys rounds weights up to powers of alpha: the key is the class
// index ⌈log_α w⌉, an O(log log_α W)-bit value (plus a sign bit — weights
// below 1 are legal and map to negative classes; collapsing them would
// break the α-approximation guarantee).
func approxKeys(alpha float64) keyFunc {
	return keyFunc{
		key: func(w float64) float64 {
			return math.Ceil(math.Log(w)/math.Log(alpha) - 1e-9)
		},
		keyBits: func(key float64) int {
			return congest.BitsForInt(int(key)) + congest.BitsForBool
		},
	}
}

// Run constructs an MST (or spanning forest, if g is disconnected) of g on
// the given runner. Phases of the Borůvka schedule are orchestrated from the
// caller's side, but every phase is a genuine CONGEST execution: fragment
// labels and leader distances propagate along chosen edges, outgoing-edge
// candidates are convergecast along fragment trees, and only the fragment
// leaders announce merges.
func Run(r engine.Runner, g *graph.Graph, cfg Config) (*Result, error) {
	if r == nil || g == nil {
		return nil, ErrBadInput
	}
	if g.N() != r.Size() {
		return nil, fmt.Errorf("%w: graph has %d nodes but runner has %d", ErrBadInput, g.N(), r.Size())
	}
	if cfg.Alpha != 0 && cfg.Alpha < 1 {
		return nil, fmt.Errorf("%w: got %g", ErrBadAlpha, cfg.Alpha)
	}
	keys := exactKeys()
	if cfg.Alpha > 1 {
		keys = approxKeys(cfg.Alpha)
	}
	if need := requiredBandwidth(g, keys); r.Bandwidth() < need {
		return nil, fmt.Errorf("%w: candidate messages need %d bits per round but bandwidth is %d",
			ErrBandwidth, need, r.Bandwidth())
	}

	before := r.Stats()
	n := g.N()
	chosen := graph.NewEdgeSet()
	// Fragments at least halve every phase, so ⌈log₂ n⌉ phases suffice.
	maxPhases := 2
	for m := 1; m < n; m *= 2 {
		maxPhases++
	}

	for phase := 0; phase < maxPhases; phase++ {
		frag, err := runFragments(r, treeAdjacency(g, chosen))
		if err != nil {
			return nil, err
		}
		moes, err := runMOE(r, frag, keys)
		if err != nil {
			return nil, err
		}
		added := false
		for _, e := range moes {
			if !chosen.Contains(e[0], e[1]) {
				if _, ok := g.Weight(e[0], e[1]); !ok {
					return nil, fmt.Errorf("mst: leader announced edge (%d,%d) outside the graph", e[0], e[1])
				}
				chosen.Add(e[0], e[1])
				added = true
			}
		}
		if !added {
			break
		}
	}

	res := &Result{Stats: r.Stats().Sub(before)}
	for _, e := range g.Edges() {
		if chosen.Contains(e.U, e.V) {
			res.Tree = append(res.Tree, e)
			res.OriginalWeight += e.Weight
		}
	}
	return res, nil
}

// requiredBandwidth returns the bit budget the largest message of the
// algorithm needs on g: a convergecast candidate carrying two IDs and the
// widest edge key (exact keys are full weight words, class keys a few bits).
func requiredBandwidth(g *graph.Graph, keys keyFunc) int {
	n := g.N()
	maxKey := 1
	for _, e := range g.Edges() {
		if b := keys.keyBits(keys.key(e.Weight)); b > maxKey {
			maxKey = b
		}
	}
	cand := tagBits + congest.BitsForBool + 2*congest.BitsForID(n) + maxKey
	frag := tagBits + congest.BitsForID(n) + congest.BitsForInt(n)
	if frag > cand {
		return frag
	}
	return cand
}

// treeAdjacency returns, per node, its neighbours along the chosen edges.
func treeAdjacency(g *graph.Graph, chosen *graph.EdgeSet) [][]int {
	adj := make([][]int, g.N())
	for _, p := range chosen.Pairs() {
		adj[p[0]] = append(adj[p[0]], p[1])
		adj[p[1]] = append(adj[p[1]], p[0])
	}
	return adj
}

const tagBits = engine.TagBits

// Word-encoded message kinds of the two stages. Every kind charges the same
// bits as the boxed struct it replaced, so the accounting of both stages is
// unchanged by the migration.
const (
	// kindFrag propagates (label, distance-from-leader): W0 label, W1 dist.
	kindFrag uint8 = 1
	// kindNbr announces a node's fragment label and leader distance:
	// W0 label, W1 dist.
	kindNbr uint8 = 2
	// kindCand convergecasts an outgoing-edge candidate: W0 packs (U,V),
	// W1 is the comparison key as float64 bits.
	kindCand uint8 = 3
	// kindCandNone is an empty candidate (the Has=false case); both words
	// are zero and charge no ID/key bits.
	kindCandNone uint8 = 4
)

// fragState is a node's view of its fragment after the labelling stage.
type fragState struct {
	Label    int
	Dist     int
	TreeNbrs []int
}

// fragInput is the per-node input of the fragment-labelling stage.
type fragInput struct{ TreeNbrs []int }

// fragMsg propagates (label, distance-from-leader) along chosen edges.
type fragMsg struct{ Label, Dist int }

// fragNode floods the minimum node ID of its fragment together with the
// tree distance to that leader, as kindFrag word messages. Chosen edges
// always form a forest, so the distance converges to the unique tree
// distance within n rounds.
type fragNode struct {
	treeNbrs []int
	label    int
	dist     int
	sent     fragMsg
	outbox   []congest.Message
}

func (f *fragNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(fragInput)
	f.treeNbrs = in.TreeNbrs
	f.label = ctx.ID()
	f.dist = 0
	f.sent = fragMsg{Label: -1}
}

func (f *fragNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	for i := range inbox {
		if inbox[i].Kind == kindFrag {
			p := fragMsg{Label: inbox[i].Int0(), Dist: inbox[i].Int1()}
			if p.Label < f.label || (p.Label == f.label && p.Dist+1 < f.dist) {
				f.label = p.Label
				f.dist = p.Dist + 1
			}
		}
	}
	n := ctx.N()
	if round > n {
		ctx.SetOutput(fragState{Label: f.label, Dist: f.dist, TreeNbrs: f.treeNbrs})
		return nil, true
	}
	if cur := (fragMsg{Label: f.label, Dist: f.dist}); cur != f.sent {
		f.sent = cur
		bits := tagBits + congest.BitsForID(n) + congest.BitsForInt(f.dist)
		f.outbox = congest.BroadcastWordsInto(f.outbox[:0], f.treeNbrs, kindFrag, uint64(cur.Label), uint64(cur.Dist), bits)
		return f.outbox, false
	}
	return nil, false
}

func runFragments(r engine.Runner, treeAdj [][]int) ([]fragState, error) {
	inputs := make([]fragInput, len(treeAdj))
	for v := range treeAdj {
		inputs[v] = fragInput{TreeNbrs: treeAdj[v]}
	}
	factory := func(*congest.Context) congest.Node { return &fragNode{} }
	return engine.RunUniform[fragInput, fragState](r, inputs, factory, r.Size()+8, "fragment state")
}

// In-memory values of the minimum-outgoing-edge stage. On the wire they
// travel word-encoded (kindNbr, kindCand/kindCandNone); the structs remain
// the comparison and state domain of the node program.
type (
	// nbrMsg announces a node's fragment label and leader distance to all
	// its neighbours (the distance only matters to tree neighbours).
	nbrMsg struct{ Label, Dist int }
	// candMsg convergecasts the best outgoing-edge candidate of a subtree.
	candMsg struct {
		Has  bool
		U, V int
		Key  float64
	}
)

// encodeCand splits a candidate into its message kind and payload words; an
// empty candidate is its own kind so it carries (and charges) no fields.
func encodeCand(c candMsg) (kind uint8, w0, w1 uint64) {
	if !c.Has {
		return kindCandNone, 0, 0
	}
	return kindCand, congest.PackIDs(c.U, c.V), math.Float64bits(c.Key)
}

func decodeCand(kind uint8, w0, w1 uint64) candMsg {
	if kind != kindCand {
		return candMsg{}
	}
	u, v := congest.UnpackIDs(w0)
	return candMsg{Has: true, U: u, V: v, Key: math.Float64frombits(w1)}
}

// better reports whether a beats b under the strict total edge order
// (key, u, v) — the tie-break that guarantees simultaneous fragment merges
// never close a cycle.
func better(a, b candMsg) bool {
	if !a.Has || !b.Has {
		return a.Has && !b.Has
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// moeOutput is a fragment leader's announcement.
type moeOutput struct {
	Has  bool
	U, V int
}

// moeNode finds its fragment's minimum outgoing edge: round 1 exchanges
// fragment labels and leader distances with every neighbour, round 2 fixes
// the fragment-tree orientation (the parent is the unique tree neighbour
// closer to the leader) together with the best local outgoing edge, and an
// event-driven convergecast then delivers the fragment-wide minimum to the
// leader, who announces it as the node output.
type moeNode struct {
	st   fragState
	keys keyFunc

	parent   int
	children int
	best     candMsg
	received int
	oriented bool
	finished bool
}

func (m *moeNode) Init(*congest.Context) {}

func (m *moeNode) candBits(n int, c candMsg) int {
	bits := tagBits + congest.BitsForBool
	if c.Has {
		bits += 2*congest.BitsForID(n) + m.keys.keyBits(c.Key)
	}
	return bits
}

func (m *moeNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	n := ctx.N()
	if round == 1 {
		bits := tagBits + congest.BitsForID(n) + congest.BitsForInt(m.st.Dist)
		return congest.BroadcastAllWords(ctx, kindNbr, uint64(m.st.Label), uint64(m.st.Dist), bits), false
	}

	for i := range inbox {
		msg := &inbox[i]
		switch msg.Kind {
		case kindNbr:
			p := nbrMsg{Label: msg.Int0(), Dist: msg.Int1()}
			if p.Label != m.st.Label {
				if w, ok := ctx.EdgeWeight(msg.From); ok {
					u, v := ctx.ID(), msg.From
					if u > v {
						u, v = v, u
					}
					cand := candMsg{Has: true, U: u, V: v, Key: m.keys.key(w)}
					if better(cand, m.best) {
						m.best = cand
					}
				}
			} else if isTreeNbr(m.st.TreeNbrs, msg.From) {
				switch p.Dist {
				case m.st.Dist - 1:
					m.parent = msg.From
				case m.st.Dist + 1:
					m.children++
				}
			}
		case kindCand, kindCandNone:
			m.received++
			if p := decodeCand(msg.Kind, msg.W0, msg.W1); better(p, m.best) {
				m.best = p
			}
		}
	}

	if round == 2 {
		m.oriented = true
	}

	var out []congest.Message
	if m.oriented && !m.finished && m.received == m.children {
		m.finished = true
		if m.st.Label == ctx.ID() {
			ctx.SetOutput(moeOutput{Has: m.best.Has, U: m.best.U, V: m.best.V})
		} else {
			kind, w0, w1 := encodeCand(m.best)
			out = append(out, congest.NewWordMessage(m.parent, kind, w0, w1, m.candBits(n, m.best)))
		}
	}
	return out, m.finished
}

func isTreeNbr(nbrs []int, v int) bool {
	for _, u := range nbrs {
		if u == v {
			return true
		}
	}
	return false
}

// runMOE executes one minimum-outgoing-edge stage and returns the edges the
// fragment leaders announced.
func runMOE(r engine.Runner, frag []fragState, keys keyFunc) ([][2]int, error) {
	n := r.Size()
	inputs := engine.UniformInputs(frag)
	factory := func(ctx *congest.Context) congest.Node {
		st, _ := ctx.Input().(fragState)
		return &moeNode{st: st, keys: keys, parent: -1}
	}
	res, err := r.RunStage(factory, inputs, n+8)
	if err != nil {
		return nil, err
	}
	var moes [][2]int
	for v := 0; v < n; v++ {
		if out, ok := res.Outputs[v].(moeOutput); ok && out.Has {
			moes = append(moes, [2]int{out.U, out.V})
		}
	}
	return moes, nil
}
