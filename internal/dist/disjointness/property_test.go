package disjointness_test

import (
	"math"
	"math/rand"
	"testing"

	"qdc/internal/bounds"
	"qdc/internal/dist/disjointness"
	"qdc/internal/dist/engine"
	"qdc/internal/graph"
	"qdc/internal/quantum"
)

// TestFormulasMatchBounds pins the integer cost formulas of this package to
// the closed-form float formulas of internal/bounds across a randomized
// (b, B, D) grid: the two are independent implementations of the same
// Example 1.1 expressions and must agree exactly.
func TestFormulasMatchBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		b := 1 + rng.Intn(1<<14)
		bw := 1 + rng.Intn(256)
		d := 1 + rng.Intn(512)

		if got, want := disjointness.ClassicalRounds(b, bw, d), bounds.DisjointnessClassicalRounds(float64(b), float64(bw), float64(d)); float64(got) != want {
			t.Fatalf("ClassicalRounds(%d,%d,%d) = %d, bounds formula = %g", b, bw, d, got, want)
		}
		if got, want := disjointness.QuantumRounds(b, d), bounds.DisjointnessQuantumRounds(float64(b), float64(d)); float64(got) != want {
			t.Fatalf("QuantumRounds(%d,%d) = %d, bounds formula = %g", b, d, got, want)
		}
		got := disjointness.CrossoverDiameter(b, bw)
		want := bounds.DisjointnessCrossoverDiameter(float64(b), float64(bw))
		if math.IsInf(want, 1) {
			if got != math.MaxInt32 {
				t.Fatalf("CrossoverDiameter(%d,%d) = %d, bounds formula is +Inf", b, bw, got)
			}
		} else if float64(got) != want {
			t.Fatalf("CrossoverDiameter(%d,%d) = %d, bounds formula = %g", b, bw, got, want)
		}
		// QuantumRounds must also stay the shared Grover formula.
		if disjointness.QuantumRounds(b, d) != quantum.GroverRounds(b, d) {
			t.Fatalf("QuantumRounds(%d,%d) != quantum.GroverRounds", b, d)
		}
	}
}

// TestCrossoverIsTheTippingPoint checks the defining property of the
// crossover diameter on a randomized grid: at D* the classical formula is
// at least as fast as the quantum one, and at D*−1 it is strictly slower.
func TestCrossoverIsTheTippingPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := 2 + rng.Intn(1<<14)
		bw := 1 + rng.Intn(256)
		dstar := disjointness.CrossoverDiameter(b, bw)
		if dstar == math.MaxInt32 {
			continue // ⌈√b⌉ <= 1 cannot happen for b >= 2
		}
		if c, q := disjointness.ClassicalRounds(b, bw, dstar), disjointness.QuantumRounds(b, dstar); c > q {
			t.Fatalf("b=%d B=%d: classical %d > quantum %d at the crossover D*=%d", b, bw, c, q, dstar)
		}
		if dstar > 1 {
			d := dstar - 1
			if c, q := disjointness.ClassicalRounds(b, bw, d), disjointness.QuantumRounds(b, d); q >= c {
				t.Fatalf("b=%d B=%d: quantum %d >= classical %d below the crossover (D=%d)", b, bw, q, c, d)
			}
		}
	}
}

// TestMeasuredWinnerMatchesCrossoverSide runs the real pipelined protocol
// under engine.NewLocal against the same execution under engine.NewQuantum
// on deterministic paths and checks that the cheaper measured backend is
// the side disjointness.CrossoverDiameter predicts.
//
// The measured classical protocol pays the formula's Θ(D + b/B) plus at
// most MeasuredOverhead(D) extra rounds (the verdict's return trip), so the
// prediction is exact on the quantum side of the crossover and guaranteed
// on the classical side once the formula margin exceeds that slack; the
// handful of in-between diameters are skipped as near-crossover.
func TestMeasuredWinnerMatchesCrossoverSide(t *testing.T) {
	quantumSide, classicalSide := 0, 0
	for _, bw := range []int{1, 2, 4, 8} {
		b := 8 * bw
		dstar := disjointness.CrossoverDiameter(b, bw)
		for _, d := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32} {
			nodes := d + 1
			x, y := deterministicInputs(b, int64(100*bw+d))

			cres, err := disjointness.RunClassical(nodes, bw, x, y, 1)
			if err != nil {
				t.Fatalf("B=%d D=%d classical: %v", bw, d, err)
			}
			qr, err := engine.NewQuantum(graph.Path(nodes), bw, 1)
			if err != nil {
				t.Fatal(err)
			}
			qres, err := disjointness.RunOn(qr, x, y)
			if err != nil {
				t.Fatalf("B=%d D=%d quantum: %v", bw, d, err)
			}
			if cres.Disjoint != qres.Disjoint {
				t.Fatalf("B=%d D=%d: verdicts diverge between backends", bw, d)
			}
			// The quantum backend's measured rounds are exactly the paper's
			// O(√b·D) formula: the bottleneck edge carries b bits.
			if want := disjointness.QuantumRounds(b, d); qres.Rounds != want {
				t.Fatalf("B=%d D=%d: quantum backend measured %d rounds, want %d", bw, d, qres.Rounds, want)
			}
			// The slack bound everything decisive rests on: the measured
			// classical protocol stays within MeasuredOverhead of the formula.
			formula := disjointness.ClassicalRounds(b, bw, d)
			if cres.Rounds < formula || cres.Rounds > formula+disjointness.MeasuredOverhead(d) {
				t.Fatalf("B=%d D=%d: classical measured %d rounds, outside [%d, %d+MeasuredOverhead(%d)]",
					bw, d, cres.Rounds, formula, formula, d)
			}

			predictQuantum := d < dstar
			decisiveClassical := disjointness.QuantumRounds(b, d) >= disjointness.ClassicalRounds(b, bw, d)+disjointness.MeasuredOverhead(d)
			switch {
			case predictQuantum:
				if qres.Rounds >= cres.Rounds {
					t.Errorf("B=%d D=%d (< D*=%d): quantum measured %d rounds, classical %d — prediction says quantum wins",
						bw, d, dstar, qres.Rounds, cres.Rounds)
				}
				quantumSide++
			case decisiveClassical:
				if cres.Rounds > qres.Rounds {
					t.Errorf("B=%d D=%d (>= D*=%d): classical measured %d rounds, quantum %d — prediction says classical wins",
						bw, d, dstar, cres.Rounds, qres.Rounds)
				}
				classicalSide++
			}
		}
	}
	if quantumSide == 0 || classicalSide == 0 {
		t.Fatalf("sweep did not cover both crossover sides: %d quantum-side, %d classical-side points", quantumSide, classicalSide)
	}
}

// deterministicInputs draws two sparse b-bit sets from a fixed seed.
func deterministicInputs(b int, seed int64) (x, y []int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]int, b)
	y = make([]int, b)
	for i := 0; i < b; i++ {
		if rng.Float64() < 0.05 {
			x[i] = 1
		}
		if rng.Float64() < 0.05 {
			y[i] = 1
		}
	}
	return x, y
}
