package disjointness

import (
	"math/rand"
	"reflect"
	"testing"

	"qdc/internal/congest"
	"qdc/internal/graph"
)

// Word-encoding equivalence pin: the migrated pipelined protocol must
// produce a Result bit-for-bit identical to the pre-refactor boxed
// implementation — same rounds, bits, outputs and trace stream — on
// sequential and parallel merges alike, across bandwidths that exercise
// single-bit chunks (B=1), word-packed chunks (B=32, B=128) and the boxed
// fallback for chunks wider than two payload words (B=200). The boxed*
// types below are the pre-refactor program, kept verbatim.

type boxedAnswerMsg struct{ Disjoint bool }

type boxedPathNode struct {
	x, y     []int
	sent     int
	received []int
	answered bool
}

func (p *boxedPathNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(pathInput)
	p.x, p.y = in.X, in.Y
}

func (p *boxedPathNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	id, last := ctx.ID(), ctx.N()-1
	var out []congest.Message

	for _, m := range inbox {
		switch payload := m.Payload.(type) {
		case chunkMsg:
			if id == last {
				p.received = append(p.received, payload.Bits...)
			} else {
				out = append(out, congest.NewMessage(id+1, payload, len(payload.Bits)))
			}
		case boxedAnswerMsg:
			p.answered = true
			ctx.SetOutput(payload.Disjoint)
			if id > 0 {
				out = append(out, congest.NewMessage(id-1, payload, congest.BitsForBool))
			}
		}
	}

	if id == 0 && p.sent < len(p.x) {
		hi := p.sent + ctx.Bandwidth()
		if hi > len(p.x) {
			hi = len(p.x)
		}
		chunk := p.x[p.sent:hi]
		p.sent = hi
		out = append(out, congest.NewMessage(1, chunkMsg{Bits: chunk}, len(chunk)))
	}

	if id == last && !p.answered && len(p.received) >= len(p.y) && len(p.y) > 0 {
		disjoint := true
		for i, yi := range p.y {
			if yi == 1 && p.received[i] == 1 {
				disjoint = false
				break
			}
		}
		p.answered = true
		ctx.SetOutput(disjoint)
		out = append(out, congest.NewMessage(id-1, boxedAnswerMsg{Disjoint: disjoint}, congest.BitsForBool))
	}

	return out, p.answered
}

// traceEv is the accounting-visible view of one traced message. The payload
// representation intentionally differs between the two programs, so Kind,
// the words and Payload are excluded from the comparison.
type traceEv struct {
	Round, From, To, Bits int
	Quantum               bool
}

func runPathTraced(t *testing.T, nodes, bandwidth int, x, y []int, factory congest.NodeFactory, workers int) (*congest.Result, []traceEv) {
	t.Helper()
	nw, err := congest.NewNetwork(graph.Path(nodes), bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetSeed(13)
	nw.SetInput(0, pathInput{X: x})
	nw.SetInput(nodes-1, pathInput{Y: y})
	chunks := (len(x) + bandwidth - 1) / bandwidth
	var evs []traceEv
	res, err := nw.Run(factory, congest.Options{
		MaxRounds: chunks + 2*nodes + 16,
		Workers:   workers,
		Trace: func(round int, m congest.Message) {
			evs = append(evs, traceEv{round, m.From, m.To, m.Bits, m.Quantum})
		},
	})
	if err != nil {
		t.Fatalf("B=%d workers=%d: %v", bandwidth, workers, err)
	}
	return res, evs
}

func TestWordChunksMatchBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const b = 300
	x, y := make([]int, b), make([]int, b)
	for i := 0; i < b; i++ {
		x[i] = rng.Intn(2)
		// Sparse Y keeps the disjoint verdict input-dependent, not constant.
		if rng.Intn(8) == 0 {
			y[i] = 1
		}
	}
	const nodes = 9
	for _, bandwidth := range []int{1, 32, 128, 200} {
		for _, workers := range []int{0, 1, 4} {
			wordRes, wordEvs := runPathTraced(t, nodes, bandwidth, x, y, func(*congest.Context) congest.Node { return &pathNode{} }, workers)
			boxedRes, boxedEvs := runPathTraced(t, nodes, bandwidth, x, y, func(*congest.Context) congest.Node { return &boxedPathNode{} }, workers)
			if !reflect.DeepEqual(wordRes, boxedRes) {
				t.Errorf("B=%d workers=%d: results differ\n word:  %+v\n boxed: %+v", bandwidth, workers, wordRes, boxedRes)
			}
			if !reflect.DeepEqual(wordEvs, boxedEvs) {
				t.Errorf("B=%d workers=%d: trace streams differ (%d vs %d events)", bandwidth, workers, len(wordEvs), len(boxedEvs))
			}
		}
	}
}
