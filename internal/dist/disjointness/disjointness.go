// Package disjointness reproduces Example 1.1 of the paper: two nodes at
// hop distance D in a CONGEST(B) network hold b-bit sets X and Y and want to
// decide whether X ∩ Y = ∅. Classically Θ(D + b/B) rounds are necessary and
// sufficient (pipeline the bits along the path); the distributed-Grover
// protocol needs O(√b · D) rounds, so quantum communication wins exactly
// when the distance is small compared with √b — the one problem family in
// the paper where a quantum speed-up does exist.
//
// The package provides the two cost formulas, the crossover diameter at
// which the classical protocol takes over, and RunClassical, the real
// pipelined protocol executed on a path network through engine.NewLocal.
package disjointness

import (
	"errors"
	"fmt"
	"math"

	"qdc/internal/congest"
	"qdc/internal/dist/engine"
	"qdc/internal/graph"
	"qdc/internal/quantum"
)

// ErrBadInput reports invalid protocol parameters.
var ErrBadInput = errors.New("disjointness: invalid parameters")

// ClassicalRounds is the Θ(D + b/B) round cost of the classical pipelined
// protocol for b-bit inputs over bandwidth-B links at hop distance D.
func ClassicalRounds(b, bandwidth, distance int) int {
	if b < 1 || bandwidth < 1 || distance < 1 {
		return 0
	}
	return distance + (b+bandwidth-1)/bandwidth
}

// QuantumRounds is the O(√b · D) round cost of the distributed Grover
// protocol: √b search iterations, each propagating its query across the
// distance D separating the two players. It is quantum.GroverRounds under
// its Example 1.1 name, and the formula engine.NewQuantum re-accounts the
// pipelined protocol with.
func QuantumRounds(b, distance int) int {
	return quantum.GroverRounds(b, distance)
}

// MeasuredOverhead bounds the rounds the executed pipelined protocol pays
// beyond the ClassicalRounds formula: the verdict's return trip across the
// distance separating the players plus the constant rounds that create and
// terminate it. Predictions made from the formulas are guaranteed against
// measured runs only once the formula margin exceeds this slack — the
// crossover report and the property tests both draw their "decisive" band
// from it.
func MeasuredOverhead(distance int) int {
	if distance < 0 {
		return 4
	}
	return distance + 4
}

// CrossoverDiameter returns the smallest distance D at which the classical
// protocol is at least as fast as the quantum one, i.e. the diameter beyond
// which the Example 1.1 speed-up disappears. For b <= 1 the quantum
// protocol never loses and the crossover is reported as math.MaxInt32.
func CrossoverDiameter(b, bandwidth int) int {
	if b < 1 || bandwidth < 1 {
		return 0
	}
	q := int(math.Ceil(math.Sqrt(float64(b))))
	if q <= 1 {
		return math.MaxInt32
	}
	c := (b + bandwidth - 1) / bandwidth
	// Smallest D with q·D >= D + c.
	return (c + q - 2) / (q - 1)
}

// Result is the outcome of one execution of the classical protocol.
type Result struct {
	// Disjoint reports whether the two sets are disjoint.
	Disjoint bool
	// Rounds is the measured CONGEST round count, Θ(D + b/B).
	Rounds int
	// Stats is the full communication accounting of the run.
	Stats engine.Stats
}

// Payloads of the pipelined protocol. Unlike the multi-payload stages of
// verify and mst, no engine.TagBits are charged: on a path the direction of
// travel already distinguishes the two message kinds (data flows rightwards,
// the answer leftwards), so a type tag would carry zero information — and
// full-bandwidth chunks leave no room for one at B = 1, the bandwidth
// Example 1.1 is stated at. (Message.Kind is simulator-local routing
// metadata, not wire content; the charged Bits are unchanged.)
//
// A chunk of at most 128 bits travels word-encoded, bit-packed into the two
// payload words with Message.Bits doubling as the chunk length; wider
// bandwidths fall back to the boxed chunkMsg. The answer is always a
// word-encoded flag.
type chunkMsg struct{ Bits []int } // boxed fallback for chunks wider than two words

const (
	kindChunk  uint8 = 1
	kindAnswer uint8 = 2
	// maxWordChunk is the widest chunk the two payload words can carry.
	maxWordChunk = 128
)

// packChunk bit-packs up to 128 protocol bits into two payload words; bit i
// of the chunk lands in bit i of W0 (i < 64) or bit i-64 of W1.
func packChunk(chunk []int) (w0, w1 uint64) {
	for i, b := range chunk {
		if b == 1 {
			if i < 64 {
				w0 |= 1 << uint(i)
			} else {
				w1 |= 1 << uint(i-64)
			}
		}
	}
	return w0, w1
}

// appendUnpacked appends the length-bit chunk packed in (w0, w1) to dst.
func appendUnpacked(dst []int, w0, w1 uint64, length int) []int {
	for i := 0; i < length; i++ {
		var bit uint64
		if i < 64 {
			bit = w0 >> uint(i) & 1
		} else {
			bit = w1 >> uint(i-64) & 1
		}
		dst = append(dst, int(bit))
	}
	return dst
}

// pathInput assigns the endpoint inputs.
type pathInput struct{ X, Y []int }

// pathNode runs the pipelined protocol: the left endpoint streams X in
// B-bit chunks, interior nodes forward the stream rightwards, the right
// endpoint reassembles X, intersects it with Y and floods the one-bit
// answer back; every node terminates once the answer passes through it.
type pathNode struct {
	x, y     []int
	sent     int
	received []int
	answered bool
	outbox   []congest.Message
}

func (p *pathNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(pathInput)
	p.x, p.y = in.X, in.Y
}

func (p *pathNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	id, last := ctx.ID(), ctx.N()-1
	out := p.outbox[:0]

	for i := range inbox {
		m := &inbox[i]
		switch {
		case m.Kind == kindChunk:
			if id == last {
				p.received = appendUnpacked(p.received, m.W0, m.W1, m.Bits)
			} else {
				// Forward the stream rightwards, one hop per round.
				out = congest.AppendWordMessage(out, id+1, kindChunk, m.W0, m.W1, m.Bits)
			}
		case m.Kind == kindAnswer:
			p.answered = true
			ctx.SetOutput(m.Bool0())
			if id > 0 {
				out = congest.AppendWordMessage(out, id-1, kindAnswer, m.W0, 0, congest.BitsForBool)
			}
		default:
			if payload, ok := m.Payload.(chunkMsg); ok {
				if id == last {
					p.received = append(p.received, payload.Bits...)
				} else {
					out = congest.AppendMessage(out, id+1, payload, len(payload.Bits))
				}
			}
		}
	}

	// Left endpoint: stream the next chunk of X.
	if id == 0 && p.sent < len(p.x) {
		hi := p.sent + ctx.Bandwidth()
		if hi > len(p.x) {
			hi = len(p.x)
		}
		chunk := p.x[p.sent:hi]
		p.sent = hi
		if len(chunk) <= maxWordChunk {
			w0, w1 := packChunk(chunk)
			out = congest.AppendWordMessage(out, 1, kindChunk, w0, w1, len(chunk))
		} else {
			out = congest.AppendMessage(out, 1, chunkMsg{Bits: chunk}, len(chunk))
		}
	}

	// Right endpoint: once X has fully arrived, decide and answer.
	if id == last && !p.answered && len(p.received) >= len(p.y) && len(p.y) > 0 {
		disjoint := true
		for i, yi := range p.y {
			if yi == 1 && p.received[i] == 1 {
				disjoint = false
				break
			}
		}
		p.answered = true
		ctx.SetOutput(disjoint)
		out = congest.AppendWordMessage(out, id-1, kindAnswer, congest.WordFromBool(disjoint), 0, congest.BitsForBool)
	}

	p.outbox = out
	return out, p.answered
}

// RunClassical executes the pipelined protocol on a fresh path of the given
// number of nodes: node 0 holds x, the node at the far end holds y, and the
// link bandwidth is B bits per round. It returns the network-wide verdict
// and the measured Θ(D + b/B) cost.
func RunClassical(nodes, bandwidth int, x, y []int, seed int64) (*Result, error) {
	if nodes < 2 || bandwidth < 1 {
		return nil, fmt.Errorf("%w: nodes=%d B=%d", ErrBadInput, nodes, bandwidth)
	}
	r, err := engine.NewLocal(graph.Path(nodes), bandwidth, seed)
	if err != nil {
		return nil, err
	}
	return RunOn(r, x, y)
}

// RunOn executes the pipelined protocol on an existing runner whose
// topology must be the path 0-1-...-(n-1): node 0 holds x and node n-1
// holds y. Running through a shared runner lets the experiment harness
// swap backends (local, parallel) while keeping the accounting a Stats
// delta attributable to this protocol alone. A non-path topology surfaces
// as a congest routing error.
func RunOn(r engine.Runner, x, y []int) (*Result, error) {
	if r == nil || len(x) < 1 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: |x|=%d |y|=%d", ErrBadInput, len(x), len(y))
	}
	for i := range x {
		if x[i]&^1 != 0 || y[i]&^1 != 0 {
			return nil, fmt.Errorf("%w: inputs must be 0/1 bit slices", ErrBadInput)
		}
	}
	nodes := r.Size()
	if nodes < 2 {
		return nil, fmt.Errorf("%w: runner has %d nodes", ErrBadInput, nodes)
	}
	inputs := map[int]any{
		0:         pathInput{X: x},
		nodes - 1: pathInput{Y: y},
	}
	chunks := (len(x) + r.Bandwidth() - 1) / r.Bandwidth()
	maxRounds := chunks + 2*nodes + 16
	before := r.Stats()
	res, err := r.RunStage(func(*congest.Context) congest.Node { return &pathNode{} }, inputs, maxRounds)
	if err != nil {
		return nil, err
	}
	verdict, ok := res.Outputs[0].(bool)
	if !ok {
		return nil, fmt.Errorf("disjointness: protocol produced no verdict")
	}
	stats := r.Stats().Sub(before)
	return &Result{Disjoint: verdict, Rounds: stats.Rounds, Stats: stats}, nil
}
