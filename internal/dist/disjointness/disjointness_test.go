package disjointness_test

import (
	"errors"
	"math/rand"
	"testing"

	"qdc/internal/dist/disjointness"
)

func TestCostFormulas(t *testing.T) {
	if got := disjointness.ClassicalRounds(1024, 1, 8); got != 1032 {
		t.Fatalf("ClassicalRounds(1024,1,8) = %d, want 1032", got)
	}
	if got := disjointness.ClassicalRounds(100, 32, 5); got != 5+4 {
		t.Fatalf("ClassicalRounds(100,32,5) = %d, want 9", got)
	}
	if got := disjointness.QuantumRounds(1024, 8); got != 32*8 {
		t.Fatalf("QuantumRounds(1024,8) = %d, want 256", got)
	}
	// Degenerate parameters yield 0, never a panic.
	if got := disjointness.CrossoverDiameter(1024, 0); got != 0 {
		t.Fatalf("CrossoverDiameter(1024,0) = %d, want 0", got)
	}
	if got := disjointness.CrossoverDiameter(-3, 1); got != 0 {
		t.Fatalf("CrossoverDiameter(-3,1) = %d, want 0", got)
	}
}

func TestCrossoverSeparatesRegimes(t *testing.T) {
	b, bandwidth := 1024, 1
	cross := disjointness.CrossoverDiameter(b, bandwidth)
	if cross <= 1 {
		t.Fatalf("crossover = %d", cross)
	}
	// Below the crossover quantum wins; at and beyond it classical does.
	if q, c := disjointness.QuantumRounds(b, cross-1), disjointness.ClassicalRounds(b, bandwidth, cross-1); q >= c {
		t.Fatalf("quantum should win just below the crossover: q=%d c=%d", q, c)
	}
	if q, c := disjointness.QuantumRounds(b, cross), disjointness.ClassicalRounds(b, bandwidth, cross); q < c {
		t.Fatalf("classical should win at the crossover: q=%d c=%d", q, c)
	}
}

func TestRunClassicalVerdicts(t *testing.T) {
	x := []int{1, 0, 1, 0, 1, 0, 0, 1}
	yDisjoint := []int{0, 1, 0, 1, 0, 1, 1, 0}
	yHit := []int{0, 1, 0, 1, 1, 0, 0, 0}

	res, err := disjointness.RunClassical(5, 2, x, yDisjoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Disjoint {
		t.Fatal("disjoint inputs reported as intersecting")
	}
	res2, err := disjointness.RunClassical(5, 2, x, yHit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Disjoint {
		t.Fatal("intersecting inputs reported as disjoint")
	}
}

// The measured round count of the real protocol matches the Θ(D + b/B)
// formula: pipelining the b bits over distance D plus the answer's way back
// costs between D + ⌈b/B⌉ and twice that (the formula counts one-way
// delivery; the run includes the return trip).
func TestRunClassicalMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ nodes, bandwidth, bits int }{
		{6, 4, 64},
		{9, 1, 128},
		{2, 8, 33},
		{17, 16, 1024},
	} {
		x := make([]int, tc.bits)
		y := make([]int, tc.bits)
		for i := range x {
			x[i] = rng.Intn(2)
			y[i] = 1 - x[i]
		}
		res, err := disjointness.RunClassical(tc.nodes, tc.bandwidth, x, y, 1)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if !res.Disjoint {
			t.Fatalf("%+v: complementary inputs must be disjoint", tc)
		}
		formula := disjointness.ClassicalRounds(tc.bits, tc.bandwidth, tc.nodes-1)
		if res.Rounds < formula || res.Rounds > 2*formula+4 {
			t.Fatalf("%+v: measured %d rounds, formula predicts Θ(%d)", tc, res.Rounds, formula)
		}
		if res.Stats.Bits < int64(tc.bits) {
			t.Fatalf("%+v: only %d bits on the wire for a %d-bit input", tc, res.Stats.Bits, tc.bits)
		}
	}
}

func TestRunClassicalValidation(t *testing.T) {
	x := []int{1, 0}
	for _, tc := range []struct {
		nodes, bandwidth int
		x, y             []int
	}{
		{1, 1, x, x},
		{3, 0, x, x},
		{3, 1, x, []int{1}},
		{3, 1, []int{}, []int{}},
		{3, 1, []int{2, 0}, x},
	} {
		if _, err := disjointness.RunClassical(tc.nodes, tc.bandwidth, tc.x, tc.y, 1); !errors.Is(err, disjointness.ErrBadInput) {
			t.Fatalf("%+v: err = %v, want ErrBadInput", tc, err)
		}
	}
}
