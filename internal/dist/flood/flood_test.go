package flood

import (
	"errors"
	"reflect"
	"testing"

	"qdc/internal/dist/engine"
	"qdc/internal/graph"
)

func TestFloodMatchesSequentialBFS(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		source int
	}{
		{"path16", graph.Path(16), 0},
		{"path16-mid", graph.Path(16), 7},
		{"grid6x4", graph.Grid(6, 4), 0},
		{"single", graph.Path(1), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.g.BFS(tc.source).Dist
			local, err := engine.NewLocal(tc.g, 64, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(local, tc.source)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Dist, want) {
				t.Fatalf("distances = %v, want %v", res.Dist, want)
			}
			if ecc := tc.g.Eccentricity(tc.source); res.Rounds != ecc+2 {
				t.Errorf("rounds = %d, want ecc+2 = %d", res.Rounds, ecc+2)
			}

			par, err := engine.NewParallel(tc.g, 64, 1)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := Run(par, tc.source)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pres, res) {
				t.Errorf("parallel result diverged:\nlocal %+v\npar   %+v", res, pres)
			}
		})
	}
}

func TestFloodBadSource(t *testing.T) {
	r, err := engine.NewLocal(graph.Path(4), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{-1, 4} {
		if _, err := Run(r, src); !errors.Is(err, ErrBadSource) {
			t.Errorf("source %d: err = %v, want ErrBadSource", src, err)
		}
	}
}

func TestFloodDisconnectedTimesOut(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	// Vertices 2 and 3 are unreachable; the wave can never terminate there.
	g.MustAddEdge(2, 3, 1)
	r, err := engine.NewLocal(g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(r, 0); err == nil {
		t.Fatal("expected a round-limit error on a disconnected topology")
	}
}
