// Package flood implements the BFS flooding primitive: a designated source
// announces itself, every node adopts the hop distance at which the
// announcement first reaches it, and the wave dies out after ecc(source)+O(1)
// rounds. Flooding is the minimal all-touch workload of the CONGEST model —
// every edge carries O(1) messages of O(log n) bits and the round count is
// exactly the distance metric — which makes it the scale workload of the
// experiment harness: it exercises the simulator's full per-round machinery
// on topologies far larger than the MST and verification sweeps can afford,
// and its output is checked against a sequential BFS in O(n + m) time.
package flood

import (
	"errors"
	"fmt"

	"qdc/internal/congest"
	"qdc/internal/dist/engine"
)

// ErrBadSource reports a source vertex outside the network.
var ErrBadSource = errors.New("flood: source out of range")

// Result is the outcome of one flood.
type Result struct {
	// Source is the vertex the wave started from.
	Source int
	// Dist[v] is the hop distance from Source to v, or -1 if the wave never
	// reached v (disconnected topologies time out instead — see Run).
	Dist []int
	// Rounds is the measured CONGEST round count, ecc(Source) + 2.
	Rounds int
	// Stats is the communication accounting of the run.
	Stats engine.Stats
}

// kindDist tags the protocol's only message, word-encoded: W0 is the
// sender's adopted distance. The wire size is unchanged from the old boxed
// encoding, so the migration is invisible to the accounting.
const kindDist uint8 = 1

func distBits(n int) int { return engine.TagBits + congest.BitsForID(n) }

// node is the flooding node program: adopt the first announced distance + 1,
// re-announce once, terminate.
type node struct {
	source bool
	dist   int
	outbox []congest.Message
	sent   bool
}

func (f *node) Init(ctx *congest.Context) {
	f.source, _ = ctx.Input().(bool)
	f.dist = -1
	if f.source {
		f.dist = 0
	}
}

func (f *node) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	if f.dist == -1 {
		for i := range inbox {
			if inbox[i].Kind == kindDist {
				f.dist = inbox[i].Int0() + 1
				break
			}
		}
	}
	if f.dist == -1 {
		return nil, false
	}
	if f.sent {
		ctx.SetOutput(f.dist)
		return nil, true
	}
	f.sent = true
	if f.outbox == nil {
		f.outbox = congest.BroadcastAllWords(ctx, kindDist, uint64(f.dist), 0, distBits(ctx.N()))
	}
	return f.outbox, false
}

// Run floods from source on the runner's network and returns every node's
// adopted hop distance. The topology must be connected: a node the wave
// cannot reach never terminates, so a disconnected network runs into the
// round limit (n+2 by default) and surfaces the backend's round-limit error.
func Run(r engine.Runner, source int) (*Result, error) {
	n := r.Size()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("%w: %d with n=%d", ErrBadSource, source, n)
	}
	before := r.Stats()
	res, err := r.RunStage(func(*congest.Context) congest.Node { return &node{} },
		map[int]any{source: true}, n+2)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Source: source,
		Dist:   make([]int, n),
		Rounds: res.Rounds,
		Stats:  r.Stats().Sub(before),
	}
	for v := 0; v < n; v++ {
		d, ok := res.Outputs[v].(int)
		if !ok {
			return nil, fmt.Errorf("flood: node %d produced no distance", v)
		}
		out.Dist[v] = d
	}
	return out, nil
}
