package flood

import (
	"testing"

	"qdc/internal/dist/engine"
	"qdc/internal/graph"
)

// TestFloodRunAllocsBounded gates the migrated word-encoded flood path: a
// full run allocates a small constant per node (node structs, one outbox per
// reached node, the output map) and nothing per message — word payloads never
// box. The bound is ~1.7x the measured ~7 allocs/node, so a regression that
// reintroduces per-message boxing or per-round churn (both scale with edges
// times rounds, not nodes) trips it immediately.
func TestFloodRunAllocsBounded(t *testing.T) {
	g := graph.Grid(24, 24)
	r, err := engine.NewLocal(g, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(r, 0); err != nil {
			t.Fatal(err)
		}
	})
	if perNode := allocs / float64(g.N()); perNode > 12 {
		t.Errorf("flood run allocates %.2f objects per node (%.0f total), want <= 12", perNode, allocs)
	}
}
