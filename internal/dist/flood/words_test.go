package flood

import (
	"math/rand"
	"reflect"
	"testing"

	"qdc/internal/congest"
	"qdc/internal/graph"
)

// The word-encoding equivalence pin: the migrated node program must produce
// a Result bit-for-bit identical to the pre-refactor boxed implementation —
// same rounds, bits, outputs and trace stream — on sequential and parallel
// merges alike. boxedDistMsg/boxedNode below are the pre-refactor program,
// kept verbatim.

type boxedDistMsg struct{ Dist int }

type boxedNode struct {
	source bool
	dist   int
	outbox []congest.Message
	sent   bool
}

func (f *boxedNode) Init(ctx *congest.Context) {
	f.source, _ = ctx.Input().(bool)
	f.dist = -1
	if f.source {
		f.dist = 0
	}
}

func (f *boxedNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	if f.dist == -1 {
		for i := range inbox {
			if m, ok := inbox[i].Payload.(boxedDistMsg); ok {
				f.dist = m.Dist + 1
				break
			}
		}
	}
	if f.dist == -1 {
		return nil, false
	}
	if f.sent {
		ctx.SetOutput(f.dist)
		return nil, true
	}
	f.sent = true
	if f.outbox == nil {
		f.outbox = congest.BroadcastAll(ctx, boxedDistMsg{Dist: f.dist}, distBits(ctx.N()))
	}
	return f.outbox, false
}

// traceEv is the accounting-visible view of one traced message: everything
// the trace consumers (simulation, quantum re-accounting) read. The payload
// representation intentionally differs between the two programs.
type traceEv struct {
	Round, From, To, Bits int
	Quantum               bool
}

func runTraced(t *testing.T, topo congest.Topology, factory congest.NodeFactory, workers int) (*congest.Result, []traceEv) {
	t.Helper()
	nw, err := congest.NewNetwork(topo, 64)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetSeed(11)
	nw.SetInput(0, true)
	var evs []traceEv
	res, err := nw.Run(factory, congest.Options{
		MaxRounds: topo.N() + 2,
		Workers:   workers,
		Trace: func(round int, m congest.Message) {
			evs = append(evs, traceEv{round, m.From, m.To, m.Bits, m.Quantum})
		},
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res, evs
}

func TestWordEncodingMatchesBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topos := map[string]congest.Topology{
		"grid":   graph.Grid(8, 9),
		"random": graph.RandomConnectedGraph(60, 0.08, rng),
	}
	for name, topo := range topos {
		for _, workers := range []int{0, 1, 4} {
			wordRes, wordEvs := runTraced(t, topo, func(*congest.Context) congest.Node { return &node{} }, workers)
			boxedRes, boxedEvs := runTraced(t, topo, func(*congest.Context) congest.Node { return &boxedNode{} }, workers)
			if !reflect.DeepEqual(wordRes, boxedRes) {
				t.Errorf("%s workers=%d: results differ\n word:  %+v\n boxed: %+v", name, workers, wordRes, boxedRes)
			}
			if !reflect.DeepEqual(wordEvs, boxedEvs) {
				t.Errorf("%s workers=%d: trace streams differ (%d vs %d events)", name, workers, len(wordEvs), len(boxedEvs))
			}
		}
	}
}
