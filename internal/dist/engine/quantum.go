package engine

import (
	"fmt"

	"qdc/internal/congest"
	"qdc/internal/quantum"
)

// Quantum is the Grover re-accounting backend of Example 1.1: stages execute
// classically on a congest.Network — so outputs, verdicts and termination
// are identical to Local — but their cost is re-accounted under the
// distributed-Grover protocol instead of the classical pipeline.
//
// The substitution rule is the one the paper applies to Set Disjointness: a
// stage that classically streams a b-bit input between two players at hop
// distance D (costing Θ(D + b/B) pipelined rounds) is replaced by ⌈√b⌉
// Grover iterations, each routing a (log b + 1)-qubit query register across
// the D hops, for ⌈√b⌉·D rounds (quantum.GroverRounds). The stream volume b
// is measured, not assumed: it is the largest total payload observed on any
// single directed edge during the classical execution — on a streaming
// stage the bottleneck edge carries the whole input exactly once. D is the
// diameter of the topology, computed at construction. A stage that sent no
// bits has nothing to search over and keeps its classical round count.
//
// Stats() reports the quantum-accounted cost (rounds = Grover rounds, bits =
// qubits on the wire, all of them counted in Stats.QuantumBits), which is
// what the experiment harness compares against the classical backends to
// measure the paper's crossover diameter; the observed classical cost of
// the same execution stays available through Report().
type Quantum struct {
	net      *congest.Network
	diameter int
	cancel   func() bool
	obs      StageObserver

	stats     Stats // quantum-accounted, returned by Stats()
	classical Stats // observed plain CONGEST cost of the same stages
	last      GroverStage
}

// GroverStage is the re-accounting of one stage under the Grover
// substitution.
type GroverStage struct {
	// StreamBits is the measured stream volume b: the largest total payload
	// carried by any single directed edge during the stage.
	StreamBits int
	// QueryQubits is the width of the routed query register, log₂ b + 1.
	QueryQubits int
	// ClassicalRounds is the observed round count of the classical
	// execution, Θ(D + b/B) for a pipelined stream.
	ClassicalRounds int
	// QuantumRounds is the re-accounted round count ⌈√b⌉·D (the classical
	// count unchanged when the stage sent no bits).
	QuantumRounds int
}

// NewQuantum returns a Runner executing stages on a fresh CONGEST network
// over the given topology under Grover re-accounting. A bandwidth <= 0
// selects congest.DefaultBandwidth.
func NewQuantum(topo congest.Topology, bandwidth int, seed int64) (*Quantum, error) {
	if topo == nil {
		return nil, ErrNilTopology
	}
	net, err := congest.NewNetwork(topo, bandwidth)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	net.SetSeed(seed)
	return &Quantum{net: net, diameter: topologyDiameter(topo)}, nil
}

// SetCancel installs a cancellation poll checked at every round boundary of
// subsequent stages; see congest.Options.Cancel.
func (q *Quantum) SetCancel(cancel func() bool) { q.cancel = cancel }

// SetObserver installs a per-stage observer for subsequent stages; nil
// removes it. The observer sees the *classical* execution's Result (the one
// whose per-round traffic actually exists) — the Grover re-accounting has no
// round-by-round trace, only the per-stage totals in Stats().
func (q *Quantum) SetObserver(obs StageObserver) { q.obs = obs }

// RunStage implements Runner. The stage runs classically (identical outputs
// to Local for the same topology, bandwidth and seed); its cost is folded
// into the quantum-accounted Stats via the Grover substitution.
func (q *Quantum) RunStage(factory congest.NodeFactory, inputs map[int]any, maxRounds int) (*congest.Result, error) {
	type directed struct{ from, to int }
	edgeBits := make(map[directed]int64)
	trace := func(round int, msg congest.Message) {
		edgeBits[directed{from: msg.From, to: msg.To}] += int64(msg.Bits)
	}
	res, err := runNetworkStage(q.net, &q.classical, q.obs, factory, inputs, congest.Options{MaxRounds: maxRounds, Trace: trace, Cancel: q.cancel})
	if res != nil {
		var stream int64
		for _, bits := range edgeBits {
			if bits > stream {
				stream = bits
			}
		}
		stage := GroverStage{StreamBits: int(stream), ClassicalRounds: res.Rounds}
		q.stats.Stages++
		if stream > 0 {
			stage.QueryQubits = quantum.GroverQueryQubits(stage.StreamBits)
			stage.QuantumRounds = quantum.GroverRounds(stage.StreamBits, q.diameter)
			qubits := int64(stage.QuantumRounds) * int64(stage.QueryQubits)
			q.stats.Messages += stage.QuantumRounds // one routed query register per round
			q.stats.Bits += qubits
			q.stats.QuantumBits += qubits
		} else {
			// Nothing to search over: the stage keeps its classical round
			// count and, having delivered no messages, is charged none.
			stage.QuantumRounds = res.Rounds
		}
		q.stats.Rounds += stage.QuantumRounds
		q.last = stage
	}
	return res, err
}

// topologyDiameter returns the largest hop distance between any two nodes.
// Every concrete topology (*graph.Graph) computes its own exact diameter;
// other implementations, and disconnected or empty topologies (for which
// the runners would hit the round limit anyway), report the node count as
// a conservative stand-in.
func topologyDiameter(topo congest.Topology) int {
	n := topo.N()
	if n < 2 {
		return 1
	}
	if g, ok := topo.(interface{ Diameter() int }); ok {
		if d := g.Diameter(); d >= 1 {
			return d
		}
	}
	return n
}

// Bandwidth implements Runner.
func (q *Quantum) Bandwidth() int { return q.net.Bandwidth() }

// Size implements Runner.
func (q *Quantum) Size() int { return q.net.Size() }

// Stats implements Runner: the quantum-accounted cost.
func (q *Quantum) Stats() Stats { return q.stats }

// Diameter returns the hop diameter used as the query-routing distance D.
func (q *Quantum) Diameter() int { return q.diameter }

// QuantumReport summarises a Grover-re-accounted execution for the
// experiment harness: both cost models of the same run, side by side.
type QuantumReport struct {
	// Quantum is the Grover-accounted cost (identical to Stats()).
	Quantum Stats
	// Classical is the observed plain CONGEST cost of the same stages.
	Classical Stats
	// Diameter is the query-routing distance D.
	Diameter int
	// LastStage is the re-accounting of the most recent stage.
	LastStage GroverStage
}

// Report returns the current summary.
func (q *Quantum) Report() QuantumReport {
	return QuantumReport{Quantum: q.stats, Classical: q.classical, Diameter: q.diameter, LastStage: q.last}
}

// Compile-time interface check.
var _ Runner = (*Quantum)(nil)
