package engine

import (
	"errors"
	"testing"

	"qdc/internal/congest"
	"qdc/internal/graph"
	"qdc/internal/quantum"
)

// streamNode is a minimal pipelined stream: node 0 pushes `total` bits
// rightwards in bandwidth-sized chunks, interior nodes forward, the last
// node swallows them; everyone terminates once the stream has drained.
type streamNode struct {
	total int
	sent  int
	idle  int
}

func (s *streamNode) Init(*congest.Context) {}

func (s *streamNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	id, last := ctx.ID(), ctx.N()-1
	var out []congest.Message
	for _, m := range inbox {
		if id != last {
			out = append(out, congest.NewMessage(id+1, m.Payload, m.Bits))
		}
	}
	if id == 0 && s.sent < s.total {
		chunk := ctx.Bandwidth()
		if s.total-s.sent < chunk {
			chunk = s.total - s.sent
		}
		s.sent += chunk
		out = append(out, congest.NewMessage(1, "chunk", chunk))
	}
	if len(out) > 0 {
		s.idle = 0
		return out, false
	}
	s.idle++
	return nil, s.idle > ctx.N()
}

func TestNewQuantumNilTopology(t *testing.T) {
	if _, err := NewQuantum(nil, 8, 1); !errors.Is(err, ErrNilTopology) {
		t.Fatalf("err = %v, want ErrNilTopology", err)
	}
}

func TestQuantumGroverReaccounting(t *testing.T) {
	const (
		nodes     = 9
		bandwidth = 4
		b         = 32
	)
	d := nodes - 1
	factory := func(*congest.Context) congest.Node { return &streamNode{total: b} }

	local, err := NewLocal(graph.Path(nodes), bandwidth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.RunStage(factory, nil, 0); err != nil {
		t.Fatal(err)
	}

	q, err := NewQuantum(graph.Path(nodes), bandwidth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Diameter() != d {
		t.Fatalf("Diameter = %d, want %d", q.Diameter(), d)
	}
	res, err := q.RunStage(factory, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("stage did not terminate")
	}

	rep := q.Report()
	// The classical execution is bit-for-bit the Local one.
	if rep.Classical != local.Stats() {
		t.Errorf("classical accounting diverged: %+v vs %+v", rep.Classical, local.Stats())
	}
	// Every edge of the path carries the whole b-bit stream once, so the
	// measured stream volume is exactly b and the quantum re-accounting is
	// the Grover formula.
	if rep.LastStage.StreamBits != b {
		t.Errorf("StreamBits = %d, want %d", rep.LastStage.StreamBits, b)
	}
	wantRounds := quantum.GroverRounds(b, d)
	if got := q.Stats().Rounds; got != wantRounds {
		t.Errorf("quantum rounds = %d, want GroverRounds(%d,%d) = %d", got, b, d, wantRounds)
	}
	wantBits := int64(wantRounds) * int64(quantum.GroverQueryQubits(b))
	if got := q.Stats(); got.Bits != wantBits || got.QuantumBits != wantBits {
		t.Errorf("quantum bits = %d/%d, want %d qubits", got.Bits, got.QuantumBits, wantBits)
	}
	if q.Stats().Stages != 1 || q.Stats().Messages != wantRounds {
		t.Errorf("stats = %+v, want one stage and one message per round", q.Stats())
	}
}

func TestQuantumSilentStageKeepsClassicalRounds(t *testing.T) {
	q, err := NewQuantum(graph.Path(4), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A stage that never communicates has nothing to Grover-search.
	factory := func(*congest.Context) congest.Node { return &streamNode{total: 0} }
	if _, err := q.RunStage(factory, nil, 0); err != nil {
		t.Fatal(err)
	}
	rep := q.Report()
	if q.Stats().Rounds != rep.Classical.Rounds {
		t.Errorf("silent stage re-accounted %d rounds, want classical %d", q.Stats().Rounds, rep.Classical.Rounds)
	}
	if q.Stats().Bits != 0 || q.Stats().QuantumBits != 0 || q.Stats().Messages != 0 {
		t.Errorf("silent stage charged communication: %+v", q.Stats())
	}
}

func TestQuantumStatsAccumulateAcrossStages(t *testing.T) {
	q, err := NewQuantum(graph.Path(5), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(*congest.Context) congest.Node { return &streamNode{total: 16} }
	before := q.Stats()
	if _, err := q.RunStage(factory, nil, 0); err != nil {
		t.Fatal(err)
	}
	first := q.Stats().Sub(before)
	if _, err := q.RunStage(factory, nil, 0); err != nil {
		t.Fatal(err)
	}
	second := q.Stats().Sub(first)
	if first != second {
		t.Errorf("identical stages accounted differently: %+v vs %+v", first, second)
	}
	if q.Stats().Stages != 2 || q.Stats().Rounds != 2*first.Rounds {
		t.Errorf("stats did not accumulate: %+v", q.Stats())
	}
}

func TestQuantumCancel(t *testing.T) {
	q, err := NewQuantum(graph.Path(3), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.SetCancel(func() bool { return true })
	factory := func(*congest.Context) congest.Node { return &streamNode{total: 64} }
	if _, err := q.RunStage(factory, nil, 1<<30); !errors.Is(err, congest.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestTopologyDiameter(t *testing.T) {
	cycle, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		topo congest.Topology
		want int
	}{
		{"path9", graph.Path(9), 8},
		{"cycle8", cycle, 4},
		{"star7", graph.Star(7), 2},
		{"complete5", graph.Complete(5), 1},
	}
	for _, c := range cases {
		if got := topologyDiameter(c.topo); got != c.want {
			t.Errorf("%s: diameter = %d, want %d", c.name, got, c.want)
		}
	}
}
