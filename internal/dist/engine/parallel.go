package engine

import (
	"fmt"
	"runtime"

	"qdc/internal/congest"
)

// Parallel is the concurrent CONGEST(B) backend: the same plain accounting
// as Local, but each round steps all nodes across a pool of worker
// goroutines instead of one. Because CONGEST nodes interact only through
// messages delivered at round boundaries and every node owns a private
// random stream, a Parallel run is bit-for-bit identical to a Local run
// with the same topology, bandwidth and seed — same Stats, same outputs,
// same verdicts (TestNewParallelMatchesLocal pins this, and the whole
// suite runs under -race in CI). The wall-clock win scales with the
// per-round node work, which is why the experiment harness in internal/exp
// exposes it as a backend of its scenario matrix.
type Parallel struct {
	net     *congest.Network
	workers int
	cancel  func() bool
	obs     StageObserver
	stats   Stats
}

// NewParallel returns a Runner executing stages on a fresh CONGEST network
// with rounds stepped concurrently across GOMAXPROCS worker goroutines.
// A bandwidth <= 0 selects congest.DefaultBandwidth.
func NewParallel(topo congest.Topology, bandwidth int, seed int64) (*Parallel, error) {
	if topo == nil {
		return nil, ErrNilTopology
	}
	net, err := congest.NewNetwork(topo, bandwidth)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	net.SetSeed(seed)
	return &Parallel{net: net, workers: runtime.GOMAXPROCS(0)}, nil
}

// SetWorkers overrides the number of stepping goroutines. Values <= 1 make
// the runner behave exactly like Local; the experiment harness uses this to
// avoid oversubscription when many runners execute side by side.
func (p *Parallel) SetWorkers(workers int) { p.workers = workers }

// SetCancel installs a cancellation poll checked at every round boundary of
// subsequent stages; see congest.Options.Cancel.
func (p *Parallel) SetCancel(cancel func() bool) { p.cancel = cancel }

// SetObserver installs a per-stage observer for subsequent stages; nil
// removes it. See StageObserver.
func (p *Parallel) SetObserver(obs StageObserver) { p.obs = obs }

// RunStage implements Runner.
func (p *Parallel) RunStage(factory congest.NodeFactory, inputs map[int]any, maxRounds int) (*congest.Result, error) {
	return runNetworkStage(p.net, &p.stats, p.obs, factory, inputs, congest.Options{MaxRounds: maxRounds, Workers: p.workers, Cancel: p.cancel})
}

// Bandwidth implements Runner.
func (p *Parallel) Bandwidth() int { return p.net.Bandwidth() }

// Size implements Runner.
func (p *Parallel) Size() int { return p.net.Size() }

// Stats implements Runner.
func (p *Parallel) Stats() Stats { return p.stats }

// Compile-time interface check.
var _ Runner = (*Parallel)(nil)
