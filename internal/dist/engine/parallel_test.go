package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"qdc/internal/congest"
	"qdc/internal/graph"
)

// gossipNode floods the maximum (input, own-rng draw) value it has seen so
// far, exercising both message-dependent state and the per-node random
// streams the equivalence guarantee has to preserve.
type gossipNode struct {
	best   int
	rounds int
}

func (g *gossipNode) Init(ctx *congest.Context) {
	g.best = ctx.Rand().Intn(1 << 16)
	if in, ok := ctx.Input().(int); ok && in > g.best {
		g.best = in
	}
}

func (g *gossipNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	for _, m := range inbox {
		if v, ok := m.Payload.(int); ok && v > g.best {
			g.best = v
		}
	}
	if round >= g.rounds {
		ctx.SetOutput(g.best)
		return nil, true
	}
	return congest.BroadcastAll(ctx, g.best, 16), false
}

// TestNewParallelMatchesLocal pins the backend equivalence guarantee at the
// engine level: for the same topology, bandwidth and seed, a Parallel stage
// returns the same Result and the same Stats as a Local stage.
func TestNewParallelMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomConnectedGraph(40, 0.1, rng)
	factory := func(*congest.Context) congest.Node { return &gossipNode{rounds: 12} }
	inputs := map[int]any{3: 1 << 20, 17: 1 << 19}

	local, err := NewLocal(g, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewParallel(g, 32, 5)
	if err != nil {
		t.Fatal(err)
	}

	for stage := 0; stage < 3; stage++ {
		lres, lerr := local.RunStage(factory, inputs, 0)
		pres, perr := parallel.RunStage(factory, inputs, 0)
		if lerr != nil || perr != nil {
			t.Fatalf("stage %d: local err %v, parallel err %v", stage, lerr, perr)
		}
		if !reflect.DeepEqual(lres, pres) {
			t.Fatalf("stage %d: results diverge:\nlocal    %+v\nparallel %+v", stage, lres, pres)
		}
		if local.Stats() != parallel.Stats() {
			t.Fatalf("stage %d: stats diverge: local %+v, parallel %+v", stage, local.Stats(), parallel.Stats())
		}
	}
}

// TestParallelSingleWorkerDegradesToLocal checks the SetWorkers escape
// hatch: one worker steps sequentially and still matches.
func TestParallelSingleWorkerDegradesToLocal(t *testing.T) {
	g := graph.Grid(5, 5)
	factory := func(*congest.Context) congest.Node { return &gossipNode{rounds: 9} }

	local, err := NewLocal(g, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewParallel(g, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(1)

	lres, err := local.RunStage(factory, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := parallel.RunStage(factory, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lres, pres) {
		t.Fatalf("results diverge:\nlocal    %+v\nparallel %+v", lres, pres)
	}
}
