// Package engine defines the execution layer shared by every distributed
// algorithm in internal/dist: a Runner abstraction under which a CONGEST node
// program (a congest.NodeFactory) can be executed in stages, with aggregated
// round/message/bit accounting, independent of the backend that actually
// carries the messages.
//
// Four backends implement Runner today:
//
//   - NewLocal (this package) runs stages directly on a congest.Network —
//     the plain CONGEST(B) model of Section 2.1 of the paper.
//   - NewParallel (this package) is the same accounting with rounds stepped
//     concurrently across worker goroutines, bit-for-bit equivalent.
//   - NewQuantum (this package) runs stages classically for their outputs
//     but re-accounts every streaming stage with the distributed-Grover
//     round formula of Example 1.1 (internal/quantum.GroverRounds): the
//     quantum cost model under which Set Disjointness beats the classical
//     Θ(D + b/B) pipeline at small diameters.
//   - simulation.Runner (internal/simulation) runs the same stages on the
//     lower-bound network while re-accounting every message to the three
//     parties of the Server model (the Quantum Simulation Theorem,
//     Theorem 3.5).
//
// Because all backends expose the identical RunStage contract, every
// algorithm in internal/dist/{verify,mst,disjointness} executes unchanged
// under any accounting; see DESIGN.md for the substitution table.
//
// Every constructor takes a congest.Topology. *graph.Graph satisfies it,
// and so does *graph.CSR, the flat-table topology the streaming
// graph.Builder produces — a CSR additionally satisfies
// congest.IndexedTopology, so the network adopts its tables without
// per-node copies or sorts, which is the constructor path million-node
// scenarios use (see internal/exp's buildTopology). The backends are
// agnostic to which one they were handed: identical seeds over identical
// edge sets produce bit-identical runs either way.
package engine

import (
	"errors"
	"fmt"

	"qdc/internal/congest"
)

// ErrNilTopology reports a local runner constructed without a topology.
var ErrNilTopology = errors.New("engine: nil topology")

// TagBits is the message-type tag size every dist algorithm charges on top
// of a payload's fields, so mixed-payload stages stay honestly accounted.
const TagBits = 2

// UniformInputs spreads one input value per node into the map RunStage
// expects.
func UniformInputs[In any](vals []In) map[int]any {
	out := make(map[int]any, len(vals))
	for v, val := range vals {
		out[v] = val
	}
	return out
}

// RunUniform executes one stage in which every node receives inputs[v] and
// is expected to output a value of type Out; `what` names the output in the
// error when a node fails to produce one.
func RunUniform[In any, Out any](r Runner, inputs []In, factory congest.NodeFactory, maxRounds int, what string) ([]Out, error) {
	res, err := r.RunStage(factory, UniformInputs(inputs), maxRounds)
	if err != nil {
		return nil, err
	}
	n := r.Size()
	out := make([]Out, n)
	for v := 0; v < n; v++ {
		o, ok := res.Outputs[v].(Out)
		if !ok {
			return nil, fmt.Errorf("engine: node %d produced no %s", v, what)
		}
		out[v] = o
	}
	return out, nil
}

// Stats aggregates the cost of every stage executed by a Runner so far.
type Stats struct {
	// Stages is the number of RunStage calls that executed.
	Stages int
	// Rounds is the total number of synchronous rounds across all stages.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int
	// Bits is the total number of bits sent over all edges in all rounds,
	// classical bits and qubits together.
	Bits int64
	// QuantumBits is the subset of Bits carried as qubits: quantum-marked
	// congest messages plus the query registers the Grover re-accounting
	// backend charges. Zero under the purely classical backends.
	QuantumBits int64 `json:",omitempty"`
}

// Sub returns the difference s − prev, the cost incurred between two
// snapshots of the same Runner. It is how algorithms report their own cost
// when sharing a Runner with earlier stages.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Stages:      s.Stages - prev.Stages,
		Rounds:      s.Rounds - prev.Rounds,
		Messages:    s.Messages - prev.Messages,
		Bits:        s.Bits - prev.Bits,
		QuantumBits: s.QuantumBits - prev.QuantumBits,
	}
}

// StageObserver receives every stage's full congest.Result immediately after
// the stage completes (successfully or not — error stages still report their
// partial result). It is the hook the observability layer (internal/obs via
// internal/exp) uses to feed per-round traffic histograms without touching
// the accounting: backends with an observer installed record the per-round
// classical/quantum split (congest.Options.PerRound), which changes no field
// the Stats fold reads, so observed and unobserved runs produce identical
// Stats and outputs. Observers run on the stage's goroutine; a nil observer
// costs nothing.
type StageObserver interface {
	// StageDone is called once per completed stage with the stage's result.
	// The Result (including PerRound) is owned by the caller afterwards only
	// for reading; observers must not retain or mutate it past the call.
	StageDone(res *congest.Result)
}

// Runner executes CONGEST node programs stage by stage on some backend.
//
// A stage is one complete run of a node program on every node of the
// network: RunStage installs the per-node inputs, runs the factory's nodes
// until global termination (or maxRounds; maxRounds <= 0 selects the
// backend's default), and returns the per-stage result. Stats accumulate
// across stages, so a multi-stage algorithm's total cost is the difference
// between the Stats snapshots taken around its stages.
type Runner interface {
	// RunStage executes one node program to completion.
	RunStage(factory congest.NodeFactory, inputs map[int]any, maxRounds int) (*congest.Result, error)
	// Bandwidth returns the per-edge, per-round bit budget B.
	Bandwidth() int
	// Size returns the number of nodes of the underlying network.
	Size() int
	// Stats returns the accumulated cost of all stages run so far.
	Stats() Stats
}

// Local is the plain CONGEST(B) backend: stages run directly on a
// congest.Network with no extra accounting.
type Local struct {
	net    *congest.Network
	cancel func() bool
	obs    StageObserver
	stats  Stats
}

// NewLocal returns a Runner executing stages on a fresh CONGEST network over
// the given topology. A bandwidth <= 0 selects congest.DefaultBandwidth.
func NewLocal(topo congest.Topology, bandwidth int, seed int64) (*Local, error) {
	if topo == nil {
		return nil, ErrNilTopology
	}
	net, err := congest.NewNetwork(topo, bandwidth)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	net.SetSeed(seed)
	return &Local{net: net}, nil
}

// SetCancel installs a cancellation poll checked at every round boundary of
// subsequent stages; see congest.Options.Cancel.
func (l *Local) SetCancel(cancel func() bool) { l.cancel = cancel }

// SetObserver installs a per-stage observer for subsequent stages; nil
// removes it. See StageObserver.
func (l *Local) SetObserver(obs StageObserver) { l.obs = obs }

// RunStage implements Runner.
func (l *Local) RunStage(factory congest.NodeFactory, inputs map[int]any, maxRounds int) (*congest.Result, error) {
	return runNetworkStage(l.net, &l.stats, l.obs, factory, inputs, congest.Options{MaxRounds: maxRounds, Cancel: l.cancel})
}

// runNetworkStage installs the inputs, runs one stage on a congest.Network
// and folds the result into the runner's accumulated stats. It is shared by
// the Local, Parallel and Quantum backends, which differ only in
// congest.Options. With an observer installed the stage also records the
// per-round traffic split and hands the result to the observer — including
// partial results of failed stages.
func runNetworkStage(net *congest.Network, stats *Stats, obs StageObserver, factory congest.NodeFactory, inputs map[int]any, opts congest.Options) (*congest.Result, error) {
	net.ClearInputs()
	for id, in := range inputs {
		net.SetInput(id, in)
	}
	if obs != nil {
		opts.PerRound = true
	}
	res, err := net.Run(factory, opts)
	if res != nil {
		stats.Stages++
		stats.Rounds += res.Rounds
		stats.Messages += res.TotalMessages
		stats.Bits += res.TotalBits
		stats.QuantumBits += res.QuantumBits
		if obs != nil {
			obs.StageDone(res)
		}
	}
	if err != nil {
		return res, fmt.Errorf("engine: stage %d: %w", stats.Stages, err)
	}
	return res, nil
}

// Bandwidth implements Runner.
func (l *Local) Bandwidth() int { return l.net.Bandwidth() }

// Size implements Runner.
func (l *Local) Size() int { return l.net.Size() }

// Stats implements Runner.
func (l *Local) Stats() Stats { return l.stats }

// Compile-time interface check.
var _ Runner = (*Local)(nil)
