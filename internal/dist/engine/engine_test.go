package engine

import (
	"errors"
	"testing"

	"qdc/internal/congest"
	"qdc/internal/graph"
)

// echoNode outputs its input and terminates after a fixed number of rounds,
// broadcasting one small message per round until then.
type echoNode struct{ rounds int }

func (e *echoNode) Init(*congest.Context) {}

func (e *echoNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	if round >= e.rounds {
		ctx.SetOutput(ctx.Input())
		return nil, true
	}
	return congest.BroadcastAll(ctx, round, 4), false
}

func TestNewLocalValidation(t *testing.T) {
	if _, err := NewLocal(nil, 8, 1); !errors.Is(err, ErrNilTopology) {
		t.Fatalf("err = %v, want ErrNilTopology", err)
	}
	r, err := NewLocal(graph.Path(4), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bandwidth() != congest.DefaultBandwidth {
		t.Fatalf("bandwidth = %d, want default", r.Bandwidth())
	}
	if r.Size() != 4 {
		t.Fatalf("size = %d, want 4", r.Size())
	}
}

func TestStatsAccumulateAcrossStages(t *testing.T) {
	r, err := NewLocal(graph.Path(3), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(*congest.Context) congest.Node { return &echoNode{rounds: 3} }

	res, err := r.RunStage(factory, map[int]any{1: "in"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != "in" || res.Outputs[0] != nil {
		t.Fatalf("inputs not delivered: %+v", res.Outputs)
	}
	first := r.Stats()
	if first.Stages != 1 || first.Rounds != res.Rounds || first.Messages == 0 || first.Bits == 0 {
		t.Fatalf("stats after one stage: %+v", first)
	}

	// A second stage must clear the previous inputs and add to the stats.
	res2, err := r.RunStage(factory, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outputs[1] != nil {
		t.Fatal("inputs from the previous stage leaked into the next stage")
	}
	second := r.Stats()
	if second.Stages != 2 || second.Rounds != first.Rounds+res2.Rounds {
		t.Fatalf("stats did not accumulate: %+v", second)
	}

	delta := second.Sub(first)
	if delta.Stages != 1 || delta.Rounds != res2.Rounds || delta.Bits != second.Bits-first.Bits {
		t.Fatalf("Sub delta wrong: %+v", delta)
	}
}

func TestRunStagePropagatesRoundLimit(t *testing.T) {
	r, err := NewLocal(graph.Path(3), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(*congest.Context) congest.Node { return &echoNode{rounds: 100} }
	if _, err := r.RunStage(factory, nil, 5); !errors.Is(err, congest.ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	// The failed stage is still accounted for.
	if st := r.Stats(); st.Stages != 1 || st.Rounds != 5 {
		t.Fatalf("stats after failed stage: %+v", st)
	}
}
