package verify_test

import (
	"testing"

	"qdc/internal/dist/engine"
	"qdc/internal/dist/verify"
	"qdc/internal/graph"
	"qdc/internal/lbnetwork"
	"qdc/internal/simulation"
)

func localRunner(t *testing.T, g *graph.Graph) engine.Runner {
	t.Helper()
	r, err := engine.NewLocal(g, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func edgeSetOf(g *graph.Graph) *graph.EdgeSet {
	return graph.NewEdgeSetFrom(g.Edges())
}

type verifier func(engine.Runner, *graph.Graph, *graph.EdgeSet) (*verify.Outcome, error)

// check runs one verifier on a fresh runner and asserts the verdict.
func check(t *testing.T, name string, fn verifier, g *graph.Graph, m *graph.EdgeSet, want bool) {
	t.Helper()
	out, err := fn(localRunner(t, g), g, m)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if out.Answer != want {
		t.Fatalf("%s = %v, want %v", name, out.Answer, want)
	}
	if out.Stats.Rounds <= 0 || out.Stats.Messages <= 0 || out.Stats.Bits <= 0 {
		t.Fatalf("%s: empty accounting: %+v", name, out.Stats)
	}
}

func TestVerifiersOnFullCycle(t *testing.T) {
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	m := edgeSetOf(g) // M = the whole 6-cycle
	check(t, "DegreeTwoCheck", verify.DegreeTwoCheck, g, m, true)
	check(t, "HamiltonianCycle", verify.HamiltonianCycle, g, m, true)
	check(t, "SpanningConnectedSubgraph", verify.SpanningConnectedSubgraph, g, m, true)
	check(t, "Connectivity", verify.Connectivity, g, m, true)
	check(t, "SpanningTree", verify.SpanningTree, g, m, false) // n edges, not n-1
	check(t, "CycleContainment", verify.CycleContainment, g, m, true)
	check(t, "Bipartiteness", verify.Bipartiteness, g, m, true) // even cycle
}

func TestVerifiersOnHamiltonianPath(t *testing.T) {
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	m := edgeSetOf(g)
	m.Remove(5, 0) // drop one edge: M is now a Hamiltonian path
	check(t, "DegreeTwoCheck", verify.DegreeTwoCheck, g, m, false)
	check(t, "HamiltonianCycle", verify.HamiltonianCycle, g, m, false)
	check(t, "SpanningConnectedSubgraph", verify.SpanningConnectedSubgraph, g, m, true)
	check(t, "Connectivity", verify.Connectivity, g, m, true)
	check(t, "SpanningTree", verify.SpanningTree, g, m, true) // path = spanning tree
	check(t, "CycleContainment", verify.CycleContainment, g, m, false)
	check(t, "Bipartiteness", verify.Bipartiteness, g, m, true)
}

func TestVerifiersOnOddCyclesAndDisconnection(t *testing.T) {
	// Two triangles {0,1,2} and {3,4,5} joined by the bridge 2-3; M is the
	// two triangles only.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}} {
		g.MustAddEdge(e[0], e[1], 1)
	}
	m := graph.NewEdgeSet()
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		m.Add(e[0], e[1])
	}
	check(t, "DegreeTwoCheck", verify.DegreeTwoCheck, g, m, true)
	check(t, "HamiltonianCycle", verify.HamiltonianCycle, g, m, false) // two components
	check(t, "SpanningConnectedSubgraph", verify.SpanningConnectedSubgraph, g, m, false)
	check(t, "Connectivity", verify.Connectivity, g, m, false)
	check(t, "SpanningTree", verify.SpanningTree, g, m, false)
	check(t, "CycleContainment", verify.CycleContainment, g, m, true)
	check(t, "Bipartiteness", verify.Bipartiteness, g, m, false) // odd cycles
}

func TestVerifiersOnEmptySubnetwork(t *testing.T) {
	g := graph.Complete(5)
	m := graph.NewEdgeSet()
	check(t, "Connectivity", verify.Connectivity, g, m, true) // vacuously
	check(t, "SpanningConnectedSubgraph", verify.SpanningConnectedSubgraph, g, m, false)
	check(t, "CycleContainment", verify.CycleContainment, g, m, false)
	check(t, "DegreeTwoCheck", verify.DegreeTwoCheck, g, m, false)
}

func TestNilInputsRejected(t *testing.T) {
	g := graph.Path(3)
	if _, err := verify.DegreeTwoCheck(nil, g, graph.NewEdgeSet()); err == nil {
		t.Fatal("nil runner accepted")
	}
	if _, err := verify.DegreeTwoCheck(localRunner(t, g), nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// The degree-two check uses a single O(D)-round aggregation, so on a
// low-diameter graph it must finish in far fewer rounds than the
// label-propagation verifiers, which genuinely pay Θ(n).
func TestDegreeCheckIsDiameterBound(t *testing.T) {
	g := graph.Grid(8, 8) // n=64, D=14
	m := edgeSetOf(g)
	deg, err := verify.DegreeTwoCheck(localRunner(t, g), g, m)
	if err != nil {
		t.Fatal(err)
	}
	ham, err := verify.HamiltonianCycle(localRunner(t, g), g, m)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Stats.Rounds >= g.N() {
		t.Fatalf("degree check took %d rounds on n=%d, D=%d", deg.Stats.Rounds, g.N(), g.Diameter())
	}
	if ham.Stats.Rounds <= deg.Stats.Rounds {
		t.Fatalf("full verification (%d rounds) should cost more than the degree check (%d rounds)",
			ham.Stats.Rounds, deg.Stats.Rounds)
	}
}

// Acceptance criterion of the dist layer: both backends implement
// engine.Runner, and the degree-two check run under the simulation backend
// charges Server-model cost consistent with Theorem 3.5 — at most the
// O(B·log L) per-round bound, within the L/2 − 2 round budget.
func TestDegreeCheckUnderBothBackends(t *testing.T) {
	nw, err := lbnetwork.New(8, 257)
	if err != nil {
		t.Fatal(err)
	}
	ec, ed, err := graph.CyclePairings(nw.EndpointCount())
	if err != nil {
		t.Fatal(err)
	}
	emb, err := nw.Embed(ec, ed)
	if err != nil {
		t.Fatal(err)
	}

	var backends = map[string]engine.Runner{}
	local, err := engine.NewLocal(nw.Graph, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulation.NewRunner(nw, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	backends["local"], backends["simulation"] = local, sim

	rounds := map[string]int{}
	for name, r := range backends {
		out, err := verify.DegreeTwoCheck(r, nw.Graph, emb.M)
		if err != nil {
			t.Fatalf("%s backend: %v", name, err)
		}
		if !out.Answer {
			t.Fatalf("%s backend rejected the embedded M", name)
		}
		rounds[name] = out.Stats.Rounds
	}
	// The same algorithm costs the same number of rounds under either
	// backend; only the accounting differs.
	if rounds["local"] != rounds["simulation"] {
		t.Fatalf("round counts diverge across backends: %+v", rounds)
	}

	rep := sim.Report()
	if !rep.WithinRoundBudget {
		t.Fatalf("degree check took %d rounds, budget %d", rep.Rounds, nw.MaxSimulationRounds())
	}
	perRound := sim.PerRoundBound()
	if rep.ServerModelCost > perRound*int64(rep.Rounds) {
		t.Fatalf("charged %d bits over %d rounds, exceeding the O(B log L)=%d per-round bound",
			rep.ServerModelCost, rep.Rounds, perRound)
	}
	if rep.ServerModelCost <= 0 {
		t.Fatal("simulation should charge some Carol/David communication")
	}
}
