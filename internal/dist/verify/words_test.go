package verify

import (
	"math/rand"
	"reflect"
	"testing"

	"qdc/internal/congest"
	"qdc/internal/graph"
)

// Word-encoding equivalence pins for all three verify stages: the migrated
// node programs must produce Results bit-for-bit identical to the
// pre-refactor boxed implementations — same rounds, bits, outputs and trace
// stream — on sequential and parallel merges alike. The boxed* types below
// are the pre-refactor programs, kept verbatim.

type (
	boxedDistMsg  struct{ D int }
	boxedColorMsg struct{ C int }
	boxedTokenMsg struct{ Dist int }
	boxedChildMsg struct{ IsChild bool }
	boxedUpMsg    struct{ Agg agg }
	boxedDownMsg  struct{ Answer bool }
)

type boxedLabelNode struct {
	mNbrs    []int
	label    int
	lastSent int
}

func (l *boxedLabelNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(labelInput)
	l.mNbrs = in.MNbrs
	l.label = ctx.ID()
	l.lastSent = -1
}

func (l *boxedLabelNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	for _, m := range inbox {
		if v, ok := m.Payload.(int); ok && v < l.label {
			l.label = v
		}
	}
	n := ctx.N()
	if round > n {
		ctx.SetOutput(l.label)
		return nil, true
	}
	if l.label != l.lastSent {
		l.lastSent = l.label
		bits := tagBits + congest.BitsForID(n)
		return congest.Broadcast(l.mNbrs, l.label, bits), false
	}
	return nil, false
}

type boxedColorNode struct {
	mNbrs    []int
	dist     int
	lastSent int
	conflict bool
}

func (c *boxedColorNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(colorInput)
	c.mNbrs = in.MNbrs
	c.dist = -1
	c.lastSent = -1
	if in.IsLeader {
		c.dist = 0
	}
}

func (c *boxedColorNode) color() int {
	if c.dist < 0 {
		return 0
	}
	return c.dist % 2
}

func (c *boxedColorNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	n := ctx.N()
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case boxedDistMsg:
			if cand := p.D + 1; c.dist == -1 || cand < c.dist {
				c.dist = cand
			}
		case boxedColorMsg:
			if p.C == c.color() {
				c.conflict = true
			}
		}
	}
	switch {
	case round <= n:
		if c.dist != -1 && c.dist != c.lastSent {
			c.lastSent = c.dist
			bits := tagBits + congest.BitsForInt(c.dist)
			return congest.Broadcast(c.mNbrs, boxedDistMsg{D: c.dist}, bits), false
		}
		return nil, false
	case round == n+1:
		bits := tagBits + congest.BitsForBool
		return congest.Broadcast(c.mNbrs, boxedColorMsg{C: c.color()}, bits), false
	default:
		ctx.SetOutput(c.conflict)
		return nil, true
	}
}

type boxedAggNode struct {
	decide func(agg) bool

	acc        agg
	dist       int
	parent     int
	pending    map[int]struct{}
	children   []int
	childUps   int
	sentUp     bool
	answer     bool
	haveAnswer bool
	answered   bool
}

func newBoxedAggNode(ctx *congest.Context, decide func(agg) bool) *boxedAggNode {
	in, _ := ctx.Input().(aggInput)
	return &boxedAggNode{decide: decide, acc: in.Local, dist: -1, parent: -1}
}

func (a *boxedAggNode) Init(ctx *congest.Context) {
	if ctx.ID() == 0 {
		a.dist = 0
	}
}

func (a *boxedAggNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	var out []congest.Message

	if round == 1 && ctx.ID() == 0 {
		a.pending = make(map[int]struct{})
		ctx.ForEachNeighbor(func(v int) {
			a.pending[v] = struct{}{}
			out = append(out, congest.NewMessage(v, boxedTokenMsg{Dist: 1}, tokenBits(1)))
		})
	}

	var tokenSenders []int
	tokenDist := -1
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case boxedTokenMsg:
			tokenSenders = append(tokenSenders, m.From)
			tokenDist = p.Dist
		case boxedChildMsg:
			delete(a.pending, m.From)
			if p.IsChild {
				a.children = append(a.children, m.From)
			}
		case boxedUpMsg:
			a.acc = combine(a.acc, p.Agg)
			a.childUps++
		case boxedDownMsg:
			a.answer = p.Answer
			a.haveAnswer = true
		}
	}

	if len(tokenSenders) > 0 {
		if a.dist == -1 {
			a.dist = tokenDist
			a.parent = tokenSenders[0]
			for _, s := range tokenSenders {
				if s < a.parent {
					a.parent = s
				}
			}
			sender := make(map[int]struct{}, len(tokenSenders))
			for _, s := range tokenSenders {
				sender[s] = struct{}{}
				out = append(out, congest.NewMessage(s, boxedChildMsg{IsChild: s == a.parent}, childBits))
			}
			a.pending = make(map[int]struct{})
			ctx.ForEachNeighbor(func(v int) {
				if _, dup := sender[v]; dup {
					return
				}
				a.pending[v] = struct{}{}
				out = append(out, congest.NewMessage(v, boxedTokenMsg{Dist: a.dist + 1}, tokenBits(a.dist+1)))
			})
		} else {
			for _, s := range tokenSenders {
				out = append(out, congest.NewMessage(s, boxedChildMsg{IsChild: false}, childBits))
			}
		}
	}

	if !a.sentUp && a.dist != -1 && len(a.pending) == 0 && a.childUps == len(a.children) {
		a.sentUp = true
		if ctx.ID() == 0 {
			a.answer = a.decide(a.acc)
			a.haveAnswer = true
		} else {
			out = append(out, congest.NewMessage(a.parent, boxedUpMsg{Agg: a.acc}, upBits(a.acc)))
		}
	}

	if a.haveAnswer && !a.answered {
		a.answered = true
		for _, c := range a.children {
			out = append(out, congest.NewMessage(c, boxedDownMsg{Answer: a.answer}, downBits))
		}
		ctx.SetOutput(a.answer)
	}

	return out, a.answered
}

// traceEv is the accounting-visible view of one traced message. The payload
// representation intentionally differs between the two programs, so Kind,
// the words and Payload are excluded from the comparison.
type traceEv struct {
	Round, From, To, Bits int
	Quantum               bool
}

func runStageTraced(t *testing.T, topo congest.Topology, inputs map[int]any, factory congest.NodeFactory, workers, maxRounds int) (*congest.Result, []traceEv) {
	t.Helper()
	nw, err := congest.NewNetwork(topo, 64)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetSeed(5)
	for v, in := range inputs {
		nw.SetInput(v, in)
	}
	var evs []traceEv
	res, err := nw.Run(factory, congest.Options{
		MaxRounds: maxRounds,
		Workers:   workers,
		Trace: func(round int, m congest.Message) {
			evs = append(evs, traceEv{round, m.From, m.To, m.Bits, m.Quantum})
		},
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res, evs
}

// stageFixture builds a graph plus a subnetwork M with several components,
// one of them an odd cycle, so the label flood, the parity colouring and the
// conflict exchange all carry non-trivial traffic.
func stageFixture(t *testing.T) (*graph.Graph, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	g := graph.RandomConnectedGraph(26, 0.12, rng)
	m := graph.NewEdgeSet()
	edges := g.Edges()
	for i, e := range edges {
		if i%2 == 0 {
			m.Add(e.U, e.V)
		}
	}
	return g, mAdjacency(g, m)
}

func comparePrograms(t *testing.T, name string, topo congest.Topology, inputs map[int]any, word, boxed congest.NodeFactory, maxRounds int) {
	t.Helper()
	for _, workers := range []int{0, 1, 4} {
		wordRes, wordEvs := runStageTraced(t, topo, inputs, word, workers, maxRounds)
		boxedRes, boxedEvs := runStageTraced(t, topo, inputs, boxed, workers, maxRounds)
		if !reflect.DeepEqual(wordRes, boxedRes) {
			t.Errorf("%s workers=%d: results differ\n word:  %+v\n boxed: %+v", name, workers, wordRes, boxedRes)
		}
		if !reflect.DeepEqual(wordEvs, boxedEvs) {
			t.Errorf("%s workers=%d: trace streams differ (%d vs %d events)", name, workers, len(wordEvs), len(boxedEvs))
		}
	}
}

func TestLabelStageMatchesBoxed(t *testing.T) {
	g, mAdj := stageFixture(t)
	inputs := make(map[int]any, g.N())
	for v := range mAdj {
		inputs[v] = labelInput{MNbrs: mAdj[v]}
	}
	comparePrograms(t, "labels", g, inputs,
		func(*congest.Context) congest.Node { return &labelNode{} },
		func(*congest.Context) congest.Node { return &boxedLabelNode{} },
		g.N()+8)
}

func TestColorStageMatchesBoxed(t *testing.T) {
	g, mAdj := stageFixture(t)
	// Leaders from a boxed label run; both colour programs get the same inputs.
	labelInputs := make(map[int]any, g.N())
	for v := range mAdj {
		labelInputs[v] = labelInput{MNbrs: mAdj[v]}
	}
	res, _ := runStageTraced(t, g, labelInputs, func(*congest.Context) congest.Node { return &boxedLabelNode{} }, 0, g.N()+8)
	inputs := make(map[int]any, g.N())
	for v := range mAdj {
		inputs[v] = colorInput{MNbrs: mAdj[v], IsLeader: res.Outputs[v].(int) == v}
	}
	comparePrograms(t, "colors", g, inputs,
		func(*congest.Context) congest.Node { return &colorNode{} },
		func(*congest.Context) congest.Node { return &boxedColorNode{} },
		g.N()+8)
}

func TestAggregateStageMatchesBoxed(t *testing.T) {
	g, mAdj := stageFixture(t)
	inputs := make(map[int]any, g.N())
	for v := range mAdj {
		deg := len(mAdj[v])
		inputs[v] = aggInput{Local: agg{
			OK:        deg <= 2,
			Supported: boolToInt(deg > 0),
			Leaders:   boolToInt(v%5 == 0 && deg > 0),
			Degree:    deg,
		}}
	}
	decide := func(a agg) bool { return a.OK && a.Leaders == 1 }
	comparePrograms(t, "aggregate", g, inputs,
		func(ctx *congest.Context) congest.Node { return newAggNode(ctx, decide) },
		func(ctx *congest.Context) congest.Node { return newBoxedAggNode(ctx, decide) },
		0)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
