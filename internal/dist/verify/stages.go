package verify

import (
	"qdc/internal/congest"
	"qdc/internal/dist/engine"
	"qdc/internal/graph"
)

// mAdjacency restricts the subnetwork M to the edges actually present in g
// and returns, for every node, the sorted list of its M-neighbours — the
// node-local view of M that the verification problems of Section 2.2 assume
// (each node knows which of its incident edges belong to M).
func mAdjacency(g *graph.Graph, m *graph.EdgeSet) [][]int {
	adj := make([][]int, g.N())
	for _, e := range g.Edges() {
		if m.Contains(e.U, e.V) {
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	return adj
}

// labelInput is the per-node input of the component-labelling stage.
type labelInput struct{ MNbrs []int }

// Word-encoded payload kinds of the labelling and colouring stages. The
// bare-int and struct payloads these replace travelled boxed; the word forms
// charge the exact same bits, so the stages' accounting is unchanged.
const (
	kindLabel uint8 = 1 // W0: the sender's component label
	kindDist  uint8 = 2 // W0: the sender's M-BFS distance
	kindColor uint8 = 3 // W0: the sender's layer-parity colour
)

// labelNode floods the minimum node ID along M-edges for n rounds, after
// which every node's label is the smallest ID in its M-component (the
// M-diameter is at most n−1, so n propagation rounds always suffice). The
// component leaders — nodes whose label equals their own ID — then identify
// the components for the aggregation stage.
type labelNode struct {
	mNbrs    []int
	label    int
	lastSent int
	outbox   []congest.Message
}

func (l *labelNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(labelInput)
	l.mNbrs = in.MNbrs
	l.label = ctx.ID()
	l.lastSent = -1
}

func (l *labelNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	for i := range inbox {
		if inbox[i].Kind == kindLabel {
			if v := inbox[i].Int0(); v < l.label {
				l.label = v
			}
		}
	}
	n := ctx.N()
	if round > n {
		ctx.SetOutput(l.label)
		return nil, true
	}
	if l.label != l.lastSent {
		l.lastSent = l.label
		bits := tagBits + congest.BitsForID(n)
		l.outbox = congest.BroadcastWordsInto(l.outbox[:0], l.mNbrs, kindLabel, uint64(l.label), 0, bits)
		return l.outbox, false
	}
	return nil, false
}

// runLabels executes the component-labelling stage and returns the label of
// every node.
func runLabels(r engine.Runner, mAdj [][]int) ([]int, error) {
	inputs := make([]labelInput, len(mAdj))
	for v := range mAdj {
		inputs[v] = labelInput{MNbrs: mAdj[v]}
	}
	factory := func(*congest.Context) congest.Node { return &labelNode{} }
	return engine.RunUniform[labelInput, int](r, inputs, factory, r.Size()+8, "component label")
}

// colorInput is the per-node input of the 2-colouring stage.
type colorInput struct {
	MNbrs    []int
	IsLeader bool
}

// colorNode 2-colours each M-component by BFS-layer parity: component
// leaders are at distance 0, M-BFS distances propagate for n rounds, each
// node's colour is its distance parity, and one final exchange over M-edges
// detects monochromatic edges — which exist iff the component contains an
// odd cycle (iff M is not bipartite). Both message kinds travel
// word-encoded (kindDist, kindColor).
type colorNode struct {
	mNbrs    []int
	dist     int
	lastSent int
	conflict bool
	outbox   []congest.Message
}

func (c *colorNode) Init(ctx *congest.Context) {
	in, _ := ctx.Input().(colorInput)
	c.mNbrs = in.MNbrs
	c.dist = -1
	c.lastSent = -1
	if in.IsLeader {
		c.dist = 0
	}
}

func (c *colorNode) color() int {
	if c.dist < 0 {
		return 0
	}
	return c.dist % 2
}

func (c *colorNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	n := ctx.N()
	for i := range inbox {
		switch inbox[i].Kind {
		case kindDist:
			if cand := inbox[i].Int0() + 1; c.dist == -1 || cand < c.dist {
				c.dist = cand
			}
		case kindColor:
			if inbox[i].Int0() == c.color() {
				c.conflict = true
			}
		}
	}
	switch {
	case round <= n:
		if c.dist != -1 && c.dist != c.lastSent {
			c.lastSent = c.dist
			bits := tagBits + congest.BitsForInt(c.dist)
			c.outbox = congest.BroadcastWordsInto(c.outbox[:0], c.mNbrs, kindDist, uint64(c.dist), 0, bits)
			return c.outbox, false
		}
		return nil, false
	case round == n+1:
		bits := tagBits + congest.BitsForBool
		c.outbox = congest.BroadcastWordsInto(c.outbox[:0], c.mNbrs, kindColor, uint64(c.color()), 0, bits)
		return c.outbox, false
	default:
		ctx.SetOutput(c.conflict)
		return nil, true
	}
}

// runColors executes the 2-colouring stage and returns, per node, whether it
// saw a monochromatic M-edge.
func runColors(r engine.Runner, mAdj [][]int, labels []int) ([]bool, error) {
	inputs := make([]colorInput, len(mAdj))
	for v := range mAdj {
		inputs[v] = colorInput{MNbrs: mAdj[v], IsLeader: labels[v] == v}
	}
	factory := func(*congest.Context) congest.Node { return &colorNode{} }
	return engine.RunUniform[colorInput, bool](r, inputs, factory, r.Size()+8, "colouring verdict")
}
