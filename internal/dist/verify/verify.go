// Package verify implements the distributed subgraph verification problems
// of Section 2.2 of the paper as genuine CONGEST node programs executed
// through the engine.Runner abstraction: every node knows only which of its
// incident edges belong to the candidate subnetwork M, all coordination
// happens by O(log n)-bit messages, and the network-wide verdict is the
// output.
//
// All seven verifiers share the same machinery: a component-labelling stage
// (minimum-ID flooding along M, Θ(n) rounds), an optional BFS-layer
// 2-colouring stage, and an O(D)-round BFS-tree aggregation stage that
// combines one flag and three counters and broadcasts the verdict. The
// degree-two check uses only the aggregation stage, which is why it finishes
// in O(D) rounds and fits the L/2 − 2 round budget of the Quantum Simulation
// Theorem (Theorem 3.5) — the property qdc.RunProofPipeline and
// internal/simulation rely on. The full verifiers genuinely need the
// labelling stage and therefore exceed that budget, exactly as the paper's
// Ω̃(√n) lower bounds predict.
package verify

import (
	"errors"
	"fmt"

	"qdc/internal/dist/engine"
	"qdc/internal/graph"
)

// ErrBadInput reports a verification call with missing inputs.
var ErrBadInput = errors.New("verify: nil graph or edge set")

// Outcome is the result of one distributed verification: the network-wide
// verdict and the communication cost the algorithm incurred on its runner.
type Outcome struct {
	// Answer is the verdict every node agreed on.
	Answer bool
	// Stats is the cost of this verification alone (runner stats may also
	// include earlier algorithms run on the same runner).
	Stats engine.Stats
}

// run executes the stages of one verifier and wraps the verdict with the
// runner-stat delta attributable to it.
func run(r engine.Runner, g *graph.Graph, m *graph.EdgeSet,
	algo func(mAdj [][]int) (bool, error)) (*Outcome, error) {
	if r == nil || g == nil || m == nil {
		return nil, ErrBadInput
	}
	if g.N() != r.Size() {
		return nil, fmt.Errorf("%w: graph has %d nodes but runner has %d", ErrBadInput, g.N(), r.Size())
	}
	before := r.Stats()
	answer, err := algo(mAdjacency(g, m))
	if err != nil {
		return nil, err
	}
	return &Outcome{Answer: answer, Stats: r.Stats().Sub(before)}, nil
}

// DegreeTwoCheck verifies that every node has exactly two incident M-edges.
// It is the O(D)-round opening move of the paper's Ham and MST reductions:
// a single aggregation suffices, so the check completes well within the
// L/2 − 2 simulation budget and its Server-model cost is O(B·log L) per
// round under the three-party accounting.
func DegreeTwoCheck(r engine.Runner, g *graph.Graph, m *graph.EdgeSet) (*Outcome, error) {
	return run(r, g, m, func(mAdj [][]int) (bool, error) {
		return runAggregate(r,
			func(v int) agg { return agg{OK: len(mAdj[v]) == 2} },
			func(a agg) bool { return a.OK })
	})
}

// localCounts is the shared per-node aggregate contribution of the
// label-based verifiers.
func localCounts(mAdj [][]int, labels []int, ok func(v int) bool) func(int) agg {
	return func(v int) agg {
		deg := len(mAdj[v])
		a := agg{OK: ok(v), Degree: deg}
		if deg > 0 {
			a.Supported = 1
			if labels[v] == v {
				a.Leaders = 1
			}
		}
		return a
	}
}

// HamiltonianCycle verifies that M is a Hamiltonian cycle of the network:
// every node has M-degree exactly two and M has a single connected
// component.
func HamiltonianCycle(r engine.Runner, g *graph.Graph, m *graph.EdgeSet) (*Outcome, error) {
	return run(r, g, m, func(mAdj [][]int) (bool, error) {
		labels, err := runLabels(r, mAdj)
		if err != nil {
			return false, err
		}
		return runAggregate(r,
			localCounts(mAdj, labels, func(v int) bool { return len(mAdj[v]) == 2 }),
			func(a agg) bool { return a.OK && a.Leaders == 1 })
	})
}

// SpanningConnectedSubgraph verifies that M touches every node and has a
// single connected component.
func SpanningConnectedSubgraph(r engine.Runner, g *graph.Graph, m *graph.EdgeSet) (*Outcome, error) {
	return run(r, g, m, func(mAdj [][]int) (bool, error) {
		labels, err := runLabels(r, mAdj)
		if err != nil {
			return false, err
		}
		return runAggregate(r,
			localCounts(mAdj, labels, func(v int) bool { return len(mAdj[v]) >= 1 }),
			func(a agg) bool { return a.OK && a.Leaders == 1 })
	})
}

// Connectivity verifies that M is connected, i.e. that the nodes it touches
// form at most one component (an empty M is vacuously connected).
func Connectivity(r engine.Runner, g *graph.Graph, m *graph.EdgeSet) (*Outcome, error) {
	return run(r, g, m, func(mAdj [][]int) (bool, error) {
		labels, err := runLabels(r, mAdj)
		if err != nil {
			return false, err
		}
		return runAggregate(r,
			localCounts(mAdj, labels, func(v int) bool { return true }),
			func(a agg) bool { return a.Leaders <= 1 })
	})
}

// SpanningTree verifies that M is a spanning tree of the network: it
// touches every node, has one component, and has exactly n−1 edges.
func SpanningTree(r engine.Runner, g *graph.Graph, m *graph.EdgeSet) (*Outcome, error) {
	n := r.Size()
	return run(r, g, m, func(mAdj [][]int) (bool, error) {
		labels, err := runLabels(r, mAdj)
		if err != nil {
			return false, err
		}
		return runAggregate(r,
			localCounts(mAdj, labels, func(v int) bool { return len(mAdj[v]) >= 1 }),
			func(a agg) bool { return a.OK && a.Leaders == 1 && a.Degree == 2*(n-1) })
	})
}

// Bipartiteness verifies that M contains no odd cycle, via BFS-layer parity
// colouring of each M-component.
func Bipartiteness(r engine.Runner, g *graph.Graph, m *graph.EdgeSet) (*Outcome, error) {
	return run(r, g, m, func(mAdj [][]int) (bool, error) {
		labels, err := runLabels(r, mAdj)
		if err != nil {
			return false, err
		}
		conflicts, err := runColors(r, mAdj, labels)
		if err != nil {
			return false, err
		}
		return runAggregate(r,
			func(v int) agg { return agg{OK: !conflicts[v]} },
			func(a agg) bool { return a.OK })
	})
}

// CycleContainment verifies that M contains at least one cycle: M is not a
// forest exactly when it has more edges than (touched vertices − components).
func CycleContainment(r engine.Runner, g *graph.Graph, m *graph.EdgeSet) (*Outcome, error) {
	return run(r, g, m, func(mAdj [][]int) (bool, error) {
		labels, err := runLabels(r, mAdj)
		if err != nil {
			return false, err
		}
		return runAggregate(r,
			localCounts(mAdj, labels, func(v int) bool { return true }),
			func(a agg) bool { return a.Degree/2 > a.Supported-a.Leaders })
	})
}
