package verify

import (
	"fmt"

	"qdc/internal/congest"
	"qdc/internal/dist/engine"
)

// agg is the value combined up the BFS tree by the aggregation stage: one
// ANDed flag plus three summed counters. Every verification predicate in
// this package is a function of one such aggregate, so a single O(D)-round
// convergecast answers all of them.
type agg struct {
	// OK is ANDed across nodes (true when every node's local check passes).
	OK bool
	// Supported counts nodes with at least one incident M-edge.
	Supported int
	// Leaders counts supported nodes whose component label equals their ID,
	// i.e. the number of connected components of M.
	Leaders int
	// Degree sums the M-degrees, so Degree/2 is the number of M-edges.
	Degree int
}

func combine(a, b agg) agg {
	return agg{
		OK:        a.OK && b.OK,
		Supported: a.Supported + b.Supported,
		Leaders:   a.Leaders + b.Leaders,
		Degree:    a.Degree + b.Degree,
	}
}

// Word-encoded message kinds of the aggregation stage. Every message
// charges a small type tag (2 bits) plus its fields, exactly as the boxed
// structs they replaced did; the representation change is invisible to the
// accounting.
const (
	kindToken uint8 = 4 // BFS wave; W0 is the receiver's depth
	kindChild uint8 = 5 // reply to a token; W0 is the is-child flag
	kindUp    uint8 = 6 // convergecast; W0/W1 encode the combined agg
	kindDown  uint8 = 7 // broadcast; W0 is the root's verdict
)

// encodeAgg packs an aggregate into two payload words: Supported and
// Leaders share W0 (32 bits each, both bounded by n), and W1 carries the
// degree sum shifted over the ANDed flag. decodeAgg inverts it.
func encodeAgg(a agg) (w0, w1 uint64) {
	return congest.PackIDs(a.Supported, a.Leaders),
		uint64(a.Degree)<<1 | congest.WordFromBool(a.OK)
}

func decodeAgg(w0, w1 uint64) agg {
	s, l := congest.UnpackIDs(w0)
	return agg{OK: w1&1 == 1, Supported: s, Leaders: l, Degree: int(w1 >> 1)}
}

const tagBits = engine.TagBits

func tokenBits(dist int) int { return tagBits + congest.BitsForInt(dist) }
func upBits(a agg) int {
	return tagBits + congest.BitsForBool +
		congest.BitsForInt(a.Supported) + congest.BitsForInt(a.Leaders) + congest.BitsForInt(a.Degree)
}

const (
	childBits = tagBits + congest.BitsForBool
	downBits  = tagBits + congest.BitsForBool
)

// aggInput is the per-node input of the aggregation stage: the node's local
// contribution, computed from its own problem input (and the outputs of its
// earlier stages, fed back to the same node).
type aggInput struct{ Local agg }

// aggNode implements the O(D)-round global aggregation: a BFS tree is grown
// from node 0 with explicit child detection, the aggregates are combined
// bottom-up along the tree, the root evaluates the decision predicate, and
// the one-bit verdict is broadcast back down. Every message is O(log n)
// bits, so the whole stage fits the CONGEST budget and — crucially for the
// degree-two check of Theorem 3.5 — finishes in O(D) rounds.
type aggNode struct {
	decide func(agg) bool

	acc        agg
	dist       int
	parent     int
	pending    map[int]struct{}
	children   []int
	childUps   int
	sentUp     bool
	answer     bool
	haveAnswer bool
	answered   bool
	outbox     []congest.Message
}

func newAggNode(ctx *congest.Context, decide func(agg) bool) *aggNode {
	in, _ := ctx.Input().(aggInput)
	return &aggNode{decide: decide, acc: in.Local, dist: -1, parent: -1}
}

func (a *aggNode) Init(ctx *congest.Context) {
	if ctx.ID() == 0 {
		a.dist = 0
	}
}

func (a *aggNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	out := a.outbox[:0]

	// The root starts the BFS wave in round 1.
	if round == 1 && ctx.ID() == 0 {
		a.pending = make(map[int]struct{})
		ctx.ForEachNeighbor(func(v int) {
			a.pending[v] = struct{}{}
			out = congest.AppendWordMessage(out, v, kindToken, 1, 0, tokenBits(1))
		})
	}

	var tokenSenders []int
	tokenDist := -1
	for i := range inbox {
		m := &inbox[i]
		switch m.Kind {
		case kindToken:
			tokenSenders = append(tokenSenders, m.From)
			tokenDist = m.Int0()
		case kindChild:
			delete(a.pending, m.From)
			if m.Bool0() {
				a.children = append(a.children, m.From)
			}
		case kindUp:
			a.acc = combine(a.acc, decodeAgg(m.W0, m.W1))
			a.childUps++
		case kindDown:
			a.answer = m.Bool0()
			a.haveAnswer = true
		}
	}

	if len(tokenSenders) > 0 {
		if a.dist == -1 {
			// First contact: adopt the wave, pick the smallest sender as
			// parent, reply to every sender, and extend the wave to all
			// remaining neighbours.
			a.dist = tokenDist
			a.parent = tokenSenders[0]
			for _, s := range tokenSenders {
				if s < a.parent {
					a.parent = s
				}
			}
			sender := make(map[int]struct{}, len(tokenSenders))
			for _, s := range tokenSenders {
				sender[s] = struct{}{}
				out = congest.AppendWordMessage(out, s, kindChild, congest.WordFromBool(s == a.parent), 0, childBits)
			}
			a.pending = make(map[int]struct{})
			ctx.ForEachNeighbor(func(v int) {
				if _, dup := sender[v]; dup {
					return
				}
				a.pending[v] = struct{}{}
				out = congest.AppendWordMessage(out, v, kindToken, uint64(a.dist+1), 0, tokenBits(a.dist+1))
			})
		} else {
			// Late tokens from same-depth neighbours: decline.
			for _, s := range tokenSenders {
				out = congest.AppendWordMessage(out, s, kindChild, 0, 0, childBits)
			}
		}
	}

	// Convergecast: once the child set is final and every child has
	// reported, push the combined aggregate towards the root.
	if !a.sentUp && a.dist != -1 && len(a.pending) == 0 && a.childUps == len(a.children) {
		a.sentUp = true
		if ctx.ID() == 0 {
			a.answer = a.decide(a.acc)
			a.haveAnswer = true
		} else {
			w0, w1 := encodeAgg(a.acc)
			out = congest.AppendWordMessage(out, a.parent, kindUp, w0, w1, upBits(a.acc))
		}
	}

	// Broadcast: forward the verdict down the tree and terminate.
	if a.haveAnswer && !a.answered {
		a.answered = true
		for _, c := range a.children {
			out = congest.AppendWordMessage(out, c, kindDown, congest.WordFromBool(a.answer), 0, downBits)
		}
		ctx.SetOutput(a.answer)
	}

	a.outbox = out
	return out, a.answered
}

// runAggregate executes one aggregation stage on the runner: every node
// contributes local(v), the root evaluates decide over the combined
// aggregate, and the verdict every node agreed on is returned. It costs
// O(D) rounds and O(log n) bits per message.
func runAggregate(r engine.Runner, local func(v int) agg, decide func(agg) bool) (bool, error) {
	n := r.Size()
	inputs := make(map[int]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = aggInput{Local: local(v)}
	}
	factory := func(ctx *congest.Context) congest.Node { return newAggNode(ctx, decide) }
	res, err := r.RunStage(factory, inputs, 0)
	if err != nil {
		return false, err
	}
	out, ok := res.Outputs[0].(bool)
	if !ok {
		return false, fmt.Errorf("verify: aggregation root produced no verdict")
	}
	return out, nil
}
