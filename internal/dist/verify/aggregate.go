package verify

import (
	"fmt"

	"qdc/internal/congest"
	"qdc/internal/dist/engine"
)

// agg is the value combined up the BFS tree by the aggregation stage: one
// ANDed flag plus three summed counters. Every verification predicate in
// this package is a function of one such aggregate, so a single O(D)-round
// convergecast answers all of them.
type agg struct {
	// OK is ANDed across nodes (true when every node's local check passes).
	OK bool
	// Supported counts nodes with at least one incident M-edge.
	Supported int
	// Leaders counts supported nodes whose component label equals their ID,
	// i.e. the number of connected components of M.
	Leaders int
	// Degree sums the M-degrees, so Degree/2 is the number of M-edges.
	Degree int
}

func combine(a, b agg) agg {
	return agg{
		OK:        a.OK && b.OK,
		Supported: a.Supported + b.Supported,
		Leaders:   a.Leaders + b.Leaders,
		Degree:    a.Degree + b.Degree,
	}
}

// Message payloads of the aggregation stage. Every payload carries a small
// type tag (2 bits) plus its fields.
type (
	tokenMsg struct{ Dist int }     // BFS wave; Dist is the receiver's depth
	childMsg struct{ IsChild bool } // reply to a token
	upMsg    struct{ Agg agg }      // convergecast of the combined aggregate
	downMsg  struct{ Answer bool }  // broadcast of the root's verdict
)

const tagBits = engine.TagBits

func tokenBits(dist int) int { return tagBits + congest.BitsForInt(dist) }
func upBits(a agg) int {
	return tagBits + congest.BitsForBool +
		congest.BitsForInt(a.Supported) + congest.BitsForInt(a.Leaders) + congest.BitsForInt(a.Degree)
}

const (
	childBits = tagBits + congest.BitsForBool
	downBits  = tagBits + congest.BitsForBool
)

// aggInput is the per-node input of the aggregation stage: the node's local
// contribution, computed from its own problem input (and the outputs of its
// earlier stages, fed back to the same node).
type aggInput struct{ Local agg }

// aggNode implements the O(D)-round global aggregation: a BFS tree is grown
// from node 0 with explicit child detection, the aggregates are combined
// bottom-up along the tree, the root evaluates the decision predicate, and
// the one-bit verdict is broadcast back down. Every message is O(log n)
// bits, so the whole stage fits the CONGEST budget and — crucially for the
// degree-two check of Theorem 3.5 — finishes in O(D) rounds.
type aggNode struct {
	decide func(agg) bool

	acc        agg
	dist       int
	parent     int
	pending    map[int]struct{}
	children   []int
	childUps   int
	sentUp     bool
	answer     bool
	haveAnswer bool
	answered   bool
}

func newAggNode(ctx *congest.Context, decide func(agg) bool) *aggNode {
	in, _ := ctx.Input().(aggInput)
	return &aggNode{decide: decide, acc: in.Local, dist: -1, parent: -1}
}

func (a *aggNode) Init(ctx *congest.Context) {
	if ctx.ID() == 0 {
		a.dist = 0
	}
}

func (a *aggNode) Round(ctx *congest.Context, round int, inbox []congest.Message) ([]congest.Message, bool) {
	var out []congest.Message

	// The root starts the BFS wave in round 1.
	if round == 1 && ctx.ID() == 0 {
		a.pending = make(map[int]struct{})
		ctx.ForEachNeighbor(func(v int) {
			a.pending[v] = struct{}{}
			out = append(out, congest.NewMessage(v, tokenMsg{Dist: 1}, tokenBits(1)))
		})
	}

	var tokenSenders []int
	tokenDist := -1
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case tokenMsg:
			tokenSenders = append(tokenSenders, m.From)
			tokenDist = p.Dist
		case childMsg:
			delete(a.pending, m.From)
			if p.IsChild {
				a.children = append(a.children, m.From)
			}
		case upMsg:
			a.acc = combine(a.acc, p.Agg)
			a.childUps++
		case downMsg:
			a.answer = p.Answer
			a.haveAnswer = true
		}
	}

	if len(tokenSenders) > 0 {
		if a.dist == -1 {
			// First contact: adopt the wave, pick the smallest sender as
			// parent, reply to every sender, and extend the wave to all
			// remaining neighbours.
			a.dist = tokenDist
			a.parent = tokenSenders[0]
			for _, s := range tokenSenders {
				if s < a.parent {
					a.parent = s
				}
			}
			sender := make(map[int]struct{}, len(tokenSenders))
			for _, s := range tokenSenders {
				sender[s] = struct{}{}
				out = append(out, congest.NewMessage(s, childMsg{IsChild: s == a.parent}, childBits))
			}
			a.pending = make(map[int]struct{})
			ctx.ForEachNeighbor(func(v int) {
				if _, dup := sender[v]; dup {
					return
				}
				a.pending[v] = struct{}{}
				out = append(out, congest.NewMessage(v, tokenMsg{Dist: a.dist + 1}, tokenBits(a.dist+1)))
			})
		} else {
			// Late tokens from same-depth neighbours: decline.
			for _, s := range tokenSenders {
				out = append(out, congest.NewMessage(s, childMsg{IsChild: false}, childBits))
			}
		}
	}

	// Convergecast: once the child set is final and every child has
	// reported, push the combined aggregate towards the root.
	if !a.sentUp && a.dist != -1 && len(a.pending) == 0 && a.childUps == len(a.children) {
		a.sentUp = true
		if ctx.ID() == 0 {
			a.answer = a.decide(a.acc)
			a.haveAnswer = true
		} else {
			out = append(out, congest.NewMessage(a.parent, upMsg{Agg: a.acc}, upBits(a.acc)))
		}
	}

	// Broadcast: forward the verdict down the tree and terminate.
	if a.haveAnswer && !a.answered {
		a.answered = true
		for _, c := range a.children {
			out = append(out, congest.NewMessage(c, downMsg{Answer: a.answer}, downBits))
		}
		ctx.SetOutput(a.answer)
	}

	return out, a.answered
}

// runAggregate executes one aggregation stage on the runner: every node
// contributes local(v), the root evaluates decide over the combined
// aggregate, and the verdict every node agreed on is returned. It costs
// O(D) rounds and O(log n) bits per message.
func runAggregate(r engine.Runner, local func(v int) agg, decide func(agg) bool) (bool, error) {
	n := r.Size()
	inputs := make(map[int]any, n)
	for v := 0; v < n; v++ {
		inputs[v] = aggInput{Local: local(v)}
	}
	factory := func(ctx *congest.Context) congest.Node { return newAggNode(ctx, decide) }
	res, err := r.RunStage(factory, inputs, 0)
	if err != nil {
		return false, err
	}
	out, ok := res.Outputs[0].(bool)
	if !ok {
		return false, fmt.Errorf("verify: aggregation root produced no verdict")
	}
	return out, nil
}
