// Package lbnetwork constructs the lower-bound network N of Section 8 and
// Appendix D.1 of the paper (Figures 8, 9, 10 and 13): Γ parallel paths of L
// vertices each, together with k = log₂(L−1) "highway" paths of
// geometrically decreasing length that bring the hop diameter down to
// Θ(log L), plus cliques on the leftmost and rightmost columns into which
// the server-model players' perfect matchings E_C and E_D are embedded.
//
// The package also provides the time-indexed ownership partition
// S_C^t / S_D^t / S_S^t of Appendix D.2 that drives the three-party
// simulation in package simulation, and the embedding of a server-model
// Ham/Connectivity instance (two perfect matchings on Γ+k vertices) as a
// subnetwork M of N (Observation 8.1 / D.3).
package lbnetwork

import (
	"errors"
	"fmt"
	"math"

	"qdc/internal/graph"
)

// Errors returned by the constructors.
var (
	// ErrBadParams reports invalid construction parameters.
	ErrBadParams = errors.New("lbnetwork: invalid parameters")
	// ErrBadMatching reports an embedding input that is not a perfect
	// matching on the Γ+k endpoint vertices.
	ErrBadMatching = errors.New("lbnetwork: embedding requires perfect matchings on Γ+k vertices")
)

// Network is the constructed lower-bound network N.
type Network struct {
	// Graph is the topology of N.
	Graph *graph.Graph
	// Gamma is the number of ordinary paths P^1..P^Γ.
	Gamma int
	// L is the (rounded) number of vertices per path; L-1 is a power of two.
	L int
	// K is the number of highways, log₂(L−1).
	K int

	pathNodes    [][]int // pathNodes[p][j]: vertex of path p at position j (0-based)
	highwayNodes [][]int // highwayNodes[h]: vertices of highway h in position order
	highwayPos   [][]int // highwayPos[h]: the (0-based) positions of those vertices
	positions    []int   // positions[v]: column position of vertex v
}

// roundUpPathLength returns the smallest L' >= L with L'-1 a power of two
// and L' >= 3.
func roundUpPathLength(l int) int {
	if l < 3 {
		l = 3
	}
	p := 1
	for p+1 < l {
		p <<= 1
	}
	return p + 1
}

// RoundedDims returns the path length L and highway count K that
// New(gamma, pathLen) will realise: pathLen rounded up so that L−1 is a
// power of two (and L >= 3), and K = log₂(L−1). Callers that need to size
// resources for a network before (or without) building it — e.g. the
// experiment harness's ID-width bound — must use this instead of
// re-deriving the rounding rule.
func RoundedDims(pathLen int) (l, k int) {
	l = roundUpPathLength(pathLen)
	return l, int(math.Round(math.Log2(float64(l - 1))))
}

// New builds the network with gamma paths of pathLen vertices each (pathLen
// is rounded up so that pathLen−1 is a power of two, as in Appendix D.1).
func New(gamma, pathLen int) (*Network, error) {
	if gamma < 2 {
		return nil, fmt.Errorf("%w: need at least 2 paths, got %d", ErrBadParams, gamma)
	}
	l, k := RoundedDims(pathLen)

	nw := &Network{Gamma: gamma, L: l, K: k}
	g := graph.New(0)

	// Ordinary paths.
	nw.pathNodes = make([][]int, gamma)
	for p := 0; p < gamma; p++ {
		nw.pathNodes[p] = make([]int, l)
		for j := 0; j < l; j++ {
			nw.pathNodes[p][j] = g.AddVertex()
			if j > 0 {
				g.MustAddEdge(nw.pathNodes[p][j-1], nw.pathNodes[p][j], 1)
			}
		}
	}

	// Highways H^1..H^k: highway h has vertices at positions 0, 2^h, 2·2^h, …, L-1.
	nw.highwayNodes = make([][]int, k)
	nw.highwayPos = make([][]int, k)
	for h := 1; h <= k; h++ {
		step := 1 << h
		var nodes, positions []int
		for pos := 0; pos <= l-1; pos += step {
			v := g.AddVertex()
			if len(nodes) > 0 {
				g.MustAddEdge(nodes[len(nodes)-1], v, 1)
			}
			nodes = append(nodes, v)
			positions = append(positions, pos)
		}
		nw.highwayNodes[h-1] = nodes
		nw.highwayPos[h-1] = positions
	}

	// Vertical connections: highway 1 connects to every path at its
	// positions; highway h ≥ 2 connects to highway h−1 at its positions.
	for h := 1; h <= k; h++ {
		for idx, pos := range nw.highwayPos[h-1] {
			v := nw.highwayNodes[h-1][idx]
			if h == 1 {
				for p := 0; p < gamma; p++ {
					g.MustAddEdge(v, nw.pathNodes[p][pos], 1)
				}
			} else if lower, ok := nw.highwayNodeAt(h-1, pos); ok {
				g.MustAddEdge(v, lower, 1)
			}
		}
	}

	// Cliques on the leftmost and rightmost columns (path ends and highway
	// ends), into which E_C and E_D are embedded. Some of these pairs are
	// already joined by the vertical highway connections above.
	left := nw.LeftEndpoints()
	right := nw.RightEndpoints()
	for i := 0; i < len(left); i++ {
		for j := i + 1; j < len(left); j++ {
			if !g.HasEdge(left[i], left[j]) {
				g.MustAddEdge(left[i], left[j], 1)
			}
			if !g.HasEdge(right[i], right[j]) {
				g.MustAddEdge(right[i], right[j], 1)
			}
		}
	}

	// Column positions for fast owner lookups.
	nw.positions = make([]int, g.N())
	for p := 0; p < gamma; p++ {
		for j, v := range nw.pathNodes[p] {
			nw.positions[v] = j
		}
	}
	for h := 0; h < k; h++ {
		for idx, v := range nw.highwayNodes[h] {
			nw.positions[v] = nw.highwayPos[h][idx]
		}
	}

	nw.Graph = g
	return nw, nil
}

func (nw *Network) highwayNodeAt(h, pos int) (int, bool) {
	step := 1 << h
	if pos%step != 0 {
		return 0, false
	}
	idx := pos / step
	if idx >= len(nw.highwayNodes[h-1]) {
		return 0, false
	}
	return nw.highwayNodes[h-1][idx], true
}

// N returns the number of vertices of the network.
func (nw *Network) N() int { return nw.Graph.N() }

// EndpointCount returns Γ+k, the number of vertices of the embedded
// server-model input graph.
func (nw *Network) EndpointCount() int { return nw.Gamma + nw.K }

// PathNode returns the vertex of path p (0-based) at position j (0-based).
func (nw *Network) PathNode(p, j int) (int, error) {
	if p < 0 || p >= nw.Gamma || j < 0 || j >= nw.L {
		return 0, fmt.Errorf("%w: path node (%d,%d)", ErrBadParams, p, j)
	}
	return nw.pathNodes[p][j], nil
}

// HighwayNode returns the idx-th vertex of highway h (1-based h).
func (nw *Network) HighwayNode(h, idx int) (int, error) {
	if h < 1 || h > nw.K || idx < 0 || idx >= len(nw.highwayNodes[h-1]) {
		return 0, fmt.Errorf("%w: highway node (%d,%d)", ErrBadParams, h, idx)
	}
	return nw.highwayNodes[h-1][idx], nil
}

// LeftEndpoints returns the leftmost vertex of every path and highway, in
// the order paths 0..Γ−1 then highways 1..k. Index i of this slice is the
// network vertex playing the role of u_{i+1} of the server-model input
// graph.
func (nw *Network) LeftEndpoints() []int {
	out := make([]int, 0, nw.Gamma+nw.K)
	for p := 0; p < nw.Gamma; p++ {
		out = append(out, nw.pathNodes[p][0])
	}
	for h := 0; h < nw.K; h++ {
		out = append(out, nw.highwayNodes[h][0])
	}
	return out
}

// RightEndpoints returns the rightmost vertex of every path and highway, in
// the same order as LeftEndpoints.
func (nw *Network) RightEndpoints() []int {
	out := make([]int, 0, nw.Gamma+nw.K)
	for p := 0; p < nw.Gamma; p++ {
		out = append(out, nw.pathNodes[p][nw.L-1])
	}
	for h := 0; h < nw.K; h++ {
		out = append(out, nw.highwayNodes[h][len(nw.highwayNodes[h])-1])
	}
	return out
}

// PositionOf returns the column position (0..L−1) of a vertex and whether
// the vertex belongs to the network (clique edges do not change a vertex's
// column).
func (nw *Network) PositionOf(v int) (int, bool) {
	if v < 0 || v >= len(nw.positions) {
		return 0, false
	}
	return nw.positions[v], true
}

// Owner identifies which of the three simulation parties owns a vertex at a
// given time step (Appendix D.2).
type Owner int

// The three parties of the Server model.
const (
	OwnerCarol Owner = iota + 1
	OwnerDavid
	OwnerServer
)

// String implements fmt.Stringer.
func (o Owner) String() string {
	switch o {
	case OwnerCarol:
		return "Carol"
	case OwnerDavid:
		return "David"
	case OwnerServer:
		return "Server"
	default:
		return fmt.Sprintf("Owner(%d)", int(o))
	}
}

// OwnerAt returns the owner of vertex v at time t per the partition of
// Appendix D.2: Carol owns every vertex in the first t+1 columns, David owns
// every vertex in the last t+1 columns, and the server owns the rest.
// For t beyond the meaningful range (t > L/2 − 2) the frontiers keep growing
// and may overlap; callers enforce the round bound.
func (nw *Network) OwnerAt(v, t int) Owner {
	pos, ok := nw.PositionOf(v)
	if !ok {
		return OwnerServer
	}
	if t < 0 {
		t = 0
	}
	switch {
	case pos <= t:
		return OwnerCarol
	case pos >= nw.L-1-t:
		return OwnerDavid
	default:
		return OwnerServer
	}
}

// MaxSimulationRounds returns the largest number of rounds for which the
// Carol/David ownership frontiers are guaranteed not to meet, i.e. the
// L/2 − 2 bound of Theorem 3.5.
func (nw *Network) MaxSimulationRounds() int {
	r := nw.L/2 - 2
	if r < 1 {
		r = 1
	}
	return r
}
