package lbnetwork

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qdc/internal/graph"
)

func TestRoundUpPathLength(t *testing.T) {
	tests := []struct{ in, want int }{
		{1, 3}, {3, 3}, {4, 5}, {5, 5}, {6, 9}, {9, 9}, {10, 17}, {17, 17}, {100, 129},
	}
	for _, tc := range tests {
		if got := roundUpPathLength(tc.in); got != tc.want {
			t.Errorf("roundUpPathLength(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 9); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v, want ErrBadParams", err)
	}
}

// Observation D.2: the network has Θ(ΓL) vertices and diameter Θ(log L).
func TestObservationD2SizeAndDiameter(t *testing.T) {
	for _, tc := range []struct{ gamma, l int }{{4, 9}, {6, 17}, {8, 33}} {
		nw, err := New(tc.gamma, tc.l)
		if err != nil {
			t.Fatal(err)
		}
		if nw.L != tc.l {
			t.Fatalf("L = %d, want %d", nw.L, tc.l)
		}
		wantK := int(math.Round(math.Log2(float64(tc.l - 1))))
		if nw.K != wantK {
			t.Fatalf("K = %d, want %d", nw.K, wantK)
		}
		// Vertex count: Γ·L path vertices plus Σ_h ((L-1)/2^h + 1) highway vertices.
		highway := 0
		for h := 1; h <= nw.K; h++ {
			highway += (tc.l-1)/(1<<h) + 1
		}
		if nw.N() != tc.gamma*tc.l+highway {
			t.Fatalf("N = %d, want %d", nw.N(), tc.gamma*tc.l+highway)
		}
		if nw.N() < tc.gamma*tc.l || nw.N() > 3*tc.gamma*tc.l {
			t.Fatalf("N = %d not Θ(ΓL)", nw.N())
		}
		diam := nw.Graph.Diameter()
		if diam <= 0 {
			t.Fatal("network should be connected")
		}
		// Θ(log L): generous constant, but must be far below L.
		if diam > 6*wantK+6 {
			t.Fatalf("diameter %d too large for log L = %d", diam, wantK)
		}
		if diam >= tc.l-2 {
			t.Fatalf("diameter %d should be well below L = %d", diam, tc.l)
		}
	}
}

func TestDiameterGrowsLogarithmically(t *testing.T) {
	small, err := New(4, 17)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(4, 257)
	if err != nil {
		t.Fatal(err)
	}
	ds, db := small.Graph.Diameter(), big.Graph.Diameter()
	// L grows 16x; a Θ(log L) diameter should grow by roughly +4·const, not 16x.
	if db > 4*ds {
		t.Fatalf("diameter grew from %d to %d; not logarithmic", ds, db)
	}
}

func TestAccessors(t *testing.T) {
	nw, err := New(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.PathNode(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.PathNode(3, 0); !errors.Is(err, ErrBadParams) {
		t.Fatal("out-of-range path should fail")
	}
	if _, err := nw.HighwayNode(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.HighwayNode(0, 0); !errors.Is(err, ErrBadParams) {
		t.Fatal("highway index is 1-based")
	}
	left, right := nw.LeftEndpoints(), nw.RightEndpoints()
	if len(left) != nw.EndpointCount() || len(right) != nw.EndpointCount() {
		t.Fatalf("endpoint counts %d,%d want %d", len(left), len(right), nw.EndpointCount())
	}
	// Left endpoints are at position 0, right at L-1.
	for _, v := range left {
		if pos, ok := nw.PositionOf(v); !ok || pos != 0 {
			t.Fatalf("left endpoint %d at position %d", v, pos)
		}
	}
	for _, v := range right {
		if pos, ok := nw.PositionOf(v); !ok || pos != nw.L-1 {
			t.Fatalf("right endpoint %d at position %d", v, pos)
		}
	}
	if _, ok := nw.PositionOf(-1); ok {
		t.Fatal("invalid vertex should not have a position")
	}
	// Left endpoints form a clique.
	for i := 0; i < len(left); i++ {
		for j := i + 1; j < len(left); j++ {
			if !nw.Graph.HasEdge(left[i], left[j]) {
				t.Fatalf("left clique missing edge %d-%d", left[i], left[j])
			}
		}
	}
}

func TestOwnershipPartition(t *testing.T) {
	nw, err := New(3, 17)
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 Carol owns exactly the leftmost column, David the rightmost.
	for _, v := range nw.LeftEndpoints() {
		if nw.OwnerAt(v, 0) != OwnerCarol {
			t.Fatalf("left endpoint %d not owned by Carol at t=0", v)
		}
	}
	for _, v := range nw.RightEndpoints() {
		if nw.OwnerAt(v, 0) != OwnerDavid {
			t.Fatalf("right endpoint %d not owned by David at t=0", v)
		}
	}
	mid, err := nw.PathNode(1, nw.L/2)
	if err != nil {
		t.Fatal(err)
	}
	if nw.OwnerAt(mid, 0) != OwnerServer {
		t.Fatal("middle vertex should start with the server")
	}
	if nw.OwnerAt(mid, -3) != OwnerServer {
		t.Fatal("negative time clamps to 0")
	}
	// Frontiers grow monotonically and never overlap within the round bound.
	maxT := nw.MaxSimulationRounds()
	for tstep := 0; tstep <= maxT; tstep++ {
		carol, david := 0, 0
		for v := 0; v < nw.N(); v++ {
			switch nw.OwnerAt(v, tstep) {
			case OwnerCarol:
				carol++
			case OwnerDavid:
				david++
			}
		}
		wantPerSide := 0
		for pos := 0; pos <= tstep && pos < nw.L; pos++ {
			wantPerSide += nw.columnSize(pos)
		}
		if carol != wantPerSide {
			t.Fatalf("t=%d: Carol owns %d vertices, want %d", tstep, carol, wantPerSide)
		}
		if david == 0 || carol+david > nw.N() {
			t.Fatalf("t=%d: inconsistent ownership (carol=%d david=%d)", tstep, carol, david)
		}
	}
	if OwnerCarol.String() != "Carol" || OwnerDavid.String() != "David" || OwnerServer.String() != "Server" || Owner(9).String() == "" {
		t.Fatal("Owner.String broken")
	}
}

// columnSize counts the vertices in a column (test helper).
func (nw *Network) columnSize(pos int) int {
	count := 0
	for v := 0; v < nw.N(); v++ {
		if p, ok := nw.PositionOf(v); ok && p == pos {
			count++
		}
	}
	return count
}

func TestEmbedValidation(t *testing.T) {
	// Γ=5, L=9 gives K=3, so Γ+K=8 endpoint vertices (even, as perfect
	// matchings require).
	nw, err := New(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	u := nw.EndpointCount()
	good, _, err := graph.CyclePairings(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Embed(good[:1], good); !errors.Is(err, ErrBadMatching) {
		t.Fatal("short matching should fail")
	}
	bad := append([][2]int{}, good...)
	bad[0] = [2]int{0, 0}
	if _, err := nw.Embed(bad, good); !errors.Is(err, ErrBadMatching) {
		t.Fatal("self-pair should fail")
	}
	reuse := append([][2]int{}, good...)
	reuse[1] = good[0]
	if _, err := nw.Embed(reuse, good); !errors.Is(err, ErrBadMatching) {
		t.Fatal("vertex reuse should fail")
	}
}

// Observation 8.1 / D.3: the number of cycles of G equals the number of
// cycles of M; G Hamiltonian iff M Hamiltonian; G connected iff M connected.
func TestObservation81AndD3(t *testing.T) {
	nw, err := New(6, 17)
	if err != nil {
		t.Fatal(err)
	}
	u := nw.EndpointCount()

	// Single Hamiltonian cycle input.
	ec, ed, err := graph.CyclePairings(u)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := nw.Embed(ec, ed)
	if err != nil {
		t.Fatal(err)
	}
	if !emb.InputIsHamiltonian() || !emb.MIsHamiltonian() || !emb.MIsConnected() {
		t.Fatal("Hamiltonian input should embed to a Hamiltonian M")
	}
	if emb.InputCycleCount() != 1 || emb.MCycleCount() != 1 {
		t.Fatalf("cycle counts %d/%d, want 1/1", emb.InputCycleCount(), emb.MCycleCount())
	}

	// k-cycle inputs for several k.
	for k := 2; k <= u/4; k++ {
		ec, ed, err := graph.KCyclePairings(u, k)
		if err != nil {
			t.Fatal(err)
		}
		emb, err := nw.Embed(ec, ed)
		if err != nil {
			t.Fatal(err)
		}
		if emb.InputCycleCount() != k {
			t.Fatalf("k=%d: input has %d cycles", k, emb.InputCycleCount())
		}
		if emb.MCycleCount() != k {
			t.Fatalf("k=%d: M has %d cycles, want %d (Observation 8.1)", k, emb.MCycleCount(), k)
		}
		if emb.MIsHamiltonian() || emb.MIsConnected() {
			t.Fatalf("k=%d: M should be disconnected and non-Hamiltonian", k)
		}
	}
}

// Property: for random perfect matchings, cycle counts of G and M agree.
func TestQuickObservation81Random(t *testing.T) {
	nw, err := New(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	u := nw.EndpointCount()
	if u%2 != 0 {
		t.Fatalf("test setup: Γ+K = %d must be even", u)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ec, err := graph.RandomPerfectMatchingPairs(u, rng)
		if err != nil {
			return false
		}
		ed, err := graph.RandomPerfectMatchingPairs(u, rng)
		if err != nil {
			return false
		}
		emb, err := nw.Embed(ec, ed)
		if err != nil {
			return false
		}
		return emb.InputCycleCount() == emb.MCycleCount() &&
			emb.InputIsHamiltonian() == emb.MIsHamiltonian() &&
			emb.InputGraph.IsConnected() == emb.MIsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSimulationRounds(t *testing.T) {
	nw, err := New(3, 33)
	if err != nil {
		t.Fatal(err)
	}
	if nw.MaxSimulationRounds() != 33/2-2 {
		t.Fatalf("MaxSimulationRounds = %d", nw.MaxSimulationRounds())
	}
	tiny, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.MaxSimulationRounds() < 1 {
		t.Fatal("round bound should clamp to at least 1")
	}
}
