package lbnetwork

import (
	"fmt"

	"qdc/internal/graph"
)

// Embedding is a server-model graph instance G = (U, E_C ∪ E_D) embedded as
// a subnetwork M of the lower-bound network N (Section 8 / Appendix D.2).
type Embedding struct {
	// InputGraph is the Γ+k-vertex server-model input graph G.
	InputGraph *graph.Graph
	// M is the embedded subnetwork of N: every path and highway edge, plus
	// the left-clique edges selected by E_C and the right-clique edges
	// selected by E_D.
	M *graph.EdgeSet
	// MGraph is M materialised as a graph on N's vertex set.
	MGraph *graph.Graph
	// CarolEdges and DavidEdges are the clique edges of M contributed by
	// E_C and E_D respectively.
	CarolEdges, DavidEdges *graph.EdgeSet
}

// Embed builds the subnetwork M of N corresponding to the server-model
// input (E_C, E_D): Carol marks left-clique edge (v^i_1, v^j_1) iff
// (u_i, u_j) ∈ E_C, David marks the corresponding right-clique edges, and
// the server marks every path and highway edge. The matchings must be
// perfect matchings on the Γ+k endpoint indices 0..Γ+k−1.
func (nw *Network) Embed(ec, ed [][2]int) (*Embedding, error) {
	u := nw.EndpointCount()
	for _, m := range [][][2]int{ec, ed} {
		if err := checkPerfectMatching(u, m); err != nil {
			return nil, err
		}
	}

	inputGraph := graph.New(u)
	for _, p := range ec {
		if err := inputGraph.AddEdge(p[0], p[1], 1); err != nil {
			return nil, fmt.Errorf("%w: E_C edge (%d,%d): %v", ErrBadMatching, p[0], p[1], err)
		}
	}
	for _, p := range ed {
		// E_C and E_D may share an edge (a 2-cycle in G); M still contains
		// the corresponding left and right clique edges separately.
		if !inputGraph.HasEdge(p[0], p[1]) {
			if err := inputGraph.AddEdge(p[0], p[1], 1); err != nil {
				return nil, fmt.Errorf("%w: E_D edge (%d,%d): %v", ErrBadMatching, p[0], p[1], err)
			}
		}
	}

	m := graph.NewEdgeSet()
	carol := graph.NewEdgeSet()
	david := graph.NewEdgeSet()

	// Server: every path and highway edge.
	for p := 0; p < nw.Gamma; p++ {
		for j := 0; j+1 < nw.L; j++ {
			m.Add(nw.pathNodes[p][j], nw.pathNodes[p][j+1])
		}
	}
	for h := 0; h < nw.K; h++ {
		nodes := nw.highwayNodes[h]
		for idx := 0; idx+1 < len(nodes); idx++ {
			m.Add(nodes[idx], nodes[idx+1])
		}
	}

	// Carol: left-clique edges selected by E_C.
	left := nw.LeftEndpoints()
	for _, p := range ec {
		carol.Add(left[p[0]], left[p[1]])
		m.Add(left[p[0]], left[p[1]])
	}
	// David: right-clique edges selected by E_D.
	right := nw.RightEndpoints()
	for _, p := range ed {
		david.Add(right[p[0]], right[p[1]])
		m.Add(right[p[0]], right[p[1]])
	}

	return &Embedding{
		InputGraph: inputGraph,
		M:          m,
		MGraph:     m.Subgraph(nw.Graph),
		CarolEdges: carol,
		DavidEdges: david,
	}, nil
}

func checkPerfectMatching(n int, pairs [][2]int) error {
	if len(pairs)*2 != n {
		return fmt.Errorf("%w: %d pairs for %d vertices", ErrBadMatching, len(pairs), n)
	}
	seen := make([]bool, n)
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n || p[0] == p[1] {
			return fmt.Errorf("%w: pair (%d,%d)", ErrBadMatching, p[0], p[1])
		}
		if seen[p[0]] || seen[p[1]] {
			return fmt.Errorf("%w: vertex reused in pair (%d,%d)", ErrBadMatching, p[0], p[1])
		}
		seen[p[0]], seen[p[1]] = true, true
	}
	return nil
}

// InputCycleCount returns the number of cycles of the server-model input
// graph G (the union of the two perfect matchings).
func (e *Embedding) InputCycleCount() int {
	_, c := e.InputGraph.ConnectedComponents()
	return c
}

// MCycleCount returns the number of cycles of the embedded subnetwork M.
// Observation 8.1 states that it always equals InputCycleCount.
func (e *Embedding) MCycleCount() int {
	// Restrict to vertices touched by M (all of them are, but keep the
	// computation on the materialised subgraph).
	_, c := e.MGraph.ConnectedComponents()
	// Components that are isolated vertices (none in this construction)
	// would not be cycles; count only components that contain an edge.
	isolated := 0
	for v := 0; v < e.MGraph.N(); v++ {
		if e.MGraph.Degree(v) == 0 {
			isolated++
		}
	}
	return c - isolated
}

// InputIsHamiltonian reports whether G is a single Hamiltonian cycle.
func (e *Embedding) InputIsHamiltonian() bool { return e.InputGraph.IsHamiltonianCycle() }

// MIsHamiltonian reports whether M is a Hamiltonian cycle of N (covers every
// vertex of N). By Observation D.3 this holds iff G is a Hamiltonian cycle.
func (e *Embedding) MIsHamiltonian() bool { return e.MGraph.IsHamiltonianCycle() }

// MIsConnected reports whether M is connected (the property used by the
// gap-connectivity / MST argument of Theorem 3.8).
func (e *Embedding) MIsConnected() bool { return e.MGraph.IsConnected() }
