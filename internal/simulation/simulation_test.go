package simulation

import (
	"errors"
	"testing"

	"qdc/internal/dist/verify"
	"qdc/internal/graph"
	"qdc/internal/lbnetwork"
)

func buildNetwork(t *testing.T, gamma, l int) *lbnetwork.Network {
	t.Helper()
	nw, err := lbnetwork.New(gamma, l)
	if err != nil {
		t.Fatal(err)
	}
	if nw.EndpointCount()%2 != 0 {
		t.Fatalf("test setup: Γ+K = %d must be even", nw.EndpointCount())
	}
	return nw
}

func TestNewRunnerValidation(t *testing.T) {
	if _, err := NewRunner(nil, 64, 1); !errors.Is(err, ErrNilNetwork) {
		t.Fatalf("err = %v, want ErrNilNetwork", err)
	}
}

// Theorem 3.5's accounting: an algorithm that finishes within the L/2 − 2
// round budget induces a three-party simulation in which Carol and David
// together send at most O(B·log L·T) bits. The degree-two check (the first
// step of the paper's own Ham/MST reductions) is such an algorithm.
func TestTheorem35AccountingDegreeCheck(t *testing.T) {
	nw := buildNetwork(t, 8, 257)
	u := nw.EndpointCount()

	for name, build := range map[string]func() ([][2]int, [][2]int, error){
		"hamiltonian": func() ([][2]int, [][2]int, error) { return graph.CyclePairings(u) },
		"two-cycles":  func() ([][2]int, [][2]int, error) { return graph.TwoCyclePairings(u) },
	} {
		t.Run(name, func(t *testing.T) {
			ec, ed, err := build()
			if err != nil {
				t.Fatal(err)
			}
			emb, err := nw.Embed(ec, ed)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRunner(nw, 64, 1)
			if err != nil {
				t.Fatal(err)
			}
			out, err := verify.DegreeTwoCheck(r, nw.Graph, emb.M)
			if err != nil {
				t.Fatal(err)
			}
			// Every vertex of M has degree 2 by construction (paths/highways
			// plus one matching edge at each end), so the check accepts.
			if !out.Answer {
				t.Fatal("degree-two check should accept the embedded M")
			}
			rep := r.Report()
			if !rep.WithinRoundBudget {
				t.Fatalf("degree check took %d rounds, budget %d", rep.Rounds, nw.MaxSimulationRounds())
			}
			if !rep.WithinTheoremBound {
				t.Fatalf("server-model cost %d exceeds theorem bound %d", rep.ServerModelCost, rep.TheoremBound)
			}
			if rep.ServerModelCost <= 0 {
				t.Fatal("the simulation should charge some Carol/David communication")
			}
			if rep.CarolBits+rep.DavidBits != rep.ServerModelCost {
				t.Fatal("cost bookkeeping inconsistent")
			}
			if r.FreeServerBits() == 0 {
				t.Fatal("server should forward some messages for free")
			}
		})
	}
}

// The charged cost is tiny compared with the total traffic of the algorithm:
// that is the whole point of the Server-model accounting (only the O(log L)
// highway frontier edges are charged per round).
func TestChargedCostMuchSmallerThanTotalTraffic(t *testing.T) {
	nw := buildNetwork(t, 7, 33)
	u := nw.EndpointCount()
	ec, ed, err := graph.CyclePairings(u)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := nw.Embed(ec, ed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(nw, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.DegreeTwoCheck(r, nw.Graph, emb.M); err != nil {
		t.Fatal(err)
	}
	total := r.Stats().Bits
	charged := r.ServerModelCost()
	if charged*4 > total {
		t.Fatalf("charged cost %d is not small compared with total traffic %d", charged, total)
	}
	if r.CrossingMessages() == 0 {
		t.Fatal("some messages must cross ownership regions")
	}
	if r.Bandwidth() != 64 || r.Size() != nw.N() {
		t.Fatal("runner metadata wrong")
	}
}

// The contrapositive side of Theorem 3.5: a full, correct Hamiltonian-cycle
// verification cannot finish within the L/2 − 2 budget on this network (that
// is exactly what the Ω̃(√n) lower bound predicts); the simulation still
// runs, reports the correct answer, and flags that the round budget was
// exceeded.
func TestFullVerificationExceedsRoundBudget(t *testing.T) {
	nw := buildNetwork(t, 6, 17)
	u := nw.EndpointCount()
	ec, ed, err := graph.CyclePairings(u)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := nw.Embed(ec, ed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(nw, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := verify.HamiltonianCycle(r, nw.Graph, emb.M)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Answer {
		t.Fatal("embedded Hamiltonian instance should verify as Hamiltonian")
	}
	rep := r.Report()
	if rep.WithinRoundBudget {
		t.Fatalf("a full verification in %d rounds would violate the lower bound (budget %d)",
			rep.Rounds, nw.MaxSimulationRounds())
	}

	// A non-Hamiltonian embedded instance is correctly rejected as well.
	ec2, ed2, err := graph.KCyclePairings(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	emb2, err := nw.Embed(ec2, ed2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(nw, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := verify.HamiltonianCycle(r2, nw.Graph, emb2.M)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Answer {
		t.Fatal("two-cycle instance accepted as Hamiltonian")
	}
}

// The per-round bound scales with B and log L as the theorem states.
func TestPerRoundBoundScaling(t *testing.T) {
	small := buildNetwork(t, 6, 17)
	large := buildNetwork(t, 6, 65)
	rSmall, err := NewRunner(small, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rLarge, err := NewRunner(large, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rLarge.PerRoundBound() <= rSmall.PerRoundBound() {
		t.Fatal("per-round bound should grow with log L")
	}
	rWide, err := NewRunner(small, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rWide.PerRoundBound() != 2*rSmall.PerRoundBound() {
		t.Fatal("per-round bound should scale linearly with B")
	}
}
