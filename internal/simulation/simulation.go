// Package simulation makes the Quantum Simulation Theorem (Theorem 3.5,
// Section 8 / Appendix D.2 of the paper) executable: it runs an arbitrary
// CONGEST algorithm on the lower-bound network N of package lbnetwork while
// re-accounting every message to the three parties of the Server model.
//
// At time t Carol owns the first t+1 columns of N, David owns the last t+1
// columns, and the server owns everything in between. A message sent in
// round t whose sender is owned by Carol (or David) but whose receiver will
// be owned by a different party must actually be communicated by Carol
// (respectively David) and is charged to the Server-model cost; every other
// message is simulated locally by its owner (or sent by the server) for
// free. The theorem states that as long as the algorithm finishes within
// L/2 − 2 rounds, the charged cost is O(B·log L) per round — only the O(log L)
// highway edges ever cross the ownership frontier — and therefore
// O(B·log L·T) in total.
//
// The Runner type implements engine.Runner, so every distributed algorithm
// in internal/dist can be executed under this accounting without change.
package simulation

import (
	"errors"
	"fmt"

	"qdc/internal/congest"
	"qdc/internal/dist/engine"
	"qdc/internal/lbnetwork"
)

// ErrNilNetwork reports a runner constructed without a lower-bound network.
var ErrNilNetwork = errors.New("simulation: nil network")

// Runner executes CONGEST stages on the lower-bound network while measuring
// the Server-model communication of the induced three-party simulation.
type Runner struct {
	net        *lbnetwork.Network
	congestNet *congest.Network
	cancel     func() bool
	obs        engine.StageObserver
	stats      engine.Stats

	carolBits  int64
	davidBits  int64
	serverBits int64
	// crossingMessages counts messages that had to be communicated between
	// parties (charged or not).
	crossingMessages int
}

// NewRunner returns a simulation runner over the lower-bound network.
func NewRunner(net *lbnetwork.Network, bandwidth int, seed int64) (*Runner, error) {
	if net == nil {
		return nil, ErrNilNetwork
	}
	cn, err := congest.NewNetwork(net.Graph, bandwidth)
	if err != nil {
		return nil, fmt.Errorf("simulation: %w", err)
	}
	cn.SetSeed(seed)
	return &Runner{net: net, congestNet: cn}, nil
}

// RunStage implements engine.Runner. Ownership time continues across stages:
// the t-th round of the whole multi-stage execution uses the partition S^t.
func (r *Runner) RunStage(factory congest.NodeFactory, inputs map[int]any, maxRounds int) (*congest.Result, error) {
	r.congestNet.ClearInputs()
	for id, in := range inputs {
		r.congestNet.SetInput(id, in)
	}
	baseRound := r.stats.Rounds
	budget := r.net.MaxSimulationRounds()
	trace := func(round int, msg congest.Message) {
		t := baseRound + round // global 1-based round index
		// Ownership indices are capped at the theorem's round budget; past
		// that point the frontiers would meet and the accounting below
		// over-charges, which is the conservative direction.
		prodTime := t - 1
		consTime := t
		if prodTime > budget {
			prodTime = budget
		}
		if consTime > budget {
			consTime = budget
		}
		producer := r.net.OwnerAt(msg.From, prodTime)
		consumer := r.net.OwnerAt(msg.To, consTime)
		if producer == consumer {
			return
		}
		r.crossingMessages++
		switch producer {
		case lbnetwork.OwnerCarol:
			r.carolBits += int64(msg.Bits)
		case lbnetwork.OwnerDavid:
			r.davidBits += int64(msg.Bits)
		default:
			r.serverBits += int64(msg.Bits)
		}
	}
	res, err := r.congestNet.Run(factory, congest.Options{MaxRounds: maxRounds, Trace: trace, Cancel: r.cancel, PerRound: r.obs != nil})
	if res != nil {
		r.stats.Stages++
		r.stats.Rounds += res.Rounds
		r.stats.Messages += res.TotalMessages
		r.stats.Bits += res.TotalBits
		r.stats.QuantumBits += res.QuantumBits
		if r.obs != nil {
			r.obs.StageDone(res)
		}
	}
	if err != nil {
		return res, fmt.Errorf("simulation: stage %d: %w", r.stats.Stages, err)
	}
	return res, nil
}

// SetCancel installs a cancellation poll checked at every round boundary of
// subsequent stages; see congest.Options.Cancel.
func (r *Runner) SetCancel(cancel func() bool) { r.cancel = cancel }

// SetObserver installs a per-stage observer for subsequent stages; nil
// removes it. See engine.StageObserver.
func (r *Runner) SetObserver(obs engine.StageObserver) { r.obs = obs }

// Bandwidth implements engine.Runner.
func (r *Runner) Bandwidth() int { return r.congestNet.Bandwidth() }

// Size implements engine.Runner.
func (r *Runner) Size() int { return r.congestNet.Size() }

// Stats implements engine.Runner.
func (r *Runner) Stats() engine.Stats { return r.stats }

// CarolBits returns the bits charged to Carol (messages produced by
// Carol-owned nodes that another party had to receive).
func (r *Runner) CarolBits() int64 { return r.carolBits }

// DavidBits returns the bits charged to David.
func (r *Runner) DavidBits() int64 { return r.davidBits }

// ServerModelCost returns the Server-model cost of the simulated execution:
// the bits sent by Carol plus the bits sent by David (server messages are
// free, exactly as in Definition 3.1).
func (r *Runner) ServerModelCost() int64 { return r.carolBits + r.davidBits }

// FreeServerBits returns the bits carried by messages between ownership
// regions that the server produced (communicated for free).
func (r *Runner) FreeServerBits() int64 { return r.serverBits }

// CrossingMessages returns the number of messages that crossed ownership
// regions (charged or free).
func (r *Runner) CrossingMessages() int { return r.crossingMessages }

// PerRoundBound returns the per-round Server-model cost bound of the
// theorem's accounting: Carol and David each need to forward at most the
// messages on the O(log L) highway frontier edges plus the state hand-off of
// the single highway vertex entering their region, i.e. at most 3·k·B bits
// each, 6·k·B in total per round (Appendix D.2).
func (r *Runner) PerRoundBound() int64 {
	return int64(6 * r.net.K * r.Bandwidth())
}

// TheoremBound returns the total Server-model cost bound O(B·log L·T) for
// the number of rounds executed so far.
func (r *Runner) TheoremBound() int64 {
	return r.PerRoundBound() * int64(r.stats.Rounds)
}

// WithinRoundBudget reports whether the execution finished within the
// L/2 − 2 round budget under which Theorem 3.5's accounting is exact.
func (r *Runner) WithinRoundBudget() bool {
	return r.stats.Rounds <= r.net.MaxSimulationRounds()
}

// Report summarises a simulated execution for the experiment harness.
type Report struct {
	// Rounds is the total number of rounds across all stages.
	Rounds int
	// CarolBits, DavidBits and ServerModelCost are the charged costs.
	CarolBits, DavidBits, ServerModelCost int64
	// TheoremBound is the O(B·log L·T) bound for the executed rounds.
	TheoremBound int64
	// WithinRoundBudget reports whether Rounds <= L/2 − 2.
	WithinRoundBudget bool
	// WithinTheoremBound reports whether the measured Server-model cost is
	// at most the theorem's bound.
	WithinTheoremBound bool
}

// Report returns the current summary.
func (r *Runner) Report() Report {
	return Report{
		Rounds:             r.stats.Rounds,
		CarolBits:          r.carolBits,
		DavidBits:          r.davidBits,
		ServerModelCost:    r.ServerModelCost(),
		TheoremBound:       r.TheoremBound(),
		WithinRoundBudget:  r.WithinRoundBudget(),
		WithinTheoremBound: r.ServerModelCost() <= r.TheoremBound(),
	}
}

// Compile-time interface check.
var _ engine.Runner = (*Runner)(nil)
