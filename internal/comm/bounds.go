package comm

import "math"

// This file contains the closed-form communication-complexity lower bounds
// proved (or invoked) by the paper for the two-party and Server models.
// They are the quantities that the experiment harness compares against the
// measured costs of the explicit protocols in this package.

// BinaryEntropy returns H(p) = -p·log2(p) - (1-p)·log2(1-p), with the usual
// convention H(0) = H(1) = 0.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// FoolingSetQuantumLowerBound returns the Klauck–de Wolf style one-sided
// error quantum lower bound used in Section 6:
//
//	Q*_{0,1/2}(f) ≥ log2(fool1(f))/4 − 1/2,
//
// where fool1 is the size of a 1-fooling set for f.
func FoolingSetQuantumLowerBound(foolingSetLog2 float64) float64 {
	b := foolingSetLog2/4 - 0.5
	if b < 0 {
		return 0
	}
	return b
}

// GilbertVarshamovFoolingLog2 returns log2 of the size of the 1-fooling set
// for (βn)-Eq_n built from a binary code of relative distance 2β via the
// Gilbert–Varshamov bound: log2|C| ≥ (1 − H(2β))·n, valid for β < 1/4.
func GilbertVarshamovFoolingLog2(n int, beta float64) float64 {
	if n <= 0 || beta <= 0 || beta >= 0.25 {
		return 0
	}
	rate := 1 - BinaryEntropy(2*beta)
	if rate < 0 {
		rate = 0
	}
	return rate * float64(n)
}

// GapEqualityServerLowerBound returns the Ω(n) server-model lower bound of
// Theorem 6.1 for (βn)-Eq_n with one-sided error, obtained by combining the
// AND-game argument of Lemma 3.2 with the Gilbert–Varshamov fooling set.
func GapEqualityServerLowerBound(n int, beta float64) float64 {
	return FoolingSetQuantumLowerBound(GilbertVarshamovFoolingLog2(n, beta))
}

// IPMod3ServerLowerBound returns the Ω(n) two-sided error server-model
// lower bound of Theorem 6.1 for IPmod3_n.
//
// The constant follows the proof in Appendix B.3: the promise version of
// IPmod3_n is the block composition f ∘ g^{n/4} of a mod-3 counting function
// f on n/4 variables with a strongly balanced 4-bit gadget g whose spectral
// norm is 2√2; Lemma B.4 then gives
//
//	Q*_{sv}(IPmod3_n) ≥ deg_{1/3}(f)·log2(√16 / 2√2)/4 − O(1)
//	                  = Θ(n/4)·(1/2)/4 − O(1) ≈ n/32 − O(1).
//
// The returned value is the explicit form max(0, n/32 − 1).
func IPMod3ServerLowerBound(n int) float64 {
	b := float64(n)/32 - 1
	if b < 0 {
		return 0
	}
	return b
}

// DisjointnessClassicalLowerBound returns the classical randomized
// two-party lower bound Ω(n) for Set Disjointness (Kalyanasundaram–Schnitger
// / Razborov), with the explicit constant n/4 used for reporting.
func DisjointnessClassicalLowerBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / 4
}

// DisjointnessQuantumUpperBound returns the Θ(√n) quantum communication
// upper bound for Set Disjointness (Aaronson–Ambainis, cited in
// Example 1.1), used as the cost model for large instances.
func DisjointnessQuantumUpperBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Sqrt(float64(n))
}

// EqualityRandomizedUpperBound returns the O(log n) public-coin upper bound
// achieved by the fingerprinting protocol, for comparison in reports.
func EqualityRandomizedUpperBound(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Log2(float64(n))
}
