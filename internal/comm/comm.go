// Package comm implements the communication-complexity substrate of the
// paper: the standard two-party model (Alice and Bob) and the Server model
// of Definition 3.1 (Carol, David, and a server that can talk for free but
// receives no input).
//
// The package provides
//
//   - the boolean problems the paper works with (Equality, Gap Equality,
//     Set Disjointness, Inner Product mod 3),
//   - explicit protocols for them with exact bit accounting under the two
//     cost measures (two-party cost counts everything Alice and Bob exchange;
//     server-model cost counts only the bits *sent by* Carol and David),
//   - the classical simulation argument of Section 3.1 showing that the
//     Server model and the two-party model are equivalent classically, and
//   - the lower-bound calculators used by Theorems 3.4, 3.6, 3.8 and
//     Corollary 3.10 (fooling sets, the Gilbert–Varshamov bound, the
//     γ₂-norm/approximate-degree bound for IPmod3, and the gadget
//     reductions' transfer of those bounds to Ham and ST).
package comm

import (
	"errors"
	"fmt"
)

// Party identifies a participant in a protocol.
type Party int

// Parties of the two models. Alice/Bob belong to the two-party model,
// Carol/David/Server to the Server model.
const (
	Alice Party = iota + 1
	Bob
	Carol
	David
	Server
)

// String implements fmt.Stringer.
func (p Party) String() string {
	switch p {
	case Alice:
		return "Alice"
	case Bob:
		return "Bob"
	case Carol:
		return "Carol"
	case David:
		return "David"
	case Server:
		return "Server"
	default:
		return fmt.Sprintf("Party(%d)", int(p))
	}
}

// Model identifies the communication model a protocol runs in.
type Model int

// Supported models.
const (
	// ModelTwoParty is the standard two-party model (Alice and Bob).
	ModelTwoParty Model = iota + 1
	// ModelServer is the Server model of Definition 3.1.
	ModelServer
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelTwoParty:
		return "two-party"
	case ModelServer:
		return "server"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// MessageRecord is one message of a transcript.
type MessageRecord struct {
	From, To Party
	Bits     int
	Label    string
}

// Transcript records every message sent during a protocol run and computes
// the cost under each model's accounting rule.
type Transcript struct {
	records []MessageRecord
}

// NewTranscript returns an empty transcript.
func NewTranscript() *Transcript { return &Transcript{} }

// Record appends a message of the given size. Negative sizes are clamped to
// zero.
func (t *Transcript) Record(from, to Party, bits int, label string) {
	if bits < 0 {
		bits = 0
	}
	t.records = append(t.records, MessageRecord{From: from, To: to, Bits: bits, Label: label})
}

// Records returns a copy of the recorded messages in order.
func (t *Transcript) Records() []MessageRecord {
	out := make([]MessageRecord, len(t.records))
	copy(out, t.records)
	return out
}

// TotalBits returns the total number of bits of all messages regardless of
// sender (informational; neither model charges for server messages).
func (t *Transcript) TotalBits() int {
	sum := 0
	for _, r := range t.records {
		sum += r.Bits
	}
	return sum
}

// TwoPartyCost returns the two-party communication cost: all bits exchanged
// between Alice and Bob.
func (t *Transcript) TwoPartyCost() int {
	sum := 0
	for _, r := range t.records {
		if (r.From == Alice || r.From == Bob) && (r.To == Alice || r.To == Bob) {
			sum += r.Bits
		}
	}
	return sum
}

// ServerCost returns the Server-model communication cost of Definition 3.1:
// only bits *sent by* Carol or David are counted; everything the server
// sends is free.
func (t *Transcript) ServerCost() int {
	sum := 0
	for _, r := range t.records {
		if r.From == Carol || r.From == David {
			sum += r.Bits
		}
	}
	return sum
}

// BitsSentBy returns the number of bits sent by the given party.
func (t *Transcript) BitsSentBy(p Party) int {
	sum := 0
	for _, r := range t.records {
		if r.From == p {
			sum += r.Bits
		}
	}
	return sum
}

// Errors shared by problems and protocols.
var (
	// ErrBadInput reports inputs that are malformed (wrong length, non-bits).
	ErrBadInput = errors.New("comm: malformed input")
	// ErrPromiseViolated reports inputs outside a promise problem's promise.
	ErrPromiseViolated = errors.New("comm: input violates the problem's promise")
)

// Problem is a two-input boolean function, possibly with a promise.
type Problem interface {
	// Name returns a short human-readable name.
	Name() string
	// InputLen returns the length of each player's input string.
	InputLen() int
	// Validate reports whether (x, y) is a legal input (length, alphabet,
	// and promise).
	Validate(x, y []int) error
	// Evaluate returns f(x, y) in {0, 1} for a legal input.
	Evaluate(x, y []int) (int, error)
}

func checkBitString(n int, x, y []int) error {
	if len(x) != n || len(y) != n || n == 0 {
		return fmt.Errorf("%w: want two strings of length %d, got %d and %d", ErrBadInput, n, len(x), len(y))
	}
	for i := 0; i < n; i++ {
		if x[i] != 0 && x[i] != 1 || y[i] != 0 && y[i] != 1 {
			return fmt.Errorf("%w: non-bit symbol at position %d", ErrBadInput, i)
		}
	}
	return nil
}
