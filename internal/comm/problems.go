package comm

import "fmt"

// Equality is the Eq_n problem: f(x, y) = 1 iff x = y.
type Equality struct {
	// N is the input length in bits.
	N int
}

// NewEquality returns the Eq_n problem.
func NewEquality(n int) Equality { return Equality{N: n} }

// Name implements Problem.
func (p Equality) Name() string { return fmt.Sprintf("Eq_%d", p.N) }

// InputLen implements Problem.
func (p Equality) InputLen() int { return p.N }

// Validate implements Problem.
func (p Equality) Validate(x, y []int) error { return checkBitString(p.N, x, y) }

// Evaluate implements Problem.
func (p Equality) Evaluate(x, y []int) (int, error) {
	if err := p.Validate(x, y); err != nil {
		return 0, err
	}
	for i := range x {
		if x[i] != y[i] {
			return 0, nil
		}
	}
	return 1, nil
}

// GapEquality is the δ-Eq_n promise problem of Section 6: the players are
// promised that either x = y or the Hamming distance Δ(x, y) exceeds Delta;
// they must output 1 iff x = y.
type GapEquality struct {
	// N is the input length; Delta is the gap parameter δ.
	N, Delta int
}

// NewGapEquality returns the δ-Eq_n problem.
func NewGapEquality(n, delta int) GapEquality { return GapEquality{N: n, Delta: delta} }

// Name implements Problem.
func (p GapEquality) Name() string { return fmt.Sprintf("%d-Eq_%d", p.Delta, p.N) }

// InputLen implements Problem.
func (p GapEquality) InputLen() int { return p.N }

// Validate implements Problem.
func (p GapEquality) Validate(x, y []int) error {
	if err := checkBitString(p.N, x, y); err != nil {
		return err
	}
	dist := 0
	for i := range x {
		if x[i] != y[i] {
			dist++
		}
	}
	if dist != 0 && dist <= p.Delta {
		return fmt.Errorf("%w: Hamming distance %d is in (0, %d]", ErrPromiseViolated, dist, p.Delta)
	}
	return nil
}

// Evaluate implements Problem.
func (p GapEquality) Evaluate(x, y []int) (int, error) {
	if err := p.Validate(x, y); err != nil {
		return 0, err
	}
	for i := range x {
		if x[i] != y[i] {
			return 0, nil
		}
	}
	return 1, nil
}

// Disjointness is the Set Disjointness problem Disj_n of Example 1.1:
// f(x, y) = 1 iff the inner product ⟨x, y⟩ is zero (the sets are disjoint).
type Disjointness struct {
	// N is the input length in bits.
	N int
}

// NewDisjointness returns the Disj_n problem.
func NewDisjointness(n int) Disjointness { return Disjointness{N: n} }

// Name implements Problem.
func (p Disjointness) Name() string { return fmt.Sprintf("Disj_%d", p.N) }

// InputLen implements Problem.
func (p Disjointness) InputLen() int { return p.N }

// Validate implements Problem.
func (p Disjointness) Validate(x, y []int) error { return checkBitString(p.N, x, y) }

// Evaluate implements Problem.
func (p Disjointness) Evaluate(x, y []int) (int, error) {
	if err := p.Validate(x, y); err != nil {
		return 0, err
	}
	for i := range x {
		if x[i] == 1 && y[i] == 1 {
			return 0, nil
		}
	}
	return 1, nil
}

// InnerProductMod3 is the IPmod3_n problem of Section 6: f(x, y) = 1 iff
// Σ x_i·y_i ≡ 0 (mod 3).
type InnerProductMod3 struct {
	// N is the input length in bits.
	N int
}

// NewInnerProductMod3 returns the IPmod3_n problem.
func NewInnerProductMod3(n int) InnerProductMod3 { return InnerProductMod3{N: n} }

// Name implements Problem.
func (p InnerProductMod3) Name() string { return fmt.Sprintf("IPmod3_%d", p.N) }

// InputLen implements Problem.
func (p InnerProductMod3) InputLen() int { return p.N }

// Validate implements Problem.
func (p InnerProductMod3) Validate(x, y []int) error { return checkBitString(p.N, x, y) }

// Evaluate implements Problem.
func (p InnerProductMod3) Evaluate(x, y []int) (int, error) {
	if err := p.Validate(x, y); err != nil {
		return 0, err
	}
	sum := 0
	for i := range x {
		sum += x[i] * y[i]
	}
	if sum%3 == 0 {
		return 1, nil
	}
	return 0, nil
}

// Compile-time interface checks.
var (
	_ Problem = Equality{}
	_ Problem = GapEquality{}
	_ Problem = Disjointness{}
	_ Problem = InnerProductMod3{}
)
