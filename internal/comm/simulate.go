package comm

import (
	"fmt"
	"math/rand"
)

// This file implements the two simulation arguments discussed in
// Section 3.1 of the paper.
//
//  1. The Server model can trivially simulate the two-party model: Carol and
//     David just behave like Alice and Bob and ignore the server. Hence
//     server-model lower bounds imply two-party lower bounds.
//
//  2. Classically, the two-party model can simulate the Server model with no
//     overhead: Alice simulates Carol and the server, Bob simulates David
//     and the server; every bit Carol sends to the server must be forwarded
//     to Bob (and vice versa), so the two-party cost equals the number of
//     bits Carol and David send — exactly the server-model cost. (It is this
//     second direction that breaks in the quantum setting and forces the
//     paper to prove its hardness results directly in the Server model.)

// ServerFromTwoParty lifts a two-party protocol into the Server model with
// identical cost: Carol plays Alice's part, David plays Bob's.
type ServerFromTwoParty struct {
	// Inner is the two-party protocol to lift.
	Inner Protocol
}

// Name implements Protocol.
func (p ServerFromTwoParty) Name() string { return "server<-twoparty/" + p.Inner.Name() }

// Model implements Protocol.
func (ServerFromTwoParty) Model() Model { return ModelServer }

// Problem implements Protocol.
func (p ServerFromTwoParty) Problem() Problem { return p.Inner.Problem() }

// Run implements Protocol.
func (p ServerFromTwoParty) Run(x, y []int, rng *rand.Rand) (int, *Transcript, error) {
	if p.Inner.Model() != ModelTwoParty {
		return 0, nil, fmt.Errorf("%w: inner protocol is not two-party", ErrBadInput)
	}
	out, inner, err := p.Inner.Run(x, y, rng)
	if err != nil {
		return 0, nil, err
	}
	t := NewTranscript()
	for _, r := range inner.Records() {
		from, to := relabelToServerModel(r.From), relabelToServerModel(r.To)
		t.Record(from, to, r.Bits, r.Label)
	}
	return out, t, nil
}

func relabelToServerModel(p Party) Party {
	switch p {
	case Alice:
		return Carol
	case Bob:
		return David
	default:
		return p
	}
}

// TwoPartyFromServer implements the classical simulation of a server-model
// protocol by two parties (the deterministic/public-coin argument sketched
// in Section 3.1): Alice additionally simulates the server's interaction
// with Carol, Bob simulates the server's interaction with David, and each
// player forwards to the other exactly the bits that Carol respectively
// David send to the server. The resulting two-party cost therefore equals
// the server-model cost of the inner protocol.
type TwoPartyFromServer struct {
	// Inner is the server-model protocol to simulate.
	Inner Protocol
}

// Name implements Protocol.
func (p TwoPartyFromServer) Name() string { return "twoparty<-server/" + p.Inner.Name() }

// Model implements Protocol.
func (TwoPartyFromServer) Model() Model { return ModelTwoParty }

// Problem implements Protocol.
func (p TwoPartyFromServer) Problem() Problem { return p.Inner.Problem() }

// Run implements Protocol.
func (p TwoPartyFromServer) Run(x, y []int, rng *rand.Rand) (int, *Transcript, error) {
	if p.Inner.Model() != ModelServer {
		return 0, nil, fmt.Errorf("%w: inner protocol is not a server-model protocol", ErrBadInput)
	}
	out, inner, err := p.Inner.Run(x, y, rng)
	if err != nil {
		return 0, nil, err
	}
	t := NewTranscript()
	for _, r := range inner.Records() {
		switch r.From {
		case Carol:
			// Whatever Carol tells the server (or David) must reach Bob so
			// that he can keep simulating his copy of the server.
			t.Record(Alice, Bob, r.Bits, r.Label)
		case David:
			t.Record(Bob, Alice, r.Bits, r.Label)
		case Server:
			// Server messages are simulated locally by both players: free.
		default:
			t.Record(r.From, r.To, r.Bits, r.Label)
		}
	}
	return out, t, nil
}

// Compile-time interface checks.
var (
	_ Protocol = ServerFromTwoParty{}
	_ Protocol = TwoPartyFromServer{}
)
