package comm

import (
	"fmt"
	"math/rand"

	"qdc/internal/quantum"
)

// Protocol is an executable communication protocol for a Problem.
type Protocol interface {
	// Name returns a short human-readable name.
	Name() string
	// Model returns the model the protocol is stated in.
	Model() Model
	// Problem returns the problem the protocol computes.
	Problem() Problem
	// Run executes the protocol on inputs (x, y) and returns the output bit
	// and the full transcript. rng supplies the protocol's (public)
	// randomness; deterministic protocols ignore it.
	Run(x, y []int, rng *rand.Rand) (int, *Transcript, error)
}

// SendAllTwoParty is the trivial deterministic two-party protocol: Alice
// sends her entire input to Bob, Bob computes the answer and sends it back.
// Its cost n+1 is the deterministic upper bound every lower bound is
// compared against.
type SendAllTwoParty struct {
	// P is the problem being solved.
	P Problem
}

// Name implements Protocol.
func (p SendAllTwoParty) Name() string { return "send-all/" + p.P.Name() }

// Model implements Protocol.
func (SendAllTwoParty) Model() Model { return ModelTwoParty }

// Problem implements Protocol.
func (p SendAllTwoParty) Problem() Problem { return p.P }

// Run implements Protocol.
func (p SendAllTwoParty) Run(x, y []int, _ *rand.Rand) (int, *Transcript, error) {
	if err := p.P.Validate(x, y); err != nil {
		return 0, nil, err
	}
	t := NewTranscript()
	t.Record(Alice, Bob, len(x), "x")
	out, err := p.P.Evaluate(x, y)
	if err != nil {
		return 0, nil, err
	}
	t.Record(Bob, Alice, 1, "answer")
	return out, t, nil
}

// SendAllServer is the trivial server-model protocol: Carol sends her input
// to the server (every bit she sends is charged), the server forwards it to
// David for free, and David announces the answer.
type SendAllServer struct {
	// P is the problem being solved.
	P Problem
}

// Name implements Protocol.
func (p SendAllServer) Name() string { return "send-all-server/" + p.P.Name() }

// Model implements Protocol.
func (SendAllServer) Model() Model { return ModelServer }

// Problem implements Protocol.
func (p SendAllServer) Problem() Problem { return p.P }

// Run implements Protocol.
func (p SendAllServer) Run(x, y []int, _ *rand.Rand) (int, *Transcript, error) {
	if err := p.P.Validate(x, y); err != nil {
		return 0, nil, err
	}
	t := NewTranscript()
	t.Record(Carol, Server, len(x), "x")
	t.Record(Server, David, len(x), "relay x") // free under server accounting
	out, err := p.P.Evaluate(x, y)
	if err != nil {
		return 0, nil, err
	}
	t.Record(David, Server, 1, "answer")
	t.Record(Server, Carol, 1, "relay answer")
	return out, t, nil
}

// fingerprintPrime is a fixed Mersenne prime (2^61 - 1) used for the
// polynomial fingerprinting protocol; the error probability per repetition
// is at most n / fingerprintPrime.
const fingerprintPrime = uint64(1)<<61 - 1

// FingerprintEquality is the classic O(log n)-bit public-coin randomized
// protocol for Equality: both players evaluate their input as a polynomial
// at a shared random point modulo a large prime and compare the values.
// It has one-sided error (inputs with x = y are never rejected), which is
// what makes Equality easy in the randomized two-party model — in contrast
// with the Ω(n) bound that survives for the *gap* version in the server
// model (Theorem 6.1).
type FingerprintEquality struct {
	// N is the input length.
	N int
}

// Name implements Protocol.
func (p FingerprintEquality) Name() string { return fmt.Sprintf("fingerprint/Eq_%d", p.N) }

// Model implements Protocol.
func (FingerprintEquality) Model() Model { return ModelTwoParty }

// Problem implements Protocol.
func (p FingerprintEquality) Problem() Problem { return NewEquality(p.N) }

// Run implements Protocol.
func (p FingerprintEquality) Run(x, y []int, rng *rand.Rand) (int, *Transcript, error) {
	prob := NewEquality(p.N)
	if err := prob.Validate(x, y); err != nil {
		return 0, nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	// Shared random evaluation point (public coins are free).
	point := uint64(rng.Int63())%(fingerprintPrime-2) + 1
	ha := polyEval(x, point)
	hb := polyEval(y, point)
	t := NewTranscript()
	t.Record(Alice, Bob, 64, "fingerprint")
	out := 0
	if ha == hb {
		out = 1
	}
	t.Record(Bob, Alice, 1, "answer")
	return out, t, nil
}

func polyEval(bits []int, point uint64) uint64 {
	// Horner evaluation of Σ bits[i]·point^i over GF(fingerprintPrime),
	// using 128-bit intermediate products via math/bits-free splitting.
	var acc uint64
	for i := len(bits) - 1; i >= 0; i-- {
		acc = mulmod(acc, point, fingerprintPrime)
		acc = (acc + uint64(bits[i])) % fingerprintPrime
	}
	return acc
}

func mulmod(a, b, m uint64) uint64 {
	var res uint64
	a %= m
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % m
		}
		a = (a * 2) % m
		b >>= 1
	}
	return res
}

// QuantumDisjointness is the Grover-based quantum protocol for Set
// Disjointness in the style of Buhrman–Cleve–Wigderson (and, with better
// polylog factors, Aaronson–Ambainis as cited in Example 1.1): the players
// run Grover search for an index i with x_i = y_i = 1, exchanging
// O(log n) qubits per oracle query, for O(√n) queries in total.
//
// For tractable input sizes the protocol actually runs Grover on the
// state-vector simulator; the per-query communication is charged as
// 2·(⌈log₂ n⌉ + 1) qubits (the index register there and back plus the
// answer qubit), so the measured cost scales as O(√n·log n).
type QuantumDisjointness struct {
	// N is the input length.
	N int
}

// Name implements Protocol.
func (p QuantumDisjointness) Name() string { return fmt.Sprintf("grover/Disj_%d", p.N) }

// Model implements Protocol.
func (QuantumDisjointness) Model() Model { return ModelTwoParty }

// Problem implements Protocol.
func (p QuantumDisjointness) Problem() Problem { return NewDisjointness(p.N) }

// QueryBits returns the number of (qu)bits exchanged per Grover query.
func (p QuantumDisjointness) QueryBits() int {
	logN := 1
	for 1<<logN < p.N {
		logN++
	}
	return 2 * (logN + 1)
}

// Run implements Protocol.
func (p QuantumDisjointness) Run(x, y []int, rng *rand.Rand) (int, *Transcript, error) {
	prob := NewDisjointness(p.N)
	if err := prob.Validate(x, y); err != nil {
		return 0, nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	oracle := func(i int) bool { return i < p.N && x[i] == 1 && y[i] == 1 }
	res, err := quantum.GroverSearch(p.N, 1, oracle, rng)
	if err != nil {
		return 0, nil, fmt.Errorf("comm: grover search: %w", err)
	}
	t := NewTranscript()
	perQuery := p.QueryBits()
	for q := 0; q < res.OracleQueries; q++ {
		// Alice sends the index register to Bob, Bob applies his half of
		// the oracle and returns it. Both directions are charged.
		t.Record(Alice, Bob, perQuery/2, "grover query")
		t.Record(Bob, Alice, perQuery/2, "grover response")
	}
	// Final classical verification of the measured candidate index.
	t.Record(Alice, Bob, 1+quantumIndexBits(p.N), "candidate index")
	t.Record(Bob, Alice, 1, "verdict")
	if res.IsMarked {
		return 0, t, nil // intersection found: not disjoint
	}
	return 1, t, nil
}

func quantumIndexBits(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

// Compile-time interface checks.
var (
	_ Protocol = SendAllTwoParty{}
	_ Protocol = SendAllServer{}
	_ Protocol = FingerprintEquality{}
	_ Protocol = QuantumDisjointness{}
)
