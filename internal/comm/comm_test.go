package comm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func bits(s string) []int {
	out := make([]int, len(s))
	for i, c := range s {
		if c == '1' {
			out[i] = 1
		}
	}
	return out
}

func TestTranscriptCosts(t *testing.T) {
	tr := NewTranscript()
	tr.Record(Alice, Bob, 10, "a")
	tr.Record(Bob, Alice, 1, "b")
	tr.Record(Carol, Server, 7, "c")
	tr.Record(Server, David, 100, "free")
	tr.Record(David, Server, 3, "d")
	tr.Record(Alice, Bob, -5, "clamped")

	if got := tr.TwoPartyCost(); got != 11 {
		t.Fatalf("TwoPartyCost = %d, want 11", got)
	}
	if got := tr.ServerCost(); got != 10 {
		t.Fatalf("ServerCost = %d, want 10", got)
	}
	if got := tr.TotalBits(); got != 121 {
		t.Fatalf("TotalBits = %d, want 121", got)
	}
	if got := tr.BitsSentBy(Server); got != 100 {
		t.Fatalf("BitsSentBy(Server) = %d, want 100", got)
	}
	if len(tr.Records()) != 6 {
		t.Fatalf("records = %d, want 6", len(tr.Records()))
	}
}

func TestPartyAndModelStrings(t *testing.T) {
	if Alice.String() != "Alice" || Server.String() != "Server" || Party(99).String() == "" {
		t.Fatal("Party.String broken")
	}
	if ModelServer.String() != "server" || ModelTwoParty.String() != "two-party" || Model(9).String() == "" {
		t.Fatal("Model.String broken")
	}
}

func TestProblems(t *testing.T) {
	tests := []struct {
		p    Problem
		x, y string
		want int
	}{
		{NewEquality(4), "1010", "1010", 1},
		{NewEquality(4), "1010", "1011", 0},
		{NewDisjointness(4), "1010", "0101", 1},
		{NewDisjointness(4), "1010", "0110", 0},
		{NewInnerProductMod3(3), "111", "111", 1},
		{NewInnerProductMod3(3), "110", "110", 0},
		{NewInnerProductMod3(6), "111111", "111111", 1},
		{NewGapEquality(4, 2), "1010", "1010", 1},
		{NewGapEquality(4, 2), "1010", "0101", 0},
	}
	for _, tc := range tests {
		t.Run(tc.p.Name(), func(t *testing.T) {
			got, err := tc.p.Evaluate(bits(tc.x), bits(tc.y))
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("%s(%s,%s) = %d, want %d", tc.p.Name(), tc.x, tc.y, got, tc.want)
			}
		})
	}
}

func TestProblemValidation(t *testing.T) {
	eq := NewEquality(3)
	if err := eq.Validate(bits("101"), bits("10")); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want bad input", err)
	}
	if err := eq.Validate([]int{0, 1, 2}, []int{0, 1, 1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want bad input", err)
	}
	gap := NewGapEquality(4, 2)
	if err := gap.Validate(bits("1010"), bits("1011")); !errors.Is(err, ErrPromiseViolated) {
		t.Fatalf("err = %v, want promise violated", err)
	}
	if err := gap.Validate(bits("1010"), bits("0101")); err != nil {
		t.Fatalf("distance 4 > 2 should satisfy the promise, err = %v", err)
	}
	if _, err := eq.Evaluate(bits("1"), bits("1")); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v", err)
	}
}

func TestProblemNamesAndLens(t *testing.T) {
	if NewEquality(8).Name() != "Eq_8" || NewEquality(8).InputLen() != 8 {
		t.Fatal("Equality metadata wrong")
	}
	if NewGapEquality(8, 2).Name() != "2-Eq_8" {
		t.Fatal("GapEquality name wrong")
	}
	if NewDisjointness(5).InputLen() != 5 || NewInnerProductMod3(5).InputLen() != 5 {
		t.Fatal("InputLen wrong")
	}
}

func TestSendAllTwoParty(t *testing.T) {
	p := SendAllTwoParty{P: NewEquality(6)}
	out, tr, err := p.Run(bits("101010"), bits("101010"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Fatalf("out = %d, want 1", out)
	}
	if tr.TwoPartyCost() != 7 {
		t.Fatalf("cost = %d, want 7", tr.TwoPartyCost())
	}
	if p.Model() != ModelTwoParty || p.Problem().Name() != "Eq_6" || p.Name() == "" {
		t.Fatal("metadata wrong")
	}
	if _, _, err := p.Run(bits("1"), bits("101010"), nil); err == nil {
		t.Fatal("bad input should fail")
	}
}

func TestSendAllServer(t *testing.T) {
	p := SendAllServer{P: NewDisjointness(5)}
	out, tr, err := p.Run(bits("10001"), bits("01010"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Fatalf("out = %d, want 1", out)
	}
	// Carol sends 5 bits, David 1 bit; server relays are free.
	if tr.ServerCost() != 6 {
		t.Fatalf("server cost = %d, want 6", tr.ServerCost())
	}
	if tr.TotalBits() <= tr.ServerCost() {
		t.Fatal("server relays should appear in TotalBits but not in ServerCost")
	}
	if p.Model() != ModelServer {
		t.Fatal("model wrong")
	}
	if _, _, err := p.Run(bits("1"), bits("0"), nil); err == nil {
		t.Fatal("bad input should fail")
	}
}

func TestFingerprintEqualityCorrectOnEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := FingerprintEquality{N: 128}
	x := make([]int, 128)
	for i := range x {
		x[i] = rng.Intn(2)
	}
	for trial := 0; trial < 20; trial++ {
		out, tr, err := p.Run(x, x, rng)
		if err != nil {
			t.Fatal(err)
		}
		if out != 1 {
			t.Fatal("fingerprinting rejected equal inputs (one-sided error violated)")
		}
		if tr.TwoPartyCost() != 65 {
			t.Fatalf("cost = %d, want 65", tr.TwoPartyCost())
		}
	}
}

func TestFingerprintEqualityDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := FingerprintEquality{N: 64}
	x := make([]int, 64)
	y := make([]int, 64)
	for i := range x {
		x[i] = rng.Intn(2)
		y[i] = x[i]
	}
	y[10] ^= 1
	wrong := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		out, _, err := p.Run(x, y, rng)
		if err != nil {
			t.Fatal(err)
		}
		if out == 1 {
			wrong++
		}
	}
	if wrong > 0 {
		// Error probability is ~ n/2^61 per trial; any failure indicates a bug.
		t.Fatalf("fingerprinting accepted unequal inputs %d/%d times", wrong, trials)
	}
	if p.Model() != ModelTwoParty || p.Problem().InputLen() != 64 {
		t.Fatal("metadata wrong")
	}
	if _, _, err := p.Run(bits("10"), bits("10"), rng); err == nil {
		t.Fatal("length mismatch with declared N should fail")
	}
}

func TestFingerprintCheaperThanTrivial(t *testing.T) {
	n := 4096
	x := make([]int, n)
	rng := rand.New(rand.NewSource(5))
	fp := FingerprintEquality{N: n}
	triv := SendAllTwoParty{P: NewEquality(n)}
	_, trFP, err := fp.Run(x, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, trTriv, err := triv.Run(x, x, rng)
	if err != nil {
		t.Fatal(err)
	}
	if trFP.TwoPartyCost() >= trTriv.TwoPartyCost() {
		t.Fatalf("fingerprint cost %d should beat trivial cost %d", trFP.TwoPartyCost(), trTriv.TwoPartyCost())
	}
}

func TestQuantumDisjointnessCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := QuantumDisjointness{N: 64}
	// Disjoint instance.
	x := make([]int, 64)
	y := make([]int, 64)
	for i := 0; i < 64; i += 2 {
		x[i] = 1
		y[i+1] = 1
	}
	out, tr, err := p.Run(x, y, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Fatalf("disjoint instance: out = %d, want 1", out)
	}
	if tr.TwoPartyCost() == 0 {
		t.Fatal("protocol should have non-zero cost")
	}
	// Intersecting instance: Grover succeeds with high probability; repeat a
	// few runs and require at least one detection (one-sided behaviour).
	y[0] = 1 // x[0] = y[0] = 1
	detected := false
	for trial := 0; trial < 10; trial++ {
		out, _, err = p.Run(x, y, rng)
		if err != nil {
			t.Fatal(err)
		}
		if out == 0 {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("intersecting instance never detected across 10 runs")
	}
}

func TestQuantumDisjointnessCostScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cost := func(n int) int {
		p := QuantumDisjointness{N: n}
		x := make([]int, n)
		y := make([]int, n)
		_, tr, err := p.Run(x, y, rng)
		if err != nil {
			t.Fatal(err)
		}
		return tr.TwoPartyCost()
	}
	c64, c1024 := cost(64), cost(1024)
	classical := 1024
	if c1024 >= classical {
		t.Fatalf("quantum cost %d should beat classical %d at n=1024", c1024, classical)
	}
	// Cost should grow roughly like √n·log n: ratio for 16x the size should
	// be far below 16.
	if ratio := float64(c1024) / float64(c64); ratio > 8 {
		t.Fatalf("cost ratio %g too steep for a √n·log n protocol", ratio)
	}
	if got := (QuantumDisjointness{N: 64}).QueryBits(); got != 2*(6+1) {
		t.Fatalf("QueryBits = %d", got)
	}
}

func TestServerFromTwoParty(t *testing.T) {
	inner := SendAllTwoParty{P: NewEquality(8)}
	wrapped := ServerFromTwoParty{Inner: inner}
	x := bits("10110011")
	out, tr, err := wrapped.Run(x, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Fatalf("out = %d, want 1", out)
	}
	_, innerTr, err := inner.Run(x, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ServerCost() != innerTr.TwoPartyCost() {
		t.Fatalf("server cost %d != two-party cost %d", tr.ServerCost(), innerTr.TwoPartyCost())
	}
	if wrapped.Model() != ModelServer || wrapped.Problem().Name() != "Eq_8" || wrapped.Name() == "" {
		t.Fatal("metadata wrong")
	}
	// Wrapping a server protocol is rejected.
	bad := ServerFromTwoParty{Inner: SendAllServer{P: NewEquality(8)}}
	if _, _, err := bad.Run(x, x, nil); err == nil {
		t.Fatal("wrapping a non-two-party protocol should fail")
	}
}

func TestTwoPartyFromServer(t *testing.T) {
	inner := SendAllServer{P: NewDisjointness(8)}
	sim := TwoPartyFromServer{Inner: inner}
	x, y := bits("10101010"), bits("01010101")
	out, tr, err := sim.Run(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != 1 {
		t.Fatalf("out = %d, want 1", out)
	}
	_, innerTr, err := inner.Run(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Section 3.1 argument: two-party simulation cost equals the
	// server-model cost (server messages are simulated for free).
	if tr.TwoPartyCost() != innerTr.ServerCost() {
		t.Fatalf("simulated cost %d != server cost %d", tr.TwoPartyCost(), innerTr.ServerCost())
	}
	if sim.Model() != ModelTwoParty || sim.Name() == "" || sim.Problem().Name() != "Disj_8" {
		t.Fatal("metadata wrong")
	}
	bad := TwoPartyFromServer{Inner: SendAllTwoParty{P: NewEquality(8)}}
	if _, _, err := bad.Run(x, x, nil); err == nil {
		t.Fatal("wrapping a non-server protocol should fail")
	}
}

func TestBinaryEntropy(t *testing.T) {
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Fatal("H(0)=H(1)=0 expected")
	}
	if math.Abs(BinaryEntropy(0.5)-1) > 1e-12 {
		t.Fatalf("H(0.5) = %g, want 1", BinaryEntropy(0.5))
	}
	if math.Abs(BinaryEntropy(0.25)-0.811278) > 1e-5 {
		t.Fatalf("H(0.25) = %g", BinaryEntropy(0.25))
	}
}

func TestLowerBoundFormulas(t *testing.T) {
	// IPmod3 bound is Ω(n): linear growth.
	if IPMod3ServerLowerBound(3200) <= IPMod3ServerLowerBound(1600) {
		t.Fatal("IPmod3 bound should grow with n")
	}
	if IPMod3ServerLowerBound(8) != 0 {
		t.Fatal("tiny n should clamp to 0")
	}
	if got := IPMod3ServerLowerBound(3200); math.Abs(got-99) > 1e-9 {
		t.Fatalf("IPMod3ServerLowerBound(3200) = %g, want 99", got)
	}
	// Gap equality bound is Ω(n) for fixed beta < 1/4.
	b1 := GapEqualityServerLowerBound(1000, 0.1)
	b2 := GapEqualityServerLowerBound(2000, 0.1)
	if b1 <= 0 || b2 < 1.8*b1 {
		t.Fatalf("GapEq bound not linear: %g, %g", b1, b2)
	}
	if GapEqualityServerLowerBound(1000, 0.3) != 0 {
		t.Fatal("beta >= 1/4 is outside the construction's range")
	}
	if GapEqualityServerLowerBound(0, 0.1) != 0 {
		t.Fatal("n=0 should give 0")
	}
	// Fooling set bound formula.
	if got := FoolingSetQuantumLowerBound(100); math.Abs(got-24.5) > 1e-9 {
		t.Fatalf("fooling bound = %g, want 24.5", got)
	}
	if FoolingSetQuantumLowerBound(1) != 0 {
		t.Fatal("small fooling sets clamp to 0")
	}
	// Disjointness bounds.
	if DisjointnessClassicalLowerBound(100) != 25 || DisjointnessClassicalLowerBound(-1) != 0 {
		t.Fatal("Disj classical bound wrong")
	}
	if math.Abs(DisjointnessQuantumUpperBound(100)-10) > 1e-9 || DisjointnessQuantumUpperBound(0) != 0 {
		t.Fatal("Disj quantum bound wrong")
	}
	if EqualityRandomizedUpperBound(1024) != 10 || EqualityRandomizedUpperBound(1) != 1 {
		t.Fatal("Eq randomized upper bound wrong")
	}
}

// Property: the trivial protocols always agree with direct evaluation, and
// protocol costs respect the documented accounting.
func TestQuickTrivialProtocolsCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		x := make([]int, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.Intn(2)
			y[i] = rng.Intn(2)
		}
		problems := []Problem{NewEquality(n), NewDisjointness(n), NewInnerProductMod3(n)}
		for _, prob := range problems {
			want, err := prob.Evaluate(x, y)
			if err != nil {
				return false
			}
			out2, tr2, err := SendAllTwoParty{P: prob}.Run(x, y, rng)
			if err != nil || out2 != want || tr2.TwoPartyCost() != n+1 {
				return false
			}
			outS, trS, err := SendAllServer{P: prob}.Run(x, y, rng)
			if err != nil || outS != want || trS.ServerCost() != n+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the server-model cost of the lifted protocol equals the
// two-party cost of the original, and vice versa for the simulation — the
// classical equivalence of Section 3.1.
func TestQuickModelEquivalenceCosts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		x := make([]int, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.Intn(2)
			y[i] = rng.Intn(2)
		}
		two := SendAllTwoParty{P: NewDisjointness(n)}
		srv := ServerFromTwoParty{Inner: two}
		back := TwoPartyFromServer{Inner: srv}
		_, trTwo, err := two.Run(x, y, rng)
		if err != nil {
			return false
		}
		_, trSrv, err := srv.Run(x, y, rng)
		if err != nil {
			return false
		}
		_, trBack, err := back.Run(x, y, rng)
		if err != nil {
			return false
		}
		return trSrv.ServerCost() == trTwo.TwoPartyCost() &&
			trBack.TwoPartyCost() == trSrv.ServerCost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
