package qdc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qdc/internal/bounds"
	"qdc/internal/comm"
	"qdc/internal/dist/disjointness"
	"qdc/internal/dist/engine"
	"qdc/internal/dist/mst"
	"qdc/internal/dist/verify"
	"qdc/internal/gadgets"
	"qdc/internal/graph"
	"qdc/internal/lbnetwork"
	"qdc/internal/simulation"
)

// ErrBadParameters reports invalid experiment parameters.
var ErrBadParameters = errors.New("qdc: invalid parameters")

// VerificationLowerBound returns the Ω(√(n/(B log n))) quantum round lower
// bound of Theorem 3.6 / Corollary 3.7.
func VerificationLowerBound(n, bandwidth int) float64 {
	return bounds.VerificationLowerBound(float64(n), float64(bandwidth))
}

// MSTLowerBound returns the Ω(min(W/α, √n)/√(B log n)) quantum round lower
// bound of Theorem 3.8 / Corollary 3.9.
func MSTLowerBound(n, bandwidth int, aspectRatio, alpha float64) float64 {
	return bounds.OptimizationLowerBound(float64(n), float64(bandwidth), aspectRatio, alpha)
}

// Figure2Table returns the evaluated Figure 2 table.
func Figure2Table(n, bandwidth int, aspectRatio, alpha float64) ([]bounds.Figure2Row, error) {
	return bounds.Figure2Table(n, bandwidth, aspectRatio, alpha)
}

// Figure3Curve returns the evaluated Figure 3 curves.
func Figure3Curve(n, bandwidth int, diameter, alpha float64, ws []float64) ([]bounds.Figure3Point, error) {
	return bounds.Figure3Curve(n, bandwidth, diameter, alpha, ws)
}

// ServerModelTable returns the evaluated server-model hardness table
// (Theorem 3.4 / Theorem 6.1 / Corollary 3.10).
func ServerModelTable(n int) []bounds.ServerModelRow {
	return bounds.ServerModelTable(n)
}

// ProofPipelineResult is the outcome of running the paper's full proof
// pipeline (Figure 1) on one concrete instance.
type ProofPipelineResult struct {
	// InputBits is the IPmod3 input length n.
	InputBits int
	// IPMod3Value is the function value (1 iff Σ x_i·y_i ≡ 0 mod 3).
	IPMod3Value int
	// GadgetNodes is the size of the Ham instance produced by the
	// Section 7 reduction.
	GadgetNodes int
	// GadgetIsHamiltonian reports whether the reduction output is a
	// Hamiltonian cycle (must equal IPMod3Value == 0).
	GadgetIsHamiltonian bool
	// ServerLowerBoundBits is the Ω(n) server-model bound transported
	// through the reduction.
	ServerLowerBoundBits float64
	// NetworkNodes and NetworkDiameter describe the lower-bound network the
	// instance is embedded into.
	NetworkNodes, NetworkDiameter int
	// EmbeddedMatchesGadget reports Observation 8.1/D.3: the embedded
	// subnetwork M is Hamiltonian exactly when the gadget graph is.
	EmbeddedMatchesGadget bool
	// SimulationReport is the Theorem 3.5 accounting for the O(D)-round
	// degree-two check run on the embedded instance.
	SimulationReport simulation.Report
	// DistributedLowerBound is the resulting Ω(√(n/(B log n))) bound for the
	// network size used.
	DistributedLowerBound float64
}

// RunProofPipeline executes the whole chain of Figure 1 on a random IPmod3
// instance of the given length: gadget reduction, server-model bound,
// embedding into the lower-bound network, and the three-party simulation of
// a fast distributed algorithm, verifying the structural facts along the way.
func RunProofPipeline(inputBits, bandwidth int, seed int64) (*ProofPipelineResult, error) {
	if inputBits < 1 || bandwidth < 64 {
		return nil, fmt.Errorf("%w: inputBits=%d bandwidth=%d (need >=1 and >=64)", ErrBadParameters, inputBits, bandwidth)
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]int, inputBits)
	y := make([]int, inputBits)
	for i := range x {
		x[i] = rng.Intn(2)
		y[i] = rng.Intn(2)
	}
	ip, err := gadgets.IPMod3Value(x, y)
	if err != nil {
		return nil, err
	}
	red, err := gadgets.IPMod3ToHam(x, y)
	if err != nil {
		return nil, err
	}

	// Embed the gadget instance into a lower-bound network whose endpoint
	// count equals the gadget graph's vertex count.
	endpoints := red.NumNodes()
	const pathLen = 17
	nw, err := lbnetwork.New(endpoints-highwayCountFor(pathLen), pathLen)
	if err != nil {
		return nil, err
	}
	emb, err := nw.Embed(red.CarolEdges.Pairs(), red.DavidEdges.Pairs())
	if err != nil {
		return nil, err
	}

	runner, err := simulation.NewRunner(nw, bandwidth, seed)
	if err != nil {
		return nil, err
	}
	if _, err := verify.DegreeTwoCheck(runner, nw.Graph, emb.M); err != nil {
		return nil, err
	}

	return &ProofPipelineResult{
		InputBits:             inputBits,
		IPMod3Value:           ip,
		GadgetNodes:           red.NumNodes(),
		GadgetIsHamiltonian:   red.IsHamiltonian(),
		ServerLowerBoundBits:  comm.IPMod3ServerLowerBound(inputBits),
		NetworkNodes:          nw.N(),
		NetworkDiameter:       nw.Graph.Diameter(),
		EmbeddedMatchesGadget: emb.MIsHamiltonian() == red.IsHamiltonian(),
		SimulationReport:      runner.Report(),
		DistributedLowerBound: VerificationLowerBound(nw.N(), bandwidth),
	}, nil
}

// highwayCountFor returns the number of highways a network with the given
// path length will have, so callers can hit an exact endpoint count.
func highwayCountFor(pathLen int) int {
	nw, err := lbnetwork.New(2, pathLen)
	if err != nil {
		return 0
	}
	return nw.K
}

// MSTExperimentResult is one measured point of the Figure 3 experiment.
type MSTExperimentResult struct {
	// Nodes and Diameter describe the network instance.
	Nodes, Diameter int
	// AspectRatio is the weight aspect ratio W of the instance.
	AspectRatio float64
	// Alpha is the approximation factor used.
	Alpha float64
	// ExactRounds and ApproxRounds are the measured round counts.
	ExactRounds, ApproxRounds int
	// ApproxRatio is the measured weight ratio of the α-approximate tree to
	// the optimum.
	ApproxRatio float64
	// LowerBound and UpperBound are the Figure 3 formula curves at this W.
	LowerBound, UpperBound float64
}

// RunMSTExperiment builds a lower-bound network with the given shape,
// assigns random weights with aspect ratio at most W, and measures the
// distributed exact and α-approximate MST algorithms against the Figure 3
// bounds.
func RunMSTExperiment(gamma, pathLen, bandwidth int, aspectRatio, alpha float64, seed int64) (*MSTExperimentResult, error) {
	if gamma < 2 || pathLen < 3 || aspectRatio < 1 || alpha < 1 {
		return nil, fmt.Errorf("%w: gamma=%d L=%d W=%g alpha=%g", ErrBadParameters, gamma, pathLen, aspectRatio, alpha)
	}
	nw, err := lbnetwork.New(gamma, pathLen)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	weighted, err := graph.AssignRandomWeights(nw.Graph, aspectRatio, rng)
	if err != nil {
		return nil, err
	}
	_, optimal := weighted.KruskalMST()

	exactRunner, err := engine.NewLocal(weighted, bandwidth, seed)
	if err != nil {
		return nil, err
	}
	exact, err := mst.Run(exactRunner, weighted, mst.Config{})
	if err != nil {
		return nil, err
	}
	approxRunner, err := engine.NewLocal(weighted, bandwidth, seed)
	if err != nil {
		return nil, err
	}
	approx, err := mst.Run(approxRunner, weighted, mst.Config{Alpha: alpha})
	if err != nil {
		return nil, err
	}
	diameter := nw.Graph.Diameter()
	return &MSTExperimentResult{
		Nodes:        weighted.N(),
		Diameter:     diameter,
		AspectRatio:  aspectRatio,
		Alpha:        alpha,
		ExactRounds:  exact.Stats.Rounds,
		ApproxRounds: approx.Stats.Rounds,
		ApproxRatio:  approx.OriginalWeight / optimal,
		LowerBound:   MSTLowerBound(weighted.N(), bandwidth, aspectRatio, alpha),
		UpperBound:   bounds.MSTUpperBound(float64(weighted.N()), float64(diameter), aspectRatio, alpha),
	}, nil
}

// VerificationExperimentResult is one measured row of the Corollary 3.7
// experiment.
type VerificationExperimentResult struct {
	// Problem is the verification problem name.
	Problem string
	// Answer is the verification verdict on the instance.
	Answer bool
	// Rounds is the measured round count.
	Rounds int
	// LowerBound and UpperBound are the formula curves for this network.
	LowerBound, UpperBound float64
}

// RunVerificationExperiment measures the distributed verification algorithms
// on an embedded Hamiltonian (or k-cycle) instance of the lower-bound
// network.
func RunVerificationExperiment(gamma, pathLen, bandwidth, cycles int, seed int64) ([]VerificationExperimentResult, error) {
	if gamma < 2 || pathLen < 3 || cycles < 1 {
		return nil, fmt.Errorf("%w: gamma=%d L=%d cycles=%d", ErrBadParameters, gamma, pathLen, cycles)
	}
	nw, err := lbnetwork.New(gamma, pathLen)
	if err != nil {
		return nil, err
	}
	u := nw.EndpointCount()
	if u%2 != 0 {
		return nil, fmt.Errorf("%w: Γ+K=%d must be even; adjust gamma", ErrBadParameters, u)
	}
	var ec, ed [][2]int
	if cycles == 1 {
		ec, ed, err = graph.CyclePairings(u)
	} else {
		ec, ed, err = graph.KCyclePairings(u, cycles)
	}
	if err != nil {
		return nil, err
	}
	emb, err := nw.Embed(ec, ed)
	if err != nil {
		return nil, err
	}
	diameter := nw.Graph.Diameter()
	lb := VerificationLowerBound(nw.N(), bandwidth)
	ub := bounds.VerificationUpperBound(float64(nw.N()), float64(diameter))

	type problem struct {
		name string
		run  func(r engine.Runner) (*verify.Outcome, error)
	}
	problems := []problem{
		{"Hamiltonian cycle", func(r engine.Runner) (*verify.Outcome, error) {
			return verify.HamiltonianCycle(r, nw.Graph, emb.M)
		}},
		{"spanning connected subgraph", func(r engine.Runner) (*verify.Outcome, error) {
			return verify.SpanningConnectedSubgraph(r, nw.Graph, emb.M)
		}},
		{"connectivity", func(r engine.Runner) (*verify.Outcome, error) {
			return verify.Connectivity(r, nw.Graph, emb.M)
		}},
		{"spanning tree", func(r engine.Runner) (*verify.Outcome, error) {
			return verify.SpanningTree(r, nw.Graph, emb.M)
		}},
		{"bipartiteness", func(r engine.Runner) (*verify.Outcome, error) {
			return verify.Bipartiteness(r, nw.Graph, emb.M)
		}},
		{"cycle containment", func(r engine.Runner) (*verify.Outcome, error) {
			return verify.CycleContainment(r, nw.Graph, emb.M)
		}},
		{"degree-two check (O(D))", func(r engine.Runner) (*verify.Outcome, error) {
			return verify.DegreeTwoCheck(r, nw.Graph, emb.M)
		}},
	}
	out := make([]VerificationExperimentResult, 0, len(problems))
	for _, p := range problems {
		r, err := engine.NewLocal(nw.Graph, bandwidth, seed)
		if err != nil {
			return nil, err
		}
		res, err := p.run(r)
		if err != nil {
			return nil, fmt.Errorf("qdc: %s: %w", p.name, err)
		}
		out = append(out, VerificationExperimentResult{
			Problem:    p.name,
			Answer:     res.Answer,
			Rounds:     res.Stats.Rounds,
			LowerBound: lb,
			UpperBound: ub,
		})
	}
	return out, nil
}

// SimulationExperiment runs the Theorem 3.5 accounting experiment on a
// lower-bound network of the given shape and returns the report of the
// degree-two check executed under the three-party simulation.
func SimulationExperiment(gamma, pathLen, bandwidth int, seed int64) (*simulation.Report, error) {
	nw, err := lbnetwork.New(gamma, pathLen)
	if err != nil {
		return nil, err
	}
	u := nw.EndpointCount()
	if u%2 != 0 {
		return nil, fmt.Errorf("%w: Γ+K=%d must be even; adjust gamma", ErrBadParameters, u)
	}
	ec, ed, err := graph.CyclePairings(u)
	if err != nil {
		return nil, err
	}
	emb, err := nw.Embed(ec, ed)
	if err != nil {
		return nil, err
	}
	runner, err := simulation.NewRunner(nw, bandwidth, seed)
	if err != nil {
		return nil, err
	}
	if _, err := verify.DegreeTwoCheck(runner, nw.Graph, emb.M); err != nil {
		return nil, err
	}
	rep := runner.Report()
	return &rep, nil
}

// DisjointnessComparison is one row of the Example 1.1 experiment.
type DisjointnessComparison struct {
	// InputBits is b, the length of the strings held by the two nodes.
	InputBits int
	// Distance is the hop distance between the two nodes.
	Distance int
	// ClassicalRounds and QuantumRounds are the cost-model round counts.
	ClassicalRounds, QuantumRounds int
	// MeasuredClassicalRounds is the round count of the real CONGEST run of
	// the pipelining protocol (0 when the instance is too large to run).
	MeasuredClassicalRounds int
	// CrossoverDiameter is the closed-form smallest distance at which the
	// classical pipeline is at least as fast (bounds formula). When the
	// quantum protocol never loses it is math.MaxInt32, the same sentinel
	// the integer formula uses, so the struct stays JSON-marshalable.
	CrossoverDiameter float64
	// QuantumWins reports whether the quantum protocol needs fewer rounds.
	QuantumWins bool
}

// RunDisjointnessComparison evaluates Example 1.1 at the given input length
// and distance (bandwidth counts bits per round on each link).
func RunDisjointnessComparison(inputBits, bandwidth, distance int, seed int64) (*DisjointnessComparison, error) {
	if inputBits < 1 || bandwidth < 1 || distance < 1 {
		return nil, fmt.Errorf("%w: b=%d B=%d D=%d", ErrBadParameters, inputBits, bandwidth, distance)
	}
	out := &DisjointnessComparison{
		InputBits:         inputBits,
		Distance:          distance,
		ClassicalRounds:   disjointness.ClassicalRounds(inputBits, bandwidth, distance),
		QuantumRounds:     disjointness.QuantumRounds(inputBits, distance),
		CrossoverDiameter: bounds.DisjointnessCrossoverDiameter(float64(inputBits), float64(bandwidth)),
	}
	if math.IsInf(out.CrossoverDiameter, 1) {
		out.CrossoverDiameter = math.MaxInt32
	}
	out.QuantumWins = out.QuantumRounds < out.ClassicalRounds
	if inputBits <= 1024 && distance <= 256 {
		rng := rand.New(rand.NewSource(seed))
		x := make([]int, inputBits)
		y := make([]int, inputBits)
		for i := range x {
			x[i] = rng.Intn(2)
			y[i] = 1 - x[i]
		}
		res, err := disjointness.RunClassical(distance+1, bandwidth, x, y, seed)
		if err != nil {
			return nil, err
		}
		out.MeasuredClassicalRounds = res.Rounds
	}
	return out, nil
}
