// Package qdc is the public facade of a reproduction of
//
//	Michael Elkin, Hartmut Klauck, Danupon Nanongkai, Gopal Pandurangan:
//	"Can Quantum Communication Speed Up Distributed Computation?", PODC 2014.
//
// The paper proves that for fundamental global problems — minimum spanning
// tree, minimum cut, shortest paths, and a long list of subgraph
// verification problems — quantum communication and shared entanglement
// cannot substantially speed up distributed CONGEST algorithms: the classical
// Ω̃(√n + D) round lower bounds survive in the quantum setting. The proof
// route is: nonlocal games → the Server model → gadget reductions to graph
// problems → the Quantum Simulation Theorem → distributed lower bounds.
//
// Every stage of that route is implemented and machine-checked in the
// internal packages:
//
//   - internal/graph      — graph substrate, reference algorithms, and the
//     streaming CSR builder million-node topologies are loaded through
//   - internal/congest    — the synchronous CONGEST(B) simulator
//     (allocation-free round loop, word-encoded message payloads)
//   - internal/quantum    — state-vector simulator (EPR, teleportation, Grover)
//   - internal/comm       — two-party and Server-model communication complexity
//   - internal/nonlocal   — XOR/AND games, CHSH, the Lemma 3.2 conversion
//   - internal/gadgets    — the IPmod3→Ham and Gap-Eq→Gap-Ham reductions
//   - internal/lbnetwork  — the Θ(log L)-diameter lower-bound network
//   - internal/simulation — the executable Quantum Simulation Theorem
//   - internal/dist/...   — distributed upper-bound algorithms (MST,
//     verification, Set Disjointness) on the engine.Runner execution layer
//   - internal/bounds     — the closed-form bounds of Figures 2 and 3
//
// # The internal/dist execution layer
//
// Every distributed algorithm is a CONGEST node program executed through the
// engine.Runner interface (internal/dist/engine): RunStage installs per-node
// inputs, runs the program to global termination, and accumulates a Stats
// total of stages, rounds, messages and bits (classical and quantum,
// accounted separately). The backends:
//
//   - engine.NewLocal(topo, B, seed) — plain CONGEST(B) on any topology
//     (engine.NewParallel is the same accounting with rounds stepped
//     concurrently);
//   - engine.NewQuantum(topo, B, seed) — the third cost model: the same
//     classical execution re-accounted under the distributed-Grover round
//     formula of Example 1.1 (⌈√b⌉·D rounds of routed query registers), the
//     backend the experiment harness pairs against NewLocal to measure the
//     classical-vs-quantum Set Disjointness crossover directly;
//   - simulation.NewRunner(nw, B, seed) — the same execution on the
//     lower-bound network, additionally charged to the Carol/David/server
//     parties of the Quantum Simulation Theorem (Theorem 3.5).
//
// Because the algorithm code is backend-agnostic, the seven verification
// algorithms of internal/dist/verify, the exact and α-approximate MST of
// internal/dist/mst, and the Set Disjointness protocol of
// internal/dist/disjointness all run unchanged under any cost model; the
// degree-two check is the designated O(D)-round program that fits the
// theorem's L/2 − 2 round budget. See DESIGN.md for the system inventory and
// the engine/backends substitution table.
//
// # Quickstart
//
// examples/quickstart is the smallest end-to-end use of the library: it runs
// the distributed MST algorithm on a simulated network and compares the
// measured rounds against the paper's quantum lower bound. This package
// exposes the experiment drivers that regenerate the paper's figures and
// tables; cmd/qdcbench prints them, bench_test.go measures them, and the
// examples/ directory demonstrates the API on the paper's headline
// scenarios.
//
// Sweeps beyond the compiled-in registry are driven by the internal/exp
// harness through the same CLI: qdcbench accepts a JSON matrix spec
// (examples/matrix.json), runs deterministic disjoint shards of one sweep
// across processes or machines (-shard i/n), folds the shard outputs back
// into a canonical snapshot that is byte-identical to an unsharded run
// (qdcbench merge), and tracks per-scenario cost trajectories across a
// directory of snapshots (qdcbench trend).
package qdc
