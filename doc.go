// Package qdc is the public facade of a reproduction of
//
//	Michael Elkin, Hartmut Klauck, Danupon Nanongkai, Gopal Pandurangan:
//	"Can Quantum Communication Speed Up Distributed Computation?", PODC 2014.
//
// The paper proves that for fundamental global problems — minimum spanning
// tree, minimum cut, shortest paths, and a long list of subgraph
// verification problems — quantum communication and shared entanglement
// cannot substantially speed up distributed CONGEST algorithms: the classical
// Ω̃(√n + D) round lower bounds survive in the quantum setting. The proof
// route is: nonlocal games → the Server model → gadget reductions to graph
// problems → the Quantum Simulation Theorem → distributed lower bounds.
//
// Every stage of that route is implemented and machine-checked in the
// internal packages:
//
//   - internal/graph      — graph substrate and reference algorithms
//   - internal/congest    — the synchronous CONGEST(B) simulator
//   - internal/quantum    — state-vector simulator (EPR, teleportation, Grover)
//   - internal/comm       — two-party and Server-model communication complexity
//   - internal/nonlocal   — XOR/AND games, CHSH, the Lemma 3.2 conversion
//   - internal/gadgets    — the IPmod3→Ham and Gap-Eq→Gap-Ham reductions
//   - internal/lbnetwork  — the Θ(log L)-diameter lower-bound network
//   - internal/simulation — the executable Quantum Simulation Theorem
//   - internal/dist/...   — distributed upper-bound algorithms (BFS, MST,
//     verification, Set Disjointness)
//   - internal/bounds     — the closed-form bounds of Figures 2 and 3
//
// This package exposes the experiment drivers that regenerate the paper's
// figures and tables; cmd/qdcbench prints them, bench_test.go measures them,
// and the examples/ directory demonstrates the API on the paper's headline
// scenarios. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package qdc
