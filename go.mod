module qdc

go 1.24
