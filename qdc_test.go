package qdc

import (
	"errors"
	"testing"
)

func TestLowerBoundFacades(t *testing.T) {
	if VerificationLowerBound(10000, 32) <= 0 {
		t.Fatal("verification lower bound should be positive")
	}
	if MSTLowerBound(10000, 32, 1000, 2) <= 0 {
		t.Fatal("MST lower bound should be positive")
	}
	if MSTLowerBound(10000, 32, 1e9, 2) != VerificationLowerBound(10000, 32) {
		t.Fatal("MST bound should saturate at the verification bound")
	}
	rows, err := Figure2Table(100000, 32, 1e5, 2)
	if err != nil || len(rows) == 0 {
		t.Fatalf("Figure2Table: %v", err)
	}
	pts, err := Figure3Curve(100000, 32, 14, 2, []float64{10, 1e3, 1e6})
	if err != nil || len(pts) != 3 {
		t.Fatalf("Figure3Curve: %v", err)
	}
	if len(ServerModelTable(1200)) == 0 {
		t.Fatal("ServerModelTable empty")
	}
}

func TestRunProofPipeline(t *testing.T) {
	if _, err := RunProofPipeline(0, 64, 1); !errors.Is(err, ErrBadParameters) {
		t.Fatalf("err = %v", err)
	}
	res, err := RunProofPipeline(3, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.GadgetNodes != 36 {
		t.Fatalf("gadget nodes = %d, want 36", res.GadgetNodes)
	}
	if res.GadgetIsHamiltonian != (res.IPMod3Value == 0) {
		t.Fatal("Lemma C.3 violated in the pipeline")
	}
	if !res.EmbeddedMatchesGadget {
		t.Fatal("Observation 8.1/D.3 violated in the pipeline")
	}
	if !res.SimulationReport.WithinTheoremBound {
		t.Fatal("Theorem 3.5 accounting violated in the pipeline")
	}
	if res.NetworkDiameter <= 0 || res.NetworkNodes <= res.GadgetNodes {
		t.Fatalf("network shape wrong: %+v", res)
	}
	if res.DistributedLowerBound <= 0 || res.ServerLowerBoundBits < 0 {
		t.Fatal("bounds missing")
	}
}

func TestRunMSTExperiment(t *testing.T) {
	if _, err := RunMSTExperiment(1, 9, 128, 8, 2, 1); !errors.Is(err, ErrBadParameters) {
		t.Fatalf("err = %v", err)
	}
	res, err := RunMSTExperiment(5, 9, 128, 32, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactRounds == 0 || res.ApproxRounds == 0 {
		t.Fatal("rounds not measured")
	}
	if res.ApproxRatio < 1-1e-9 || res.ApproxRatio > res.Alpha+1e-9 {
		t.Fatalf("approximation ratio %g outside [1, α]", res.ApproxRatio)
	}
	if res.LowerBound <= 0 || res.UpperBound < res.LowerBound {
		t.Fatalf("bounds inconsistent: %+v", res)
	}
}

func TestRunVerificationExperiment(t *testing.T) {
	if _, err := RunVerificationExperiment(1, 9, 64, 1, 1); !errors.Is(err, ErrBadParameters) {
		t.Fatalf("err = %v", err)
	}
	// Γ=5, L=9 gives Γ+K=8 (even).
	rows, err := RunVerificationExperiment(5, 9, 64, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Rounds == 0 || row.LowerBound <= 0 || row.UpperBound <= 0 {
			t.Fatalf("row incomplete: %+v", row)
		}
	}
	// On the Hamiltonian instance, Ham and spanning-connected verification
	// accept while spanning-tree verification rejects (it has n edges).
	byName := map[string]bool{}
	for _, row := range rows {
		byName[row.Problem] = row.Answer
	}
	if !byName["Hamiltonian cycle"] || !byName["connectivity"] || byName["spanning tree"] {
		t.Fatalf("unexpected verdicts: %+v", byName)
	}

	// A 2-cycle instance is rejected by Ham but the degree check still accepts.
	rows2, err := RunVerificationExperiment(5, 9, 64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName2 := map[string]bool{}
	for _, row := range rows2 {
		byName2[row.Problem] = row.Answer
	}
	if byName2["Hamiltonian cycle"] || byName2["connectivity"] || !byName2["degree-two check (O(D))"] {
		t.Fatalf("unexpected verdicts on 2-cycle instance: %+v", byName2)
	}
}

func TestSimulationExperiment(t *testing.T) {
	rep, err := SimulationExperiment(8, 257, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WithinRoundBudget || !rep.WithinTheoremBound {
		t.Fatalf("Theorem 3.5 accounting failed: %+v", rep)
	}
	if rep.ServerModelCost <= 0 {
		t.Fatal("server-model cost should be positive")
	}
	if _, err := SimulationExperiment(6, 33, 64, 1); err == nil {
		t.Fatal("odd Γ+K should be rejected")
	}
}

func TestRunDisjointnessComparison(t *testing.T) {
	if _, err := RunDisjointnessComparison(0, 1, 1, 1); !errors.Is(err, ErrBadParameters) {
		t.Fatalf("err = %v", err)
	}
	small, err := RunDisjointnessComparison(1024, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !small.QuantumWins {
		t.Fatalf("quantum should win at D=8, b=1024: %+v", small)
	}
	if small.MeasuredClassicalRounds == 0 {
		t.Fatal("the classical protocol should have been executed")
	}
	large, err := RunDisjointnessComparison(1024, 1, 900, 1)
	if err != nil {
		t.Fatal(err)
	}
	if large.QuantumWins {
		t.Fatalf("classical should win at D=900: %+v", large)
	}
}
