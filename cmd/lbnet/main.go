// Command lbnet prints the structure of the Section 8 lower-bound network
// for given parameters: vertex count, highway count, hop diameter, the
// Theorem 3.5 round budget, and the Observation 8.1 correspondence between a
// server-model input and its embedded subnetwork.
package main

import (
	"flag"
	"fmt"
	"os"

	"qdc/internal/graph"
	"qdc/internal/lbnetwork"
)

func main() {
	gamma := flag.Int("gamma", 8, "number of ordinary paths Γ")
	pathLen := flag.Int("L", 33, "path length L (rounded up to 2^k+1)")
	cycles := flag.Int("cycles", 1, "number of cycles of the embedded server-model input")
	flag.Parse()

	nw, err := lbnetwork.New(*gamma, *pathLen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lower-bound network: Γ=%d, L=%d, highways k=%d\n", nw.Gamma, nw.L, nw.K)
	fmt.Printf("  vertices:            %d (Θ(ΓL))\n", nw.N())
	fmt.Printf("  hop diameter:        %d (Θ(log L))\n", nw.Graph.Diameter())
	fmt.Printf("  simulation budget:   L/2-2 = %d rounds\n", nw.MaxSimulationRounds())
	fmt.Printf("  endpoint vertices:   Γ+k = %d\n", nw.EndpointCount())

	u := nw.EndpointCount()
	if u%2 != 0 {
		fmt.Println("  (Γ+k is odd; skip the embedding demo — choose Γ so that Γ+k is even)")
		return
	}
	var ec, ed [][2]int
	if *cycles <= 1 {
		ec, ed, err = graph.CyclePairings(u)
	} else {
		ec, ed, err = graph.KCyclePairings(u, *cycles)
	}
	if err != nil {
		fatal(err)
	}
	emb, err := nw.Embed(ec, ed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("embedded server-model input with %d cycle(s):\n", *cycles)
	fmt.Printf("  input graph G:       %d cycles, Hamiltonian=%v\n", emb.InputCycleCount(), emb.InputIsHamiltonian())
	fmt.Printf("  subnetwork M:        %d cycles, Hamiltonian=%v, connected=%v\n",
		emb.MCycleCount(), emb.MIsHamiltonian(), emb.MIsConnected())
	fmt.Printf("  Observation 8.1:     cycle counts agree: %v\n", emb.InputCycleCount() == emb.MCycleCount())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lbnet: %v\n", err)
	os.Exit(1)
}
