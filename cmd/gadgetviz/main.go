// Command gadgetviz prints the structure of the Section 7 gadget reductions
// for a given pair of input strings: the per-gadget track permutations
// (Observation 7.1), whether the resulting graph is a Hamiltonian cycle
// (Lemma C.3), and the cycle structure of the Gap-Equality reduction
// (Figure 7).
package main

import (
	"flag"
	"fmt"
	"os"

	"qdc/internal/gadgets"
)

func main() {
	xs := flag.String("x", "1101", "Carol's bit string")
	ys := flag.String("y", "1011", "David's bit string")
	flag.Parse()

	x, err := parseBits(*xs)
	if err != nil {
		fatal(err)
	}
	y, err := parseBits(*ys)
	if err != nil {
		fatal(err)
	}
	if len(x) != len(y) {
		fatal(fmt.Errorf("inputs must have the same length (%d vs %d)", len(x), len(y)))
	}

	fmt.Printf("x = %v\ny = %v\n\n", x, y)

	fmt.Println("IPmod3 -> Ham reduction (Figures 4-6, 12):")
	fmt.Println("  per-gadget track permutation (Observation 7.1):")
	for i := range x {
		perm, err := gadgets.IPGadgetTrackPermutation(x[i], y[i])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("    gadget %2d: (x,y)=(%d,%d)  tracks 0,1,2 -> %d,%d,%d  (shift %d)\n",
			i, x[i], y[i], perm[0], perm[1], perm[2], x[i]*y[i])
	}
	ip, err := gadgets.IPMod3Value(x, y)
	if err != nil {
		fatal(err)
	}
	red, err := gadgets.IPMod3ToHam(x, y)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  IPmod3(x,y) = %d;  graph: %d vertices, %d cycles, Hamiltonian = %v (Lemma C.3)\n\n",
		ip, red.NumNodes(), red.CycleCount(), red.IsHamiltonian())

	fmt.Println("Gap-Equality -> Gap-Ham reduction (Figure 7):")
	delta, err := gadgets.HammingDistance(x, y)
	if err != nil {
		fatal(err)
	}
	eq, err := gadgets.EqToGapHam(x, y)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  Hamming distance %d;  graph: %d vertices, %d cycles, Hamiltonian = %v\n",
		delta, eq.NumNodes(), eq.CycleCount(), eq.IsHamiltonian())
	fmt.Printf("  Carol/David edge sets are perfect matchings: %v / %v\n",
		eq.CarolIsPerfectMatching(), eq.DavidIsPerfectMatching())
}

func parseBits(s string) ([]int, error) {
	out := make([]int, 0, len(s))
	for _, c := range s {
		switch c {
		case '0':
			out = append(out, 0)
		case '1':
			out = append(out, 1)
		default:
			return nil, fmt.Errorf("invalid bit %q", c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty bit string")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gadgetviz: %v\n", err)
	os.Exit(1)
}
