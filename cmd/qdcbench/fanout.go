package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"qdc/internal/exp"
	"qdc/internal/fanout"
	"qdc/internal/obs"
)

// testSpawn, when non-nil, replaces the real subprocess spawn — the
// testable seam that lets CLI tests drive the whole fanout path with
// in-process workers instead of re-executing the binary.
var testSpawn fanout.SpawnFunc

// runFanout supervises a multi-process sweep: the parent expands the
// matrix, re-invokes its own binary once per shard with -shard i/n -jsonl,
// tails each worker's record stream live (feeding the same Status counters,
// heartbeat and -listen endpoints a single-process sweep uses, plus
// worker_* lifecycle events in the -events log), retries crashed workers
// with capped backoff, and folds the completed shards through
// exp.MergeRecords + exp.CheckComplete into the canonical snapshot — byte
// identical to an unsharded -json run of the same matrix.
func runFanout(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("qdcbench fanout", flag.ContinueOnError)
	matrix := fs.String("matrix", "default", "scenario matrix to fan out: a registered name or a *.json spec path")
	shards := fs.Int("shards", 0, "number of worker processes; each runs one -shard i/n slice (required)")
	jsonOut := fs.String("json", "", "write the merged canonical snapshot to this file")
	workers := fs.Int("workers", 0, "per-worker concurrent scenario executions, forwarded as -workers (0 = each worker uses GOMAXPROCS)")
	timeout := fs.Duration("timeout", exp.DefaultTimeout, "per-scenario wall-clock budget, forwarded to every worker")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Minute, "wall-clock budget for one shard attempt; a worker exceeding it is killed and retried (0 = unbounded)")
	retries := fs.Int("retries", fanout.DefaultRetries, "times a crashed shard is re-spawned before the sweep fails")
	seed := fs.Int64("seed", 0, "override the matrix base seed, forwarded to every worker (0 keeps the spec's seed)")
	dir := fs.String("dir", "", "directory for the per-shard JSONL streams (default: a temp dir, removed when the sweep succeeds)")
	events := fs.String("events", "", "append a JSONL event log (sweep_start, worker_start/done/retry/failed, one scenario event per record, sweep_done) to this file")
	listen := fs.String("listen", "", "serve live sweep endpoints on this address (e.g. :8123): /debug/pprof, /debug/vars, /vars, /progress")
	linger := fs.Duration("linger", 0, "keep the -listen server up this long after the sweep")
	progressEvery := fs.Duration("progress", 0, "print a progress heartbeat line at this interval (plus one final line)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fanout takes no positional arguments (qdcbench fanout -shards 3 -matrix quick -json out.json)")
	}
	if *shards < 1 {
		return fmt.Errorf("fanout needs -shards >= 1")
	}

	m, err := exp.ResolveMatrix(*matrix)
	if err != nil {
		return err
	}
	if *seed != 0 {
		m.BaseSeed = *seed
	}
	expansion := m.Expand()
	if len(expansion) == 0 {
		return fmt.Errorf("matrix %s has no scenarios to run", m.Name)
	}
	expected := make([]int, *shards)
	for i := range expected {
		slice, err := m.Shard(i+1, *shards)
		if err != nil {
			return err
		}
		expected[i] = len(slice)
	}

	streamDir := *dir
	tempDir := streamDir == ""
	if tempDir {
		if streamDir, err = os.MkdirTemp("", "qdcbench-fanout-"); err != nil {
			return err
		}
		// Shard streams are scratch state once the merge succeeded; after a
		// failure they stay behind for diagnosis and the path is printed.
		defer func() {
			if retErr == nil {
				os.RemoveAll(streamDir) //nolint:errcheck // scratch cleanup
			} else {
				fmt.Fprintf(out, "shard streams kept in %s\n", streamDir)
			}
		}()
	} else if err := os.MkdirAll(streamDir, 0o755); err != nil {
		return err
	}

	// Freeze the resolved spec (seed override included) next to the shard
	// streams and hand every worker the frozen path: a *.json -matrix
	// argument re-resolved per worker (and per retry) could have been edited
	// since the parent expanded it, producing Expected-count mismatches or
	// silently different scenarios. The frozen file is the sweep's single
	// source of truth.
	frozen := filepath.Join(streamDir, "matrix.json")
	if err := exp.SaveMatrix(frozen, m); err != nil {
		return err
	}

	spawn := testSpawn
	if spawn == nil {
		bin, err := os.Executable()
		if err != nil {
			return fmt.Errorf("fanout cannot locate its own binary: %w", err)
		}
		spawn = fanout.ExecSpawn(bin, func(shard int, path string) []string {
			a := []string{
				"-matrix", frozen,
				"-shard", fmt.Sprintf("%d/%d", shard, *shards),
				"-jsonl", path,
				"-timeout", timeout.String(),
			}
			if *workers > 0 {
				a = append(a, "-workers", strconv.Itoa(*workers))
			}
			return a
		})
	}

	status := exp.NewStatus(len(expansion))
	var eventLog *obs.EventLog
	var eventMu sync.Mutex
	var eventErr error
	emit := func(kind string, data map[string]any) {
		if eventLog == nil {
			return
		}
		if err := eventLog.Emit(kind, data); err != nil {
			eventMu.Lock()
			if eventErr == nil {
				eventErr = err
			}
			eventMu.Unlock()
		}
	}
	if *events != "" {
		if eventLog, err = obs.CreateEventLog(*events); err != nil {
			return err
		}
		emit("sweep_start", map[string]any{"matrix": m.Name, "scenarios": len(expansion), "shards": *shards})
	}
	shutdownListen, err := startListen(out, *listen, *linger, status)
	if err != nil {
		return err
	}
	stopHeartbeat := startHeartbeat(out, *progressEvery, status)

	// ctrl-C (or a CI kill) reaches the supervisor, which kills every
	// worker's process group — workers are parked in their own groups, so
	// nothing survives as an orphan.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	res, runErr := fanout.Run(fanout.Options{
		Shards:   *shards,
		Expected: expected,
		Retries:  *retries,
		Timeout:  *shardTimeout,
		Dir:      streamDir,
		Spawn:    spawn,
		OnRecord: func(shard int, rec exp.Record) {
			status.ScenarioStarted()
			status.ScenarioDone(rec)
			data := map[string]any{
				"name": rec.Scenario.Name, "ok": rec.OK, "wall_ms": rec.WallMillis,
				"rounds": rec.Stats.Rounds, "bits": rec.Stats.Bits, "shard": shard,
			}
			if rec.Error != "" {
				data["error"] = rec.Error
			}
			emit("scenario", data)
		},
		OnDiscard: func(shard int, recs []exp.Record) {
			for _, rec := range recs {
				status.ScenarioUncounted(rec)
			}
		},
		OnEvent:   emit,
		Interrupt: sigCh,
	})
	stopHeartbeat()

	closeEvents := func(final error) error {
		if eventLog == nil {
			return final
		}
		data := map[string]any{"scenarios": status.Done.Load(), "failed": status.Failed.Load(), "shards": *shards}
		if final != nil {
			data["error"] = final.Error()
		}
		emit("sweep_done", data)
		if cerr := eventLog.Close(); cerr != nil && final == nil {
			final = cerr
		}
		eventLog = nil
		if eventErr != nil && final == nil {
			final = eventErr
		}
		return final
	}

	for _, s := range res.Shards {
		if s.Err != nil {
			fmt.Fprintf(out, "  SHARD %d/%d FAILED after %d attempt(s): %v\n", s.Shard, *shards, s.Attempts, s.Err)
		} else {
			fmt.Fprintf(out, "  shard %d/%d: %d records in %d attempt(s)\n", s.Shard, *shards, len(s.Records), s.Attempts)
		}
	}
	if runErr != nil {
		shutdownListen()
		return closeEvents(runErr)
	}

	merged, err := exp.MergeRecords(res.Records()...)
	if err == nil {
		err = exp.CheckComplete(m, merged)
	}
	if err != nil {
		shutdownListen()
		return closeEvents(err)
	}
	if *jsonOut != "" {
		sink, err := exp.CreateJSON(*jsonOut)
		if err == nil {
			for _, r := range merged {
				if err = sink.Write(r); err != nil {
					break
				}
			}
			if cerr := sink.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			shutdownListen()
			return closeEvents(err)
		}
	}

	failed := 0
	for _, r := range merged {
		if r.Failed() {
			fmt.Fprintf(out, "  FAIL %-40s %s%s\n", r.Scenario.Name, r.Error, r.Detail)
			failed++
		}
	}
	fmt.Fprintf(out, "fanout matrix %s: %d shards, %d scenarios, %d passed, %d failed\n",
		m.Name, *shards, len(merged), len(merged)-failed, failed)
	printBackendBreakdown(out, merged)
	printCrossover(out, merged)
	if err := closeEvents(nil); err != nil {
		shutdownListen()
		return err
	}
	shutdownListen()
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(merged))
	}
	return nil
}
