package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"qdc/internal/exp"
	"qdc/internal/fanout"
	"qdc/internal/qdcd"
)

// testServeSpawn, when non-nil, replaces the daemon's real subprocess
// spawn — the same seam testSpawn provides for fanout, lifted to per-job
// granularity.
var testServeSpawn qdcd.SpawnJob

// testServeInterrupt, when non-nil, replaces the signal channel runServe
// blocks on, so tests can shut a served daemon down deterministically.
var testServeInterrupt chan os.Signal

// runServe starts qdcd, the long-running sweep control plane: an HTTP/JSON
// daemon that accepts matrix jobs (POST /jobs), schedules their shard
// slices onto a persistent bounded worker pool (each worker a re-exec of
// this binary supervised by internal/fanout), and serves live status,
// record streams, canonical snapshots and diffs per job. Jobs persist
// under -state; a restarted daemon re-adopts finished jobs and re-runs
// interrupted ones. The process runs until SIGINT/SIGTERM, then drains.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qdcbench serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8123", "address the control-plane API listens on")
	state := fs.String("state", "qdcd-state", "persistent state directory: frozen specs, shard streams and snapshots live here across restarts")
	pool := fs.Int("pool", 0, "max concurrently running shard workers across all jobs (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "per-worker concurrent scenario executions, forwarded as -workers (0 = each worker uses GOMAXPROCS)")
	timeout := fs.Duration("timeout", exp.DefaultTimeout, "per-scenario wall-clock budget, forwarded to every worker")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Minute, "wall-clock budget for one shard attempt; a worker exceeding it is killed and retried (0 = unbounded)")
	retries := fs.Int("retries", fanout.DefaultRetries, "default times a crashed shard is re-spawned before its job fails (jobs may override)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no positional arguments (qdcbench serve -listen :8123 -state qdcd-state)")
	}

	spawn := testServeSpawn
	if spawn == nil {
		bin, err := os.Executable()
		if err != nil {
			return fmt.Errorf("serve cannot locate its own binary: %w", err)
		}
		spawn = func(j qdcd.JobView) fanout.SpawnFunc {
			return fanout.ExecSpawn(bin, func(shard int, path string) []string {
				a := []string{
					"-matrix", j.SpecPath,
					"-shard", fmt.Sprintf("%d/%d", shard, j.Shards),
					"-jsonl", path,
					"-timeout", timeout.String(),
				}
				if *workers > 0 {
					a = append(a, "-workers", strconv.Itoa(*workers))
				}
				return a
			})
		}
	}

	srv, err := qdcd.New(qdcd.Options{
		StateDir:     *state,
		Pool:         *pool,
		Retries:      *retries,
		ShardTimeout: *shardTimeout,
		Spawn:        spawn,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(out, "qdcd: sweep control plane on http://%s (state %s, pool %d)\n", ln.Addr(), *state, *pool)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // Serve always returns on Close

	sigCh := testServeInterrupt
	if sigCh == nil {
		sigCh = make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
	}
	<-sigCh
	fmt.Fprintln(out, "qdcd: interrupt; stopping jobs and draining")
	srv.Close()
	return hs.Close()
}

// runSubmit round-trips a sweep through a running qdcd daemon: it submits
// the job (a registered matrix by name, a *.json spec read locally and
// sent inline), optionally polls it to completion, and optionally
// downloads the canonical snapshot — the byte-identical stand-in for a
// local `qdcbench -matrix M -json OUT` run.
func runSubmit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qdcbench submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8123", "base URL of the qdcd control plane")
	matrix := fs.String("matrix", "default", "matrix to submit: a registered name (resolved by the daemon) or a *.json spec path (loaded locally, submitted inline)")
	shards := fs.Int("shards", 1, "number of shard workers the daemon splits the job into")
	seed := fs.Int64("seed", 0, "override the matrix base seed (0 keeps the spec's seed)")
	retries := fs.Int("retries", -1, "per-shard crash retries for this job (-1 = the daemon's default)")
	wait := fs.Bool("wait", false, "poll the job until it reaches a terminal state; a failed job exits non-zero")
	jsonOut := fs.String("json", "", "download the canonical snapshot to this file once the job is done (implies -wait)")
	poll := fs.Duration("poll", time.Second, "polling interval for -wait")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("submit takes no positional arguments (qdcbench submit -addr http://host:8123 -matrix quick -shards 2 -wait)")
	}

	req := qdcd.SubmitRequest{Shards: *shards, Seed: *seed}
	if *retries >= 0 {
		req.Retries = retries
	}
	if _, ok := exp.LookupMatrix(*matrix); ok {
		req.Matrix = *matrix
	} else {
		// A file spec is resolved locally and travels inline, so the daemon
		// never needs the client's filesystem.
		m, err := exp.ResolveMatrix(*matrix)
		if err != nil {
			return err
		}
		req.Spec = &m
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(*addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var st qdcd.JobStatus
	if err := decodeAPI(resp, http.StatusCreated, &st); err != nil {
		return err
	}
	fmt.Fprintf(out, "submitted %s: matrix %s, %d scenarios across %d shards\n", st.ID, st.Matrix, st.Total, st.Shards)
	if !*wait && *jsonOut == "" {
		return nil
	}

	for !terminalState(st.State) {
		time.Sleep(*poll)
		resp, err := http.Get(*addr + "/jobs/" + st.ID)
		if err != nil {
			return err
		}
		if err := decodeAPI(resp, http.StatusOK, &st); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "job %s %s: %d/%d scenarios, %d failed\n", st.ID, st.State, st.Done, st.Total, st.Failed)
	if st.State != "done" {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	if *jsonOut != "" {
		resp, err := http.Get(*addr + "/jobs/" + st.ID + "/snapshot")
		if err != nil {
			return err
		}
		defer resp.Body.Close() //nolint:errcheck // read side
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, resp.Body); err != nil {
			f.Close() //nolint:errcheck // the copy error is the one to report
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "snapshot written to %s\n", *jsonOut)
	}
	return nil
}

// terminalState mirrors qdcd's terminal job states on the client side.
func terminalState(state string) bool {
	return state == "done" || state == "failed" || state == "interrupted"
}

// decodeAPI decodes a JSON API response into v, turning any unexpected
// status into the server's error message.
func decodeAPI(resp *http.Response, want int, v any) error {
	defer resp.Body.Close() //nolint:errcheck // read side
	if resp.StatusCode != want {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// apiError extracts the {"error": ...} payload of a failed API call.
func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
		return fmt.Errorf("qdcd: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("qdcd: unexpected response %s", resp.Status)
}
