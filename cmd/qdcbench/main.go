// Command qdcbench regenerates the paper's tables and figures as text
// tables: the Figure 2 bounds table, the Figure 3 MST curves (with measured
// runs), the server-model hardness table of Theorems 3.4/6.1, the
// Theorem 3.5 simulation accounting, and the Example 1.1 comparison.
//
// Usage:
//
//	qdcbench -figure 2        # the Figure 2 bounds table
//	qdcbench -figure 3        # the Figure 3 curves + measured MST runs
//	qdcbench -example 1.1     # Example 1.1 classical vs quantum Disjointness
//	qdcbench -experiment sim  # Theorem 3.5 three-party simulation accounting
//	qdcbench -experiment server  # server-model bounds vs trivial protocols
//	qdcbench -all             # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"qdc"
)

func main() {
	figure := flag.Int("figure", 0, "regenerate a figure: 2 or 3")
	example := flag.String("example", "", "regenerate an example: 1.1")
	experiment := flag.String("experiment", "", "run an experiment: sim, server, verify, pipeline")
	all := flag.Bool("all", false, "regenerate everything")
	n := flag.Int("n", 100_000, "network size for the formula tables")
	bandwidth := flag.Int("B", 32, "per-edge bandwidth in bits per round")
	alpha := flag.Float64("alpha", 2, "approximation factor")
	aspect := flag.Float64("W", 1e5, "weight aspect ratio")
	flag.Parse()

	ran := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "qdcbench: %v\n", err)
		os.Exit(1)
	}

	if *all || *figure == 2 {
		ran = true
		if err := printFigure2(*n, *bandwidth, *aspect, *alpha); err != nil {
			fail(err)
		}
	}
	if *all || *figure == 3 {
		ran = true
		if err := printFigure3(*n, *bandwidth, *alpha); err != nil {
			fail(err)
		}
	}
	if *all || *example == "1.1" {
		ran = true
		if err := printExample11(); err != nil {
			fail(err)
		}
	}
	if *all || *experiment == "server" {
		ran = true
		printServerTable(1200)
	}
	if *all || *experiment == "sim" {
		ran = true
		if err := printSimulation(); err != nil {
			fail(err)
		}
	}
	if *all || *experiment == "verify" {
		ran = true
		if err := printVerification(); err != nil {
			fail(err)
		}
	}
	if *all || *experiment == "pipeline" {
		ran = true
		if err := printPipeline(); err != nil {
			fail(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func printFigure2(n, bandwidth int, aspect, alpha float64) error {
	rows, err := qdc.Figure2Table(n, bandwidth, aspect, alpha)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 2 — lower bounds at n=%d, B=%d, W=%g, alpha=%g\n", n, bandwidth, aspect, alpha)
	fmt.Printf("%-46s | %-30s | %14s | %14s\n", "problem", "setting", "previous", "this paper")
	for _, r := range rows {
		fmt.Printf("%-46s | %-30s | %14.1f | %14.1f\n", r.Problem, r.Setting, r.PreviousValue, r.NewValue)
	}
	fmt.Println()
	return nil
}

func printFigure3(n, bandwidth int, alpha float64) error {
	ws := []float64{2, 16, 128, 1024, 8192, 1 << 16, 1 << 20}
	pts, err := qdc.Figure3Curve(n, bandwidth, 17, alpha, ws)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 3 — MST rounds vs aspect ratio W (n=%d, B=%d, alpha=%g)\n", n, bandwidth, alpha)
	fmt.Printf("%12s %20s %20s\n", "W", "lower bound", "upper bound")
	for _, p := range pts {
		fmt.Printf("%12.0f %20.1f %20.1f\n", p.W, p.LowerBound, p.UpperBound)
	}
	fmt.Println("measured (lower-bound network family, Γ=8, L=17, B=128):")
	fmt.Printf("%12s %12s %14s %14s %12s\n", "W", "nodes", "exact rounds", "approx rounds", "ratio")
	for _, w := range []float64{4, 64, 1024} {
		res, err := qdc.RunMSTExperiment(8, 17, 128, w, alpha, 1)
		if err != nil {
			return err
		}
		fmt.Printf("%12.0f %12d %14d %14d %12.3f\n", w, res.Nodes, res.ExactRounds, res.ApproxRounds, res.ApproxRatio)
	}
	fmt.Println()
	return nil
}

func printExample11() error {
	fmt.Println("Example 1.1 — distributed Set Disjointness, classical vs quantum (b=4096, B=1)")
	fmt.Printf("%10s %18s %18s %10s\n", "D", "classical rounds", "quantum rounds", "winner")
	for _, d := range []int{2, 8, 32, 128, 512, 2048} {
		cmp, err := qdc.RunDisjointnessComparison(4096, 1, d, 1)
		if err != nil {
			return err
		}
		w := "classical"
		if cmp.QuantumWins {
			w = "quantum"
		}
		fmt.Printf("%10d %18d %18d %10s\n", d, cmp.ClassicalRounds, cmp.QuantumRounds, w)
	}
	fmt.Println()
	return nil
}

func printServerTable(n int) {
	fmt.Printf("Server-model bounds (Theorems 3.4/6.1, Corollary 3.10) at n=%d\n", n)
	fmt.Printf("%-40s %16s %16s %s\n", "problem", "lower bound", "trivial cost", "best known upper")
	for _, r := range qdc.ServerModelTable(n) {
		fmt.Printf("%-40s %16.1f %16.1f %s\n", r.Problem, r.LowerBound, r.TrivialCost, r.BestKnownUpper)
	}
	fmt.Println()
}

func printSimulation() error {
	rep, err := qdc.SimulationExperiment(8, 257, 64, 1)
	if err != nil {
		return err
	}
	fmt.Println("Theorem 3.5 — three-party simulation accounting (Γ=8, L=257, B=64)")
	fmt.Printf("  rounds:            %d (within L/2-2 budget: %v)\n", rep.Rounds, rep.WithinRoundBudget)
	fmt.Printf("  Carol bits:        %d\n", rep.CarolBits)
	fmt.Printf("  David bits:        %d\n", rep.DavidBits)
	fmt.Printf("  server-model cost: %d\n", rep.ServerModelCost)
	fmt.Printf("  O(B log L * T):    %d (within bound: %v)\n", rep.TheoremBound, rep.WithinTheoremBound)
	fmt.Println()
	return nil
}

func printVerification() error {
	rows, err := qdc.RunVerificationExperiment(12, 17, 64, 1, 1)
	if err != nil {
		return err
	}
	fmt.Println("Corollary 3.7 — verification algorithms on the embedded Hamiltonian instance (Γ=12, L=17)")
	fmt.Printf("%-34s %8s %10s %14s %14s\n", "problem", "answer", "rounds", "lower bound", "upper bound")
	for _, r := range rows {
		fmt.Printf("%-34s %8v %10d %14.1f %14.1f\n", r.Problem, r.Answer, r.Rounds, r.LowerBound, r.UpperBound)
	}
	fmt.Println()
	return nil
}

func printPipeline() error {
	res, err := qdc.RunProofPipeline(4, 64, 1)
	if err != nil {
		return err
	}
	fmt.Println("Figure 1 — proof pipeline on a random IPmod3 instance (n=4)")
	fmt.Printf("  IPmod3 value %d, gadget Hamiltonian %v, server bound %.1f bits\n",
		res.IPMod3Value, res.GadgetIsHamiltonian, res.ServerLowerBoundBits)
	fmt.Printf("  network %d nodes diameter %d, embedding consistent %v\n",
		res.NetworkNodes, res.NetworkDiameter, res.EmbeddedMatchesGadget)
	fmt.Printf("  simulation cost %d bits <= bound %d bits: %v\n",
		res.SimulationReport.ServerModelCost, res.SimulationReport.TheoremBound, res.SimulationReport.WithinTheoremBound)
	fmt.Printf("  distributed lower bound %.1f rounds\n", res.DistributedLowerBound)
	fmt.Println()
	return nil
}
