// Command qdcbench drives the repository's experiments from the command
// line, in three modes: matrix sweeps, sweep-scale-out subcommands, and
// paper tables.
//
// Matrix mode runs a scenario matrix through the internal/exp worker pool
// and writes machine-readable results, the pipeline BENCH_*.json snapshots
// are produced with. -matrix accepts a registered name or a path to a JSON
// matrix spec (see examples/matrix.json), so sweeps are defined without
// recompiling:
//
//	qdcbench -matrix default -workers 8 -json BENCH_default.json
//	qdcbench -matrix examples/matrix.json -jsonl run.jsonl
//	qdcbench -matrix default -json new.json -baseline BENCH_default.json
//	qdcbench -matrix crossover -backends local,quantum
//	qdcbench -list
//
// With -baseline the run is diffed against an earlier results file and any
// regression — a newly failing scenario, more rounds/bits on the same
// deterministic scenario, or a scenario that vanished from the new run —
// makes the command exit non-zero; -allow-removed accepts removals for
// intentional matrix shrinks. -backends restricts an expanded matrix to a
// comma-separated backend subset. After every matrix run the summary breaks
// the scenarios down per backend, and when the run contains
// classical/quantum disjointness pairs it prints the measured crossover
// table of Example 1.1 next to the predicted crossover diameter.
//
// Scale-out mode fans one sweep out across processes or machines and folds
// the results back together. -shard i/n runs the i-th of n deterministic,
// disjoint slices of the expansion, and the merge subcommand rebuilds the
// canonical snapshot — byte-identical to an unsharded -json run of the same
// matrix, which is what makes the fan-out trustworthy. The trend subcommand
// reads a directory of BENCH_*.json snapshots and prints every scenario's
// rounds/bits trajectory plus the snapshots it first appeared and was last
// seen in, turning the single old-vs-new diff into multi-PR drift
// visibility:
//
//	qdcbench -matrix quick -shard 1/2 -jsonl s1.jsonl
//	qdcbench -matrix quick -shard 2/2 -jsonl s2.jsonl
//	qdcbench merge -matrix quick -json merged.json s1.jsonl s2.jsonl
//	qdcbench trend -dir snapshots/
//
// The fanout subcommand supervises the whole shard lifecycle itself: it
// re-invokes this binary once per shard, tails the worker JSONL streams
// live (feeding the same -progress/-listen/-events plumbing), retries
// crashed workers with capped backoff, and merges on completion — still
// byte-identical to the unsharded run:
//
//	qdcbench fanout -shards 4 -matrix default -json BENCH_default.json
//	qdcbench fanout -shards 3 -matrix quick -events events.jsonl -progress 30s
//
// The serve subcommand turns the fanout supervisor into qdcd, a
// long-running sweep control plane: an HTTP/JSON daemon that accepts matrix
// jobs (POST /jobs), runs each job's shard slices on a persistent bounded
// worker pool, streams records live (GET /jobs/{id}/records), and serves
// the canonical merged snapshot (GET /jobs/{id}/snapshot — byte-identical
// to an unsharded -json run) plus cross-job diffs (GET /jobs/{id}/diff).
// Jobs persist under -state: a restarted daemon re-adopts finished jobs and
// re-runs interrupted ones from their frozen specs. The submit subcommand
// is the matching client — it submits a sweep, optionally waits it out, and
// downloads the snapshot:
//
//	qdcbench serve -listen 127.0.0.1:8123 -state qdcd-state -pool 8
//	qdcbench submit -addr http://127.0.0.1:8123 -matrix quick -shards 2 -wait
//	qdcbench submit -matrix examples/matrix.json -shards 4 -json BENCH_default.json
//
// Observability rides along any matrix sweep without touching its results:
// -metrics collects a deterministic per-scenario metrics block (per-round
// message/bit/qubit histograms) that travels in the JSONL stream but is
// stripped from canonical -json snapshots, -events appends a JSONL event log
// of the sweep, -progress prints a heartbeat line for headless CI logs, and
// -listen serves live endpoints (net/http/pprof, /debug/vars, /vars,
// /progress) for the duration of the sweep plus an optional -linger window:
//
//	qdcbench -matrix default -metrics -jsonl run.jsonl -events events.jsonl
//	qdcbench -matrix default -progress 30s -listen :8123 -linger 1m
//	qdcbench trend -dir snapshots/ -json
//
// The roundbench subcommand runs the deterministic round-loop benchmark
// matrix (the flood workloads of internal/congest's BenchmarkRoundLoop*),
// prints the measured node-rounds/sec, and folds the records into a
// snapshot so the trend view tracks the simulator hot path across PRs:
//
//	qdcbench roundbench -append bench-smoke.json
//
// Table mode regenerates the paper's tables and figures as text: the
// Figure 2 bounds table, the Figure 3 MST curves, the server-model hardness
// table of Theorems 3.4/6.1, the Theorem 3.5 simulation accounting, and the
// Example 1.1 comparison.
//
//	qdcbench -figure 2        # the Figure 2 bounds table
//	qdcbench -figure 3        # the Figure 3 curves + measured MST runs
//	qdcbench -example 1.1     # Example 1.1 classical vs quantum Disjointness
//	qdcbench -experiment sim  # Theorem 3.5 three-party simulation accounting
//	qdcbench -all             # every table
//
// Every failure path exits with a non-zero status so CI smoke runs catch
// broken experiments instead of accepting partial tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"qdc"
	"qdc/internal/exp"
	"qdc/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "qdcbench: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	// Matrix mode.
	matrix       string
	backends     string
	shard        string
	workers      int
	timeout      time.Duration
	jsonOut      string
	jsonlOut     string
	baseline     string
	allowRemoved bool
	seed         int64
	list         bool

	// Observability (matrix mode).
	metrics       bool
	events        string
	listen        string
	linger        time.Duration
	progressEvery time.Duration
	slowest       int

	// Table mode.
	figure     int
	example    string
	experiment string
	all        bool
	n          int
	bandwidth  int
	alpha      float64
	aspect     float64
}

// run dispatches the subcommands (merge, trend) and the flag-driven matrix
// and table modes. All output goes to out so tests can capture it.
func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "fanout":
			return runFanout(args[1:], out)
		case "serve":
			return runServe(args[1:], out)
		case "submit":
			return runSubmit(args[1:], out)
		case "merge":
			return runMerge(args[1:], out)
		case "trend":
			return runTrend(args[1:], out)
		case "roundbench":
			return runRoundBench(args[1:], out)
		}
	}

	fs := flag.NewFlagSet("qdcbench", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.matrix, "matrix", "", "run a scenario matrix: a registered name "+fmt.Sprint(exp.MatrixNames())+" or a *.json spec path")
	fs.StringVar(&c.backends, "backends", "", "restrict the matrix to these comma-separated backends (e.g. local,quantum)")
	fs.StringVar(&c.shard, "shard", "", "run only slice i/n of the matrix expansion (e.g. 1/2); merge the JSONL outputs with 'qdcbench merge'")
	fs.IntVar(&c.workers, "workers", 0, "concurrent scenario executions (0 = GOMAXPROCS)")
	fs.DurationVar(&c.timeout, "timeout", exp.DefaultTimeout, "per-scenario wall-clock budget")
	fs.StringVar(&c.jsonOut, "json", "", "write results as a canonical sorted JSON array to this file")
	fs.StringVar(&c.jsonlOut, "jsonl", "", "stream results as JSON lines to this file")
	fs.StringVar(&c.baseline, "baseline", "", "compare results against this earlier JSON/JSONL file")
	fs.BoolVar(&c.allowRemoved, "allow-removed", false, "accept scenarios missing from the new run when diffing against -baseline (intentional matrix shrinks)")
	fs.Int64Var(&c.seed, "seed", 0, "override the matrix base seed (0 keeps the spec's seed)")
	fs.BoolVar(&c.list, "list", false, "list the registered matrices and exit")
	fs.BoolVar(&c.metrics, "metrics", false, "collect per-scenario observability metrics (deterministic; stripped from canonical -json snapshots)")
	fs.StringVar(&c.events, "events", "", "append a JSONL event log of the sweep (sweep_start, one scenario event per record, sweep_done) to this file")
	fs.StringVar(&c.listen, "listen", "", "serve live sweep endpoints on this address (e.g. :8123): /debug/pprof, /debug/vars, /vars, /progress")
	fs.DurationVar(&c.linger, "linger", 0, "keep the -listen server up this long after the sweep, so probes can scrape a finished run")
	fs.DurationVar(&c.progressEvery, "progress", 0, "print a progress heartbeat line at this interval (plus one final line), for headless CI logs")
	fs.IntVar(&c.slowest, "slowest", 3, "list the K slowest scenarios by wall time in the matrix summary (0 disables)")
	fs.IntVar(&c.figure, "figure", 0, "regenerate a figure: 2 or 3")
	fs.StringVar(&c.example, "example", "", "regenerate an example: 1.1")
	fs.StringVar(&c.experiment, "experiment", "", "run an experiment: sim, server, verify, pipeline")
	fs.BoolVar(&c.all, "all", false, "regenerate every table")
	fs.IntVar(&c.n, "n", 100_000, "network size for the formula tables")
	fs.IntVar(&c.bandwidth, "B", 32, "per-edge bandwidth in bits per round")
	fs.Float64Var(&c.alpha, "alpha", 2, "approximation factor")
	fs.Float64Var(&c.aspect, "W", 1e5, "weight aspect ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if c.list {
		for _, name := range exp.MatrixNames() {
			m, _ := exp.LookupMatrix(name)
			fmt.Fprintf(out, "%-10s %3d scenarios (%d topologies x %d algorithms x %d backends x %d bandwidths)\n",
				name, len(m.Expand()), len(m.Topologies), len(m.Algorithms), len(m.Backends), len(m.Bandwidths))
		}
		return nil
	}
	if c.matrix != "" {
		return runMatrix(c, out)
	}
	return runTables(c, fs, out)
}

func runMatrix(c config, out io.Writer) error {
	m, err := exp.ResolveMatrix(c.matrix)
	if err != nil {
		return err
	}
	if c.seed != 0 {
		m.BaseSeed = c.seed
	}
	var scenarios []exp.Scenario
	label := m.Name
	if c.shard == "" {
		scenarios = m.Expand()
	} else {
		if c.baseline != "" {
			return fmt.Errorf("-baseline cannot gate a single shard (removals would be spurious); merge the shards and diff the merged snapshot")
		}
		i, n, err := exp.ParseShard(c.shard)
		if err != nil {
			return err
		}
		if scenarios, err = m.Shard(i, n); err != nil {
			return err
		}
		label = fmt.Sprintf("%s shard %d/%d", m.Name, i, n)
	}
	if c.backends != "" {
		keep := make(map[string]bool)
		for _, b := range strings.Split(c.backends, ",") {
			keep[strings.TrimSpace(b)] = true
		}
		filtered := scenarios[:0]
		for _, s := range scenarios {
			if keep[s.Backend] {
				filtered = append(filtered, s)
			}
		}
		scenarios = filtered
	}
	// An empty shard slice is valid — a fan-out wider than the expansion
	// must still produce (empty) output files for merge to collect — but an
	// unsharded run with nothing to do is a spec mistake.
	if len(scenarios) == 0 && c.shard == "" {
		if c.backends != "" {
			return fmt.Errorf("matrix %s has no scenarios on backends %q", m.Name, c.backends)
		}
		return fmt.Errorf("matrix %s has no scenarios to run", m.Name)
	}

	collect := &exp.Collect{}
	sinks := []exp.Sink{collect}
	if c.jsonOut != "" {
		s, err := exp.CreateJSON(c.jsonOut)
		if err != nil {
			return err
		}
		sinks = append(sinks, s)
	}
	if c.jsonlOut != "" {
		s, err := exp.CreateJSONL(c.jsonlOut)
		if err != nil {
			return err
		}
		sinks = append(sinks, s)
	}

	status := exp.NewStatus(len(scenarios))
	var eventLog *obs.EventLog
	if c.events != "" {
		if eventLog, err = obs.CreateEventLog(c.events); err != nil {
			return err
		}
		if err := eventLog.Emit("sweep_start", map[string]any{"matrix": label, "scenarios": len(scenarios)}); err != nil {
			return err
		}
		sinks = append(sinks, exp.NewEventSink(eventLog))
	}
	shutdownListen, err := startListen(out, c.listen, c.linger, status)
	if err != nil {
		return err
	}
	stopHeartbeat := startHeartbeat(out, c.progressEvery, status)

	sum, err := exp.Execute(scenarios, exp.ExecOptions{Workers: c.workers, Timeout: c.timeout, Metrics: c.metrics, Status: status}, sinks...)
	stopHeartbeat()
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if eventLog != nil {
		if eerr := eventLog.Emit("sweep_done", map[string]any{
			"scenarios": sum.Scenarios, "passed": sum.Passed, "failed": sum.Failed, "wall_ms": sum.WallMillis,
		}); eerr != nil && err == nil {
			err = eerr
		}
		if cerr := eventLog.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	shutdownListen()
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "matrix %s: %d scenarios, %d passed, %d failed (%d errors) in %.0f ms\n",
		label, sum.Scenarios, sum.Passed, sum.Failed, sum.Errors, sum.WallMillis)
	printBackendBreakdown(out, collect.Records)
	printSlowest(out, collect.Records, c.slowest)
	for _, r := range collect.Records {
		if r.Failed() {
			fmt.Fprintf(out, "  FAIL %-40s %s%s\n", r.Scenario.Name, r.Error, r.Detail)
		}
	}
	printCrossover(out, collect.Records)

	if c.baseline != "" {
		old, err := exp.ReadRecords(c.baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		diff := exp.Compare(old, collect.Records)
		for _, d := range diff.Regressions {
			fmt.Fprintf(out, "  REGRESSION %s\n", d)
		}
		for _, d := range diff.Improvements {
			fmt.Fprintf(out, "  improvement %s\n", d)
		}
		if len(diff.Added) > 0 {
			fmt.Fprintf(out, "  added: %v\n", diff.Added)
		}
		for _, name := range diff.Removed {
			fmt.Fprintf(out, "  REMOVED %s\n", name)
		}
		for _, name := range diff.DuplicateOld {
			fmt.Fprintf(out, "  DUPLICATE in baseline: %s\n", name)
		}
		for _, name := range diff.DuplicateNew {
			fmt.Fprintf(out, "  DUPLICATE in new run: %s\n", name)
		}
		switch {
		case len(diff.DuplicateOld) > 0 || len(diff.DuplicateNew) > 0:
			// A duplicated scenario name means the comparison itself is
			// unreliable (an arbitrary copy was diffed), not that one
			// scenario regressed — refuse the gate outright.
			return fmt.Errorf("duplicate scenario names make the diff against %s unreliable (%d in baseline, %d in new run)",
				c.baseline, len(diff.DuplicateOld), len(diff.DuplicateNew))
		case len(diff.Regressions) > 0:
			return fmt.Errorf("%d regressions against %s", len(diff.Regressions), c.baseline)
		case !diff.Clean() && !c.allowRemoved:
			return fmt.Errorf("%d scenarios removed since %s (pass -allow-removed if the matrix shrank on purpose)",
				len(diff.Removed), c.baseline)
		case !diff.Clean():
			fmt.Fprintf(out, "  accepting %d removals (-allow-removed)\n", len(diff.Removed))
		}
	}
	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", sum.Failed, sum.Scenarios)
	}
	return nil
}

// startListen serves the live sweep endpoints (pprof, /vars, /progress)
// for status on addr. The returned shutdown waits out the linger window —
// so probes can scrape a finished run — then closes the server. With an
// empty addr both the start and the shutdown are no-ops. Matrix sweeps and
// fanout supervisions share it: the fan-out parent serves the very same
// endpoints over the counters its record tails feed.
func startListen(out io.Writer, addr string, linger time.Duration, status *exp.Status) (shutdown func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	reg := obs.NewRegistry()
	status.Register(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "serving pprof, /vars and /progress on http://%s\n", ln.Addr())
	server := &http.Server{Handler: obs.NewMux(reg, status.Progress)}
	go server.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return func() {
		if linger > 0 {
			fmt.Fprintf(out, "lingering %s for live-endpoint scrapes\n", linger)
			time.Sleep(linger)
		}
		server.Close() //nolint:errcheck // shutting down, nothing to salvage
	}, nil
}

// startHeartbeat prints a progress line every interval for headless CI
// logs. The returned stop joins the ticker goroutine before printing one
// final line, so heartbeat writes never interleave with the caller's
// summary. With a non-positive interval both are no-ops.
func startHeartbeat(out io.Writer, every time.Duration, status *exp.Status) (stop func()) {
	heartbeat := func() {
		fmt.Fprintf(out, "progress: %d/%d done, %d failed, %d in flight, %.0f node-rounds/sec\n",
			status.Done.Load(), status.Total, status.Failed.Load(), status.InFlight.Load(),
			status.NodeRoundsPerSec())
	}
	if every <= 0 {
		return func() {}
	}
	hbStop, hbDone := make(chan struct{}), make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				heartbeat()
			}
		}
	}()
	return func() {
		close(hbStop)
		<-hbDone
		heartbeat()
	}
}

// runRoundBench runs the round-loop benchmark matrix — the deterministic
// companion of internal/congest's BenchmarkRoundLoop* — prints the measured
// throughput and peak heap, and writes or folds the records into a
// canonical snapshot. Because each record carries the process heap
// high-water mark, the scenarios run one at a time (-workers is accepted
// for interface symmetry with matrix mode but heap measurement overrides
// it; pass -measure-heap=false to get a concurrent, heapless run).
func runRoundBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qdcbench roundbench", flag.ContinueOnError)
	jsonOut := fs.String("json", "", "write the round-loop records alone as a canonical snapshot to this file")
	appendTo := fs.String("append", "", "fold the round-loop records into this snapshot file (created if absent), replacing same-named records")
	workers := fs.Int("workers", 0, "concurrent scenario executions (0 = GOMAXPROCS; ignored while -measure-heap is on)")
	timeout := fs.Duration("timeout", exp.DefaultTimeout, "per-scenario wall-clock budget")
	measureHeap := fs.Bool("measure-heap", true, "sample the heap high-water mark per scenario (serialises the pool)")
	matrix := fs.String("matrix", "roundbench", "the matrix to run (registered name or *.json path)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("roundbench takes no positional arguments (use -json/-append)")
	}
	m, err := exp.ResolveMatrix(*matrix)
	if err != nil {
		return err
	}
	collect := &exp.Collect{}
	sum, err := exp.Execute(m.Expand(), exp.ExecOptions{Workers: *workers, Timeout: *timeout, MeasureHeap: *measureHeap}, collect)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "roundbench: %d scenarios, %d passed, %d failed in %.0f ms\n",
		sum.Scenarios, sum.Passed, sum.Failed, sum.WallMillis)
	for _, r := range collect.Records {
		if r.Failed() {
			fmt.Fprintf(out, "  FAIL %-40s %s%s\n", r.Scenario.Name, r.Error, r.Detail)
			continue
		}
		heap := ""
		if r.PeakHeapBytes > 0 {
			heap = fmt.Sprintf("  peak-heap=%.1fMB", float64(r.PeakHeapBytes)/(1<<20))
		}
		fmt.Fprintf(out, "  %-40s rounds=%-6d bits=%-10d %12.0f node-rounds/sec%s\n",
			r.Scenario.Name, r.Stats.Rounds, r.Stats.Bits, exp.NodeRoundsPerSec(r), heap)
	}

	writeSnapshot := func(path string, records []exp.Record) error {
		sink, err := exp.CreateJSON(path)
		if err != nil {
			return err
		}
		for _, r := range records {
			if err := sink.Write(r); err != nil {
				return err
			}
		}
		return sink.Close()
	}
	if *jsonOut != "" {
		if err := writeSnapshot(*jsonOut, collect.Records); err != nil {
			return err
		}
	}
	if *appendTo != "" {
		var base []exp.Record
		if _, statErr := os.Stat(*appendTo); statErr == nil {
			if base, err = exp.ReadRecords(*appendTo); err != nil {
				return err
			}
		}
		folded := exp.FoldRecords(base, collect.Records)
		if err := writeSnapshot(*appendTo, folded); err != nil {
			return err
		}
		fmt.Fprintf(out, "folded %d round-loop records into %s (%d total)\n",
			len(collect.Records), *appendTo, len(folded))
	}
	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d round-loop scenarios failed", sum.Failed, sum.Scenarios)
	}
	return nil
}

// runMerge folds shard result files (JSONL or JSON) into the canonical
// sorted-JSON snapshot an unsharded -json run would have produced.
func runMerge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qdcbench merge", flag.ContinueOnError)
	jsonOut := fs.String("json", "", "write the merged canonical snapshot to this file (default: stdout)")
	matrix := fs.String("matrix", "", "verify the merged records cover this matrix exactly (name or *.json path)")
	seed := fs.Int64("seed", 0, "the -seed the shards were run with, so the -matrix check expects the same scenarios (0 = the spec's seed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardFiles := fs.Args()
	if len(shardFiles) == 0 {
		return fmt.Errorf("merge needs at least one shard results file (qdcbench merge -json out.json s1.jsonl s2.jsonl)")
	}
	sets := make([][]exp.Record, 0, len(shardFiles))
	for _, path := range shardFiles {
		recs, err := exp.ReadRecords(path)
		if err != nil {
			return err
		}
		sets = append(sets, recs)
	}
	merged, err := exp.MergeRecords(sets...)
	if err != nil {
		return err
	}
	if *matrix != "" {
		m, err := exp.ResolveMatrix(*matrix)
		if err != nil {
			return err
		}
		if *seed != 0 {
			m.BaseSeed = *seed
		}
		if err := exp.CheckComplete(m, merged); err != nil {
			return err
		}
	}
	var sink *exp.JSONSink
	if *jsonOut == "" {
		sink = exp.NewJSONSink(out)
	} else {
		if sink, err = exp.CreateJSON(*jsonOut); err != nil {
			return err
		}
	}
	for _, r := range merged {
		if err := sink.Write(r); err != nil {
			return err
		}
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if *jsonOut != "" {
		fmt.Fprintf(out, "merged %d records from %d shards into %s\n", len(merged), len(shardFiles), *jsonOut)
	}
	return nil
}

// runTrend prints the per-scenario cost trajectories across a directory of
// BENCH_*.json snapshots.
func runTrend(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qdcbench trend", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json snapshots")
	changedOnly := fs.Bool("changed", false, "only print scenarios whose rounds or bits moved")
	asJSON := fs.Bool("json", false, "emit the report as JSON (snapshots, per-scenario trajectories, vanished list) instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("trend takes no positional arguments (use -dir)")
	}
	rep, err := exp.Trend(*dir)
	if err != nil {
		return err
	}
	if *asJSON {
		// An explicit wrapper: the vanished set is a method on TrendReport,
		// and machine consumers should not have to re-derive it.
		payload := struct {
			Snapshots []string            `json:"snapshots"`
			Scenarios []exp.ScenarioTrend `json:"scenarios"`
			Vanished  []string            `json:"vanished,omitempty"`
		}{Snapshots: rep.Snapshots, Scenarios: rep.Scenarios, Vanished: rep.Vanished()}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	}
	fmt.Fprintf(out, "trend over %d snapshots (%s .. %s): %d scenarios\n",
		len(rep.Snapshots), rep.Snapshots[0], rep.Snapshots[len(rep.Snapshots)-1], len(rep.Scenarios))
	fmt.Fprintf(out, "  %-44s %7s %7s  %-24s %s\n", "scenario", "first", "last", "rounds", "bits")
	newest := rep.Snapshots[len(rep.Snapshots)-1]
	shown := 0
	for _, s := range rep.Scenarios {
		if *changedOnly && !s.Changed() && s.Last == newest && len(s.Missing) == 0 {
			continue
		}
		shown++
		gap := ""
		if len(s.Missing) > 0 {
			marks := make([]string, len(s.Missing))
			for i, label := range s.Missing {
				marks[i] = snapshotOrdinal(rep.Snapshots, label)
			}
			gap = "  GAP at " + strings.Join(marks, ",")
		}
		fmt.Fprintf(out, "  %-44s %7s %7s  %-24s %s%s\n",
			s.Name, snapshotOrdinal(rep.Snapshots, s.First), snapshotOrdinal(rep.Snapshots, s.Last),
			trajectory(s.Points, func(p exp.TrendPoint) int64 { return int64(p.Rounds) }),
			trajectory(s.Points, func(p exp.TrendPoint) int64 { return p.Bits }), gap)
	}
	if *changedOnly {
		fmt.Fprintf(out, "  (%d of %d scenarios moved or vanished)\n", shown, len(rep.Scenarios))
	}
	if vanished := rep.Vanished(); len(vanished) > 0 {
		fmt.Fprintf(out, "  VANISHED (absent from %s): %v\n", newest, vanished)
	}
	return nil
}

// snapshotOrdinal renders a snapshot label as its position in the
// trajectory, e.g. "#1" for the oldest — full file names are listed once in
// the header line and would swamp the per-scenario table.
func snapshotOrdinal(snapshots []string, label string) string {
	for i, s := range snapshots {
		if s == label {
			return fmt.Sprintf("#%d", i+1)
		}
	}
	return "?"
}

// trajectory renders a cost series compactly: a single value with a
// repetition count when the series never moves ("26 (x3)"), the full
// arrow-joined series otherwise ("26>30>28"). Failed points are marked "!".
func trajectory(points []exp.TrendPoint, val func(exp.TrendPoint) int64) string {
	if len(points) == 0 {
		return "-"
	}
	flat := true
	anyFailed := false
	for _, p := range points {
		if val(p) != val(points[0]) {
			flat = false
		}
		if p.Failed {
			anyFailed = true
		}
	}
	if flat && !anyFailed {
		if len(points) == 1 {
			return fmt.Sprint(val(points[0]))
		}
		return fmt.Sprintf("%d (x%d)", val(points[0]), len(points))
	}
	parts := make([]string, len(points))
	for i, p := range points {
		parts[i] = fmt.Sprint(val(p))
		if p.Failed {
			parts[i] += "!"
		}
	}
	return strings.Join(parts, ">")
}

// printSlowest lists the k scenarios that took the most wall time — the ones
// to shard, shrink or profile first when a sweep grows slow. Wall time is
// display-only (host-dependent, never part of a snapshot), so the table is
// advisory: ties break by name to keep the listing stable on a given host.
func printSlowest(out io.Writer, records []exp.Record, k int) {
	if k <= 0 || len(records) == 0 {
		return
	}
	sorted := append([]exp.Record(nil), records...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].WallMillis != sorted[j].WallMillis {
			return sorted[i].WallMillis > sorted[j].WallMillis
		}
		return sorted[i].Scenario.Name < sorted[j].Scenario.Name
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	fmt.Fprintf(out, "  slowest %d scenarios by wall time:\n", k)
	for _, r := range sorted[:k] {
		fmt.Fprintf(out, "    %-44s %10.1f ms %14.0f node-rounds/sec\n",
			r.Scenario.Name, r.WallMillis, exp.NodeRoundsPerSec(r))
	}
}

// printBackendBreakdown rolls the records up into one row per backend so a
// mixed sweep shows at a glance how each cost model fared.
func printBackendBreakdown(out io.Writer, records []exp.Record) {
	type row struct {
		scenarios, passed int
		rounds            int
		bits, qubits      int64
	}
	rows := make(map[string]*row)
	var backends []string
	for _, r := range records {
		b := rows[r.Scenario.Backend]
		if b == nil {
			b = &row{}
			rows[r.Scenario.Backend] = b
			backends = append(backends, r.Scenario.Backend)
		}
		b.scenarios++
		if !r.Failed() {
			b.passed++
		}
		b.rounds += r.Stats.Rounds
		b.bits += r.Stats.Bits
		b.qubits += r.Stats.QuantumBits
	}
	sort.Strings(backends)
	fmt.Fprintf(out, "  %-12s %9s %7s %12s %14s %14s\n", "backend", "scenarios", "passed", "rounds", "bits", "qubits")
	for _, name := range backends {
		b := rows[name]
		fmt.Fprintf(out, "  %-12s %9d %7d %12d %14d %14d\n", name, b.scenarios, b.passed, b.rounds, b.bits, b.qubits)
	}
}

// printCrossover prints the measured Example 1.1 crossover table when the
// run paired classical and quantum disjointness scenarios.
func printCrossover(out io.Writer, records []exp.Record) {
	points := exp.CrossoverReport(records)
	if len(points) == 0 {
		return
	}
	fmt.Fprintln(out, "  classical vs quantum disjointness (Example 1.1):")
	fmt.Fprintf(out, "  %10s %6s %6s %12s %12s %10s %11s %7s\n",
		"B", "b", "D", "classical", "quantum", "winner", "predicted D*", "agree")
	for _, p := range points {
		note := ""
		if !p.Decisive {
			note = " (near crossover)"
		}
		fmt.Fprintf(out, "  %10d %6d %6d %12d %12d %10s %11d %7v%s\n",
			p.Bandwidth, p.InputBits, p.Distance, p.ClassicalRounds, p.QuantumRounds,
			p.MeasuredWinner, p.PredictedCrossover, p.Agree, note)
	}
	for _, s := range exp.MeasuredCrossovers(points) {
		measured := "none (quantum won every swept D)"
		if s.MeasuredCrossover > 0 {
			measured = fmt.Sprintf("D=%d", s.MeasuredCrossover)
		}
		fmt.Fprintf(out, "  B=%-4d b=%-5d measured crossover %s, predicted D*=%d over %d diameters\n",
			s.Bandwidth, s.InputBits, measured, s.PredictedCrossover, s.Points)
	}
}

func runTables(c config, fs *flag.FlagSet, out io.Writer) error {
	ran := false
	if c.all || c.figure == 2 {
		ran = true
		if err := printFigure2(out, c.n, c.bandwidth, c.aspect, c.alpha); err != nil {
			return err
		}
	}
	if c.all || c.figure == 3 {
		ran = true
		if err := printFigure3(out, c.n, c.bandwidth, c.alpha); err != nil {
			return err
		}
	}
	if c.all || c.example == "1.1" {
		ran = true
		if err := printExample11(out); err != nil {
			return err
		}
	}
	if c.all || c.experiment == "server" {
		ran = true
		printServerTable(out, 1200)
	}
	if c.all || c.experiment == "sim" {
		ran = true
		if err := printSimulation(out); err != nil {
			return err
		}
	}
	if c.all || c.experiment == "verify" {
		ran = true
		if err := printVerification(out); err != nil {
			return err
		}
	}
	if c.all || c.experiment == "pipeline" {
		ran = true
		if err := printPipeline(out); err != nil {
			return err
		}
	}
	if !ran {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -matrix, -list, -figure, -example, -experiment, -all, or the merge/trend subcommands")
	}
	return nil
}

func printFigure2(out io.Writer, n, bandwidth int, aspect, alpha float64) error {
	rows, err := qdc.Figure2Table(n, bandwidth, aspect, alpha)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 2 — lower bounds at n=%d, B=%d, W=%g, alpha=%g\n", n, bandwidth, aspect, alpha)
	fmt.Fprintf(out, "%-46s | %-30s | %14s | %14s\n", "problem", "setting", "previous", "this paper")
	for _, r := range rows {
		fmt.Fprintf(out, "%-46s | %-30s | %14.1f | %14.1f\n", r.Problem, r.Setting, r.PreviousValue, r.NewValue)
	}
	fmt.Fprintln(out)
	return nil
}

func printFigure3(out io.Writer, n, bandwidth int, alpha float64) error {
	ws := []float64{2, 16, 128, 1024, 8192, 1 << 16, 1 << 20}
	pts, err := qdc.Figure3Curve(n, bandwidth, 17, alpha, ws)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 3 — MST rounds vs aspect ratio W (n=%d, B=%d, alpha=%g)\n", n, bandwidth, alpha)
	fmt.Fprintf(out, "%12s %20s %20s\n", "W", "lower bound", "upper bound")
	for _, p := range pts {
		fmt.Fprintf(out, "%12.0f %20.1f %20.1f\n", p.W, p.LowerBound, p.UpperBound)
	}
	fmt.Fprintln(out, "measured (lower-bound network family, Γ=8, L=17, B=128):")
	fmt.Fprintf(out, "%12s %12s %14s %14s %12s\n", "W", "nodes", "exact rounds", "approx rounds", "ratio")
	for _, w := range []float64{4, 64, 1024} {
		res, err := qdc.RunMSTExperiment(8, 17, 128, w, alpha, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%12.0f %12d %14d %14d %12.3f\n", w, res.Nodes, res.ExactRounds, res.ApproxRounds, res.ApproxRatio)
	}
	fmt.Fprintln(out)
	return nil
}

func printExample11(out io.Writer) error {
	fmt.Fprintln(out, "Example 1.1 — distributed Set Disjointness, classical vs quantum (b=4096, B=1)")
	fmt.Fprintf(out, "%10s %18s %18s %10s %14s\n", "D", "classical rounds", "quantum rounds", "winner", "crossover D*")
	for _, d := range []int{2, 8, 32, 128, 512, 2048} {
		cmp, err := qdc.RunDisjointnessComparison(4096, 1, d, 1)
		if err != nil {
			return err
		}
		w := "classical"
		if cmp.QuantumWins {
			w = "quantum"
		}
		fmt.Fprintf(out, "%10d %18d %18d %10s %14.0f\n", d, cmp.ClassicalRounds, cmp.QuantumRounds, w, cmp.CrossoverDiameter)
	}
	fmt.Fprintln(out)
	return nil
}

func printServerTable(out io.Writer, n int) {
	fmt.Fprintf(out, "Server-model bounds (Theorems 3.4/6.1, Corollary 3.10) at n=%d\n", n)
	fmt.Fprintf(out, "%-40s %16s %16s %s\n", "problem", "lower bound", "trivial cost", "best known upper")
	for _, r := range qdc.ServerModelTable(n) {
		fmt.Fprintf(out, "%-40s %16.1f %16.1f %s\n", r.Problem, r.LowerBound, r.TrivialCost, r.BestKnownUpper)
	}
	fmt.Fprintln(out)
}

func printSimulation(out io.Writer) error {
	rep, err := qdc.SimulationExperiment(8, 257, 64, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Theorem 3.5 — three-party simulation accounting (Γ=8, L=257, B=64)")
	fmt.Fprintf(out, "  rounds:            %d (within L/2-2 budget: %v)\n", rep.Rounds, rep.WithinRoundBudget)
	fmt.Fprintf(out, "  Carol bits:        %d\n", rep.CarolBits)
	fmt.Fprintf(out, "  David bits:        %d\n", rep.DavidBits)
	fmt.Fprintf(out, "  server-model cost: %d\n", rep.ServerModelCost)
	fmt.Fprintf(out, "  O(B log L * T):    %d (within bound: %v)\n", rep.TheoremBound, rep.WithinTheoremBound)
	fmt.Fprintln(out)
	return nil
}

func printVerification(out io.Writer) error {
	rows, err := qdc.RunVerificationExperiment(12, 17, 64, 1, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Corollary 3.7 — verification algorithms on the embedded Hamiltonian instance (Γ=12, L=17)")
	fmt.Fprintf(out, "%-34s %8s %10s %14s %14s\n", "problem", "answer", "rounds", "lower bound", "upper bound")
	for _, r := range rows {
		fmt.Fprintf(out, "%-34s %8v %10d %14.1f %14.1f\n", r.Problem, r.Answer, r.Rounds, r.LowerBound, r.UpperBound)
	}
	fmt.Fprintln(out)
	return nil
}

func printPipeline(out io.Writer) error {
	res, err := qdc.RunProofPipeline(4, 64, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Figure 1 — proof pipeline on a random IPmod3 instance (n=4)")
	fmt.Fprintf(out, "  IPmod3 value %d, gadget Hamiltonian %v, server bound %.1f bits\n",
		res.IPMod3Value, res.GadgetIsHamiltonian, res.ServerLowerBoundBits)
	fmt.Fprintf(out, "  network %d nodes diameter %d, embedding consistent %v\n",
		res.NetworkNodes, res.NetworkDiameter, res.EmbeddedMatchesGadget)
	fmt.Fprintf(out, "  simulation cost %d bits <= bound %d bits: %v\n",
		res.SimulationReport.ServerModelCost, res.SimulationReport.TheoremBound, res.SimulationReport.WithinTheoremBound)
	fmt.Fprintf(out, "  distributed lower bound %.1f rounds\n", res.DistributedLowerBound)
	fmt.Fprintln(out)
	return nil
}
