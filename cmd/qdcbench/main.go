// Command qdcbench drives the repository's experiments from the command
// line, in two modes.
//
// Matrix mode runs a named scenario matrix through the internal/exp worker
// pool and writes machine-readable results, the pipeline BENCH_*.json
// snapshots are produced with:
//
//	qdcbench -matrix default -workers 8 -json BENCH_default.json
//	qdcbench -matrix quick -jsonl run.jsonl
//	qdcbench -matrix default -json new.json -baseline BENCH_default.json
//	qdcbench -matrix crossover -backends local,quantum
//	qdcbench -list
//
// With -baseline the run is diffed against an earlier results file and any
// regression (a newly failing scenario, or more rounds/bits on the same
// deterministic scenario) makes the command exit non-zero. -backends
// restricts an expanded matrix to a comma-separated backend subset. After
// every matrix run the summary breaks the scenarios down per backend, and
// when the run contains classical/quantum disjointness pairs it prints the
// measured crossover table of Example 1.1 next to the predicted crossover
// diameter.
//
// Table mode regenerates the paper's tables and figures as text: the
// Figure 2 bounds table, the Figure 3 MST curves, the server-model hardness
// table of Theorems 3.4/6.1, the Theorem 3.5 simulation accounting, and the
// Example 1.1 comparison.
//
//	qdcbench -figure 2        # the Figure 2 bounds table
//	qdcbench -figure 3        # the Figure 3 curves + measured MST runs
//	qdcbench -example 1.1     # Example 1.1 classical vs quantum Disjointness
//	qdcbench -experiment sim  # Theorem 3.5 three-party simulation accounting
//	qdcbench -all             # every table
//
// Every failure path exits with a non-zero status so CI smoke runs catch
// broken experiments instead of accepting partial tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"qdc"
	"qdc/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "qdcbench: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	// Matrix mode.
	matrix   string
	backends string
	workers  int
	timeout  time.Duration
	jsonOut  string
	jsonlOut string
	baseline string
	seed     int64
	list     bool

	// Table mode.
	figure     int
	example    string
	experiment string
	all        bool
	n          int
	bandwidth  int
	alpha      float64
	aspect     float64
}

func run() error {
	var c config
	flag.StringVar(&c.matrix, "matrix", "", "run a scenario matrix: "+fmt.Sprint(exp.MatrixNames()))
	flag.StringVar(&c.backends, "backends", "", "restrict the matrix to these comma-separated backends (e.g. local,quantum)")
	flag.IntVar(&c.workers, "workers", 0, "concurrent scenario executions (0 = GOMAXPROCS)")
	flag.DurationVar(&c.timeout, "timeout", exp.DefaultTimeout, "per-scenario wall-clock budget")
	flag.StringVar(&c.jsonOut, "json", "", "write results as a sorted JSON array to this file")
	flag.StringVar(&c.jsonlOut, "jsonl", "", "stream results as JSON lines to this file")
	flag.StringVar(&c.baseline, "baseline", "", "compare results against this earlier JSON/JSONL file")
	flag.Int64Var(&c.seed, "seed", 0, "override the matrix base seed (0 keeps the registered seed)")
	flag.BoolVar(&c.list, "list", false, "list the registered matrices and exit")
	flag.IntVar(&c.figure, "figure", 0, "regenerate a figure: 2 or 3")
	flag.StringVar(&c.example, "example", "", "regenerate an example: 1.1")
	flag.StringVar(&c.experiment, "experiment", "", "run an experiment: sim, server, verify, pipeline")
	flag.BoolVar(&c.all, "all", false, "regenerate every table")
	flag.IntVar(&c.n, "n", 100_000, "network size for the formula tables")
	flag.IntVar(&c.bandwidth, "B", 32, "per-edge bandwidth in bits per round")
	flag.Float64Var(&c.alpha, "alpha", 2, "approximation factor")
	flag.Float64Var(&c.aspect, "W", 1e5, "weight aspect ratio")
	flag.Parse()

	if c.list {
		for _, name := range exp.MatrixNames() {
			m, _ := exp.LookupMatrix(name)
			fmt.Printf("%-10s %3d scenarios (%d topologies x %d algorithms x %d backends x %d bandwidths)\n",
				name, len(m.Expand()), len(m.Topologies), len(m.Algorithms), len(m.Backends), len(m.Bandwidths))
		}
		return nil
	}
	if c.matrix != "" {
		return runMatrix(c)
	}
	return runTables(c)
}

func runMatrix(c config) error {
	m, ok := exp.LookupMatrix(c.matrix)
	if !ok {
		return fmt.Errorf("unknown matrix %q (have: %v)", c.matrix, exp.MatrixNames())
	}
	if c.seed != 0 {
		m.BaseSeed = c.seed
	}
	scenarios := m.Expand()
	if c.backends != "" {
		keep := make(map[string]bool)
		for _, b := range strings.Split(c.backends, ",") {
			keep[strings.TrimSpace(b)] = true
		}
		filtered := scenarios[:0]
		for _, s := range scenarios {
			if keep[s.Backend] {
				filtered = append(filtered, s)
			}
		}
		scenarios = filtered
		if len(scenarios) == 0 {
			return fmt.Errorf("matrix %s has no scenarios on backends %q", m.Name, c.backends)
		}
	}

	collect := &exp.Collect{}
	sinks := []exp.Sink{collect}
	if c.jsonOut != "" {
		s, err := exp.CreateJSON(c.jsonOut)
		if err != nil {
			return err
		}
		sinks = append(sinks, s)
	}
	if c.jsonlOut != "" {
		s, err := exp.CreateJSONL(c.jsonlOut)
		if err != nil {
			return err
		}
		sinks = append(sinks, s)
	}

	sum, err := exp.Execute(scenarios, exp.ExecOptions{Workers: c.workers, Timeout: c.timeout}, sinks...)
	for _, s := range sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}

	fmt.Printf("matrix %s: %d scenarios, %d passed, %d failed (%d errors) in %.0f ms\n",
		m.Name, sum.Scenarios, sum.Passed, sum.Failed, sum.Errors, sum.WallMillis)
	printBackendBreakdown(collect.Records)
	for _, r := range collect.Records {
		if r.Failed() {
			fmt.Printf("  FAIL %-40s %s%s\n", r.Scenario.Name, r.Error, r.Detail)
		}
	}
	printCrossover(collect.Records)

	if c.baseline != "" {
		old, err := exp.ReadRecords(c.baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		diff := exp.Compare(old, collect.Records)
		for _, d := range diff.Regressions {
			fmt.Printf("  REGRESSION %s\n", d)
		}
		for _, d := range diff.Improvements {
			fmt.Printf("  improvement %s\n", d)
		}
		if len(diff.Added) > 0 {
			fmt.Printf("  added: %v\n", diff.Added)
		}
		if len(diff.Removed) > 0 {
			fmt.Printf("  removed: %v\n", diff.Removed)
		}
		if !diff.Clean() {
			return fmt.Errorf("%d regressions against %s", len(diff.Regressions), c.baseline)
		}
	}
	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", sum.Failed, sum.Scenarios)
	}
	return nil
}

// printBackendBreakdown rolls the records up into one row per backend so a
// mixed sweep shows at a glance how each cost model fared.
func printBackendBreakdown(records []exp.Record) {
	type row struct {
		scenarios, passed int
		rounds            int
		bits, qubits      int64
	}
	rows := make(map[string]*row)
	var backends []string
	for _, r := range records {
		b := rows[r.Scenario.Backend]
		if b == nil {
			b = &row{}
			rows[r.Scenario.Backend] = b
			backends = append(backends, r.Scenario.Backend)
		}
		b.scenarios++
		if !r.Failed() {
			b.passed++
		}
		b.rounds += r.Stats.Rounds
		b.bits += r.Stats.Bits
		b.qubits += r.Stats.QuantumBits
	}
	sort.Strings(backends)
	fmt.Printf("  %-12s %9s %7s %12s %14s %14s\n", "backend", "scenarios", "passed", "rounds", "bits", "qubits")
	for _, name := range backends {
		b := rows[name]
		fmt.Printf("  %-12s %9d %7d %12d %14d %14d\n", name, b.scenarios, b.passed, b.rounds, b.bits, b.qubits)
	}
}

// printCrossover prints the measured Example 1.1 crossover table when the
// run paired classical and quantum disjointness scenarios.
func printCrossover(records []exp.Record) {
	points := exp.CrossoverReport(records)
	if len(points) == 0 {
		return
	}
	fmt.Println("  classical vs quantum disjointness (Example 1.1):")
	fmt.Printf("  %10s %6s %6s %12s %12s %10s %11s %7s\n",
		"B", "b", "D", "classical", "quantum", "winner", "predicted D*", "agree")
	for _, p := range points {
		note := ""
		if !p.Decisive {
			note = " (near crossover)"
		}
		fmt.Printf("  %10d %6d %6d %12d %12d %10s %11d %7v%s\n",
			p.Bandwidth, p.InputBits, p.Distance, p.ClassicalRounds, p.QuantumRounds,
			p.MeasuredWinner, p.PredictedCrossover, p.Agree, note)
	}
	for _, s := range exp.MeasuredCrossovers(points) {
		measured := "none (quantum won every swept D)"
		if s.MeasuredCrossover > 0 {
			measured = fmt.Sprintf("D=%d", s.MeasuredCrossover)
		}
		fmt.Printf("  B=%-4d b=%-5d measured crossover %s, predicted D*=%d over %d diameters\n",
			s.Bandwidth, s.InputBits, measured, s.PredictedCrossover, s.Points)
	}
}

func runTables(c config) error {
	ran := false
	if c.all || c.figure == 2 {
		ran = true
		if err := printFigure2(c.n, c.bandwidth, c.aspect, c.alpha); err != nil {
			return err
		}
	}
	if c.all || c.figure == 3 {
		ran = true
		if err := printFigure3(c.n, c.bandwidth, c.alpha); err != nil {
			return err
		}
	}
	if c.all || c.example == "1.1" {
		ran = true
		if err := printExample11(); err != nil {
			return err
		}
	}
	if c.all || c.experiment == "server" {
		ran = true
		printServerTable(1200)
	}
	if c.all || c.experiment == "sim" {
		ran = true
		if err := printSimulation(); err != nil {
			return err
		}
	}
	if c.all || c.experiment == "verify" {
		ran = true
		if err := printVerification(); err != nil {
			return err
		}
	}
	if c.all || c.experiment == "pipeline" {
		ran = true
		if err := printPipeline(); err != nil {
			return err
		}
	}
	if !ran {
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -matrix, -list, -figure, -example, -experiment or -all")
	}
	return nil
}

func printFigure2(n, bandwidth int, aspect, alpha float64) error {
	rows, err := qdc.Figure2Table(n, bandwidth, aspect, alpha)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 2 — lower bounds at n=%d, B=%d, W=%g, alpha=%g\n", n, bandwidth, aspect, alpha)
	fmt.Printf("%-46s | %-30s | %14s | %14s\n", "problem", "setting", "previous", "this paper")
	for _, r := range rows {
		fmt.Printf("%-46s | %-30s | %14.1f | %14.1f\n", r.Problem, r.Setting, r.PreviousValue, r.NewValue)
	}
	fmt.Println()
	return nil
}

func printFigure3(n, bandwidth int, alpha float64) error {
	ws := []float64{2, 16, 128, 1024, 8192, 1 << 16, 1 << 20}
	pts, err := qdc.Figure3Curve(n, bandwidth, 17, alpha, ws)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 3 — MST rounds vs aspect ratio W (n=%d, B=%d, alpha=%g)\n", n, bandwidth, alpha)
	fmt.Printf("%12s %20s %20s\n", "W", "lower bound", "upper bound")
	for _, p := range pts {
		fmt.Printf("%12.0f %20.1f %20.1f\n", p.W, p.LowerBound, p.UpperBound)
	}
	fmt.Println("measured (lower-bound network family, Γ=8, L=17, B=128):")
	fmt.Printf("%12s %12s %14s %14s %12s\n", "W", "nodes", "exact rounds", "approx rounds", "ratio")
	for _, w := range []float64{4, 64, 1024} {
		res, err := qdc.RunMSTExperiment(8, 17, 128, w, alpha, 1)
		if err != nil {
			return err
		}
		fmt.Printf("%12.0f %12d %14d %14d %12.3f\n", w, res.Nodes, res.ExactRounds, res.ApproxRounds, res.ApproxRatio)
	}
	fmt.Println()
	return nil
}

func printExample11() error {
	fmt.Println("Example 1.1 — distributed Set Disjointness, classical vs quantum (b=4096, B=1)")
	fmt.Printf("%10s %18s %18s %10s %14s\n", "D", "classical rounds", "quantum rounds", "winner", "crossover D*")
	for _, d := range []int{2, 8, 32, 128, 512, 2048} {
		cmp, err := qdc.RunDisjointnessComparison(4096, 1, d, 1)
		if err != nil {
			return err
		}
		w := "classical"
		if cmp.QuantumWins {
			w = "quantum"
		}
		fmt.Printf("%10d %18d %18d %10s %14.0f\n", d, cmp.ClassicalRounds, cmp.QuantumRounds, w, cmp.CrossoverDiameter)
	}
	fmt.Println()
	return nil
}

func printServerTable(n int) {
	fmt.Printf("Server-model bounds (Theorems 3.4/6.1, Corollary 3.10) at n=%d\n", n)
	fmt.Printf("%-40s %16s %16s %s\n", "problem", "lower bound", "trivial cost", "best known upper")
	for _, r := range qdc.ServerModelTable(n) {
		fmt.Printf("%-40s %16.1f %16.1f %s\n", r.Problem, r.LowerBound, r.TrivialCost, r.BestKnownUpper)
	}
	fmt.Println()
}

func printSimulation() error {
	rep, err := qdc.SimulationExperiment(8, 257, 64, 1)
	if err != nil {
		return err
	}
	fmt.Println("Theorem 3.5 — three-party simulation accounting (Γ=8, L=257, B=64)")
	fmt.Printf("  rounds:            %d (within L/2-2 budget: %v)\n", rep.Rounds, rep.WithinRoundBudget)
	fmt.Printf("  Carol bits:        %d\n", rep.CarolBits)
	fmt.Printf("  David bits:        %d\n", rep.DavidBits)
	fmt.Printf("  server-model cost: %d\n", rep.ServerModelCost)
	fmt.Printf("  O(B log L * T):    %d (within bound: %v)\n", rep.TheoremBound, rep.WithinTheoremBound)
	fmt.Println()
	return nil
}

func printVerification() error {
	rows, err := qdc.RunVerificationExperiment(12, 17, 64, 1, 1)
	if err != nil {
		return err
	}
	fmt.Println("Corollary 3.7 — verification algorithms on the embedded Hamiltonian instance (Γ=12, L=17)")
	fmt.Printf("%-34s %8s %10s %14s %14s\n", "problem", "answer", "rounds", "lower bound", "upper bound")
	for _, r := range rows {
		fmt.Printf("%-34s %8v %10d %14.1f %14.1f\n", r.Problem, r.Answer, r.Rounds, r.LowerBound, r.UpperBound)
	}
	fmt.Println()
	return nil
}

func printPipeline() error {
	res, err := qdc.RunProofPipeline(4, 64, 1)
	if err != nil {
		return err
	}
	fmt.Println("Figure 1 — proof pipeline on a random IPmod3 instance (n=4)")
	fmt.Printf("  IPmod3 value %d, gadget Hamiltonian %v, server bound %.1f bits\n",
		res.IPMod3Value, res.GadgetIsHamiltonian, res.ServerLowerBoundBits)
	fmt.Printf("  network %d nodes diameter %d, embedding consistent %v\n",
		res.NetworkNodes, res.NetworkDiameter, res.EmbeddedMatchesGadget)
	fmt.Printf("  simulation cost %d bits <= bound %d bits: %v\n",
		res.SimulationReport.ServerModelCost, res.SimulationReport.TheoremBound, res.SimulationReport.WithinTheoremBound)
	fmt.Printf("  distributed lower bound %.1f rounds\n", res.DistributedLowerBound)
	fmt.Println()
	return nil
}
