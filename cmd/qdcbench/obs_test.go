package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMatrixObservabilityFlags drives a sweep with every observability flag
// on: the heartbeat must print a final progress line, the event log must
// bracket one scenario event per record with sweep_start/sweep_done, the
// JSONL stream must carry the metrics blocks, and the summary must include
// the slowest-scenarios table.
func TestMatrixObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "matrix.json", pairSpec)
	events := filepath.Join(dir, "events.jsonl")
	jsonl := filepath.Join(dir, "run.jsonl")

	var out bytes.Buffer
	args := []string{"-matrix", spec, "-metrics", "-events", events, "-jsonl", jsonl, "-progress", "5ms"}
	if err := run(args, &out); err != nil {
		t.Fatalf("qdcbench %v: %v\n%s", args, err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "progress: 2/2 done, 0 failed, 0 in flight") {
		t.Errorf("missing final heartbeat line:\n%s", text)
	}
	if !strings.Contains(text, "slowest 2 scenarios by wall time:") {
		t.Errorf("missing slowest table:\n%s", text)
	}

	evData, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(evData)), "\n")
	if len(lines) != 4 {
		t.Fatalf("event log has %d lines, want sweep_start + 2 scenarios + sweep_done:\n%s", len(lines), evData)
	}
	kinds := make([]string, len(lines))
	for i, line := range lines {
		var ev struct {
			Kind string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line %d not JSON: %v", i, err)
		}
		kinds[i] = ev.Kind
	}
	if kinds[0] != "sweep_start" || kinds[1] != "scenario" || kinds[2] != "scenario" || kinds[3] != "sweep_done" {
		t.Errorf("event kinds = %v", kinds)
	}

	jlData, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(jlData, []byte(`"metrics"`)) || !bytes.Contains(jlData, []byte("messages_per_round")) {
		t.Errorf("JSONL stream lost the metrics blocks:\n%s", jlData)
	}
}

// TestSnapshotUnchangedByMetrics pins the acceptance criterion at the CLI
// level: the canonical -json snapshot of a sweep is byte-identical with and
// without -metrics.
func TestSnapshotUnchangedByMetrics(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "matrix.json", pairSpec)
	plain := filepath.Join(dir, "plain.json")
	observed := filepath.Join(dir, "observed.json")
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-json", plain}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-matrix", spec, "-metrics", "-json", observed}, &out); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(plain)
	b, _ := os.ReadFile(observed)
	if !bytes.Equal(a, b) {
		t.Errorf("-metrics changed the canonical snapshot:\n%s\n%s", a, b)
	}
	if bytes.Contains(b, []byte("metrics")) {
		t.Error("canonical snapshot contains a metrics block")
	}
}

// TestSlowestDisabled checks -slowest 0 suppresses the table.
func TestSlowestDisabled(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "matrix.json", pairSpec)
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-slowest", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "slowest") {
		t.Errorf("-slowest 0 still printed the table:\n%s", out.String())
	}
}

// syncBuffer is an io.Writer safe for the cross-goroutine writes of the
// -listen test: the CLI runs on one goroutine while the test polls output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestListenServesLiveEndpoints starts a sweep with -listen on an ephemeral
// port and -linger to hold the server past completion, then probes /progress
// and a pprof endpoint over real HTTP.
func TestListenServesLiveEndpoints(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "matrix.json", pairSpec)
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-matrix", spec, "-listen", "127.0.0.1:0", "-linger", "3s"}, out)
	}()

	// The serving line is printed before the sweep starts; poll for it and
	// extract the bound address.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no serving line within deadline:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if i := strings.Index(line, "http://"); i >= 0 && strings.Contains(line, "/progress") {
				base = strings.TrimSpace(line[i:])
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		body.ReadFrom(resp.Body) //nolint:errcheck
		return resp.StatusCode, body.Bytes()
	}

	// Poll /progress until the sweep settles (the linger window holds the
	// server up long enough).
	var prog map[string]any
	for {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never settled; last progress: %v", prog)
		}
		code, body := get("/progress")
		if code != 200 {
			t.Fatalf("/progress status %d", code)
		}
		if err := json.Unmarshal(body, &prog); err != nil {
			t.Fatalf("/progress not JSON: %v\n%s", err, body)
		}
		if prog["done"] == float64(2) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if prog["total"] != float64(2) || prog["failed"] != float64(0) {
		t.Errorf("progress = %v", prog)
	}
	if code, body := get("/vars"); code != 200 || !bytes.Contains(body, []byte("scenarios_done")) {
		t.Errorf("/vars status %d body %s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}

// TestTrendJSON checks the machine-readable trend report: snapshots in
// order, per-scenario first/last, and the vanished list populated when a
// scenario is absent from the newest snapshot.
func TestTrendJSON(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "matrix.json", pairSpec)
	subset := writeFile(t, dir, "subset.json", subsetSpec)
	snaps := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-json", filepath.Join(snaps, "BENCH_001.json")}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-matrix", subset, "-json", filepath.Join(snaps, "BENCH_002.json")}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"trend", "-dir", snaps, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Snapshots []string `json:"snapshots"`
		Scenarios []struct {
			Name   string `json:"name"`
			First  string `json:"first"`
			Last   string `json:"last"`
			Points []struct {
				Snapshot string `json:"snapshot"`
				Rounds   int    `json:"rounds"`
			} `json:"points"`
		} `json:"scenarios"`
		Vanished []string `json:"vanished"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("trend -json output not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Snapshots) != 2 || rep.Snapshots[0] != "BENCH_001.json" {
		t.Errorf("snapshots = %v", rep.Snapshots)
	}
	if len(rep.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2:\n%s", len(rep.Scenarios), out.String())
	}
	if len(rep.Vanished) != 1 || rep.Vanished[0] != "cycle4/verify/local/B32" {
		t.Errorf("vanished = %v", rep.Vanished)
	}
	for _, s := range rep.Scenarios {
		if s.Name == "path5/verify/local/B32" {
			if s.First != "BENCH_001.json" || s.Last != "BENCH_002.json" || len(s.Points) != 2 {
				t.Errorf("surviving scenario trend = %+v", s)
			}
			if s.Points[0].Rounds <= 0 {
				t.Errorf("trend point carries no rounds: %+v", s.Points[0])
			}
		}
	}
}
