package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// pairSpec expands to two scenarios, subsetSpec to one of them; both share
// base_seed so the overlapping scenario reproduces identically.
const pairSpec = `{
  "topologies": [{"family": "path", "size": 5}, {"family": "cycle", "size": 4}],
  "bandwidths": [32],
  "backends": ["local"],
  "algorithms": ["verify"],
  "base_seed": 1
}`

// roundSpec is a light stand-in for the registered roundbench matrix: the
// same flood shapes minus the n=100k cell, so the CLI test exercises the
// full -append/-measure-heap flow in seconds even under -race.
const roundSpec = `{
  "topologies": [{"family": "path", "size": 1025}, {"family": "grid", "size": 4096}],
  "bandwidths": [64],
  "backends": ["local", "parallel"],
  "algorithms": ["flood"],
  "base_seed": 1
}`

const subsetSpec = `{
  "topologies": [{"family": "path", "size": 5}],
  "bandwidths": [32],
  "backends": ["local"],
  "algorithms": ["verify"],
  "base_seed": 1
}`

// TestShardMergeMatchesUnsharded drives the acceptance flow through the
// CLI entry point: sharded runs of examples/matrix.json, merged, must be
// byte-identical to the unsharded -json snapshot.
func TestShardMergeMatchesUnsharded(t *testing.T) {
	spec := "../../examples/matrix.json"
	dir := t.TempDir()
	unsharded := filepath.Join(dir, "unsharded.json")
	s1 := filepath.Join(dir, "s1.jsonl")
	s2 := filepath.Join(dir, "s2.jsonl")
	merged := filepath.Join(dir, "merged.json")

	var out bytes.Buffer
	for _, args := range [][]string{
		{"-matrix", spec, "-json", unsharded},
		{"-matrix", spec, "-shard", "1/2", "-jsonl", s1},
		{"-matrix", spec, "-shard", "2/2", "-jsonl", s2},
		{"merge", "-matrix", spec, "-json", merged, s1, s2},
	} {
		if err := run(args, &out); err != nil {
			t.Fatalf("qdcbench %v: %v", args, err)
		}
	}
	want, err := os.ReadFile(unsharded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merged shard snapshot is not byte-identical to the unsharded run")
	}
}

func TestMergeRejectsDuplicateAndIncompleteShards(t *testing.T) {
	spec := "../../examples/matrix.json"
	dir := t.TempDir()
	s1 := filepath.Join(dir, "s1.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-shard", "1/2", "-jsonl", s1}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"merge", s1, s1}, &out); err == nil {
		t.Error("merging the same shard twice must fail")
	}
	// One shard of two cannot cover the matrix.
	if err := run([]string{"merge", "-matrix", spec, s1}, &out); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("incomplete merge against the matrix must fail, got %v", err)
	}
}

// TestMergeCatchesSeedMismatch pins the merge guard against shards run
// with an inconsistent -seed: the name set matches the matrix, but the
// embedded scenarios differ, so the completeness check must refuse unless
// merge is told the same seed.
func TestMergeCatchesSeedMismatch(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "subset.json", subsetSpec)
	s1 := filepath.Join(dir, "s1.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-seed", "42", "-shard", "1/1", "-jsonl", s1}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"merge", "-matrix", spec, s1}, &out); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Errorf("a seed-mismatched shard must fail the merge check, got %v", err)
	}
	if err := run([]string{"merge", "-matrix", spec, "-seed", "42", "-json", filepath.Join(dir, "m.json"), s1}, &out); err != nil {
		t.Errorf("merge with the matching -seed must pass: %v", err)
	}
}

// TestBaselineCatchesRemovedScenario pins the CLI half of the removal fix:
// a run whose matrix lost a scenario fails against the old baseline, and
// -allow-removed is the explicit escape hatch.
func TestBaselineCatchesRemovedScenario(t *testing.T) {
	dir := t.TempDir()
	pair := writeFile(t, dir, "pair.json", pairSpec)
	subset := writeFile(t, dir, "subset.json", subsetSpec)
	baseline := filepath.Join(dir, "base.json")

	var out bytes.Buffer
	if err := run([]string{"-matrix", pair, "-json", baseline}, &out); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-matrix", subset, "-baseline", baseline}, &out)
	if err == nil || !strings.Contains(err.Error(), "removed") {
		t.Fatalf("a vanished scenario must fail the baseline gate, got %v", err)
	}
	out.Reset()
	if err := run([]string{"-matrix", subset, "-baseline", baseline, "-allow-removed"}, &out); err != nil {
		t.Fatalf("-allow-removed must accept a removal-only diff: %v", err)
	}
	if !strings.Contains(out.String(), "REMOVED") {
		t.Error("accepted removals must still be reported")
	}
	// An unchanged matrix stays clean against its own snapshot.
	if err := run([]string{"-matrix", pair, "-baseline", baseline}, &out); err != nil {
		t.Errorf("identical rerun failed the baseline gate: %v", err)
	}
}

// TestWideFanOutWithEmptyShards pins the fixed-width fan-out contract: a
// shard count larger than the expansion yields empty-but-valid output
// files, and merging every shard still reproduces the unsharded snapshot.
func TestWideFanOutWithEmptyShards(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "subset.json", subsetSpec) // expands to 1 scenario
	unsharded := filepath.Join(dir, "unsharded.json")
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-json", unsharded}, &out); err != nil {
		t.Fatal(err)
	}
	shards := make([]string, 3)
	for i := range shards {
		shards[i] = filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i+1))
		args := []string{"-matrix", spec, "-shard", fmt.Sprintf("%d/3", i+1), "-jsonl", shards[i]}
		if err := run(args, &out); err != nil {
			t.Fatalf("empty shard must not fail: qdcbench %v: %v", args, err)
		}
		if _, err := os.Stat(shards[i]); err != nil {
			t.Fatalf("shard %d wrote no output file: %v", i+1, err)
		}
	}
	merged := filepath.Join(dir, "merged.json")
	if err := run(append([]string{"merge", "-matrix", spec, "-json", merged}, shards...), &out); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(unsharded)
	got, _ := os.ReadFile(merged)
	if !bytes.Equal(got, want) {
		t.Error("merge over empty shards lost byte-identity with the unsharded run")
	}
}

func TestShardRejectsBaseline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-matrix", "quick", "-shard", "1/2", "-baseline", "whatever.json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "merge") {
		t.Errorf("sharded runs must refuse -baseline, got %v", err)
	}
}

func TestTrendCLI(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "pair.json", pairSpec)
	subset := writeFile(t, dir, "subset.json", subsetSpec)
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-json", filepath.Join(dir, "BENCH_001.json")}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-matrix", subset, "-json", filepath.Join(dir, "BENCH_002.json")}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"trend", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "trend over 2 snapshots") {
		t.Errorf("missing header: %s", text)
	}
	if !strings.Contains(text, "path5/verify/local/B32") {
		t.Errorf("missing scenario row: %s", text)
	}
	if !strings.Contains(text, "VANISHED") || !strings.Contains(text, "cycle4/verify/local/B32") {
		t.Errorf("the dropped scenario must be flagged as vanished: %s", text)
	}
}

func TestUnknownMatrixError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-matrix", "no-such"}, &out); err == nil {
		t.Error("an unknown matrix name must fail")
	}
}

// TestRoundBenchCLI drives the roundbench subcommand end to end: a fresh
// snapshot via -append, idempotent re-append, and byte-determinism of the
// canonical file across runs.
func TestRoundBenchCLI(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "bench-smoke.json")
	spec := writeFile(t, dir, "pair.json", pairSpec)
	rounds := writeFile(t, dir, "rounds.json", roundSpec)

	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-json", snap}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"roundbench", "-matrix", rounds, "-append", snap}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "node-rounds/sec") {
		t.Errorf("missing throughput column: %s", text)
	}
	if !strings.Contains(text, "grid4096/flood/parallel/B64") {
		t.Errorf("missing round-loop scenario: %s", text)
	}
	first, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first, []byte("path5/verify/local/B32")) {
		t.Error("appending must keep the snapshot's original records")
	}

	// Re-appending the same deterministic records must not change a byte.
	if err := run([]string{"roundbench", "-matrix", rounds, "-append", snap}, &out); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("re-appending identical records changed the snapshot bytes")
	}

	// -append also bootstraps a missing snapshot.
	fresh := filepath.Join(dir, "fresh.json")
	if err := run([]string{"roundbench", "-matrix", rounds, "-json", fresh}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"roundbench", "positional"}, &out); err == nil {
		t.Error("positional arguments must be rejected")
	}
}
