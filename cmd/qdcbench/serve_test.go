package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"qdc/internal/fanout"
	"qdc/internal/qdcd"
)

// inprocJobSpawn is the daemon-side analogue of inprocShardSpawn: workers
// run the real qdcbench shard invocation in-process against the job's
// frozen spec.
func inprocJobSpawn(j qdcd.JobView) fanout.SpawnFunc {
	return func(shard, _ int, path string) (fanout.Worker, error) {
		args := []string{"-matrix", j.SpecPath, "-shard", fmt.Sprintf("%d/%d", shard, j.Shards), "-jsonl", path}
		return startInproc(func() error { return run(args, io.Discard) }), nil
	}
}

// TestSubmitRoundTrip drives the client against a live daemon handler: the
// submitted sweep runs on the pool, -wait polls it out, and the downloaded
// snapshot is byte-identical to an unsharded -json run.
func TestSubmitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	unsharded := filepath.Join(dir, "unsharded.json")
	fetched := filepath.Join(dir, "fetched.json")

	var out bytes.Buffer
	if err := run([]string{"-matrix", "quick", "-json", unsharded}, &out); err != nil {
		t.Fatal(err)
	}
	srv, err := qdcd.New(qdcd.Options{StateDir: filepath.Join(dir, "state"), Pool: 4, Spawn: inprocJobSpawn})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := run([]string{"submit", "-addr", ts.URL, "-matrix", "quick", "-shards", "2", "-poll", "5ms", "-json", fetched}, &out); err != nil {
		t.Fatalf("submit: %v\n%s", err, out.String())
	}
	want, _ := os.ReadFile(unsharded)
	got, _ := os.ReadFile(fetched)
	if !bytes.Equal(got, want) {
		t.Error("snapshot fetched through the daemon is not byte-identical to the unsharded run")
	}
	for _, marker := range []string{"submitted job-1", "job job-1 done", "snapshot written to"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("submit output missing %q:\n%s", marker, out.String())
		}
	}

	// A *.json spec path is loaded client-side and submitted inline.
	spec := filepath.Join(dir, "spec.json")
	const specJSON = `{
  "name": "inline",
  "topologies": [{"family": "path", "size": 9}],
  "bandwidths": [32],
  "backends": ["local"],
  "algorithms": ["verify"],
  "base_seed": 3
}`
	if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"submit", "-addr", ts.URL, "-matrix", spec, "-shards", "1", "-poll", "5ms", "-wait"}, &out); err != nil {
		t.Fatalf("submit inline spec: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "matrix inline") {
		t.Errorf("inline spec submit output:\n%s", out.String())
	}
}

// TestServeRoundTrip runs the real serve loop (ephemeral port, in-process
// workers, test interrupt channel) and round-trips one sweep through it.
func TestServeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	unsharded := filepath.Join(dir, "unsharded.json")
	fetched := filepath.Join(dir, "fetched.json")
	var setup bytes.Buffer
	if err := run([]string{"-matrix", "quick", "-json", unsharded}, &setup); err != nil {
		t.Fatal(err)
	}

	testServeSpawn = inprocJobSpawn
	testServeInterrupt = make(chan os.Signal, 1)
	t.Cleanup(func() { testServeSpawn, testServeInterrupt = nil, nil })

	var out syncBuffer
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- runServe([]string{"-listen", "127.0.0.1:0", "-state", filepath.Join(dir, "state")}, &out)
	}()

	// The serving line carries the ephemeral address.
	addrRe := regexp.MustCompile(`on (http://[0-9.:]+) `)
	var addr string
	for i := 0; i < 1000 && addr == ""; i++ {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("serve never printed its address:\n%s", out.String())
	}

	var cli bytes.Buffer
	if err := run([]string{"submit", "-addr", addr, "-matrix", "quick", "-shards", "2", "-poll", "5ms", "-json", fetched}, &cli); err != nil {
		t.Fatalf("submit against serve: %v\n%s", err, cli.String())
	}
	want, _ := os.ReadFile(unsharded)
	got, _ := os.ReadFile(fetched)
	if !bytes.Equal(got, want) {
		t.Error("snapshot served by runServe is not byte-identical to the unsharded run")
	}

	testServeInterrupt <- os.Interrupt
	if err := <-serveErr; err != nil {
		t.Fatalf("runServe returned %v", err)
	}
}

// TestServeSubmitFlagValidation pins both subcommands' argument contracts.
func TestServeSubmitFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"serve", "stray"}, &out); err == nil || !strings.Contains(err.Error(), "positional") {
		t.Errorf("serve with a stray arg: err = %v", err)
	}
	if err := run([]string{"submit", "stray"}, &out); err == nil || !strings.Contains(err.Error(), "positional") {
		t.Errorf("submit with a stray arg: err = %v", err)
	}
	if err := run([]string{"submit", "-matrix", "no-such-file.json"}, &out); err == nil {
		t.Error("submit with an unresolvable matrix must fail before any request")
	}
}
