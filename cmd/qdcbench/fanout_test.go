package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qdc/internal/fanout"
)

// inprocWorker adapts an in-process function to fanout.Worker — the CLI
// test seam that replaces re-executing the binary.
type inprocWorker struct {
	done chan struct{}
	err  error
}

func startInproc(fn func() error) *inprocWorker {
	w := &inprocWorker{done: make(chan struct{})}
	go func() {
		w.err = fn()
		close(w.done)
	}()
	return w
}

func (w *inprocWorker) Wait() error {
	<-w.done
	return w.err
}

func (w *inprocWorker) Kill()          {}
func (w *inprocWorker) Output() string { return "" }

// inprocShardSpawn runs real qdcbench worker invocations in-process: the
// exact argv the parent would exec, routed through run().
func inprocShardSpawn(matrix string, shards int) fanout.SpawnFunc {
	return func(shard, _ int, path string) (fanout.Worker, error) {
		args := []string{"-matrix", matrix, "-shard", fmt.Sprintf("%d/%d", shard, shards), "-jsonl", path}
		return startInproc(func() error { return run(args, io.Discard) }), nil
	}
}

func withTestSpawn(t *testing.T, spawn fanout.SpawnFunc) {
	t.Helper()
	testSpawn = spawn
	t.Cleanup(func() { testSpawn = nil })
}

// TestFanoutMatchesUnsharded is the acceptance gate at CLI level: a
// supervised 3-shard fanout of the quick matrix must produce a snapshot
// byte-identical to the unsharded -json run, and the event log must show
// every shard's worker_done.
func TestFanoutMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	unsharded := filepath.Join(dir, "unsharded.json")
	fanned := filepath.Join(dir, "fanned.json")
	events := filepath.Join(dir, "events.jsonl")

	var out bytes.Buffer
	if err := run([]string{"-matrix", "quick", "-json", unsharded}, &out); err != nil {
		t.Fatalf("unsharded run: %v", err)
	}
	withTestSpawn(t, inprocShardSpawn("quick", 3))
	if err := run([]string{"fanout", "-shards", "3", "-matrix", "quick", "-json", fanned, "-events", events}, &out); err != nil {
		t.Fatalf("fanout: %v\n%s", err, out.String())
	}

	want, err := os.ReadFile(unsharded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("fanout snapshot is not byte-identical to the unsharded run")
	}
	log, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	for shard := 1; shard <= 3; shard++ {
		marker := fmt.Sprintf(`"shard":%d`, shard)
		found := false
		for _, line := range strings.Split(string(log), "\n") {
			if strings.Contains(line, `"event":"worker_done"`) && strings.Contains(line, marker) {
				found = true
			}
		}
		if !found {
			t.Errorf("event log has no worker_done for shard %d", shard)
		}
	}
	if !strings.Contains(out.String(), "fanout matrix quick: 3 shards") {
		t.Errorf("summary missing from output:\n%s", out.String())
	}
}

// TestFanoutRetriesCrashedWorker kills one shard's first attempt mid-record
// and checks the supervision loop retries it, the sweep completes, and the
// merged snapshot still matches the unsharded run byte for byte.
func TestFanoutRetriesCrashedWorker(t *testing.T) {
	dir := t.TempDir()
	streams := filepath.Join(dir, "streams")
	unsharded := filepath.Join(dir, "unsharded.json")
	fanned := filepath.Join(dir, "fanned.json")
	events := filepath.Join(dir, "events.jsonl")

	var out bytes.Buffer
	if err := run([]string{"-matrix", "quick", "-json", unsharded}, &out); err != nil {
		t.Fatal(err)
	}
	healthy := inprocShardSpawn("quick", 3)
	withTestSpawn(t, func(shard, attempt int, path string) (fanout.Worker, error) {
		if shard == 2 && attempt == 1 {
			return startInproc(func() error {
				// A record cut off mid-line, then a crash.
				if err := os.WriteFile(path, []byte(`{"scenario":{"name":"qu`), 0o644); err != nil {
					return err
				}
				return errors.New("exit status 2")
			}), nil
		}
		return healthy(shard, attempt, path)
	})
	if err := run([]string{"fanout", "-shards", "3", "-matrix", "quick", "-json", fanned, "-events", events, "-dir", streams}, &out); err != nil {
		t.Fatalf("fanout with one crash: %v\n%s", err, out.String())
	}

	want, _ := os.ReadFile(unsharded)
	got, _ := os.ReadFile(fanned)
	if !bytes.Equal(got, want) {
		t.Error("snapshot after a crash-and-retry is not byte-identical to the unsharded run")
	}
	log, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(log), `"event":"worker_retry"`) {
		t.Error("event log has no worker_retry for the crashed shard")
	}
	if !strings.Contains(out.String(), "2 attempt(s)") {
		t.Errorf("per-shard summary does not show the retry:\n%s", out.String())
	}
	// An explicit -dir keeps the shard streams, including the dead attempt's.
	if _, err := os.Stat(filepath.Join(streams, "shard-2-attempt-1.jsonl")); err != nil {
		t.Errorf("crashed attempt's stream not kept under -dir: %v", err)
	}
}

// TestFanoutFailureNamesDeadShards: with retries exhausted the sweep fails
// and the error says which shard died and why.
func TestFanoutFailureNamesDeadShards(t *testing.T) {
	healthy := inprocShardSpawn("quick", 2)
	withTestSpawn(t, func(shard, attempt int, path string) (fanout.Worker, error) {
		if shard == 2 {
			return startInproc(func() error { return errors.New("exit status 2") }), nil
		}
		return healthy(shard, attempt, path)
	})
	var out bytes.Buffer
	err := run([]string{"fanout", "-shards", "2", "-matrix", "quick", "-retries", "1"}, &out)
	if err == nil {
		t.Fatal("a dead shard must fail the sweep")
	}
	for _, want := range []string{"1 of 2 shards failed", "shard 2 (2 attempts)", "exit status 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestFanoutFlagValidation pins the argument contract.
func TestFanoutFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fanout"}, &out); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Errorf("missing -shards: err = %v", err)
	}
	if err := run([]string{"fanout", "-shards", "2", "-matrix", "no-such-matrix"}, &out); err == nil {
		t.Error("unknown matrix must error")
	}
	if err := run([]string{"fanout", "-shards", "2", "stray"}, &out); err == nil || !strings.Contains(err.Error(), "positional") {
		t.Errorf("stray positional arg: err = %v", err)
	}
}

// TestFanoutReusedDirMatchesFresh re-runs a fanout in a -dir still holding
// the previous sweep's complete streams — the stale-stream race. The second
// sweep runs a different seed, so any stale record the supervisor mistook
// for fresh output would poison the merge; the snapshot must match a clean
// unsharded run of the second sweep exactly.
func TestFanoutReusedDirMatchesFresh(t *testing.T) {
	dir := t.TempDir()
	streams := filepath.Join(dir, "streams")
	unsharded := filepath.Join(dir, "unsharded.json")
	fanned := filepath.Join(dir, "fanned.json")

	// Workers read the frozen spec like real ones, so the parent's -seed
	// reaches them.
	var out bytes.Buffer
	withTestSpawn(t, inprocShardSpawn(filepath.Join(streams, "matrix.json"), 2))
	if err := run([]string{"fanout", "-shards", "2", "-matrix", "quick", "-seed", "99", "-dir", streams}, &out); err != nil {
		t.Fatalf("first sweep: %v\n%s", err, out.String())
	}
	// Same dir, different seed: every stale stream is wrong for this sweep.
	if err := run([]string{"fanout", "-shards", "2", "-matrix", "quick", "-json", fanned, "-dir", streams}, &out); err != nil {
		t.Fatalf("second sweep in the reused dir: %v\n%s", err, out.String())
	}
	if err := run([]string{"-matrix", "quick", "-json", unsharded}, &out); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(unsharded)
	got, _ := os.ReadFile(fanned)
	if !bytes.Equal(got, want) {
		t.Error("snapshot from the reused -dir is not byte-identical to a fresh unsharded run")
	}
}

// TestFanoutFrozenSpecSurvivesEdit pins the frozen-spec rule: a *.json
// -matrix file rewritten mid-sweep (here between a crashing first attempt
// and its retry) must not change what the workers run. Workers read the
// frozen copy under the stream dir, so the snapshot still matches an
// unsharded run of the spec as it was at launch.
func TestFanoutFrozenSpecSurvivesEdit(t *testing.T) {
	dir := t.TempDir()
	streams := filepath.Join(dir, "streams")
	spec := filepath.Join(dir, "spec.json")
	unsharded := filepath.Join(dir, "unsharded.json")
	fanned := filepath.Join(dir, "fanned.json")

	const original = `{
  "name": "frozen",
  "topologies": [{"family": "path", "size": 9}, {"family": "star", "size": 9}],
  "bandwidths": [32],
  "backends": ["local"],
  "algorithms": ["verify"],
  "base_seed": 3
}`
	if err := os.WriteFile(spec, []byte(original), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-matrix", spec, "-json", unsharded}, &out); err != nil {
		t.Fatalf("unsharded reference: %v", err)
	}

	frozen := filepath.Join(streams, "matrix.json")
	withTestSpawn(t, func(shard, attempt int, path string) (fanout.Worker, error) {
		if shard == 1 && attempt == 1 {
			return startInproc(func() error {
				// The sweep's spec file is rewritten under the supervisor: a
				// different seed, a different sweep. Then the worker crashes,
				// so the retry is what would re-read the spec.
				edited := strings.Replace(original, `"base_seed": 3`, `"base_seed": 77`, 1)
				if err := os.WriteFile(spec, []byte(edited), 0o644); err != nil {
					return err
				}
				return errors.New("exit status 2")
			}), nil
		}
		args := []string{"-matrix", frozen, "-shard", fmt.Sprintf("%d/2", shard), "-jsonl", path}
		return startInproc(func() error { return run(args, io.Discard) }), nil
	})
	if err := run([]string{"fanout", "-shards", "2", "-matrix", spec, "-json", fanned, "-dir", streams}, &out); err != nil {
		t.Fatalf("fanout across the spec edit: %v\n%s", err, out.String())
	}

	want, _ := os.ReadFile(unsharded)
	got, _ := os.ReadFile(fanned)
	if !bytes.Equal(got, want) {
		t.Error("snapshot does not match the spec as launched; the edit leaked into a worker")
	}
}
