// Command lowerbound walks through the paper's whole proof pipeline
// (Figure 1) on a concrete instance: an Inner-Product-mod-3 input is turned
// into a Hamiltonian-cycle instance by the Section 7 gadgets, embedded into
// the Θ(log L)-diameter lower-bound network of Section 8, and a fast
// distributed algorithm is executed under the three-party simulation of the
// Quantum Simulation Theorem, with its Carol/David communication measured
// against the O(B·log L·T) bound.
package main

import (
	"fmt"
	"log"

	"qdc"
)

func main() {
	res, err := qdc.RunProofPipeline(4, 64, 42)
	if err != nil {
		log.Fatalf("lowerbound: %v", err)
	}

	fmt.Println("=== The paper's proof pipeline, executed (Figure 1) ===")
	fmt.Printf("IPmod3 input length:            n = %d bits\n", res.InputBits)
	fmt.Printf("IPmod3(x, y):                   %d\n", res.IPMod3Value)
	fmt.Printf("gadget graph (Section 7):       %d vertices, Hamiltonian = %v\n", res.GadgetNodes, res.GadgetIsHamiltonian)
	fmt.Printf("  Lemma C.3 check:              Ham(G) == (IPmod3 == 0): %v\n",
		res.GadgetIsHamiltonian == (res.IPMod3Value == 0))
	fmt.Printf("server-model bound (Thm 6.1):   >= %.1f bits\n", res.ServerLowerBoundBits)
	fmt.Printf("lower-bound network (Sec 8):    %d nodes, diameter %d\n", res.NetworkNodes, res.NetworkDiameter)
	fmt.Printf("  Observation 8.1/D.3 check:    embedded M matches gadget: %v\n", res.EmbeddedMatchesGadget)
	fmt.Println()
	fmt.Println("Quantum Simulation Theorem accounting (Theorem 3.5), for the O(D)-round")
	fmt.Println("degree-two check executed under the Carol/David/server partition:")
	rep := res.SimulationReport
	fmt.Printf("  rounds:                       %d (budget L/2-2 respected: %v)\n", rep.Rounds, rep.WithinRoundBudget)
	fmt.Printf("  Carol bits / David bits:      %d / %d\n", rep.CarolBits, rep.DavidBits)
	fmt.Printf("  server-model cost:            %d bits\n", rep.ServerModelCost)
	fmt.Printf("  O(B log L * T) bound:         %d bits (respected: %v)\n", rep.TheoremBound, rep.WithinTheoremBound)
	fmt.Println()
	fmt.Printf("Resulting distributed lower bound for this network size and bandwidth:\n")
	fmt.Printf("  Omega(sqrt(n/(B log n))) = %.1f rounds for Ham/ST verification,\n", res.DistributedLowerBound)
	fmt.Println("  valid against any quantum algorithm with shared entanglement.")
}
