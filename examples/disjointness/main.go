// Command disjointness reproduces Example 1.1 of the paper: distributed Set
// Disjointness verification is the one global problem discussed in the paper
// where quantum communication genuinely helps. Two nodes at distance D hold
// b-bit sets; classically Θ(D + b/B) rounds are needed, while the
// Grover-powered protocol needs O(√b·D) rounds, so quantum wins exactly when
// the diameter is small compared with √b.
package main

import (
	"fmt"
	"log"

	"qdc"
	"qdc/internal/dist/disjointness"
)

func main() {
	const b = 4096 // input bits per player (b = √n in the paper's framing)

	fmt.Println("=== Example 1.1: quantum vs classical distributed Set Disjointness ===")
	fmt.Printf("input length b = %d, link bandwidth B = 1 bit/round\n\n", b)
	fmt.Printf("%10s %18s %18s %10s\n", "distance D", "classical rounds", "quantum rounds", "winner")
	for _, dist := range []int{2, 8, 32, 128, 512, 2048} {
		cmp, err := qdc.RunDisjointnessComparison(b, 1, dist, 7)
		if err != nil {
			log.Fatalf("disjointness: %v", err)
		}
		winner := "classical"
		if cmp.QuantumWins {
			winner = "quantum"
		}
		fmt.Printf("%10d %18d %18d %10s\n", dist, cmp.ClassicalRounds, cmp.QuantumRounds, winner)
	}
	fmt.Printf("\npredicted crossover diameter: %d\n", disjointness.CrossoverDiameter(b, 1))
	fmt.Println()
	fmt.Println("This speed-up is exactly why the techniques of Das Sarma et al. (which")
	fmt.Println("rest on the classical hardness of Disjointness) do not transfer to the")
	fmt.Println("quantum setting, and why the paper develops the Server model instead.")
}
