// Command quickstart is the smallest end-to-end use of the library: it asks
// the headline question of the paper for a concrete network — "could a
// quantum distributed algorithm beat the classical MST algorithm here?" —
// by computing the paper's quantum lower bound, running the distributed MST
// algorithm on a CONGEST simulation, and comparing the two.
package main

import (
	"fmt"
	"log"

	"qdc"
)

func main() {
	const (
		gamma     = 8   // parallel paths of the lower-bound network family
		pathLen   = 17  // path length (rounded to 2^k+1 internally)
		bandwidth = 128 // bits per edge per round
		aspect    = 64  // weight aspect ratio W
		alpha     = 2   // approximation factor
	)

	res, err := qdc.RunMSTExperiment(gamma, pathLen, bandwidth, aspect, alpha, 1)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("=== Quickstart: distributed MST vs the quantum lower bound ===")
	fmt.Printf("network: %d nodes, hop diameter %d, aspect ratio W=%g\n", res.Nodes, res.Diameter, res.AspectRatio)
	fmt.Printf("exact distributed MST:        %6d rounds\n", res.ExactRounds)
	fmt.Printf("%g-approximate MST:           %6d rounds (measured ratio %.3f)\n", res.Alpha, res.ApproxRounds, res.ApproxRatio)
	fmt.Printf("quantum lower bound (Thm 3.8): %8.1f rounds\n", res.LowerBound)
	fmt.Printf("classical upper bound:         %8.1f rounds\n", res.UpperBound)
	fmt.Println()
	fmt.Println("The lower bound holds for every quantum algorithm with any amount of")
	fmt.Println("entanglement, so no quantum CONGEST algorithm can beat the classical")
	fmt.Println("round complexity of MST by more than the polylog gap between the two")
	fmt.Println("curves — the paper's main message.")
}
