// Command mstaspect regenerates the Figure 3 picture: how the round
// complexity of α-approximate MST depends on the weight aspect ratio W. It
// prints the paper's lower- and upper-bound curves for a fixed network size
// together with measured round counts of the distributed MST implementation
// on the lower-bound network family at several aspect ratios.
package main

import (
	"fmt"
	"log"

	"qdc"
)

func main() {
	const (
		n         = 100_000 // network size for the formula curves
		bandwidth = 32
		diameter  = 17 // Θ(log n) for the lower-bound family
		alpha     = 2.0
	)

	fmt.Println("=== Figure 3: MST time vs weight aspect ratio W (n = 100k, alpha = 2) ===")
	ws := []float64{2, 8, 32, 128, 512, 2048, 8192, 1 << 15, 1 << 18, 1 << 21}
	pts, err := qdc.Figure3Curve(n, bandwidth, diameter, alpha, ws)
	if err != nil {
		log.Fatalf("mstaspect: %v", err)
	}
	fmt.Printf("%12s %22s %22s\n", "W", "lower bound (rounds)", "upper bound (rounds)")
	for _, p := range pts {
		fmt.Printf("%12.0f %22.1f %22.1f\n", p.W, p.LowerBound, p.UpperBound)
	}
	fmt.Println()
	fmt.Println("Measured distributed MST on the lower-bound network family (smaller n):")
	fmt.Printf("%12s %10s %14s %14s %14s\n", "W", "nodes", "exact rounds", "approx rounds", "approx ratio")
	for _, w := range []float64{4, 64, 1024} {
		res, err := qdc.RunMSTExperiment(8, 17, 128, w, alpha, 3)
		if err != nil {
			log.Fatalf("mstaspect: %v", err)
		}
		fmt.Printf("%12.0f %10d %14d %14d %14.3f\n", w, res.Nodes, res.ExactRounds, res.ApproxRounds, res.ApproxRatio)
	}
	fmt.Println()
	fmt.Println("The exact algorithm's rounds are flat in W (the √n regime), while the")
	fmt.Println("lower-bound curve grows like W/α until it saturates at Θ(√n) around")
	fmt.Println("W = α√n — the crossover marked in Figure 3.")
}
