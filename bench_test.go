package qdc

import (
	"math/rand"
	"testing"

	"qdc/internal/comm"
	"qdc/internal/dist/disjointness"
	"qdc/internal/exp"
	"qdc/internal/gadgets"
	"qdc/internal/lbnetwork"
	"qdc/internal/nonlocal"
	"qdc/internal/quantum"
)

// The benchmark harness regenerates every table and figure of the paper's
// evaluation-style content (there is no experimental section in the original
// paper; Figures 1-13 and the bound statements play that role). Each
// benchmark reports the quantities the corresponding figure displays via
// b.ReportMetric, so `go test -bench . -benchmem` regenerates the paper's
// numbers; cmd/qdcbench prints the same rows as human-readable tables (see
// DESIGN.md, "Benchmarks").

// BenchmarkFigure1ProofPipeline runs the whole proof chain of Figure 1
// (nonlocal-game bound -> server model -> gadget reduction -> lower-bound
// network -> three-party simulation) on a fresh random instance.
func BenchmarkFigure1ProofPipeline(b *testing.B) {
	var last *ProofPipelineResult
	for i := 0; i < b.N; i++ {
		res, err := RunProofPipeline(3, 64, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(last.NetworkNodes), "network_nodes")
		b.ReportMetric(float64(last.NetworkDiameter), "network_diameter")
		b.ReportMetric(float64(last.SimulationReport.ServerModelCost), "server_cost_bits")
		b.ReportMetric(float64(last.SimulationReport.TheoremBound), "theorem_bound_bits")
	}
}

// BenchmarkFigure2VerificationUpperBounds measures the verification
// algorithms of Corollary 3.7 on an embedded Hamiltonian instance and
// reports measured rounds next to the paper's lower bound (the Figure 2
// distributed rows).
func BenchmarkFigure2VerificationUpperBounds(b *testing.B) {
	var rows []VerificationExperimentResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunVerificationExperiment(12, 17, 64, 1, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].LowerBound, "lower_bound_rounds")
		b.ReportMetric(rows[0].UpperBound, "upper_bound_rounds")
		b.ReportMetric(float64(rows[0].Rounds), "ham_verification_rounds")
		b.ReportMetric(float64(rows[len(rows)-1].Rounds), "degree_check_rounds")
	}
}

// BenchmarkFigure3MSTAspectRatio sweeps the weight aspect ratio W and
// reports the measured exact/approximate MST rounds together with the
// Figure 3 bound curves at the sweep's extremes.
func BenchmarkFigure3MSTAspectRatio(b *testing.B) {
	ws := []float64{4, 64, 1024}
	var low, high *MSTExperimentResult
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			res, err := RunMSTExperiment(8, 17, 128, w, 2, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			if w == ws[0] {
				low = res
			}
			if w == ws[len(ws)-1] {
				high = res
			}
		}
	}
	if low != nil && high != nil {
		b.ReportMetric(float64(low.ExactRounds), "exact_rounds_smallW")
		b.ReportMetric(float64(high.ExactRounds), "exact_rounds_largeW")
		b.ReportMetric(low.LowerBound, "lower_bound_smallW")
		b.ReportMetric(high.LowerBound, "lower_bound_largeW")
		b.ReportMetric(high.ApproxRatio, "approx_ratio")
	}
}

// BenchmarkFigure4To6GadgetConstruction builds the IPmod3->Ham gadget graph
// (Figures 4-6 and 12) and checks the Lemma C.3 equivalence.
func BenchmarkFigure4To6GadgetConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 256
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(2)
		y[i] = rng.Intn(2)
	}
	var nodes int
	for i := 0; i < b.N; i++ {
		red, err := gadgets.IPMod3ToHam(x, y)
		if err != nil {
			b.Fatal(err)
		}
		ip, err := gadgets.IPMod3Value(x, y)
		if err != nil {
			b.Fatal(err)
		}
		if red.IsHamiltonian() != (ip == 0) {
			b.Fatal("Lemma C.3 violated")
		}
		nodes = red.NumNodes()
	}
	b.ReportMetric(float64(nodes), "gadget_nodes")
}

// BenchmarkFigure7EqGadget builds the Gap-Equality gadget chain (Figure 7)
// and checks the δ-cycle structure.
func BenchmarkFigure7EqGadget(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 256
	x := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(2)
	}
	y := append([]int(nil), x...)
	delta := 40
	for i := 0; i < delta; i++ {
		y[i*6%n] ^= 1
	}
	want, err := gadgets.HammingDistance(x, y)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int
	for i := 0; i < b.N; i++ {
		red, err := gadgets.EqToGapHam(x, y)
		if err != nil {
			b.Fatal(err)
		}
		cycles = red.CycleCount()
		if cycles != want {
			b.Fatalf("cycles = %d, want Δ = %d", cycles, want)
		}
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkFigure8To10NetworkConstruction builds the lower-bound network of
// Figures 8-10/13 and reports its size and diameter (Observation D.2).
func BenchmarkFigure8To10NetworkConstruction(b *testing.B) {
	var nodes, diam int
	for i := 0; i < b.N; i++ {
		nw, err := lbnetwork.New(16, 65)
		if err != nil {
			b.Fatal(err)
		}
		nodes = nw.N()
		diam = nw.Graph.DiameterLowerBoundFrom(0)
	}
	b.ReportMetric(float64(nodes), "nodes")
	b.ReportMetric(float64(diam), "eccentricity_from_0")
}

// BenchmarkTheorem35SimulationCost runs the degree-two check under the
// three-party simulation and reports the measured Carol+David cost against
// the O(B log L · T) bound.
func BenchmarkTheorem35SimulationCost(b *testing.B) {
	var rep *SimulationReportAlias
	for i := 0; i < b.N; i++ {
		r, err := SimulationExperiment(8, 257, 64, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		rep = &SimulationReportAlias{ServerModelCost: r.ServerModelCost, TheoremBound: r.TheoremBound, Rounds: r.Rounds}
		if !r.WithinTheoremBound || !r.WithinRoundBudget {
			b.Fatal("Theorem 3.5 accounting violated")
		}
	}
	if rep != nil {
		b.ReportMetric(float64(rep.ServerModelCost), "server_cost_bits")
		b.ReportMetric(float64(rep.TheoremBound), "theorem_bound_bits")
		b.ReportMetric(float64(rep.Rounds), "rounds")
	}
}

// SimulationReportAlias keeps the benchmark free of an internal import cycle
// while still reporting the relevant fields.
type SimulationReportAlias struct {
	ServerModelCost, TheoremBound int64
	Rounds                        int
}

// BenchmarkTheorem34ServerModelBounds evaluates the server-model bound table
// and runs the trivial protocols it is compared against.
func BenchmarkTheorem34ServerModelBounds(b *testing.B) {
	const n = 1200
	rng := rand.New(rand.NewSource(3))
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(2)
		y[i] = rng.Intn(2)
	}
	var lower, trivial float64
	for i := 0; i < b.N; i++ {
		rows := ServerModelTable(n)
		lower = rows[0].LowerBound
		_, tr, err := comm.SendAllServer{P: comm.NewInnerProductMod3(n)}.Run(x, y, rng)
		if err != nil {
			b.Fatal(err)
		}
		trivial = float64(tr.ServerCost())
	}
	b.ReportMetric(lower, "ipmod3_lower_bound_bits")
	b.ReportMetric(trivial, "trivial_protocol_bits")
}

// BenchmarkLemma32GameConversion converts the trivial server protocol for a
// tiny Equality instance into an XOR-game strategy and measures its winning
// probability against the 2^(-bits) prediction, alongside the exact CHSH
// values.
func BenchmarkLemma32GameConversion(b *testing.B) {
	strategy := nonlocal.ConvertedStrategy{Protocol: comm.SendAllServer{P: comm.NewEquality(2)}, Combine: nonlocal.XOR}
	rng := rand.New(rand.NewSource(4))
	var winRate float64
	for i := 0; i < b.N; i++ {
		w, _, err := strategy.EmpiricalWinRate([]int{1, 0}, []int{1, 0}, 1, 2000, rng)
		if err != nil {
			b.Fatal(err)
		}
		winRate = w
	}
	pred := nonlocal.PredictClassical(3, 1.0)
	chsh, err := nonlocal.NewCHSH().EntangledWinProbability(nonlocal.CHSHOptimalStrategy())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(winRate, "converted_win_rate")
	b.ReportMetric(pred.XORWinProbability, "predicted_win_rate")
	b.ReportMetric(chsh, "chsh_quantum_value")
}

// BenchmarkExample11Disjointness compares the classical and quantum
// distributed Set Disjointness protocols of Example 1.1.
func BenchmarkExample11Disjointness(b *testing.B) {
	var cmp *DisjointnessComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = RunDisjointnessComparison(1024, 1, 8, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	if cmp != nil {
		b.ReportMetric(float64(cmp.ClassicalRounds), "classical_rounds")
		b.ReportMetric(float64(cmp.QuantumRounds), "quantum_rounds")
		b.ReportMetric(float64(cmp.MeasuredClassicalRounds), "measured_classical_rounds")
		b.ReportMetric(float64(disjointness.CrossoverDiameter(1024, 1)), "crossover_diameter")
	}
}

// BenchmarkCorollary37VerificationAlgorithms measures all verification
// algorithms on a non-Hamiltonian (4-cycle) instance.
func BenchmarkCorollary37VerificationAlgorithms(b *testing.B) {
	var rows []VerificationExperimentResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunVerificationExperiment(12, 17, 64, 4, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		total := 0
		for _, r := range rows {
			total += r.Rounds
		}
		b.ReportMetric(float64(total)/float64(len(rows)), "mean_rounds_per_problem")
		b.ReportMetric(rows[0].LowerBound, "lower_bound_rounds")
	}
}

// BenchmarkCorollary39OptimizationAlgorithms measures the exact and
// approximate MST algorithms (the Corollary 3.9 upper-bound side).
func BenchmarkCorollary39OptimizationAlgorithms(b *testing.B) {
	var res *MSTExperimentResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = RunMSTExperiment(8, 17, 128, 128, 2, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		b.ReportMetric(float64(res.ExactRounds), "exact_mst_rounds")
		b.ReportMetric(float64(res.ApproxRounds), "approx_mst_rounds")
		b.ReportMetric(res.ApproxRatio, "approx_ratio")
		b.ReportMetric(res.LowerBound, "lower_bound_rounds")
	}
}

// BenchmarkAblationHighwayCount compares the lower-bound network's diameter
// with and without highways (the design choice that brings the diameter from
// Θ(L) to Θ(log L)).
func BenchmarkAblationHighwayCount(b *testing.B) {
	var withHighways, pathOnly int
	for i := 0; i < b.N; i++ {
		nw, err := lbnetwork.New(8, 65)
		if err != nil {
			b.Fatal(err)
		}
		withHighways = nw.Graph.DiameterLowerBoundFrom(0)
		// The ablation: Γ paths of the same length with only the end cliques
		// (no highways) have eccentricity Θ(L).
		pathOnly = nw.L - 1
	}
	b.ReportMetric(float64(withHighways), "diameter_with_highways")
	b.ReportMetric(float64(pathOnly), "diameter_without_highways")
}

// BenchmarkAblationBandwidth sweeps the bandwidth B and reports how the
// lower bound scales (the B-dependence of Theorem 3.6).
func BenchmarkAblationBandwidth(b *testing.B) {
	var b32, b512 float64
	for i := 0; i < b.N; i++ {
		b32 = VerificationLowerBound(1_000_000, 32)
		b512 = VerificationLowerBound(1_000_000, 512)
	}
	b.ReportMetric(b32, "lower_bound_B32")
	b.ReportMetric(b512, "lower_bound_B512")
}

// BenchmarkAblationMSTApproxAlpha sweeps the approximation factor α and
// reports the measured approximation ratio of the rounded-weight variant.
func BenchmarkAblationMSTApproxAlpha(b *testing.B) {
	var ratio2, ratio8 float64
	for i := 0; i < b.N; i++ {
		r2, err := RunMSTExperiment(6, 9, 128, 256, 2, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		r8, err := RunMSTExperiment(6, 9, 128, 256, 8, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		ratio2, ratio8 = r2.ApproxRatio, r8.ApproxRatio
	}
	b.ReportMetric(ratio2, "approx_ratio_alpha2")
	b.ReportMetric(ratio8, "approx_ratio_alpha8")
}

// BenchmarkExperimentMatrix drives the internal/exp harness end to end: the
// quick scenario matrix (three topology families, three algorithm classes,
// local and parallel backends) expanded and executed through the worker
// pool. It is the BENCH trajectory's throughput number for the sweeps
// cmd/qdcbench -matrix runs at larger scale.
func BenchmarkExperimentMatrix(b *testing.B) {
	m, ok := exp.LookupMatrix("quick")
	if !ok {
		b.Fatal("quick matrix not registered")
	}
	var sum exp.Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = exp.Execute(m.Expand(), exp.ExecOptions{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Failed > 0 {
			b.Fatalf("%d scenarios failed", sum.Failed)
		}
	}
	b.ReportMetric(float64(sum.Scenarios), "scenarios")
	b.ReportMetric(float64(sum.Scenarios)/(sum.WallMillis/1000), "scenarios_per_sec")
}

// BenchmarkAblationGroverIterations reports Grover's success probability as
// the iteration count model predicts, for the Example 1.1 search sizes.
func BenchmarkAblationGroverIterations(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var success float64
	var queries int
	for i := 0; i < b.N; i++ {
		res, err := quantum.GroverSearch(256, 1, func(j int) bool { return j == 99 }, rng)
		if err != nil {
			b.Fatal(err)
		}
		success = res.SuccessProbability
		queries = res.OracleQueries
	}
	b.ReportMetric(success, "success_probability")
	b.ReportMetric(float64(queries), "oracle_queries")
}
